package blocking

import (
	"reflect"
	"testing"
	"testing/quick"
)

func recs(keys ...string) []Record {
	out := make([]Record, len(keys))
	for i, k := range keys {
		out[i] = Record{ID: i, Keys: []string{k}}
	}
	return out
}

func TestExactKey(t *testing.T) {
	records := recs("john smith", "John  Smith", "mary cohen", "john smith")
	pairs := ExactKey{}.Candidates(records)
	// Records 0, 1, 3 share the normalized key.
	want := []Pair{{0, 1}, {0, 3}, {1, 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestExactKeyMultipleKeys(t *testing.T) {
	records := []Record{
		{ID: 0, Keys: []string{"a", "b"}},
		{ID: 1, Keys: []string{"b", "c"}},
		{ID: 2, Keys: []string{"c"}},
	}
	pairs := ExactKey{}.Candidates(records)
	want := []Pair{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestExactKeyDuplicateKeysInOneRecord(t *testing.T) {
	records := []Record{
		{ID: 0, Keys: []string{"a", "a", "A"}},
		{ID: 1, Keys: []string{"a"}},
	}
	pairs := ExactKey{}.Candidates(records)
	if len(pairs) != 1 {
		t.Errorf("duplicate keys must not duplicate pairs: %v", pairs)
	}
}

func TestTokenBlocking(t *testing.T) {
	records := recs("john smith", "j smith", "mary cohen", "mary johnson")
	pairs := TokenBlocking{}.Candidates(records)
	// "smith" joins 0,1; "mary" joins 2,3; "j" is below min length.
	want := []Pair{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	// Min token length honored explicitly.
	pairs = TokenBlocking{MinTokenLength: 1}.Candidates(recs("j x", "j y"))
	if len(pairs) != 1 {
		t.Errorf("min length 1 should block on single letters: %v", pairs)
	}
}

func TestTokenBlockingHigherRecallThanExact(t *testing.T) {
	records := recs("john smith", "smith, john", "j. smith")
	exact := ExactKey{}.Candidates(records)
	token := TokenBlocking{}.Candidates(records)
	if len(token) < len(exact) {
		t.Errorf("token blocking recall %d < exact %d", len(token), len(exact))
	}
	// All three share "smith".
	if len(token) != 3 {
		t.Errorf("token pairs = %v, want all 3", token)
	}
}

func TestSortedNeighborhood(t *testing.T) {
	records := recs("aaa", "aab", "zzz", "aac")
	pairs := SortedNeighborhood{Window: 2}.Candidates(records)
	// Sorted keys: aaa(0), aab(1), aac(3), zzz(2); window 2 gives adjacent
	// pairs only.
	want := []Pair{{0, 1}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	// Window defaults to at least 2.
	def := SortedNeighborhood{}.Candidates(records)
	if !reflect.DeepEqual(def, pairs) {
		t.Errorf("default window pairs = %v", def)
	}
	// Window covering everything yields all pairs.
	all := SortedNeighborhood{Window: 4}.Candidates(records)
	if len(all) != 6 {
		t.Errorf("full window pairs = %d, want 6", len(all))
	}
}

func TestCanopy(t *testing.T) {
	records := recs("john smith", "john smith jr", "mary cohen", "mary cohen md")
	pairs := Canopy{Loose: 0.3, Tight: 0.8}.Candidates(records)
	// The two smiths and the two cohens form canopies; across groups the
	// token Jaccard is 0.
	want := []Pair{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestCanopyLooseZeroMergesAll(t *testing.T) {
	records := recs("a", "b", "c")
	pairs := Canopy{Loose: 0, Tight: 1}.Candidates(records)
	if len(pairs) != 3 {
		t.Errorf("loose=0 should produce all pairs: %v", pairs)
	}
}

func TestCanopyCustomSim(t *testing.T) {
	records := recs("x", "y")
	always := func(a, b string) float64 { return 1 }
	pairs := Canopy{Sim: always, Loose: 0.5, Tight: 0.5}.Candidates(records)
	if len(pairs) != 1 {
		t.Errorf("custom sim ignored: %v", pairs)
	}
}

func TestEvaluate(t *testing.T) {
	// 4 records, truth {0,1} {2,3}: true pairs (0,1) and (2,3).
	labels := []int{0, 0, 1, 1}
	pairs := []Pair{{0, 1}, {1, 2}}
	st := Evaluate(pairs, labels)
	if st.Candidates != 2 {
		t.Errorf("candidates = %d", st.Candidates)
	}
	if st.PairCompleteness != 0.5 {
		t.Errorf("completeness = %v, want 0.5 (one of two true pairs)", st.PairCompleteness)
	}
	// 6 total pairs, 2 candidates → reduction 2/3.
	if st.ReductionRatio < 0.66 || st.ReductionRatio > 0.67 {
		t.Errorf("reduction = %v, want ~0.667", st.ReductionRatio)
	}
	// No true pairs → vacuous completeness 1.
	st = Evaluate(nil, []int{0, 1, 2})
	if st.PairCompleteness != 1 {
		t.Errorf("vacuous completeness = %v", st.PairCompleteness)
	}
}

func TestAllSchemesPairInvariantsProperty(t *testing.T) {
	schemes := map[string]Scheme{
		"exact":  ExactKey{},
		"token":  TokenBlocking{},
		"window": SortedNeighborhood{Window: 3},
		"canopy": Canopy{Loose: 0.4, Tight: 0.8},
	}
	keysets := []string{"john smith", "mary cohen", "j smith", "cohen", "bob lee", ""}
	f := func(sel []byte) bool {
		records := make([]Record, 0, len(sel))
		for i, b := range sel {
			if i >= 12 {
				break
			}
			records = append(records, Record{ID: i, Keys: []string{keysets[int(b)%len(keysets)]}})
		}
		for _, s := range schemes {
			pairs := s.Candidates(records)
			seen := make(map[Pair]bool)
			for _, p := range pairs {
				if p.A >= p.B {
					return false // ordered
				}
				if p.A < 0 || p.B >= len(records) {
					return false // in range
				}
				if seen[p] {
					return false // deduplicated
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchemesDeterministic(t *testing.T) {
	records := recs("john smith", "j smith", "john smyth", "mary cohen", "cohen")
	for name, s := range map[string]Scheme{
		"exact":  ExactKey{},
		"token":  TokenBlocking{},
		"window": SortedNeighborhood{Window: 3},
		"canopy": Canopy{Loose: 0.3, Tight: 0.7},
	} {
		a := s.Candidates(records)
		b := s.Candidates(records)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s is not deterministic", name)
		}
	}
}

func TestBlockID(t *testing.T) {
	base := BlockID([]string{"a", "b", "c"})
	if got := BlockID([]string{"a", "b", "c"}); got != base {
		t.Errorf("BlockID is not stable: %x vs %x", got, base)
	}
	distinct := [][]string{
		{},
		{"a"},
		{"a", "b"},
		{"a", "b", "c"},
		{"b", "a"}, // order matters
		{"ab"},     // separator disambiguates concatenation
		{"a", "bc"},
		{"ab", "c"},
		{"a", "b", "c", ""}, // trailing empty key still changes identity
	}
	seen := map[uint64][]string{}
	for _, keys := range distinct {
		id := BlockID(keys)
		if prev, dup := seen[id]; dup {
			t.Errorf("BlockID collision between %q and %q", prev, keys)
		}
		seen[id] = keys
	}
	if _, dup := seen[base]; !dup {
		// {"a","b","c"} is in the distinct set; base must match it.
		t.Errorf("BlockID(%x) missing from distinct set", base)
	}
}

func TestHashKeyAndCombineIDs(t *testing.T) {
	if HashKey("a", "bc") == HashKey("ab", "c") {
		t.Error("HashKey does not separate parts")
	}
	if HashKey("a", "b", "c") != BlockID([]string{"a", "b", "c"}) {
		t.Error("BlockID and HashKey disagree on the same parts")
	}
	a, b := HashKey("x"), HashKey("y")
	if CombineIDs([]uint64{a, b}) == CombineIDs([]uint64{b, a}) {
		t.Error("CombineIDs is order-insensitive")
	}
	if CombineIDs([]uint64{a}) == CombineIDs([]uint64{a, a}) {
		t.Error("CombineIDs ignores multiplicity")
	}
	if CombineIDs([]uint64{a, b}) != CombineIDs([]uint64{a, b}) {
		t.Error("CombineIDs is not stable")
	}
}
