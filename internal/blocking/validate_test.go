package blocking

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewSortedNeighborhoodValidates(t *testing.T) {
	if _, err := NewSortedNeighborhood(7); err != nil {
		t.Fatalf("window 7: %v", err)
	}
	for _, window := range []int{1, 0, -3} {
		if _, err := NewSortedNeighborhood(window); err == nil {
			t.Errorf("window %d: accepted, want an error", window)
		} else if !strings.Contains(err.Error(), "window") {
			t.Errorf("window %d: error %q does not name the window", window, err)
		}
	}
}

func TestNewCanopyValidates(t *testing.T) {
	if _, err := NewCanopy(0.3, 0.8); err != nil {
		t.Fatalf("loose 0.3 tight 0.8: %v", err)
	}
	cases := []struct {
		loose, tight float64
		want         string
	}{
		{0.8, 0.3, "tight"},     // tight below loose
		{-0.1, 0.5, "[0,1]"},    // loose out of range
		{0.3, 1.5, "[0,1]"},     // tight out of range
		{2, 3, "[0,1]"},         // both out of range
		{0.5, 0.49999, "tight"}, // barely inverted
	}
	for _, c := range cases {
		if _, err := NewCanopy(c.loose, c.tight); err == nil {
			t.Errorf("loose=%g tight=%g: accepted, want an error", c.loose, c.tight)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("loose=%g tight=%g: error %q does not mention %q", c.loose, c.tight, err, c.want)
		}
	}
}

// TestIndexKeysMatchCandidates pins the KeyedScheme contract: records are
// candidates exactly when their IndexKeys intersect.
func TestIndexKeysMatchCandidates(t *testing.T) {
	records := []Record{
		{ID: 0, Keys: []string{"John Smith"}},
		{ID: 1, Keys: []string{"Smith, J."}},
		{ID: 2, Keys: []string{"Mary Jones", "M. Jones"}},
		{ID: 3, Keys: []string{""}},
		{ID: 4, Keys: []string{"john SMITH"}},
	}
	for _, scheme := range []KeyedScheme{ExactKey{}, TokenBlocking{}} {
		pairs := scheme.Candidates(records)
		got := make(map[Pair]bool)
		for _, p := range pairs {
			got[p] = true
		}
		keys := make([][]string, len(records))
		for i, r := range records {
			keys[i] = scheme.IndexKeys(r.Keys)
		}
		for i := 0; i < len(records); i++ {
			for j := i + 1; j < len(records); j++ {
				share := false
				for _, a := range keys[i] {
					for _, b := range keys[j] {
						if a == b {
							share = true
						}
					}
				}
				if share != got[normalizePair(records[i].ID, records[j].ID)] {
					t.Errorf("%T: records %d/%d share-key=%v but candidate=%v",
						scheme, i, j, share, !share)
				}
			}
		}
	}
}

func TestKeyTokens(t *testing.T) {
	got := KeyTokens("Smith, J. von Smith", 2)
	want := []string{"smith", "von", "smith"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeyTokens = %v, want %v", got, want)
	}
	if toks := KeyTokens("  ", 2); len(toks) != 0 {
		t.Fatalf("blank key produced tokens %v", toks)
	}
}

func TestDocHashMatchesHashKey(t *testing.T) {
	// DocHash is the shared identity formula; the incremental diff builds
	// the same hash via HashKey with stringified parts.
	if DocHash("smith", 3, "http://x", "text", 2) != HashKey("smith", "3", "http://x", "text", "2") {
		t.Fatal("DocHash diverged from the HashKey formula the incremental diff uses")
	}
	if DocHash("smith", 3, "http://x", "text", 2) == DocHash("smith", 4, "http://x", "text", 2) {
		t.Fatal("DocHash ignored the document position")
	}
}
