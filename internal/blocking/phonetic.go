package blocking

import "strings"

// soundexCode maps a lower-case ASCII letter to its Soundex digit class,
// 0 for vowels and the separators (a e i o u y), -1 for h and w (which
// are transparent: they do not break a run of equal codes).
func soundexCode(r byte) int8 {
	switch r {
	case 'b', 'f', 'p', 'v':
		return '1'
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return '2'
	case 'd', 't':
		return '3'
	case 'l':
		return '4'
	case 'm', 'n':
		return '5'
	case 'r':
		return '6'
	case 'h', 'w':
		return -1
	default:
		return 0
	}
}

// Soundex returns the American Soundex code of one name token: the first
// letter followed by up to three digits classifying the following
// consonants, zero-padded ("robert" and "rupert" both code to "r163").
// Adjacent letters with the same digit collapse to one; h and w do not
// break such a run, vowels do. Non-letter characters are skipped; a token
// with no ASCII letters codes to "". The input is expected normalized
// (NormalizeKey); upper-case letters are folded anyway so the function is
// safe on raw tokens.
func Soundex(token string) string {
	token = strings.ToLower(token)
	var out [4]byte
	n := 0
	var last int8 = -2 // sentinel: nothing consumed yet
	for i := 0; i < len(token) && n < len(out); i++ {
		c := token[i]
		if c < 'a' || c > 'z' {
			continue
		}
		code := soundexCode(c)
		if n == 0 {
			out[0] = c
			n = 1
			last = code
			continue
		}
		switch {
		case code > 0:
			if code != last {
				out[n] = byte(code)
				n++
			}
			last = code
		case code == 0:
			last = 0 // vowel: breaks the run
		}
		// code == -1 (h, w): transparent, last keeps its value.
	}
	if n == 0 {
		return ""
	}
	for n < len(out) {
		out[n] = '0'
		n++
	}
	return string(out[:])
}

// SoundexKey codes every token of one blocking key and joins the results,
// so "jon smith" and "john smyth" produce the same phonetic key. Tokens
// without letters are dropped; a key with no codable token returns "".
func SoundexKey(key string) string {
	fields := strings.Fields(NormalizeKey(key))
	codes := fields[:0]
	for _, tok := range fields {
		if c := Soundex(tok); c != "" {
			codes = append(codes, c)
		}
	}
	return strings.Join(codes, " ")
}
