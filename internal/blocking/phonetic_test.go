package blocking

import "testing"

func TestSoundex(t *testing.T) {
	cases := map[string]string{
		"robert":   "r163",
		"Rupert":   "r163", // same code as robert — the classic pair
		"ashcraft": "a261", // h transparent: s and c stay one run
		"ashcroft": "a261",
		"tymczak":  "t522", // vowel breaks the cz run
		"pfister":  "p236",
		"honeyman": "h555",
		"jackson":  "j250",
		"wilson":   "w425",
		"lee":      "l000", // zero padding
		"o'brien":  "o165", // punctuation skipped
		"1234":     "",     // no letters, no code
		"":         "",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexKey(t *testing.T) {
	if a, b := SoundexKey("Jon Smyth"), SoundexKey("john smith"); a != b || a == "" {
		t.Errorf("SoundexKey: %q vs %q, want equal phonetic keys", a, b)
	}
	if got := SoundexKey("  Mary-Jones 42 "); got != "m600 j520" {
		t.Errorf("SoundexKey(mary-jones 42) = %q", got)
	}
	if got := SoundexKey("123 456"); got != "" {
		t.Errorf("SoundexKey of letterless key = %q, want empty", got)
	}
}

func TestApproxPolicies(t *testing.T) {
	if p := (Canopy{Loose: 0.3, Tight: 0.6}).ApproxPolicy(); p.MinSim != 0.3 || p.MaxNeighbors != 0 {
		t.Errorf("canopy policy %+v", p)
	}
	if p := (SortedNeighborhood{Window: 5}).ApproxPolicy(); p.MaxNeighbors != 4 || p.MinSim != 0 {
		t.Errorf("sorted neighborhood policy %+v", p)
	}
	if p := (SortedNeighborhood{}).ApproxPolicy(); p.MaxNeighbors != 1 {
		t.Errorf("degenerate window policy %+v", p)
	}
}
