package blocking

// ApproxScheme is implemented by global schemes whose candidate generation
// can be served by an approximate nearest-neighbor index. The exact
// Candidates pass compares every record pair — O(N²) per run — while the
// approximate path inserts each new record into a proximity graph once and
// links it to a bounded set of nearest neighbors, with the policy below
// deciding which neighbors become candidate edges. Neighbor *search* is
// approximate; the similarity that accepts or rejects an edge is computed
// exactly, so recall — not precision — is the only quantity at stake.
type ApproxScheme interface {
	Scheme
	// ApproxPolicy describes how nearest-neighbor query results translate
	// into candidate edges for this scheme.
	ApproxPolicy() ApproxPolicy
}

// ApproxPolicy is a scheme's recall contract with a nearest-neighbor
// candidate index: of the neighbors a query returns (nearest first), which
// ones become candidate edges.
type ApproxPolicy struct {
	// MinSim accepts a neighbor only when its exact cosine similarity over
	// the record's key-token set is at least MinSim. Canopy uses its loose
	// threshold here: on binary token sets cosine bounds Jaccard from
	// above, so every pair the exact scheme links clears MinSim too — the
	// approximation can only miss a pair by not surfacing it among the
	// efSearch nearest, never by mis-scoring it. Zero disables the test.
	MinSim float64
	// MaxNeighbors caps accepted neighbors per record. Sorted neighborhood
	// links each record to its window-1 nearest, mirroring the number of
	// in-window partners the exact sliding pass gives it. Zero means no
	// cap.
	MaxNeighbors int
}

// ApproxPolicy implements ApproxScheme: gather neighbors at least as
// similar as the loose threshold, exactly as a canopy gathers its members.
func (c Canopy) ApproxPolicy() ApproxPolicy {
	return ApproxPolicy{MinSim: c.Loose}
}

// ApproxPolicy implements ApproxScheme: link each record to its window-1
// nearest neighbors, the partner count the exact sliding window yields.
func (s SortedNeighborhood) ApproxPolicy() ApproxPolicy {
	w := s.Window
	if w < 2 {
		w = 2
	}
	return ApproxPolicy{MaxNeighbors: w - 1}
}
