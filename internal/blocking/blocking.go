// Package blocking implements candidate-pair generation schemes for entity
// resolution. The paper blocks by exact person name ("we only compute the
// similarity values between documents, which are about a person with the
// same name") and notes that "in general, one needs to consider the
// applicable blocking schemes more carefully" — this package provides that
// generality: exact-key blocking, token blocking, sorted-neighborhood and
// canopy clustering, all producing candidate pairs for the pairwise
// similarity stage.
package blocking

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Record is the unit of blocking: an entity reference with one or more
// blocking keys (for web people search, the person names on the document).
type Record struct {
	// ID identifies the record; pairs are reported as ID pairs.
	ID int
	// Keys are the blocking keys (person names, titles, …).
	Keys []string
}

// Pair is an unordered candidate pair with A < B.
type Pair struct {
	A, B int
}

// normalizePair orders the pair.
func normalizePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Scheme generates candidate pairs from records.
type Scheme interface {
	// Candidates returns the candidate pairs, deduplicated, in
	// deterministic order.
	Candidates(records []Record) []Pair
}

// KeyedScheme is implemented by schemes whose candidate pairs are exactly
// "records sharing a derived index key" — no windows, no pairwise
// similarity, just key equality. Such schemes are the ones an incremental
// posting index (internal/blockindex) can maintain as documents arrive:
// appending a record only ever links it to the existing members of its
// keys' postings, so connected components — and with them the resolution
// blocks — can be updated in O(delta) instead of rebuilt per run.
// ExactKey and TokenBlocking are keyed; SortedNeighborhood and Canopy are
// global (a new record can re-rank or re-seed the whole corpus) and are
// not.
type KeyedScheme interface {
	Scheme
	// IndexKeys derives the deduplicated index keys of one record from its
	// blocking keys. Two records are candidates under the scheme if and
	// only if their IndexKeys intersect.
	IndexKeys(keys []string) []string
}

// Validator is implemented by schemes with parameters to sanity-check at
// construction; pipelines validate before running so a degenerate
// configuration fails fast instead of silently producing a useless
// candidate set.
type Validator interface {
	Validate() error
}

// SchemeNames are the accepted ParseScheme spellings, in display order for
// CLI/API usage messages.
var SchemeNames = []string{"exact", "token", "sortedneighborhood", "canopy"}

// ParseScheme maps a CLI/API name to a scheme with its default parameters:
// exact-key blocking (the paper's), token blocking with the default minimum
// token length, sorted neighborhood with a window of 7, and canopy
// clustering with loose/tight thresholds 0.3/0.8. Unknown names return an
// error listing every valid spelling.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "exact":
		return ExactKey{}, nil
	case "token":
		return TokenBlocking{}, nil
	case "sortedneighborhood":
		return SortedNeighborhood{Window: 7}, nil
	case "canopy":
		return Canopy{Loose: 0.3, Tight: 0.8}, nil
	default:
		return nil, fmt.Errorf("blocking: unknown scheme %q (valid: %s)",
			name, strings.Join(SchemeNames, ", "))
	}
}

// ExactKey blocks records sharing any identical normalized key — the
// paper's scheme, where a block is "all pages retrieved for one name".
type ExactKey struct{}

// Candidates implements Scheme.
func (e ExactKey) Candidates(records []Record) []Pair {
	buckets := make(map[string][]int)
	for _, r := range records {
		for _, nk := range e.IndexKeys(r.Keys) {
			buckets[nk] = append(buckets[nk], r.ID)
		}
	}
	return pairsFromBuckets(buckets)
}

// IndexKeys implements KeyedScheme: the deduplicated non-empty normalized
// keys.
func (ExactKey) IndexKeys(keys []string) []string {
	out := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		nk := NormalizeKey(k)
		if nk == "" || seen[nk] {
			continue
		}
		seen[nk] = true
		out = append(out, nk)
	}
	return out
}

// TokenBlocking blocks records sharing any key token, a higher-recall
// scheme tolerant of name variations ("J. Smith" and "John Smith" share
// the token "smith").
type TokenBlocking struct {
	// MinTokenLength drops very short tokens (initials); default 2.
	MinTokenLength int
}

// Candidates implements Scheme.
func (t TokenBlocking) Candidates(records []Record) []Pair {
	buckets := make(map[string][]int)
	for _, r := range records {
		for _, tok := range t.IndexKeys(r.Keys) {
			buckets[tok] = append(buckets[tok], r.ID)
		}
	}
	return pairsFromBuckets(buckets)
}

// IndexKeys implements KeyedScheme: the deduplicated normalized key tokens
// at or above the minimum length.
func (t TokenBlocking) IndexKeys(keys []string) []string {
	minLen := t.MinTokenLength
	if minLen <= 0 {
		minLen = 2
	}
	var out []string
	seen := make(map[string]bool)
	for _, k := range keys {
		for _, tok := range KeyTokens(k, minLen) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// SortedNeighborhood sorts records by their smallest normalized key and
// slides a window of the given size; records within a window become
// candidates (Hernández & Stolfo's merge/purge scheme, reference [2] of
// the paper).
type SortedNeighborhood struct {
	// Window is the sliding window size; values < 2 behave as 2.
	Window int
}

// NewSortedNeighborhood validates the window size at construction: a
// window below 2 can never pair anything and is a configuration mistake,
// not a degenerate run.
func NewSortedNeighborhood(window int) (SortedNeighborhood, error) {
	s := SortedNeighborhood{Window: window}
	return s, s.Validate()
}

// Validate implements Validator.
func (s SortedNeighborhood) Validate() error {
	if s.Window < 2 {
		return fmt.Errorf("blocking: sorted neighborhood window %d cannot pair records (want >= 2)", s.Window)
	}
	return nil
}

// Candidates implements Scheme.
func (s SortedNeighborhood) Candidates(records []Record) []Pair {
	window := s.Window
	if window < 2 {
		window = 2
	}
	type keyed struct {
		key string
		id  int
	}
	items := make([]keyed, 0, len(records))
	for _, r := range records {
		best := ""
		for _, k := range r.Keys {
			nk := NormalizeKey(k)
			if nk == "" {
				continue
			}
			if best == "" || nk < best {
				best = nk
			}
		}
		items = append(items, keyed{key: best, id: r.ID})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].key != items[j].key {
			return items[i].key < items[j].key
		}
		return items[i].id < items[j].id
	})
	set := make(map[Pair]struct{})
	for i := range items {
		for j := i + 1; j < i+window && j < len(items); j++ {
			set[normalizePair(items[i].id, items[j].id)] = struct{}{}
		}
	}
	return sortedPairs(set)
}

// KeySimilarity scores two normalized blocking keys in [0, 1]; canopy
// clustering uses it as its cheap distance.
type KeySimilarity func(a, b string) float64

// Canopy implements canopy clustering (McCallum, Nigam, Ungar): pick an
// unprocessed seed, gather all records with cheap similarity >= Loose into
// its canopy, and remove those with similarity >= Tight from further
// seeding. Records sharing a canopy become candidates. Requires
// Tight >= Loose.
type Canopy struct {
	// Sim is the cheap similarity; nil means token Jaccard of the keys.
	Sim KeySimilarity
	// Loose and Tight are the two canopy thresholds.
	Loose, Tight float64
}

// NewCanopy validates the thresholds at construction. Similarities live in
// [0, 1], and the tight threshold must not undercut the loose one:
// Tight < Loose removes records from seeding that never even joined a
// canopy, silently shrinking the candidate set.
func NewCanopy(loose, tight float64) (Canopy, error) {
	c := Canopy{Loose: loose, Tight: tight}
	return c, c.Validate()
}

// Validate implements Validator.
func (c Canopy) Validate() error {
	if c.Loose < 0 || c.Loose > 1 || c.Tight < 0 || c.Tight > 1 {
		return fmt.Errorf("blocking: canopy thresholds loose=%g tight=%g outside [0,1] (similarities live there)",
			c.Loose, c.Tight)
	}
	if c.Tight < c.Loose {
		return fmt.Errorf("blocking: canopy tight threshold %g below loose %g would drop records from seeding without clustering them",
			c.Tight, c.Loose)
	}
	return nil
}

// Candidates implements Scheme. Seeds are taken in record order, making the
// result deterministic.
func (c Canopy) Candidates(records []Record) []Pair {
	sim := c.Sim
	if sim == nil {
		sim = tokenJaccardKeys
	}
	keys := make([]string, len(records))
	for i, r := range records {
		keys[i] = NormalizeKey(strings.Join(r.Keys, " "))
	}
	removed := make([]bool, len(records))
	set := make(map[Pair]struct{})
	for seed := range records {
		if removed[seed] {
			continue
		}
		removed[seed] = true
		canopy := []int{seed}
		for other := range records {
			if other == seed || removed[other] {
				continue
			}
			s := sim(keys[seed], keys[other])
			if s >= c.Loose {
				canopy = append(canopy, other)
				if s >= c.Tight {
					removed[other] = true
				}
			}
		}
		for i := 0; i < len(canopy); i++ {
			for j := i + 1; j < len(canopy); j++ {
				set[normalizePair(records[canopy[i]].ID, records[canopy[j]].ID)] = struct{}{}
			}
		}
	}
	return sortedPairs(set)
}

func tokenJaccardKeys(a, b string) float64 {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	sa := make(map[string]struct{}, len(ta))
	for _, t := range ta {
		sa[t] = struct{}{}
	}
	inter := 0
	sb := make(map[string]struct{}, len(tb))
	for _, t := range tb {
		if _, dup := sb[t]; dup {
			continue
		}
		sb[t] = struct{}{}
		if _, ok := sa[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// NormalizeKey canonicalizes one blocking key: lower-case, punctuation
// stripped to spaces, whitespace collapsed — so "Smith, John" and "john
// smith" normalize to comparable keys. It is exported because the
// incremental posting index (internal/blockindex) and any custom KeyFunc
// must normalize exactly the way the schemes do, or index-maintained
// blocks would drift from scheme-computed ones.
func NormalizeKey(k string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return ' '
		}
	}, k)
	return strings.Join(strings.Fields(mapped), " ")
}

// KeyTokens returns the normalized tokens of one blocking key at or above
// minLen, in order of appearance — the posting keys of token blocking,
// shared with the incremental index.
func KeyTokens(k string, minLen int) []string {
	fields := strings.Fields(NormalizeKey(k))
	out := fields[:0]
	for _, tok := range fields {
		if len(tok) >= minLen {
			out = append(out, tok)
		}
	}
	return out
}

func pairsFromBuckets(buckets map[string][]int) []Pair {
	set := make(map[Pair]struct{})
	for _, ids := range buckets {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if ids[i] != ids[j] {
					set[normalizePair(ids[i], ids[j])] = struct{}{}
				}
			}
		}
	}
	return sortedPairs(set)
}

func sortedPairs(set map[Pair]struct{}) []Pair {
	out := make([]Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// The membership-fingerprint helpers below give blocks a stable identity
// across runs: hash each member's identifying parts with HashKey, combine
// the member hashes in block order with CombineIDs (or hash string keys
// directly with BlockID). Incremental resolution keys its per-block cache
// on the result — a block whose ID is unchanged since the previous run
// has identical members (up to 64-bit hash collision) and can reuse the
// previous run's prepared state and clustering. All three fold FNV-1a
// with a separator per part, so ("ab","c") and ("a","bc") fingerprint
// differently.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// foldString folds s plus a part separator into h.
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Part separator, folded like one extra byte.
	h ^= 0xFF
	h *= fnvPrime64
	return h
}

// HashKey fingerprints one record or document from its identifying parts.
func HashKey(parts ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		h = foldString(h, p)
	}
	return h
}

// CombineIDs combines per-member hashes, in member order, into a block
// identity.
func CombineIDs(memberHashes []uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, m := range memberHashes {
		for s := 0; s < 64; s += 8 {
			h ^= (m >> s) & 0xFF
			h *= fnvPrime64
		}
		h ^= 0xFF
		h *= fnvPrime64
	}
	return h
}

// BlockID fingerprints a block's membership from string member keys.
func BlockID(memberKeys []string) uint64 {
	return HashKey(memberKeys...)
}

// DocHash fingerprints one ingested document from its identifying parts:
// collection name, position within the collection, URL, text and persona
// label. It is THE document identity of incremental resolution — the
// pipeline's membership diff and the sharded blocking index must hash
// documents identically, or index-maintained block fingerprints would
// never match diff-computed ones and every block would look dirty.
// Positions are stable under append-only ingestion, which the store
// guarantees.
func DocHash(colName string, pos int, url, text string, persona int) uint64 {
	return HashKey(colName, strconv.Itoa(pos), url, text, strconv.Itoa(persona))
}

// Stats summarizes a candidate set against ground truth: how many true
// pairs were retained (pair completeness / recall) and how much of the
// quadratic comparison space was pruned (reduction ratio).
type Stats struct {
	// Candidates is the number of generated pairs.
	Candidates int
	// PairCompleteness is the fraction of true matching pairs covered.
	PairCompleteness float64
	// ReductionRatio is 1 − candidates / allPairs.
	ReductionRatio float64
}

// Evaluate computes blocking quality for records whose true partition is
// given as labels indexed by record ID.
func Evaluate(pairs []Pair, labels []int) Stats {
	n := len(labels)
	total := n * (n - 1) / 2
	truePairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if labels[i] == labels[j] {
				truePairs++
			}
		}
	}
	covered := 0
	for _, p := range pairs {
		if p.A >= 0 && p.B < n && labels[p.A] == labels[p.B] {
			covered++
		}
	}
	st := Stats{Candidates: len(pairs)}
	if truePairs > 0 {
		st.PairCompleteness = float64(covered) / float64(truePairs)
	} else {
		st.PairCompleteness = 1
	}
	if total > 0 {
		st.ReductionRatio = 1 - float64(len(pairs))/float64(total)
	}
	return st
}
