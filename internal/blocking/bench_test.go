package blocking

import (
	"fmt"
	"testing"
)

// benchRecords builds n records over p distinct person names, each written
// in one of several variants ("john smith", "Smith, John", "J. Smith") —
// the shape candidate-pair generation sees in web-people blocking.
func benchRecords(n int) []Record {
	first := []string{"john", "mary", "andrew", "fernando", "wei", "anna", "david", "laura"}
	last := []string{"smith", "cohen", "mccallum", "pereira", "chen", "novak", "baker", "reyes"}
	records := make([]Record, n)
	for i := range records {
		f := first[i%len(first)]
		l := last[(i/len(first))%len(last)]
		var key string
		switch i % 3 {
		case 0:
			key = fmt.Sprintf("%s %s", f, l)
		case 1:
			key = fmt.Sprintf("%s, %s", l, f)
		default:
			key = fmt.Sprintf("%c. %s", f[0], l)
		}
		records[i] = Record{ID: i, Keys: []string{key}}
	}
	return records
}

// benchScheme reports candidate-pair throughput (pairs/s) and the
// candidate count for one scheme on a fixed record set.
func benchScheme(b *testing.B, s Scheme, n int) {
	records := benchRecords(n)
	var pairs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs = len(s.Candidates(records))
	}
	b.ReportMetric(float64(pairs)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
	b.ReportMetric(float64(pairs), "pairs")
}

func BenchmarkExactKey(b *testing.B)           { benchScheme(b, ExactKey{}, 1000) }
func BenchmarkTokenBlocking(b *testing.B)      { benchScheme(b, TokenBlocking{}, 1000) }
func BenchmarkSortedNeighborhood(b *testing.B) { benchScheme(b, SortedNeighborhood{Window: 7}, 1000) }
func BenchmarkCanopy(b *testing.B)             { benchScheme(b, Canopy{Loose: 0.3, Tight: 0.8}, 400) }
