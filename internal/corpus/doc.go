// Package corpus models web-document collections for person-name entity
// resolution and generates the synthetic datasets that replace WWW'05 and
// WePS-2 (which require web crawls and manual labels we cannot obtain
// offline).
//
// A Collection holds the pages retrieved for one ambiguous person name,
// each page labeled with the ground-truth persona it refers to. The
// generator reproduces the statistical structure the paper's techniques
// exploit: heterogeneous pages, partial and missing information, noisy
// dictionary extraction, skewed cluster sizes, and per-name variation in
// which feature channel is discriminative (the reason different similarity
// functions win on different names, Table III).
package corpus

import (
	"encoding/json"
	"fmt"
	"io"
)

// Document is one web page in a collection.
type Document struct {
	// ID is the document's dense index within its collection.
	ID int `json:"id"`
	// URL is the page address; its host carries identity signal for some
	// personas (feature F2).
	URL string `json:"url"`
	// Text is the page content.
	Text string `json:"text"`
	// PersonaID is the ground-truth real-world person this page refers to.
	// Resolvers must not read it; it exists for training-sample labeling
	// and evaluation, exactly like the manual labels shipped with WWW'05.
	PersonaID int `json:"persona_id"`
}

// Collection is the set of pages retrieved for one ambiguous person name.
type Collection struct {
	// Name is the ambiguous query name (a surname, like "cohen").
	Name string `json:"name"`
	// Docs are the retrieved pages.
	Docs []Document `json:"docs"`
	// NumPersonas is the number of distinct real-world persons.
	NumPersonas int `json:"num_personas"`
}

// GroundTruth returns the reference partition as a label per document.
func (c *Collection) GroundTruth() []int {
	labels := make([]int, len(c.Docs))
	for i, d := range c.Docs {
		labels[i] = d.PersonaID
	}
	return labels
}

// Validate checks internal consistency: IDs dense, persona labels within
// range, and every persona non-empty.
func (c *Collection) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("corpus: collection has empty name")
	}
	seen := make(map[int]bool)
	for i, d := range c.Docs {
		if d.ID != i {
			return fmt.Errorf("corpus: doc %d has ID %d", i, d.ID)
		}
		if d.PersonaID < 0 || d.PersonaID >= c.NumPersonas {
			return fmt.Errorf("corpus: doc %d persona %d out of range [0,%d)", i, d.PersonaID, c.NumPersonas)
		}
		seen[d.PersonaID] = true
	}
	if len(seen) != c.NumPersonas {
		return fmt.Errorf("corpus: %d personas declared, %d observed", c.NumPersonas, len(seen))
	}
	return nil
}

// Dataset is a set of collections, one per ambiguous name — the unit the
// experiments run over (WWW'05 is one Dataset of 12 collections).
type Dataset struct {
	// Label names the dataset ("www05-synthetic", "weps-synthetic").
	Label string `json:"label"`
	// Collections hold one entry per ambiguous person name.
	Collections []*Collection `json:"collections"`
}

// TotalDocs returns the number of documents across all collections.
func (d *Dataset) TotalDocs() int {
	total := 0
	for _, c := range d.Collections {
		total += len(c.Docs)
	}
	return total
}

// Validate checks every collection.
func (d *Dataset) Validate() error {
	names := make(map[string]bool)
	for _, c := range d.Collections {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("collection %q: %w", c.Name, err)
		}
		if names[c.Name] {
			return fmt.Errorf("corpus: duplicate collection name %q", c.Name)
		}
		names[c.Name] = true
	}
	return nil
}

// WriteJSON serializes the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON deserializes a dataset written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("corpus: decoding dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
