package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/stats"
	"repro/internal/wordlists"
)

// Persona is one real-world person sharing the ambiguous query name. Its
// attributes are the latent signal the similarity functions try to recover
// from generated pages.
type Persona struct {
	// ID is the persona index within its collection (the ground-truth
	// cluster label).
	ID int
	// FirstName + the collection's query surname form the full name.
	FirstName string
	// Topic indexes wordlists.TopicNames; the persona's pages use the
	// topic's vocabulary and concepts.
	Topic string
	// SecondaryTopic is occasionally present, diluting the topical signal
	// (people have hobbies; pages mix contexts).
	SecondaryTopic string
	// Organizations are the persona's affiliations.
	Organizations []string
	// Associates are persons who co-occur on this persona's pages.
	Associates []string
	// Location is the persona's main place.
	Location string
	// HomeDomain hosts the persona's own pages when the URL channel is
	// informative for this collection.
	HomeDomain string
	// Slug appears in URL paths of the persona's pages.
	Slug string
}

// ChannelInformativeness controls, per collection, how much identity signal
// each feature channel carries. This is the generator's mechanism for the
// paper's central observation: similarity functions "perform very
// differently for the different names".
type ChannelInformativeness struct {
	// URL: probability that a persona's page sits on its home domain.
	URL float64
	// Topic: how strongly pages use the persona's topical vocabulary.
	Topic float64
	// Orgs: probability that affiliations are mentioned.
	Orgs float64
	// Persons: probability that associates are mentioned.
	Persons float64
	// Names: probability pages carry the full first+last name rather than
	// the bare ambiguous surname (drives F3/F7 quality).
	Names float64
}

// sampleChannels draws per-collection channel informativeness. Each channel
// is either strong, middling or weak; collections therefore differ in which
// similarity function can succeed, producing the per-name winner variation
// of Table III. At least one channel is always strong: real persons are
// findable through some feature, and the paper's hardest names still score
// well above chance.
func sampleChannels(rng *rand.Rand) ChannelInformativeness {
	// Strong, middling and weak bands are widely separated: the paper's
	// per-name results (Table III) show dramatic spreads between functions
	// on the same name (e.g. 0.38 vs 0.90 for "Cohen"), which requires the
	// underlying feature channels to differ sharply in informativeness.
	draw := func() float64 {
		switch rng.Intn(3) {
		case 0: // strong channel
			return 0.85 + 0.15*rng.Float64()
		case 1: // middling
			return 0.35 + 0.25*rng.Float64()
		default: // weak
			return 0.02 + 0.18*rng.Float64()
		}
	}
	strong := func() float64 { return 0.85 + 0.15*rng.Float64() }
	c := ChannelInformativeness{
		URL:     draw(),
		Topic:   draw(),
		Orgs:    draw(),
		Persons: draw(),
		Names:   draw(),
	}
	// Force one uniformly-chosen channel strong (drawn regardless, to keep
	// the RNG stream length fixed).
	forced := strong()
	switch rng.Intn(5) {
	case 0:
		c.URL = forced
	case 1:
		c.Topic = forced
	case 2:
		c.Orgs = forced
	case 3:
		c.Persons = forced
	default:
		c.Names = forced
	}
	return c
}

// newPersona samples one persona for a collection.
func newPersona(rng *rand.Rand, id int, surname string, usedFirst map[string]bool) Persona {
	p := Persona{ID: id}

	// Distinct first names keep full names separable; occasionally (10%)
	// two personas share a first name — the hardest case for F3/F7.
	for attempt := 0; ; attempt++ {
		first := wordlists.FirstNames[rng.Intn(len(wordlists.FirstNames))]
		if !usedFirst[first] || attempt > 20 || rng.Float64() < 0.1 {
			p.FirstName = first
			usedFirst[first] = true
			break
		}
	}

	p.Topic = wordlists.TopicNames[rng.Intn(len(wordlists.TopicNames))]
	if rng.Float64() < 0.3 {
		p.SecondaryTopic = wordlists.TopicNames[rng.Intn(len(wordlists.TopicNames))]
	}

	norgs := 1 + rng.Intn(3)
	for _, idx := range stats.SampleWithoutReplacement(rng, len(wordlists.Organizations), norgs) {
		p.Organizations = append(p.Organizations, wordlists.Organizations[idx])
	}

	nassoc := 2 + rng.Intn(3)
	for i := 0; i < nassoc; i++ {
		first := wordlists.FirstNames[rng.Intn(len(wordlists.FirstNames))]
		last := wordlists.Surnames[rng.Intn(len(wordlists.Surnames))]
		if last == surname {
			continue // associates sharing the query surname would confuse ground truth
		}
		p.Associates = append(p.Associates, first+" "+last)
	}

	p.Location = wordlists.Locations[rng.Intn(len(wordlists.Locations))]
	p.HomeDomain = wordlists.Domains[rng.Intn(len(wordlists.Domains))]
	p.Slug = fmt.Sprintf("%s-%s-%d", sanitizeSlug(p.FirstName), sanitizeSlug(surname), id)
	return p
}

// FullName returns "first surname" for the given query surname.
func (p *Persona) FullName(surname string) string {
	return p.FirstName + " " + surname
}

func sanitizeSlug(s string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "-")
}
