package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateCollectionBasics(t *testing.T) {
	col, err := GenerateCollection(CollectionConfig{
		Name: "cohen", NumDocs: 50, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(col.Docs) != 50 {
		t.Fatalf("docs = %d", len(col.Docs))
	}
	if col.NumPersonas != 5 {
		t.Fatalf("personas = %d", col.NumPersonas)
	}
	// Every doc mentions the query name somewhere.
	for _, d := range col.Docs {
		if !strings.Contains(strings.ToLower(d.Text), "cohen") {
			t.Errorf("doc %d does not mention the query name: %q", d.ID, d.Text[:min(80, len(d.Text))])
		}
		if d.URL == "" {
			t.Errorf("doc %d has empty URL", d.ID)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGenerateCollectionDeterministic(t *testing.T) {
	cfg := CollectionConfig{
		Name: "smith", NumDocs: 30, NumPersonas: 4,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.3, Seed: 7,
	}
	a, err := GenerateCollection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCollection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text || a.Docs[i].URL != b.Docs[i].URL ||
			a.Docs[i].PersonaID != b.Docs[i].PersonaID {
			t.Fatalf("doc %d differs between identical-seed generations", i)
		}
	}
	// A different seed must give different content.
	cfg.Seed = 8
	c, _ := GenerateCollection(cfg)
	same := true
	for i := range a.Docs {
		if a.Docs[i].Text != c.Docs[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical collections")
	}
}

func TestGenerateCollectionErrors(t *testing.T) {
	if _, err := GenerateCollection(CollectionConfig{Name: "x", NumDocs: 0, NumPersonas: 1}); err == nil {
		t.Error("want error for zero docs")
	}
	if _, err := GenerateCollection(CollectionConfig{Name: "x", NumDocs: 5, NumPersonas: 0}); err == nil {
		t.Error("want error for zero personas")
	}
	if _, err := GenerateCollection(CollectionConfig{Name: "x", NumDocs: 5, NumPersonas: 6}); err == nil {
		t.Error("want error for more personas than docs")
	}
}

func TestClusterSizesInvariants(t *testing.T) {
	col, err := GenerateCollection(CollectionConfig{
		Name: "ng", NumDocs: 100, NumPersonas: 61,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.3, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, d := range col.Docs {
		counts[d.PersonaID]++
	}
	if len(counts) != 61 {
		t.Fatalf("observed %d personas, want 61", len(counts))
	}
	total := 0
	for pid, c := range counts {
		if c < 1 {
			t.Errorf("persona %d has no docs", pid)
		}
		total += c
	}
	if total != 100 {
		t.Errorf("total docs = %d", total)
	}
}

func TestClusterSizesSkewed(t *testing.T) {
	col, err := GenerateCollection(CollectionConfig{
		Name: "voss", NumDocs: 100, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, d := range col.Docs {
		counts[d.PersonaID]++
	}
	// Zipf over persona rank: persona 0 must dominate persona 4.
	if counts[0] <= counts[4] {
		t.Errorf("expected skew: head=%d tail=%d", counts[0], counts[4])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	col, _ := GenerateCollection(CollectionConfig{
		Name: "mark", NumDocs: 10, NumPersonas: 2,
		Noise: 0.5, Seed: 3,
	})
	col.Docs[3].PersonaID = 99
	if err := col.Validate(); err == nil {
		t.Error("out-of-range persona not caught")
	}
	col.Docs[3].PersonaID = 0
	col.Docs[5].ID = 77
	if err := col.Validate(); err == nil {
		t.Error("non-dense ID not caught")
	}
}

func TestWWW05Profile(t *testing.T) {
	p := WWW05Profile()
	if len(p.Names) != 12 || len(p.ClusterCounts) != 12 {
		t.Fatalf("WWW05 profile: %d names, %d counts", len(p.Names), len(p.ClusterCounts))
	}
	if p.ClusterCounts[0] != 2 || p.ClusterCounts[11] != 61 {
		t.Errorf("cluster counts should span 2..61: %v", p.ClusterCounts)
	}
	d, err := p.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TotalDocs() != 1200 {
		t.Errorf("TotalDocs = %d, want 1200", d.TotalDocs())
	}
}

func TestWePSProfile(t *testing.T) {
	p := WePSProfile()
	if len(p.Names) != 30 {
		t.Fatalf("WePS profile: %d names, want 30", len(p.Names))
	}
	d, err := p.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Subset to the 10 reported ACL names.
	acl := d.Subset(WePSACLNames)
	if len(acl.Collections) != 10 {
		t.Errorf("ACL subset = %d collections, want 10", len(acl.Collections))
	}
	for i, c := range acl.Collections {
		if c.Name != WePSACLNames[i] {
			t.Errorf("subset order broken at %d: %q", i, c.Name)
		}
		if len(c.Docs) != 150 {
			t.Errorf("collection %q has %d docs, want 150", c.Name, len(c.Docs))
		}
	}
}

func TestSubsetUnknownNames(t *testing.T) {
	d := &Dataset{Label: "x", Collections: []*Collection{{Name: "a", NumPersonas: 1, Docs: []Document{{ID: 0}}}}}
	s := d.Subset([]string{"zzz", "a"})
	if len(s.Collections) != 1 || s.Collections[0].Name != "a" {
		t.Errorf("subset = %v", s.Collections)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := DatasetProfile{
		Label: "tiny", Names: []string{"lee", "park"}, DocsPerName: 12,
		ClusterCounts: []int{2, 3}, Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2,
	}
	d, err := p.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != d.Label || len(back.Collections) != len(d.Collections) {
		t.Fatal("round trip lost structure")
	}
	for i, c := range back.Collections {
		orig := d.Collections[i]
		if c.Name != orig.Name || len(c.Docs) != len(orig.Docs) {
			t.Fatalf("collection %d differs", i)
		}
		for j := range c.Docs {
			if c.Docs[j] != orig.Docs[j] {
				t.Fatalf("doc %d/%d differs", i, j)
			}
		}
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Valid JSON but inconsistent labels.
	bad := `{"label":"x","collections":[{"name":"a","num_personas":2,"docs":[{"id":0,"url":"u","text":"t","persona_id":5}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent dataset accepted")
	}
}

func TestProfileGenerateMismatchedCounts(t *testing.T) {
	p := DatasetProfile{Label: "bad", Names: []string{"a"}, ClusterCounts: []int{1, 2}, DocsPerName: 5}
	if _, err := p.Generate(1); err == nil {
		t.Error("mismatched profile accepted")
	}
}

func TestGroundTruth(t *testing.T) {
	col, _ := GenerateCollection(CollectionConfig{
		Name: "hall", NumDocs: 20, NumPersonas: 3, Seed: 11,
	})
	gt := col.GroundTruth()
	if len(gt) != 20 {
		t.Fatalf("gt len = %d", len(gt))
	}
	for i, d := range col.Docs {
		if gt[i] != d.PersonaID {
			t.Fatal("ground truth mismatch")
		}
	}
}

func TestPersonaFullName(t *testing.T) {
	p := Persona{FirstName: "ada"}
	if got := p.FullName("byron"); got != "ada byron" {
		t.Errorf("FullName = %q", got)
	}
}

func TestTitleHelper(t *testing.T) {
	cases := []struct{ in, want string }{
		{"john smith", "John Smith"},
		{"  spaced  words ", "Spaced Words"},
		{"Already Upper", "Already Upper"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := title(tc.in); got != tc.want {
			t.Errorf("title(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
