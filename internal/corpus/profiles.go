package corpus

import (
	"fmt"

	"repro/internal/stats"
)

// DatasetProfile describes a whole synthetic dataset: names, sizes and
// noise knobs. WWW05Profile and WePSProfile reproduce the two evaluation
// datasets of the paper.
type DatasetProfile struct {
	// Label names the dataset.
	Label string
	// Names are the ambiguous query surnames, one collection each.
	Names []string
	// DocsPerName is the retrieved page count per name.
	DocsPerName int
	// ClusterCounts gives the number of personas per name, parallel to
	// Names.
	ClusterCounts []int
	// Noise, MissingInfo, Spurious and Template are passed to every
	// collection.
	Noise, MissingInfo, Spurious, Template float64
	// ChannelScale weakens all identity channels when below 1 (0 = off).
	ChannelScale float64
}

// WWW05Names are the ambiguous surnames of the synthetic WWW'05 stand-in.
// They mirror the 12 names of Bekkerman & McCallum's dataset.
var WWW05Names = []string{
	"cheyer", "cohen", "hardt", "israel", "kaelbling", "mark",
	"mccallum", "mitchell", "mulford", "ng", "pereira", "voss",
}

// www05ClusterCounts spans the 2-61 range the paper reports for the
// per-name number of real persons.
var www05ClusterCounts = []int{2, 3, 4, 6, 8, 10, 13, 17, 22, 30, 44, 61}

// WWW05Profile is the synthetic stand-in for the WWW'05 dataset: 12
// ambiguous names, ~100 pages each, cluster counts from 2 to 61.
func WWW05Profile() DatasetProfile {
	return DatasetProfile{
		Label:         "www05-synthetic",
		Names:         WWW05Names,
		DocsPerName:   100,
		ClusterCounts: www05ClusterCounts,
		Noise:         0.5,
		MissingInfo:   0.25,
		Spurious:      0.3,
		Template:      0.25,
	}
}

// WePSACLNames are the 10 ACL'08-style names whose scores the paper
// reports from the WePS-2 evaluation.
var WePSACLNames = []string{
	"chen", "kalashnikov", "mehrotra", "aberer", "miklos",
	"yerva", "bekkerman", "garcia", "nguyen", "torres",
}

// wepsOtherNames complete the 30 WePS collections (Wikipedia-style and US
// census-style sources).
var wepsOtherNames = []string{
	// wikipedia-style
	"walker", "king", "wright", "scott", "hill", "green", "adams",
	"nelson", "baker", "hall",
	// census-style
	"rivera", "campbell", "carter", "roberts", "thompson", "white",
	"harris", "sanchez", "clark", "lewis",
}

// WePSProfile is the synthetic stand-in for the WePS-2 clustering task: 30
// ambiguous names (10 ACL-style, 10 Wikipedia-style, 10 census-style), 150
// pages each, noisier and more fragmented than WWW'05 — which is why
// absolute scores are lower, as in the paper.
func WePSProfile() DatasetProfile {
	names := make([]string, 0, 30)
	names = append(names, WePSACLNames...)
	names = append(names, wepsOtherNames...)
	counts := make([]int, len(names))
	// WePS collections are more fragmented: 10-70 entities per name.
	for i := range counts {
		counts[i] = 10 + (i*60)/len(counts)
	}
	return DatasetProfile{
		Label:         "weps-synthetic",
		Names:         names,
		DocsPerName:   150,
		ClusterCounts: counts,
		Noise:         0.9,
		MissingInfo:   0.55,
		Spurious:      0.55,
		Template:      0.45,
		ChannelScale:  0.72,
	}
}

// Generate materializes the profile into a dataset. Each collection draws
// an independent seed split from the root seed, so per-name generation is
// order-independent and reproducible.
func (p DatasetProfile) Generate(seed int64) (*Dataset, error) {
	if len(p.Names) != len(p.ClusterCounts) {
		return nil, fmt.Errorf("corpus: %d names but %d cluster counts", len(p.Names), len(p.ClusterCounts))
	}
	d := &Dataset{Label: p.Label}
	for i, name := range p.Names {
		col, err := GenerateCollection(CollectionConfig{
			Name:         name,
			NumDocs:      p.DocsPerName,
			NumPersonas:  p.ClusterCounts[i],
			Noise:        p.Noise,
			MissingInfo:  p.MissingInfo,
			Spurious:     p.Spurious,
			Template:     p.Template,
			ChannelScale: p.ChannelScale,
			Seed:         stats.SplitSeed(seed, p.Label+"/"+name),
		})
		if err != nil {
			return nil, fmt.Errorf("corpus: generating %q: %w", name, err)
		}
		d.Collections = append(d.Collections, col)
	}
	return d, nil
}

// Subset returns a copy of the dataset restricted to the named collections,
// preserving their order in names. Unknown names are skipped.
func (d *Dataset) Subset(names []string) *Dataset {
	byName := make(map[string]*Collection, len(d.Collections))
	for _, c := range d.Collections {
		byName[c.Name] = c
	}
	out := &Dataset{Label: d.Label + "-subset"}
	for _, n := range names {
		if c, ok := byName[n]; ok {
			out.Collections = append(out.Collections, c)
		}
	}
	return out
}
