package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/stats"
	"repro/internal/wordlists"
)

// CollectionConfig parameterizes the generation of one collection (all
// pages retrieved for one ambiguous name).
type CollectionConfig struct {
	// Name is the ambiguous query surname.
	Name string
	// NumDocs is the number of retrieved pages (WWW'05 used ~100, WePS-2
	// used ~150).
	NumDocs int
	// NumPersonas is the number of distinct real persons behind the name.
	NumPersonas int
	// Noise in [0,1] scales how much boilerplate dilutes the pages.
	Noise float64
	// MissingInfo in [0,1] is the probability that a page drops an entire
	// feature channel (the paper's "partial or incomplete information").
	MissingInfo float64
	// Spurious in [0,1] is the probability of injecting misleading
	// entities into a page (extraction noise / off-topic mentions).
	Spurious float64
	// ChannelScale multiplies every sampled channel informativeness;
	// values below 1 weaken all identity signals uniformly, making the
	// dataset harder (the WePS profile uses it — real WePS-2 pages are
	// markedly harder than the WWW'05 crawl). Zero means 1 (no scaling).
	ChannelScale float64
	// Template in [0,1] is the probability that a page is rendered from
	// the collection's shared site template (directory/mirror pages).
	// Template pages share large identical text blocks and a few "site
	// sponsor" organizations and "site editor" person names, giving
	// cross-persona pairs deceptively high TF-IDF and overlap similarity
	// in a specific high band — the non-monotone structure that region-
	// based accuracy estimation exploits and a single threshold cannot.
	Template float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateCollection builds one synthetic collection. Persona attributes,
// per-collection channel informativeness and per-page quality are all drawn
// from the seeded RNG, so equal configs produce identical collections.
func GenerateCollection(cfg CollectionConfig) (*Collection, error) {
	if cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: NumDocs = %d", cfg.NumDocs)
	}
	if cfg.NumPersonas <= 0 || cfg.NumPersonas > cfg.NumDocs {
		return nil, fmt.Errorf("corpus: NumPersonas = %d with %d docs", cfg.NumPersonas, cfg.NumDocs)
	}
	rng := stats.NewRNG(cfg.Seed)

	channels := sampleChannels(rng)
	if cfg.ChannelScale > 0 {
		channels.URL *= cfg.ChannelScale
		channels.Topic *= cfg.ChannelScale
		channels.Orgs *= cfg.ChannelScale
		channels.Persons *= cfg.ChannelScale
		channels.Names *= cfg.ChannelScale
	}
	usedFirst := make(map[string]bool)
	personas := make([]Persona, cfg.NumPersonas)
	for i := range personas {
		personas[i] = newPersona(rng, i, cfg.Name, usedFirst)
	}

	sizes := clusterSizes(rng, cfg.NumDocs, cfg.NumPersonas)
	col := &Collection{Name: cfg.Name, NumPersonas: cfg.NumPersonas}
	g := &pageGenerator{rng: rng, cfg: cfg, channels: channels}
	g.template = buildSiteTemplate(rng)
	for pid, size := range sizes {
		for j := 0; j < size; j++ {
			doc := g.page(&personas[pid], len(col.Docs), j)
			col.Docs = append(col.Docs, doc)
		}
	}
	// Shuffle document order (crawl order carries no cluster signal), then
	// re-assign dense IDs.
	rng.Shuffle(len(col.Docs), func(i, j int) { col.Docs[i], col.Docs[j] = col.Docs[j], col.Docs[i] })
	for i := range col.Docs {
		col.Docs[i].ID = i
	}
	return col, nil
}

// clusterSizes splits n documents over k personas with a Zipf-skewed
// distribution (a dominant person plus a long tail, the shape observed in
// web people-search data), guaranteeing each persona at least one page.
func clusterSizes(rng *rand.Rand, n, k int) []int {
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = 1
	}
	remaining := n - k
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1.0 / float64(i+1) // Zipf s=1 over persona rank
	}
	for r := 0; r < remaining; r++ {
		sizes[stats.WeightedChoice(rng, weights)]++
	}
	return sizes
}

// pageGenerator builds page text and URLs for one collection.
type pageGenerator struct {
	rng      *rand.Rand
	cfg      CollectionConfig
	channels ChannelInformativeness
	template []string
}

// buildSiteTemplate assembles the collection's shared page chrome: a block
// of navigation-style sentences plus a few sponsor organizations and site
// editors that appear verbatim on every template page.
func buildSiteTemplate(rng *rand.Rand) []string {
	pick := func() string {
		return wordlists.BoilerplateWords[rng.Intn(len(wordlists.BoilerplateWords))]
	}
	n := 8 + rng.Intn(6)
	out := make([]string, 0, n+4)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			out = append(out, fmt.Sprintf("Visit the %s %s and %s sections.", pick(), pick(), pick()))
		case 1:
			out = append(out, fmt.Sprintf("Browse %s, %s, %s and %s here.", pick(), pick(), pick(), pick()))
		default:
			out = append(out, fmt.Sprintf("The %s and %s pages are updated weekly.", pick(), pick()))
		}
	}
	// Site sponsors and editors: deceptive overlap for F5 and F6.
	for i := 0; i < 2; i++ {
		org := wordlists.Organizations[rng.Intn(len(wordlists.Organizations))]
		out = append(out, fmt.Sprintf("This site is sponsored by %s.", title(org)))
	}
	first := wordlists.FirstNames[rng.Intn(len(wordlists.FirstNames))]
	last := wordlists.Surnames[rng.Intn(len(wordlists.Surnames))]
	out = append(out, fmt.Sprintf("Site maintained by editor %s.", title(first+" "+last)))
	return out
}

// page generates the j-th page of a persona.
func (g *pageGenerator) page(p *Persona, docID, j int) Document {
	// Per-page quality models how much information a page exposes; low
	// quality pages are the "partial or incomplete information" case.
	q := 0.3 + 0.7*g.rng.Float64()

	var sentences []string
	add := func(s string) { sentences = append(sentences, s) }

	// --- Name mentions (channels: Names) ---
	fullNameProb := g.channels.Names * q
	mentions := 1 + g.rng.Intn(3)
	for m := 0; m < mentions; m++ {
		name := title(g.cfg.Name)
		if g.rng.Float64() < fullNameProb {
			name = title(p.FullName(g.cfg.Name))
		}
		add(g.nameSentence(name, p))
	}

	// --- Topical content (channels: Topic) ---
	topicSentences := int(q * g.channels.Topic * 7)
	for m := 0; m < topicSentences; m++ {
		topic := p.Topic
		if p.SecondaryTopic != "" && g.rng.Float64() < 0.3 {
			topic = p.SecondaryTopic
		}
		add(g.topicSentence(topic))
	}
	// Concept label mention: strong explicit signal, present on good pages.
	if topicSentences > 0 && g.rng.Float64() < q*g.channels.Topic {
		concepts := wordlists.Concepts[p.Topic]
		add("See also: " + concepts[g.rng.Intn(len(concepts))] + ".")
	}

	// --- Affiliations (channels: Orgs) ---
	if g.rng.Float64() >= g.cfg.MissingInfo {
		for _, org := range p.Organizations {
			if g.rng.Float64() < q*g.channels.Orgs {
				add(g.orgSentence(title(g.cfg.Name), org))
			}
		}
	}

	// --- Associates (channels: Persons) ---
	if g.rng.Float64() >= g.cfg.MissingInfo {
		for _, assoc := range p.Associates {
			if g.rng.Float64() < q*g.channels.Persons {
				add(g.assocSentence(title(g.cfg.Name), title(assoc)))
			}
		}
	}
	// Some pages feature an associate more prominently than the queried
	// person (event reports, co-author pages), so the most frequent name
	// on the page is not always the query name — the reason F3 carries
	// very different signal on different pages.
	if len(p.Associates) > 0 && g.rng.Float64() < 0.25 {
		star := title(p.Associates[g.rng.Intn(len(p.Associates))])
		extra := 2 + g.rng.Intn(3)
		for m := 0; m < extra; m++ {
			add(g.assocSentence(star, title(g.cfg.Name)))
		}
	}

	// --- Location ---
	if g.rng.Float64() < q*0.6 {
		add(fmt.Sprintf("Based in %s.", title(p.Location)))
	}

	// --- Spurious entities: extraction noise and off-topic mentions ---
	if g.rng.Float64() < g.cfg.Spurious {
		org := wordlists.Organizations[g.rng.Intn(len(wordlists.Organizations))]
		add(fmt.Sprintf("Sponsored content from %s.", title(org)))
	}
	if g.rng.Float64() < g.cfg.Spurious {
		first := wordlists.FirstNames[g.rng.Intn(len(wordlists.FirstNames))]
		last := wordlists.Surnames[g.rng.Intn(len(wordlists.Surnames))]
		add(fmt.Sprintf("In other news, %s commented on the story.",
			title(first+" "+last)))
	}
	if g.rng.Float64() < g.cfg.Spurious {
		topic := wordlists.TopicNames[g.rng.Intn(len(wordlists.TopicNames))]
		add(g.topicSentence(topic))
	}

	// --- Boilerplate filler diluting the signal ---
	fillers := int((1 - q) * g.cfg.Noise * 8)
	for m := 0; m < fillers; m++ {
		add(wordlists.FillerSentences[g.rng.Intn(len(wordlists.FillerSentences))])
	}

	// --- Shared site template (mirror/directory chrome) ---
	// Template pages carry the collection's verbatim chrome block, so any
	// two of them look near-identical to TF-IDF measures regardless of
	// which person they are about.
	if g.rng.Float64() < g.cfg.Template {
		sentences = append(sentences, g.template...)
	}

	// Shuffle sentence order; web pages have no canonical layout.
	g.rng.Shuffle(len(sentences), func(i, k int) {
		sentences[i], sentences[k] = sentences[k], sentences[i]
	})

	return Document{
		ID:        docID,
		URL:       g.pageURL(p, docID, j, q),
		Text:      strings.Join(sentences, " "),
		PersonaID: p.ID,
	}
}

func (g *pageGenerator) pageURL(p *Persona, docID, j int, q float64) string {
	if g.rng.Float64() < g.channels.URL*q {
		return fmt.Sprintf("http://%s/%s/page%d.html", p.HomeDomain, p.Slug, j)
	}
	domain := wordlists.Domains[g.rng.Intn(len(wordlists.Domains))]
	return fmt.Sprintf("http://%s/articles/item%d.html", domain, docID)
}

func (g *pageGenerator) nameSentence(name string, p *Persona) string {
	words := wordlists.TopicWords[p.Topic]
	w := words[g.rng.Intn(len(words))]
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s has been involved with %s for many years.", name, w)
	case 1:
		return fmt.Sprintf("The page of %s covers %s topics.", name, w)
	case 2:
		return fmt.Sprintf("%s announced an update regarding %s.", name, w)
	default:
		return fmt.Sprintf("About %s: interests include %s.", name, w)
	}
}

func (g *pageGenerator) topicSentence(topic string) string {
	words := wordlists.TopicWords[topic]
	pick := func() string { return words[g.rng.Intn(len(words))] }
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("The %s of %s remains a central challenge in %s.", pick(), pick(), pick())
	case 1:
		return fmt.Sprintf("Recent work on %s combines %s with %s.", pick(), pick(), pick())
	case 2:
		return fmt.Sprintf("A practical guide to %s and %s.", pick(), pick())
	default:
		return fmt.Sprintf("Notes about %s, %s, and %s appear below.", pick(), pick(), pick())
	}
}

func (g *pageGenerator) orgSentence(name, org string) string {
	org = title(org)
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s works at %s.", name, org)
	case 1:
		return fmt.Sprintf("%s is affiliated with %s.", name, org)
	default:
		return fmt.Sprintf("Before that, %s spent several years at %s.", name, org)
	}
}

func (g *pageGenerator) assocSentence(name, assoc string) string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s collaborates closely with %s.", name, assoc)
	case 1:
		return fmt.Sprintf("%s and %s appeared together at the meeting.", name, assoc)
	default:
		return fmt.Sprintf("Contact %s or %s for details.", name, assoc)
	}
}

// title upper-cases the first letter of each space-separated word; a local
// replacement for the deprecated strings.Title adequate for ASCII names.
func title(s string) string {
	parts := strings.Fields(s)
	for i, p := range parts {
		if p == "" {
			continue
		}
		if p[0] >= 'a' && p[0] <= 'z' {
			parts[i] = string(p[0]-32) + p[1:]
		}
	}
	return strings.Join(parts, " ")
}
