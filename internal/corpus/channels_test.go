package corpus

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSampleChannelsAlwaysHasStrongChannel(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := stats.NewRNG(seed)
		c := sampleChannels(rng)
		max := c.URL
		for _, v := range []float64{c.Topic, c.Orgs, c.Persons, c.Names} {
			if v > max {
				max = v
			}
		}
		if max < 0.85 {
			t.Fatalf("seed %d: no strong channel (max %v)", seed, max)
		}
		for _, v := range []float64{c.URL, c.Topic, c.Orgs, c.Persons, c.Names} {
			if v < 0 || v > 1 {
				t.Fatalf("seed %d: channel out of range: %v", seed, v)
			}
		}
	}
}

func TestChannelScaleWeakensSignals(t *testing.T) {
	base := CollectionConfig{
		Name: "walker", NumDocs: 60, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 9,
	}
	scaled := base
	scaled.ChannelScale = 0.3

	colBase, err := GenerateCollection(base)
	if err != nil {
		t.Fatal(err)
	}
	colScaled, err := GenerateCollection(scaled)
	if err != nil {
		t.Fatal(err)
	}
	// Weaker channels → fewer organization mentions and shorter topical
	// content overall. Compare total text volume carrying signal words.
	baseLen, scaledLen := 0, 0
	for i := range colBase.Docs {
		baseLen += len(colBase.Docs[i].Text)
		scaledLen += len(colScaled.Docs[i].Text)
	}
	if scaledLen >= baseLen {
		t.Errorf("scaled collection should carry less content: %d >= %d", scaledLen, baseLen)
	}
}

func TestTemplatePagesShareText(t *testing.T) {
	col, err := GenerateCollection(CollectionConfig{
		Name: "scott", NumDocs: 60, NumPersonas: 4,
		Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Template: 1.0, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With Template=1 every page carries the chrome block; a distinctive
	// chrome sentence must appear on (nearly) all pages.
	// Find a sentence present on page 0 that contains a boilerplate marker.
	var marker string
	for _, s := range strings.Split(col.Docs[0].Text, ". ") {
		if strings.Contains(s, "sponsored by") {
			marker = s
			break
		}
	}
	if marker == "" {
		t.Fatal("no template marker found on page 0")
	}
	count := 0
	for _, d := range col.Docs {
		if strings.Contains(d.Text, marker) {
			count++
		}
	}
	if count < len(col.Docs)*9/10 {
		t.Errorf("template marker on %d/%d pages, want nearly all", count, len(col.Docs))
	}
}

func TestTemplateZeroMeansNoSharedChrome(t *testing.T) {
	col, err := GenerateCollection(CollectionConfig{
		Name: "hill", NumDocs: 40, NumPersonas: 4,
		Noise: 0.3, MissingInfo: 0.2, Spurious: 0.2, Template: 0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range col.Docs {
		if strings.Contains(d.Text, "sponsored by") {
			t.Fatalf("template content leaked with Template=0: %q", d.Text)
		}
	}
}
