// Package blockindex maintains resolution-block membership incrementally:
// a sharded (hash-partitioned by normalized key) key→posting index plus a
// growing union-find over key-connected components, updated as ingest
// batches arrive instead of rebuilt per run.
//
// For the key-based blocking schemes (blocking.KeyedScheme: exact-key and
// token blocking) a candidate pair exists exactly when two documents share
// a derived index key, so appending a document only ever links it to the
// existing members of its keys' postings — components can only merge,
// never split, under the store's append-only contract. That makes the
// Block stage O(delta): Update keys and hashes only the new documents
// (in parallel), appends postings per shard (in parallel), applies the
// resulting union edges, and recomputes membership fingerprints only for
// the components the delta touched. Everything else — the clean blocks'
// sorted member lists and fingerprints — is served from the per-component
// cache.
//
// The index is safe for concurrent use; the pipeline's IndexBlocker wraps
// it behind the Blocker interfaces, and internal/persist journals its
// encoded form so a restarted server does not re-block the corpus.
package blockindex

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
)

// DocRef locates one ingested document by its position in the ingest: the
// collection's index and the document's index within it. Both are stable
// under append-only ingestion, which is what lets cached member lists
// survive across Update calls. (pipeline.DocRef is an alias of this type.)
type DocRef struct {
	Col, Doc int
}

// KeyFunc derives the blocking keys of one document, before the scheme's
// IndexKeys normalization. It must be pure: the index calls it exactly
// once per document, at indexing time, and assumes the answer never
// changes. (pipeline.KeyFunc converts to this type.)
type KeyFunc func(col *corpus.Collection, doc corpus.Document) []string

// DefaultShards is the shard count when Config.Shards is not positive.
const DefaultShards = 16

// ErrOutOfSync reports that the collections handed to Update contradict
// what the index has already indexed: a collection renamed, removed or
// shrunk. The index leans on the store's append-only contract; a corpus
// that mutated under it cannot be incrementally maintained.
var ErrOutOfSync = errors.New("blockindex: corpus is out of sync with the index (append-only contract violated)")

// Config assembles an Index.
type Config struct {
	// Scheme derives each document's index keys; required.
	Scheme blocking.KeyedScheme
	// Keys derives each document's raw blocking keys; nil keys a document
	// by its collection's name (the paper's scheme).
	Keys KeyFunc
	// Shards is the number of hash partitions of the key space; values < 1
	// select DefaultShards.
	Shards int
	// Workers bounds the delta-keying and fingerprint worker pools; values
	// < 1 select GOMAXPROCS.
	Workers int
}

// CollectionNameKey is the default KeyFunc: one key, the collection name.
func CollectionNameKey(col *corpus.Collection, _ corpus.Document) []string {
	return []string{col.Name}
}

// UpdateStats reports what one Update did.
type UpdateStats struct {
	// DeltaDocs is the number of newly indexed documents.
	DeltaDocs int
	// IndexedDocs is the total number of documents in the index after the
	// update.
	IndexedDocs int
	// DirtyBlocks is the number of blocks whose membership changed in this
	// update: components that gained a document or merged.
	DirtyBlocks int
	// Blocks is the total number of blocks after the update.
	Blocks int
	// Keys is the total number of distinct index keys across all shards.
	Keys int
	// Shards is the shard count.
	Shards int
}

// shard is one hash partition of the key space. Each shard is touched by
// exactly one worker per Update, so postings need no locking.
type shard struct {
	postings map[string][]int32
}

// colState tracks how much of one collection is indexed.
type colState struct {
	name    string
	indexed int
}

// docState is one indexed document: its stable position and its content
// hash (blocking.DocHash), computed once at indexing time.
type docState struct {
	ref  DocRef
	hash uint64
}

// blockEntry caches one component's derived state: member refs sorted by
// (Col, Doc) — the order the pipeline assembles blocks in — and the
// membership fingerprint over the members' content hashes in that order.
// Entries are invalidated when their component changes and rebuilt lazily.
type blockEntry struct {
	refs []DocRef
	fp   uint64
}

// Index is the sharded incremental blocking index. All methods are safe
// for concurrent use.
type Index struct {
	mu      sync.Mutex
	scheme  blocking.KeyedScheme
	keys    KeyFunc
	workers int

	shards   []shard
	keyCount int

	cols    []colState
	docs    []docState
	uf      *ergraph.UnionFind
	members [][]int32 // element → member ids while a root, nil otherwise
	blocks  map[int32]*blockEntry

	version uint64
}

// New assembles an empty index.
func New(cfg Config) (*Index, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("blockindex: config has no keyed scheme")
	}
	if v, ok := cfg.Scheme.(blocking.Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Keys == nil {
		cfg.Keys = CollectionNameKey
	}
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	x := &Index{
		scheme:  cfg.Scheme,
		keys:    cfg.Keys,
		workers: cfg.Workers,
		shards:  make([]shard, cfg.Shards),
		uf:      ergraph.NewUnionFind(0),
		blocks:  make(map[int32]*blockEntry),
	}
	for i := range x.shards {
		x.shards[i].postings = make(map[string][]int32)
	}
	return x, nil
}

// shardOf hash-partitions one index key.
func (x *Index) shardOf(key string) int {
	return int(blocking.HashKey(key) % uint64(len(x.shards)))
}

// Version counts indexed documents; it increases exactly when the index
// changes, so equal versions mean equal indexes (for one configuration).
func (x *Index) Version() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.version
}

// Update indexes every document of cols not yet indexed and returns what
// changed. cols must be the same append-only corpus the index has seen so
// far (same collection order and names, each collection at least as long
// as before), typically a store snapshot; anything else is ErrOutOfSync.
func (x *Index) Update(cols []*corpus.Collection) (UpdateStats, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.update(cols)
}

func (x *Index) update(cols []*corpus.Collection) (UpdateStats, error) {
	if len(cols) < len(x.cols) {
		return UpdateStats{}, fmt.Errorf("%w: %d collections indexed, %d offered",
			ErrOutOfSync, len(x.cols), len(cols))
	}
	for i := range cols {
		if cols[i] == nil {
			return UpdateStats{}, fmt.Errorf("blockindex: nil collection at %d", i)
		}
		if i < len(x.cols) {
			if cols[i].Name != x.cols[i].name {
				return UpdateStats{}, fmt.Errorf("%w: collection %d is %q, index has %q",
					ErrOutOfSync, i, cols[i].Name, x.cols[i].name)
			}
			if len(cols[i].Docs) < x.cols[i].indexed {
				return UpdateStats{}, fmt.Errorf("%w: collection %q shrank from %d to %d documents",
					ErrOutOfSync, cols[i].Name, x.cols[i].indexed, len(cols[i].Docs))
			}
		}
	}

	// Gather the delta in ingest order.
	type newDoc struct {
		id   int32
		ref  DocRef
		keys []string
		hash uint64
	}
	var delta []newDoc
	for ci, col := range cols {
		start := 0
		if ci < len(x.cols) {
			start = x.cols[ci].indexed
		}
		for di := start; di < len(col.Docs); di++ {
			delta = append(delta, newDoc{ref: DocRef{Col: ci, Doc: di}})
		}
	}

	stats := UpdateStats{Shards: len(x.shards)}
	if len(delta) > 0 {
		// Key and hash the new documents in parallel — with rich key
		// functions (extracted person names) this is the expensive part,
		// and it is paid once per document here, never again per run.
		x.parallel(len(delta), func(i int) {
			d := &delta[i]
			col := cols[d.ref.Col]
			doc := col.Docs[d.ref.Doc]
			d.keys = x.scheme.IndexKeys(x.keys(col, doc))
			d.hash = blocking.DocHash(col.Name, d.ref.Doc, doc.URL, doc.Text, doc.PersonaID)
		})

		// Grow the union-find and assign stable internal IDs.
		for i := range delta {
			id := int32(x.uf.Add())
			delta[i].id = id
			x.docs = append(x.docs, docState{ref: delta[i].ref, hash: delta[i].hash})
			x.members = append(x.members, []int32{id})
		}

		// Partition the delta's (key, doc) pairs by shard, then let one
		// worker per touched shard append postings and emit union edges —
		// shard-disjoint maps make this safe without locks.
		type kv struct {
			key string
			id  int32
		}
		type edge struct {
			a, b int32
		}
		buckets := make([][]kv, len(x.shards))
		for _, d := range delta {
			for _, k := range d.keys {
				s := x.shardOf(k)
				buckets[s] = append(buckets[s], kv{key: k, id: d.id})
			}
		}
		edgesPer := make([][]edge, len(x.shards))
		newKeys := make([]int, len(x.shards))
		x.parallel(len(x.shards), func(s int) {
			postings := x.shards[s].postings
			for _, item := range buckets[s] {
				p := postings[item.key]
				if len(p) == 0 {
					newKeys[s]++
				} else {
					edgesPer[s] = append(edgesPer[s], edge{a: p[0], b: item.id})
				}
				postings[item.key] = append(p, item.id)
			}
		})

		// Apply the union edges. Every edge links a new document to an
		// existing posting member, so every dirty component contains at
		// least one new document — the dirty set is exactly the components
		// of the delta.
		for s := range edgesPer {
			for _, e := range edgesPer[s] {
				root, absorbed, merged := x.uf.Merge(int(e.a), int(e.b))
				if merged {
					x.members[root] = append(x.members[root], x.members[absorbed]...)
					x.members[absorbed] = nil
					delete(x.blocks, int32(root))
					delete(x.blocks, int32(absorbed))
				}
			}
		}
		dirty := make(map[int]bool)
		for _, d := range delta {
			root := x.uf.Find(int(d.id))
			dirty[root] = true
			delete(x.blocks, int32(root))
		}
		for _, n := range newKeys {
			x.keyCount += n
		}
		stats.DirtyBlocks = len(dirty)
	}

	// Record the new high-water marks.
	for ci, col := range cols {
		if ci < len(x.cols) {
			x.cols[ci].indexed = len(col.Docs)
		} else {
			x.cols = append(x.cols, colState{name: col.Name, indexed: len(col.Docs)})
		}
	}
	x.version += uint64(len(delta))

	stats.DeltaDocs = len(delta)
	stats.IndexedDocs = len(x.docs)
	stats.Blocks = x.uf.Sets()
	stats.Keys = x.keyCount
	return stats, nil
}

// Membership returns every block's member refs and membership fingerprint,
// in block order: blocks ordered by their smallest member's (Col, Doc)
// position, members ascending the same way — exactly the order a full
// SchemeBlocker pass produces. Only components the last Update dirtied are
// re-sorted and re-hashed (in parallel); the rest come from the cache. The
// returned slices are shared with the cache and must not be mutated.
//
// Callers that need the membership OF a particular corpus must use
// UpdateMembership instead: between a separate Update and Membership a
// concurrent updater can advance the index past the caller's corpus,
// yielding refs that point beyond it.
func (x *Index) Membership() ([][]DocRef, []uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.membership()
}

// UpdateMembership indexes cols' delta and returns the resulting block
// membership as one atomic operation, so the returned refs are guaranteed
// to lie within cols even when concurrent updaters (a background warmer,
// another configuration sharing the index) are advancing the index. A
// corpus the incremental state cannot serve — already overtaken by a newer
// snapshot — returns ErrOutOfSync exactly like Update.
func (x *Index) UpdateMembership(cols []*corpus.Collection) (UpdateStats, [][]DocRef, []uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	stats, err := x.update(cols)
	if err != nil {
		return stats, nil, nil, err
	}
	refs, fps := x.membership()
	return stats, refs, fps, nil
}

// membership materializes the block order; callers hold x.mu.
func (x *Index) membership() ([][]DocRef, []uint64) {
	entries := x.entries()
	refs := make([][]DocRef, len(entries))
	fps := make([]uint64, len(entries))
	for i, e := range entries {
		refs[i] = e.refs
		fps[i] = e.fp
	}
	return refs, fps
}

// MembershipOf computes the membership and fingerprints of an arbitrary
// corpus under this index's configuration without touching the index's
// state — a one-off full pass through a throwaway index. It is the
// fallback for corpora the incremental state cannot serve: a snapshot
// older than what the index has already seen (two configurations sharing
// one index can observe the store in different orders).
func (x *Index) MembershipOf(cols []*corpus.Collection) ([][]DocRef, []uint64, error) {
	x.mu.Lock()
	cfg := Config{Scheme: x.scheme, Keys: x.keys, Shards: len(x.shards), Workers: x.workers}
	x.mu.Unlock()
	tmp, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := tmp.Update(cols); err != nil {
		return nil, nil, err
	}
	refs, fps := tmp.Membership()
	return refs, fps, nil
}

// entries materializes the block cache for every live component and
// returns the entries in block order. Callers hold x.mu.
func (x *Index) entries() []*blockEntry {
	var missing []int32
	roots := make([]int32, 0, x.uf.Sets())
	for id := range x.members {
		if x.members[id] == nil {
			continue
		}
		root := int32(id)
		roots = append(roots, root)
		if _, ok := x.blocks[root]; !ok {
			missing = append(missing, root)
		}
	}

	built := make([]*blockEntry, len(missing))
	x.parallel(len(missing), func(i int) {
		built[i] = x.buildEntry(missing[i])
	})
	for i, root := range missing {
		x.blocks[root] = built[i]
	}

	entries := make([]*blockEntry, len(roots))
	for i, root := range roots {
		entries[i] = x.blocks[root]
	}
	sort.Slice(entries, func(i, j int) bool {
		return refLess(entries[i].refs[0], entries[j].refs[0])
	})
	return entries
}

// buildEntry sorts one component's members by position and folds their
// content hashes into the membership fingerprint. Reads only immutable
// per-doc state, so it is safe to run in parallel for disjoint roots.
func (x *Index) buildEntry(root int32) *blockEntry {
	ids := x.members[root]
	refs := make([]DocRef, len(ids))
	order := make([]int32, len(ids))
	copy(order, ids)
	sort.Slice(order, func(i, j int) bool {
		return refLess(x.docs[order[i]].ref, x.docs[order[j]].ref)
	})
	hashes := make([]uint64, len(order))
	for i, id := range order {
		refs[i] = x.docs[id].ref
		hashes[i] = x.docs[id].hash
	}
	return &blockEntry{refs: refs, fp: blocking.CombineIDs(hashes)}
}

// refLess orders refs by (Col, Doc) — flattened ingest order.
func refLess(a, b DocRef) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.Doc < b.Doc
}

// parallel runs fn(0..n-1) over the index's worker pool.
func (x *Index) parallel(n int, fn func(i int)) {
	Parallel(x.workers, n, fn)
}

// Workers returns the index's worker-pool bound, fixed at construction.
func (x *Index) Workers() int { return x.workers }

// Parallel runs fn(0..n-1) over a pool of at most workers goroutines;
// small inputs run inline. It is the shared fan-out primitive of the
// index's delta keying, fingerprinting, and the pipeline's block
// assembly.
//
// erlint:ignore CPU-bound fan-out that always joins before returning; callers bound it by cancelling the work fed to fn
func Parallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if n < 2 || workers < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Stats describes the index's current shape.
type Stats struct {
	// Docs is the number of indexed documents.
	Docs int `json:"docs"`
	// Collections is the number of indexed collections.
	Collections int `json:"collections"`
	// Keys is the number of distinct index keys.
	Keys int `json:"keys"`
	// Blocks is the number of key-connected components.
	Blocks int `json:"blocks"`
	// ShardKeys is the number of keys per shard — the balance of the hash
	// partitioning.
	ShardKeys []int `json:"shard_keys"`
	// Version counts indexed documents.
	Version uint64 `json:"version"`
}

// Stats reports the index's current shape.
func (x *Index) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := Stats{
		Docs:        len(x.docs),
		Collections: len(x.cols),
		Keys:        x.keyCount,
		Blocks:      x.uf.Sets(),
		ShardKeys:   make([]int, len(x.shards)),
		Version:     x.version,
	}
	for i := range x.shards {
		st.ShardKeys[i] = len(x.shards[i].postings)
	}
	return st
}
