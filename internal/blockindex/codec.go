package blockindex

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// indexMagic heads every encoded index; the digit is the format version.
const indexMagic = "ERIDX001"

// ErrCodecVersion reports an encoded index from an unsupported format
// version; ErrCodecCorrupt reports structural damage. Callers treat both
// as "no usable index": correctness never depends on the encoded form —
// the index rebuilds from the corpus — only the restart head-start does.
var (
	ErrCodecVersion = errors.New("blockindex: unsupported index format version")
	ErrCodecCorrupt = errors.New("blockindex: encoded index is corrupt")
)

// crcTable is the Castagnoli table, matching the persist layer's journal.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodedIndex is the gob payload: the primary state only — postings,
// document refs and hashes, collection high-water marks. Derived state
// (union-find, member lists, fingerprints) is rebuilt on decode from the
// postings, which is cheap next to re-running key extraction over the
// corpus.
type encodedIndex struct {
	Shards   int
	Cols     []encodedCol
	Refs     []DocRef
	Hashes   []uint64
	Postings []map[string][]int32
}

type encodedCol struct {
	Name    string
	Indexed int
}

// EncodeTo writes the index in its versioned, checksummed wire form and
// returns the version (document count) the encoding reflects — what
// callers compare against Version() to skip redundant saves.
func (x *Index) EncodeTo(w io.Writer) (uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()

	enc := encodedIndex{
		Shards:   len(x.shards),
		Cols:     make([]encodedCol, len(x.cols)),
		Refs:     make([]DocRef, len(x.docs)),
		Hashes:   make([]uint64, len(x.docs)),
		Postings: make([]map[string][]int32, len(x.shards)),
	}
	for i, cs := range x.cols {
		enc.Cols[i] = encodedCol{Name: cs.name, Indexed: cs.indexed}
	}
	for i, d := range x.docs {
		enc.Refs[i] = d.ref
		enc.Hashes[i] = d.hash
	}
	for i := range x.shards {
		enc.Postings[i] = x.shards[i].postings
	}

	if _, err := io.WriteString(w, indexMagic); err != nil {
		return 0, fmt.Errorf("blockindex: writing header: %w", err)
	}
	crc := crc32.New(crcTable)
	if err := gob.NewEncoder(io.MultiWriter(w, crc)).Encode(enc); err != nil {
		return 0, fmt.Errorf("blockindex: encoding index: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return 0, fmt.Errorf("blockindex: writing checksum: %w", err)
	}
	return x.version, nil
}

// Decode reads an index written by EncodeTo and rebuilds it under cfg,
// which must describe the same configuration (scheme, key function, shard
// count) that produced it — the index records only the shard count, so the
// caller's storage key must carry the rest. A shard-count mismatch is an
// error: the persisted partitioning no longer matches the requested one,
// and the caller should rebuild from the corpus instead.
func Decode(r io.Reader, cfg Config) (*Index, error) {
	header := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCodecCorrupt, err)
	}
	if string(header) != indexMagic {
		if string(header[:5]) == indexMagic[:5] {
			return nil, fmt.Errorf("%w: %q", ErrCodecVersion, header)
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodecCorrupt, header)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCodecCorrupt, err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: payload shorter than its checksum", ErrCodecCorrupt)
	}
	payload, sum := body[:len(body)-4], binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, trailer declares %08x", ErrCodecCorrupt, got, sum)
	}
	var enc encodedIndex
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodecCorrupt, err)
	}

	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if enc.Shards != cfg.Shards {
		return nil, fmt.Errorf("blockindex: encoded index has %d shards, configuration wants %d; rebuild from the corpus",
			enc.Shards, cfg.Shards)
	}
	if len(enc.Refs) != len(enc.Hashes) {
		return nil, fmt.Errorf("%w: %d refs but %d hashes", ErrCodecCorrupt, len(enc.Refs), len(enc.Hashes))
	}
	if len(enc.Postings) != enc.Shards {
		return nil, fmt.Errorf("%w: %d posting shards, header declares %d", ErrCodecCorrupt, len(enc.Postings), enc.Shards)
	}

	x, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range enc.Cols {
		x.cols = append(x.cols, colState{name: c.Name, indexed: c.Indexed})
	}
	for i := range enc.Refs {
		id := int32(x.uf.Add())
		x.docs = append(x.docs, docState{ref: enc.Refs[i], hash: enc.Hashes[i]})
		x.members = append(x.members, []int32{id})
	}
	n := int32(len(x.docs))
	for s := range enc.Postings {
		postings := enc.Postings[s]
		if postings == nil {
			postings = make(map[string][]int32)
		}
		for key, ids := range postings {
			for _, id := range ids {
				if id < 0 || id >= n {
					return nil, fmt.Errorf("%w: posting %q references document %d of %d", ErrCodecCorrupt, key, id, n)
				}
			}
			// Re-link the posting's component: every member unions with
			// the first, reproducing the star the live path built.
			for _, id := range ids[1:] {
				root, absorbed, merged := x.uf.Merge(int(ids[0]), int(id))
				if merged {
					x.members[root] = append(x.members[root], x.members[absorbed]...)
					x.members[absorbed] = nil
				}
			}
			x.keyCount++
		}
		x.shards[s].postings = postings
	}
	x.version = uint64(len(x.docs))
	return x, nil
}
