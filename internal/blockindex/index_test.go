package blockindex

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
)

// doc builds a test document at position id with the given text.
func doc(id int, text string) corpus.Document {
	return corpus.Document{ID: id, URL: fmt.Sprintf("http://example.com/%d", id), Text: text, PersonaID: 0}
}

// namedCols builds collections keyed (by default) by their names.
func namedCols(names ...string) []*corpus.Collection {
	out := make([]*corpus.Collection, len(names))
	for i, name := range names {
		out[i] = &corpus.Collection{Name: name, NumPersonas: 1,
			Docs: []corpus.Document{doc(0, "page about "+name)}}
	}
	return out
}

// schemeMembership computes the reference block membership the way
// SchemeBlocker does: full candidate generation plus a fresh union-find.
func schemeMembership(scheme blocking.Scheme, keys KeyFunc, cols []*corpus.Collection) [][]DocRef {
	var refs []DocRef
	var records []blocking.Record
	for ci, col := range cols {
		for di := range col.Docs {
			records = append(records, blocking.Record{ID: len(refs), Keys: keys(col, col.Docs[di])})
			refs = append(refs, DocRef{Col: ci, Doc: di})
		}
	}
	uf := ergraph.NewUnionFind(len(refs))
	for _, p := range scheme.Candidates(records) {
		uf.Union(p.A, p.B)
	}
	comp := make(map[int]int)
	var members [][]DocRef
	for i := range refs {
		root := uf.Find(i)
		slot, ok := comp[root]
		if !ok {
			slot = len(members)
			comp[root] = slot
			members = append(members, nil)
		}
		members[slot] = append(members[slot], refs[i])
	}
	return members
}

func TestIndexMatchesSchemeAcrossBatches(t *testing.T) {
	// Three collections whose documents share tokens across collections
	// under token blocking but not under exact-key blocking.
	full := []*corpus.Collection{
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "a"), doc(1, "b"), doc(2, "c"), doc(3, "d"),
		}},
		{Name: "mary jones", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "e"), doc(1, "f"), doc(2, "g"),
		}},
		{Name: "j smith", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "h"), doc(1, "i"),
		}},
	}
	prefix := func(counts ...int) []*corpus.Collection {
		out := make([]*corpus.Collection, 0, len(counts))
		for i, n := range counts {
			if n < 0 {
				continue
			}
			out = append(out, &corpus.Collection{Name: full[i].Name, NumPersonas: 1, Docs: full[i].Docs[:n]})
		}
		return out
	}
	batches := [][]*corpus.Collection{
		prefix(2, -1, -1),
		prefix(3, 1, -1),
		prefix(3, 3, 1),
		prefix(4, 3, 2),
	}

	for _, scheme := range []blocking.KeyedScheme{blocking.ExactKey{}, blocking.TokenBlocking{}} {
		t.Run(fmt.Sprintf("%T", scheme), func(t *testing.T) {
			x, err := New(Config{Scheme: scheme, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for bi, batch := range batches {
				stats, err := x.Update(batch)
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				docs := 0
				for _, col := range batch {
					docs += len(col.Docs)
				}
				if stats.DeltaDocs != docs-seen || stats.IndexedDocs != docs {
					t.Fatalf("batch %d: stats %+v, want delta %d of %d", bi, stats, docs-seen, docs)
				}
				seen = docs

				refs, fps := x.Membership()
				want := schemeMembership(scheme, CollectionNameKey, batch)
				if !reflect.DeepEqual(refs, want) {
					t.Fatalf("batch %d: membership %v, want %v", bi, refs, want)
				}
				if len(fps) != len(refs) {
					t.Fatalf("batch %d: %d fingerprints for %d blocks", bi, len(fps), len(refs))
				}
				// Fingerprints must equal the diff-side formula.
				for i, mem := range want {
					hashes := make([]uint64, len(mem))
					for j, ref := range mem {
						d := batch[ref.Col].Docs[ref.Doc]
						hashes[j] = blocking.DocHash(batch[ref.Col].Name, ref.Doc, d.URL, d.Text, d.PersonaID)
					}
					if got := blocking.CombineIDs(hashes); got != fps[i] {
						t.Fatalf("batch %d block %d: fingerprint %x, diff formula gives %x", bi, i, fps[i], got)
					}
				}
			}
		})
	}
}

func TestIndexDirtyBlockAccounting(t *testing.T) {
	x, err := New(Config{Scheme: blocking.ExactKey{}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cols := namedCols("smith", "jones")
	stats, err := x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyBlocks != 2 || stats.Blocks != 2 {
		t.Fatalf("first update stats %+v, want 2 dirty of 2", stats)
	}

	// Re-offering the same corpus is a no-op.
	stats, err = x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 0 || stats.DirtyBlocks != 0 {
		t.Fatalf("no-op update stats %+v", stats)
	}

	// Growing one collection dirties exactly its block.
	cols[1].Docs = append(cols[1].Docs, doc(1, "another jones page"))
	stats, err = x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 1 || stats.DirtyBlocks != 1 || stats.Blocks != 2 {
		t.Fatalf("delta update stats %+v, want 1 dirty of 2", stats)
	}
}

func TestIndexOutOfSync(t *testing.T) {
	x, err := New(Config{Scheme: blocking.ExactKey{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(namedCols("smith", "jones")); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]*corpus.Collection{
		"fewer collections": namedCols("smith"),
		"renamed":           namedCols("smith", "cohen"),
		"shrunk": {
			{Name: "smith", NumPersonas: 1, Docs: nil},
			namedCols("jones")[0],
		},
	}
	for name, cols := range cases {
		if _, err := x.Update(cols); !errors.Is(err, ErrOutOfSync) {
			t.Errorf("%s: error %v, want ErrOutOfSync", name, err)
		}
	}
}

func TestIndexCodecRoundTrip(t *testing.T) {
	cfg := Config{Scheme: blocking.TokenBlocking{}, Shards: 4}
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := []*corpus.Collection{
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{doc(0, "a"), doc(1, "b")}},
		{Name: "j smith", NumPersonas: 1, Docs: []corpus.Document{doc(0, "c")}},
		{Name: "mary jones", NumPersonas: 1, Docs: []corpus.Document{doc(0, "d")}},
	}
	if _, err := x.Update(cols); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	version, err := x.EncodeTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != x.Version() {
		t.Fatalf("encode reported version %d, index is at %d", version, x.Version())
	}
	decoded, err := Decode(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantRefs, wantFps := x.Membership()
	gotRefs, gotFps := decoded.Membership()
	if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
		t.Fatal("decoded index reports different membership than the original")
	}
	if !reflect.DeepEqual(decoded.Stats(), x.Stats()) {
		t.Fatalf("decoded stats %+v, original %+v", decoded.Stats(), x.Stats())
	}

	// The decoded index keeps indexing incrementally.
	cols[2].Docs = append(cols[2].Docs, doc(1, "e"))
	stats, err := decoded.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 1 {
		t.Fatalf("post-decode delta stats %+v", stats)
	}
}

func TestIndexCodecRejectsDamage(t *testing.T) {
	cfg := Config{Scheme: blocking.ExactKey{}, Shards: 2}
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(namedCols("smith", "jones")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := x.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped), cfg); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("bit flip: error %v, want ErrCodecCorrupt", err)
	}

	truncated := good[:len(good)-3]
	if _, err := Decode(bytes.NewReader(truncated), cfg); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("truncation: error %v, want ErrCodecCorrupt", err)
	}

	skewed := append([]byte(nil), good...)
	copy(skewed, "ERIDX999")
	if _, err := Decode(bytes.NewReader(skewed), cfg); !errors.Is(err, ErrCodecVersion) {
		t.Errorf("version skew: error %v, want ErrCodecVersion", err)
	}

	if _, err := Decode(bytes.NewReader(good), Config{Scheme: blocking.ExactKey{}, Shards: 8}); err == nil {
		t.Error("shard-count mismatch was accepted")
	}
}
