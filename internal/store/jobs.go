package store

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// JobStatus is a job's lifecycle state: pending → running → done | failed,
// or canceled when a shutdown discards it before or during execution.
type JobStatus string

const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Job is one queued unit of work, as reported to clients. Timestamps use
// the server clock; Result is set when the job succeeds. A finished
// failure carries both the flat Error string (kept for compatibility) and
// the structured Failure, plus how many attempts the worker made.
type Job struct {
	ID         string      `json:"id"`
	Kind       string      `json:"kind"`
	Status     JobStatus   `json:"status"`
	Error      string      `json:"error,omitempty"`
	Failure    *JobFailure `json:"failure,omitempty"`
	Attempts   int         `json:"attempts,omitempty"`
	Result     any         `json:"result,omitempty"`
	EnqueuedAt time.Time   `json:"enqueued_at"`
	StartedAt  *time.Time  `json:"started_at,omitempty"`
	FinishedAt *time.Time  `json:"finished_at,omitempty"`
}

// JobFailure is the structured form of a job's terminal error: Kind says
// why the worker stopped trying ("canceled" — shutdown discarded it,
// "permanent" — the job said retrying cannot help, "transient" — retries
// were exhausted), Message is the final attempt's error text.
type JobFailure struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// ErrQueueClosed and ErrQueueFull classify Enqueue rejections: the first
// is terminal (the process is shutting down), the second is backpressure —
// the caller should retry after the backlog drains, and the service layer
// maps it to 429 with a Retry-After hint.
var (
	ErrQueueClosed = errors.New("store: queue is shut down")
	ErrQueueFull   = errors.New("store: job backlog full")
)

// permanentError marks an error that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err to tell the queue worker that retrying the job is
// pointless — the failure is deterministic (bad input, a store gone
// read-only after a journal fault), not environmental. A nil err stays
// nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// maxJobAttempts bounds how many times the worker runs one job before
// declaring its failure terminal; jobRetryBackoff is the delay before the
// first retry, doubled each attempt. Both are variables so tests can
// shrink them.
var (
	maxJobAttempts  = 3
	jobRetryBackoff = 50 * time.Millisecond
)

// queued pairs a job ID with the work to run.
type queued struct {
	id  string
	run func(context.Context) (any, error)
}

// Queue runs enqueued jobs on a single background worker, serializing
// mutations of the shared store so ingest order — and with it the store's
// document positions — is the order jobs were enqueued in. Finished job
// records stay queryable in a bounded ring (completion order, oldest
// evicted first), so sustained ingest cannot grow the record map without
// bound; Get reports evicted records distinctly from never-issued IDs.
type Queue struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool
	// depth counts enqueued-but-unfinished jobs (pending + running).
	depth int
	// counters accumulates lifetime job totals for the metrics endpoint;
	// guarded by mu.
	counters QueueCounters
	// finished ring: IDs of terminal jobs in completion order, capped at
	// keep; the head is evicted (removed from jobs) when the cap is hit.
	finished []string
	keep     int
	// epoch is a random per-process token embedded in every job ID.
	// Durable stores make server restarts a routine, client-visible
	// workflow; without the epoch, a pre-restart job ID would alias the
	// new process's sequence and report some unrelated job's state.
	epoch string

	ch     chan queued
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// NewQueue starts a queue whose backlog holds up to buffer pending jobs
// (values < 1 select 64); Enqueue fails fast when the backlog is full
// rather than blocking the caller. history bounds how many finished job
// records stay queryable (values < 1 select 1024): the oldest finished
// record is evicted beyond the cap, while pending and running jobs are
// always retained.
//
// erlint:ignore the worker goroutine is queue-lifetime, ended by Shutdown(ctx), which is where cancellation enters
func NewQueue(buffer, history int) *Queue {
	if buffer < 1 {
		buffer = 64
	}
	if history < 1 {
		history = 1024
	}
	var eb [4]byte
	rand.Read(eb[:]) // never fails (crypto/rand contract since Go 1.24)
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		jobs:   make(map[string]*Job),
		keep:   history,
		epoch:  hex.EncodeToString(eb[:]),
		ch:     make(chan queued, buffer),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go q.worker()
	return q
}

// jobID names job number n of this queue's epoch.
func (q *Queue) jobID(n int) string {
	return fmt.Sprintf("j%s-%d", q.epoch, n)
}

func (q *Queue) worker() {
	defer close(q.done)
	for item := range q.ch {
		if q.ctx.Err() != nil {
			q.finish(item.id, nil, 0, q.ctx.Err())
			continue
		}
		q.setRunning(item.id)
		var result any
		var err error
		attempts := 0
		for {
			attempts++
			result, err = item.run(q.ctx)
			if err == nil || attempts >= maxJobAttempts || IsPermanent(err) || q.ctx.Err() != nil {
				break
			}
			q.setAttempts(item.id, attempts)
			// Transient failure with attempts left: back off briefly
			// (doubling), cut short by shutdown. The worker is single
			// threaded, so the backoff also paces the whole queue — which
			// is the point: a failing dependency should slow intake, not
			// spin it.
			select {
			case <-q.ctx.Done():
			case <-time.After(jobRetryBackoff << (attempts - 1)):
			}
		}
		q.finish(item.id, result, attempts, err)
	}
}

// setAttempts records a retry in flight so a Get between attempts shows
// how often the job has run.
func (q *Queue) setAttempts(id string, attempts int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if job, ok := q.jobs[id]; ok {
		job.Attempts = attempts
	}
	q.counters.Retried++
}

// Enqueue registers a job and hands it to the worker. It fails when the
// queue is shut down or the backlog is full. The mutex is held across the
// non-blocking send so Enqueue can never race Shutdown's close(q.ch) into
// a send on a closed channel.
func (q *Queue) Enqueue(kind string, run func(context.Context) (any, error)) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, ErrQueueClosed
	}
	// The sequence number is consumed only on success, so every ID at or
	// below q.seq names a job that really was issued — the invariant
	// Get's evicted/unknown distinction rests on.
	job := &Job{
		ID:         q.jobID(q.seq + 1),
		Kind:       kind,
		Status:     JobPending,
		EnqueuedAt: time.Now().UTC(),
	}
	select {
	case q.ch <- queued{id: job.ID, run: run}:
		q.seq++
		q.depth++
		q.counters.Enqueued++
		q.jobs[job.ID] = job
		return *job, nil
	default:
		return Job{}, fmt.Errorf("%w (%d pending)", ErrQueueFull, cap(q.ch))
	}
}

// Depth reports the number of jobs enqueued but not yet finished (pending
// plus running) — the queue's backpressure signal, exposed by the service
// stats endpoint.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// QueueCounters are the queue's lifetime job totals, accumulated since
// the queue was constructed — the counter-shaped complement of Depth's
// instantaneous backpressure gauge, exposed by /v1/stats and /metrics.
type QueueCounters struct {
	// Enqueued counts jobs accepted by Enqueue.
	Enqueued int64 `json:"enqueued"`
	// Done, Failed and Canceled count terminal outcomes; Failed includes
	// both permanent and exhausted-retry transient failures.
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	// Retried counts individual retry attempts beyond each job's first.
	Retried int64 `json:"retried"`
}

// Counters returns a copy of the queue's lifetime totals.
func (q *Queue) Counters() QueueCounters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counters
}

// GetOutcome classifies a Get lookup.
type GetOutcome int

const (
	// GetUnknown: the ID was never issued by this queue.
	GetUnknown GetOutcome = iota
	// GetFound: the job record is available.
	GetFound
	// GetEvicted: the job finished, but its record aged out of the
	// bounded history ring.
	GetEvicted
)

// Get returns a copy of the job's current state. A job that finished long
// enough ago for its record to be evicted reports GetEvicted, letting the
// service layer answer 410 Gone instead of an indistinguishable 404. IDs
// from another epoch — typically another process's queue, before a server
// restart — are GetUnknown: this queue can say nothing about them.
func (q *Queue) Get(id string) (Job, GetOutcome) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if job, ok := q.jobs[id]; ok {
		return *job, GetFound
	}
	rest, hasPrefix := strings.CutPrefix(id, "j")
	epoch, num, hasDash := strings.Cut(rest, "-")
	if hasPrefix && hasDash && epoch == q.epoch {
		if n, err := strconv.Atoi(num); err == nil && n >= 1 && n <= q.seq && num == strconv.Itoa(n) {
			return Job{}, GetEvicted
		}
	}
	return Job{}, GetUnknown
}

func (q *Queue) setRunning(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if job, ok := q.jobs[id]; ok {
		now := time.Now().UTC()
		job.Status = JobRunning
		job.StartedAt = &now
	}
}

func (q *Queue) finish(id string, result any, attempts int, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return
	}
	q.depth--
	now := time.Now().UTC()
	job.FinishedAt = &now
	job.Attempts = attempts
	switch {
	case err == nil:
		job.Status = JobDone
		job.Result = result
		q.counters.Done++
	case q.ctx.Err() != nil && errors.Is(err, context.Canceled):
		job.Status = JobCanceled
		job.Error = "canceled by shutdown"
		job.Failure = &JobFailure{Kind: "canceled", Message: "canceled by shutdown"}
		q.counters.Canceled++
	case IsPermanent(err):
		job.Status = JobFailed
		job.Error = err.Error()
		job.Failure = &JobFailure{Kind: "permanent", Message: err.Error()}
		q.counters.Failed++
	default:
		job.Status = JobFailed
		job.Error = err.Error()
		job.Failure = &JobFailure{Kind: "transient", Message: err.Error()}
		q.counters.Failed++
	}
	q.finished = append(q.finished, id)
	for len(q.finished) > q.keep {
		delete(q.jobs, q.finished[0])
		q.finished = q.finished[1:]
	}
}

// Shutdown stops accepting new jobs and drains the backlog. If ctx expires
// before the backlog drains, the remaining jobs are canceled (the running
// job's context fires) and Shutdown returns ctx.Err(); a clean drain
// returns nil.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()

	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		q.cancel()
		<-q.done
		return ctx.Err()
	}
}
