package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobStatus is a job's lifecycle state: pending → running → done | failed,
// or canceled when a shutdown discards it before or during execution.
type JobStatus string

const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Job is one queued unit of work, as reported to clients. Timestamps use
// the server clock; Result and Error are set when the job finishes.
type Job struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	Status     JobStatus  `json:"status"`
	Error      string     `json:"error,omitempty"`
	Result     any        `json:"result,omitempty"`
	EnqueuedAt time.Time  `json:"enqueued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// queued pairs a job ID with the work to run.
type queued struct {
	id  string
	run func(context.Context) (any, error)
}

// Queue runs enqueued jobs on a single background worker, serializing
// mutations of the shared store so ingest order — and with it the store's
// document positions — is the order jobs were enqueued in. Job records
// stay queryable after completion (in-memory, for the process lifetime).
type Queue struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool

	ch     chan queued
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// NewQueue starts a queue whose backlog holds up to buffer pending jobs
// (values < 1 select 64); Enqueue fails fast when the backlog is full
// rather than blocking the caller.
func NewQueue(buffer int) *Queue {
	if buffer < 1 {
		buffer = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		jobs:   make(map[string]*Job),
		ch:     make(chan queued, buffer),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go q.worker()
	return q
}

func (q *Queue) worker() {
	defer close(q.done)
	for item := range q.ch {
		if q.ctx.Err() != nil {
			q.finish(item.id, nil, q.ctx.Err())
			continue
		}
		q.setRunning(item.id)
		result, err := item.run(q.ctx)
		q.finish(item.id, result, err)
	}
}

// Enqueue registers a job and hands it to the worker. It fails when the
// queue is shut down or the backlog is full. The mutex is held across the
// non-blocking send so Enqueue can never race Shutdown's close(q.ch) into
// a send on a closed channel.
func (q *Queue) Enqueue(kind string, run func(context.Context) (any, error)) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, fmt.Errorf("store: queue is shut down")
	}
	q.seq++
	job := &Job{
		ID:         fmt.Sprintf("j%d", q.seq),
		Kind:       kind,
		Status:     JobPending,
		EnqueuedAt: time.Now().UTC(),
	}
	select {
	case q.ch <- queued{id: job.ID, run: run}:
		q.jobs[job.ID] = job
		return *job, nil
	default:
		return Job{}, fmt.Errorf("store: job backlog full (%d pending)", cap(q.ch))
	}
}

// Get returns a copy of the job's current state.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

func (q *Queue) setRunning(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if job, ok := q.jobs[id]; ok {
		now := time.Now().UTC()
		job.Status = JobRunning
		job.StartedAt = &now
	}
}

func (q *Queue) finish(id string, result any, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return
	}
	now := time.Now().UTC()
	job.FinishedAt = &now
	switch {
	case err == nil:
		job.Status = JobDone
		job.Result = result
	case q.ctx.Err() != nil && errors.Is(err, context.Canceled):
		job.Status = JobCanceled
		job.Error = "canceled by shutdown"
	default:
		job.Status = JobFailed
		job.Error = err.Error()
	}
}

// Shutdown stops accepting new jobs and drains the backlog. If ctx expires
// before the backlog drains, the remaining jobs are canceled (the running
// job's context fires) and Shutdown returns ctx.Err(); a clean drain
// returns nil.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()

	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		q.cancel()
		<-q.done
		return ctx.Err()
	}
}
