package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job leaves the pending/running states.
func waitStatus(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, outcome := q.Get(id)
		if outcome != GetFound {
			t.Fatalf("job %s disappeared (outcome %d)", id, outcome)
		}
		if job.Status != JobPending && job.Status != JobRunning {
			return job
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestQueueRunsJobsInOrder(t *testing.T) {
	q := NewQueue(16, 0)
	defer q.Shutdown(context.Background())

	var order []int
	var last Job
	for i := 0; i < 5; i++ {
		i := i
		job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
			order = append(order, i) // safe: single worker serializes runs
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = job
	}
	done := waitStatus(t, q, last.ID)
	if done.Status != JobDone || done.Result != 4 {
		t.Fatalf("last job = %+v", done)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("run order = %v, want FIFO", order)
		}
	}
	if done.StartedAt == nil || done.FinishedAt == nil || done.FinishedAt.Before(*done.StartedAt) {
		t.Errorf("timestamps = %+v", done)
	}
}

func TestQueueFailedJob(t *testing.T) {
	q := NewQueue(4, 0)
	defer q.Shutdown(context.Background())
	job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, q, job.ID)
	if done.Status != JobFailed || done.Error != "boom" {
		t.Fatalf("job = %+v", done)
	}
	if done.Attempts != maxJobAttempts {
		t.Errorf("transient failure ran %d attempts, want %d", done.Attempts, maxJobAttempts)
	}
	if done.Failure == nil || done.Failure.Kind != "transient" || done.Failure.Message != "boom" {
		t.Errorf("failure = %+v, want transient/boom", done.Failure)
	}
}

// TestQueueRetriesTransientFailure pins the retry loop: a job that fails
// once and then succeeds finishes done, with the attempt count showing
// both runs.
func TestQueueRetriesTransientFailure(t *testing.T) {
	oldBackoff := jobRetryBackoff
	jobRetryBackoff = time.Millisecond
	defer func() { jobRetryBackoff = oldBackoff }()

	q := NewQueue(4, 0)
	defer q.Shutdown(context.Background())
	runs := 0
	job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
		runs++ // safe: single worker serializes runs
		if runs == 1 {
			return nil, fmt.Errorf("flaky")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, q, job.ID)
	if done.Status != JobDone || done.Result != "ok" {
		t.Fatalf("job = %+v, want done after retry", done)
	}
	if done.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", done.Attempts)
	}
	if done.Failure != nil || done.Error != "" {
		t.Errorf("successful retry kept failure state: %+v / %q", done.Failure, done.Error)
	}
}

// TestQueuePermanentFailureDoesNotRetry pins the Permanent marker: the
// worker runs the job once, reports kind "permanent", and the error text
// is the wrapped cause.
func TestQueuePermanentFailureDoesNotRetry(t *testing.T) {
	q := NewQueue(4, 0)
	defer q.Shutdown(context.Background())
	runs := 0
	job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
		runs++
		return nil, Permanent(fmt.Errorf("store is read-only"))
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, q, job.ID)
	if done.Status != JobFailed {
		t.Fatalf("job = %+v", done)
	}
	if runs != 1 || done.Attempts != 1 {
		t.Errorf("permanent failure ran %d times (attempts %d), want exactly 1", runs, done.Attempts)
	}
	if done.Failure == nil || done.Failure.Kind != "permanent" || done.Failure.Message != "store is read-only" {
		t.Errorf("failure = %+v, want permanent/store is read-only", done.Failure)
	}
}

func TestQueueGetUnknown(t *testing.T) {
	q := NewQueue(4, 0)
	defer q.Shutdown(context.Background())
	if _, outcome := q.Get("nope"); outcome != GetUnknown {
		t.Fatalf("Get(\"nope\") outcome = %d, want GetUnknown", outcome)
	}
	// IDs that merely look plausible but were never issued are unknown,
	// not evicted.
	for _, id := range []string{"j1", "j07", "j", "j-1", "j1x"} {
		if _, outcome := q.Get(id); outcome != GetUnknown {
			t.Errorf("Get(%q) on an empty queue = %d, want GetUnknown", id, outcome)
		}
	}
}

// TestQueueIDsDoNotAliasAcrossEpochs pins the restart-safety of job IDs:
// an ID issued by one queue (one process lifetime) must be GetUnknown to
// another queue, never resolve to an unrelated job or report evicted.
func TestQueueIDsDoNotAliasAcrossEpochs(t *testing.T) {
	q1 := NewQueue(4, 0)
	defer q1.Shutdown(context.Background())
	q2 := NewQueue(4, 0)
	defer q2.Shutdown(context.Background())

	j1, err := q1.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	j2, err := q2.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q1, j1.ID)
	waitStatus(t, q2, j2.ID)
	if j1.ID == j2.ID {
		t.Fatalf("two queues issued the same job ID %q", j1.ID)
	}
	if _, outcome := q2.Get(j1.ID); outcome != GetUnknown {
		t.Errorf("queue 2 reported %d for queue 1's job ID, want GetUnknown", outcome)
	}
}

// TestQueueHistoryBound is the regression test for unbounded finished-job
// retention: with a history of 3, only the three most recently finished
// records survive; older ones report GetEvicted (they were real jobs) and
// pending/running jobs are never evicted.
func TestQueueHistoryBound(t *testing.T) {
	q := NewQueue(16, 3)
	defer q.Shutdown(context.Background())

	var ids []string
	var last Job
	for i := 0; i < 8; i++ {
		job, err := q.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
		last = job
	}
	waitStatus(t, q, last.ID)

	for _, id := range ids[:5] {
		if _, outcome := q.Get(id); outcome != GetEvicted {
			t.Errorf("old job %s outcome = %d, want GetEvicted", id, outcome)
		}
	}
	for _, id := range ids[5:] {
		if job, outcome := q.Get(id); outcome != GetFound || job.Status != JobDone {
			t.Errorf("recent job %s = (%+v, %d), want a retained done record", id, job, outcome)
		}
	}

	// A job still running is retained no matter how many jobs finish
	// after it started... (single worker: nothing finishes while it
	// runs); the pending→running states simply never enter the ring.
	release := make(chan struct{})
	running, err := q.Enqueue("slow", func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome := q.Get(running.ID); outcome != GetFound {
		t.Errorf("in-flight job outcome = %d, want GetFound", outcome)
	}
	close(release)
	waitStatus(t, q, running.ID)
}

func TestQueueShutdownDrains(t *testing.T) {
	q := NewQueue(16, 0)
	ran := 0
	var last Job
	for i := 0; i < 3; i++ {
		job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			ran++
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = job
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("shutdown drained %d of 3 jobs", ran)
	}
	if job, _ := q.Get(last.ID); job.Status != JobDone {
		t.Errorf("last job = %+v after drain", job)
	}
	if _, err := q.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil }); err == nil {
		t.Error("Enqueue succeeded after shutdown")
	}
}

func TestQueueShutdownCancelsSlowJob(t *testing.T) {
	q := NewQueue(16, 0)
	started := make(chan struct{})
	job, err := q.Enqueue("slow", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // runs until shutdown forces cancellation
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown reported a clean drain despite the stuck job")
	}
	if done, _ := q.Get(job.ID); done.Status != JobCanceled {
		t.Errorf("job = %+v, want canceled", done)
	}
}

func TestQueueBacklogFull(t *testing.T) {
	q := NewQueue(1, 0)
	release := make(chan struct{})
	// First job occupies the worker; fill the 1-slot backlog behind it.
	if _, err := q.Enqueue("block", func(context.Context) (any, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	full := false
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil }); err != nil {
			full = true
			break
		}
	}
	close(release)
	if !full {
		t.Error("queue with capacity 1 never reported a full backlog")
	}
	q.Shutdown(context.Background())
}

// TestQueueEnqueueShutdownRace hammers Enqueue against Shutdown; before
// Enqueue held the mutex across its send this panicked with "send on
// closed channel" under load.
func TestQueueEnqueueShutdownRace(t *testing.T) {
	for i := 0; i < 30; i++ {
		q := NewQueue(2, 0)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					// Errors (shut down / backlog full) are expected; a
					// panic is the failure mode under test.
					_, _ = q.Enqueue("x", func(context.Context) (any, error) { return nil, nil })
				}
			}()
		}
		if err := q.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

func TestQueueDepth(t *testing.T) {
	q := NewQueue(4, 0)
	defer q.Shutdown(context.Background())
	if q.Depth() != 0 {
		t.Fatalf("fresh queue depth %d", q.Depth())
	}
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := q.Enqueue("block", func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	job, err := q.Enqueue("wait", func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d with one running and one pending job, want 2", q.Depth())
	}
	close(release)
	if got := waitStatus(t, q, job.ID); got.Status != JobDone {
		t.Fatalf("job status %s, want done", got.Status)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth %d after drain, want 0", q.Depth())
	}
}

// TestQueueCounters pins the lifetime totals the metrics endpoint
// scrapes: enqueued, done, failed (with its retries) all accumulate, and
// they never reset as the finished ring evicts records.
func TestQueueCounters(t *testing.T) {
	old := jobRetryBackoff
	jobRetryBackoff = time.Millisecond
	defer func() { jobRetryBackoff = old }()

	q := NewQueue(16, 1)
	defer q.Shutdown(context.Background())

	var last Job
	for i := 0; i < 3; i++ {
		job, err := q.Enqueue("ok", func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		last = job
	}
	waitStatus(t, q, last.ID)
	fail, err := q.Enqueue("fail", func(context.Context) (any, error) {
		return nil, fmt.Errorf("transient")
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.Counters().Failed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_ = fail

	c := q.Counters()
	if c.Enqueued != 4 {
		t.Errorf("Enqueued = %d, want 4", c.Enqueued)
	}
	if c.Done != 3 {
		t.Errorf("Done = %d, want 3", c.Done)
	}
	if c.Failed != 1 {
		t.Errorf("Failed = %d, want 1", c.Failed)
	}
	if c.Retried == 0 {
		t.Error("Retried = 0, want > 0 (transient failure retries before failing)")
	}
	if c.Canceled != 0 {
		t.Errorf("Canceled = %d, want 0", c.Canceled)
	}
}
