package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job leaves the pending/running states.
func waitStatus(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.Status != JobPending && job.Status != JobRunning {
			return job
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestQueueRunsJobsInOrder(t *testing.T) {
	q := NewQueue(16)
	defer q.Shutdown(context.Background())

	var order []int
	var last Job
	for i := 0; i < 5; i++ {
		i := i
		job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
			order = append(order, i) // safe: single worker serializes runs
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = job
	}
	done := waitStatus(t, q, last.ID)
	if done.Status != JobDone || done.Result != 4 {
		t.Fatalf("last job = %+v", done)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("run order = %v, want FIFO", order)
		}
	}
	if done.StartedAt == nil || done.FinishedAt == nil || done.FinishedAt.Before(*done.StartedAt) {
		t.Errorf("timestamps = %+v", done)
	}
}

func TestQueueFailedJob(t *testing.T) {
	q := NewQueue(4)
	defer q.Shutdown(context.Background())
	job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, q, job.ID)
	if done.Status != JobFailed || done.Error != "boom" {
		t.Fatalf("job = %+v", done)
	}
}

func TestQueueGetUnknown(t *testing.T) {
	q := NewQueue(4)
	defer q.Shutdown(context.Background())
	if _, ok := q.Get("nope"); ok {
		t.Fatal("Get returned an unknown job")
	}
}

func TestQueueShutdownDrains(t *testing.T) {
	q := NewQueue(16)
	ran := 0
	var last Job
	for i := 0; i < 3; i++ {
		job, err := q.Enqueue("ingest", func(context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			ran++
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = job
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("shutdown drained %d of 3 jobs", ran)
	}
	if job, _ := q.Get(last.ID); job.Status != JobDone {
		t.Errorf("last job = %+v after drain", job)
	}
	if _, err := q.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil }); err == nil {
		t.Error("Enqueue succeeded after shutdown")
	}
}

func TestQueueShutdownCancelsSlowJob(t *testing.T) {
	q := NewQueue(16)
	started := make(chan struct{})
	job, err := q.Enqueue("slow", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // runs until shutdown forces cancellation
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown reported a clean drain despite the stuck job")
	}
	if done, _ := q.Get(job.ID); done.Status != JobCanceled {
		t.Errorf("job = %+v, want canceled", done)
	}
}

func TestQueueBacklogFull(t *testing.T) {
	q := NewQueue(1)
	release := make(chan struct{})
	// First job occupies the worker; fill the 1-slot backlog behind it.
	if _, err := q.Enqueue("block", func(context.Context) (any, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	full := false
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue("ingest", func(context.Context) (any, error) { return nil, nil }); err != nil {
			full = true
			break
		}
	}
	close(release)
	if !full {
		t.Error("queue with capacity 1 never reported a full backlog")
	}
	q.Shutdown(context.Background())
}

// TestQueueEnqueueShutdownRace hammers Enqueue against Shutdown; before
// Enqueue held the mutex across its send this panicked with "send on
// closed channel" under load.
func TestQueueEnqueueShutdownRace(t *testing.T) {
	for i := 0; i < 30; i++ {
		q := NewQueue(2)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					// Errors (shut down / backlog full) are expected; a
					// panic is the failure mode under test.
					_, _ = q.Enqueue("x", func(context.Context) (any, error) { return nil, nil })
				}
			}()
		}
		if err := q.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
