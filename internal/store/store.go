// Package store holds the server-side ingest state behind `ersolve
// serve`: a DocumentStore accumulating the crawled corpus across many
// small POSTs, and a Queue running ingest jobs asynchronously so clients
// get a job handle back instead of blocking on the write path.
//
// Both are interface-first and in-memory for now; a persistent backend
// (ROADMAP: multi-backend persistence) slots in behind DocumentStore
// without touching the service layer.
package store

import (
	"fmt"
	"sync"

	"repro/internal/corpus"
)

// Stats summarizes a store's contents.
type Stats struct {
	// Collections is the number of distinct collection names ingested.
	Collections int `json:"collections"`
	// Docs is the total number of documents across all collections.
	Docs int `json:"docs"`
	// Version counts committed Append batches; it increases exactly when
	// the corpus changes, so equal versions mean equal snapshots.
	Version uint64 `json:"version"`
}

// DocumentStore accumulates an append-only corpus of named collections.
// Implementations must be safe for concurrent use.
//
// The append-only contract is what incremental resolution leans on:
// existing documents never move (a document keeps its collection and
// position forever), so a resolution block whose membership fingerprint is
// unchanged between two snapshots is guaranteed bit-identical.
type DocumentStore interface {
	// Append merges the given collections into the store by name, creating
	// unseen names and appending documents to known ones. Incoming
	// document IDs are ignored (the store assigns the next dense position)
	// and persona labels are remapped densely per collection in
	// first-seen order, so partially-delivered persona spaces stay valid.
	// Append is atomic: on a validation error nothing is committed. It
	// returns the number of documents added.
	Append(cols []*corpus.Collection) (int, error)
	// Snapshot returns a self-contained copy of the current collections in
	// first-ingested order, plus the store version it reflects. Mutating
	// the returned collections does not affect the store.
	Snapshot() ([]*corpus.Collection, uint64)
	// Stats reports the current size and version.
	Stats() Stats
}

// AppendEvent describes one committed Append batch to subscribers: the
// post-commit stats plus what the batch touched, so observers (serving
// caches, index warmers) can invalidate precisely instead of guessing.
type AppendEvent struct {
	// Stats is the store's state right after the commit.
	Stats Stats
	// Touched names the collections the batch created or appended to, in
	// batch order.
	Touched []string
	// Added is the number of documents the batch committed.
	Added int
}

// AppendObserver is implemented by stores that can notify interested
// parties — index maintainers, metrics — after a batch commits. The
// callback runs outside the store's locks, after the commit it reports,
// and receives the commit's event; callbacks must be fast or hand off
// to their own goroutine. Under concurrent appends, notification order is
// not guaranteed to match commit order — observers needing exact state
// should re-read the store, not trust the carried event to be newest.
type AppendObserver interface {
	SubscribeAppend(fn func(AppendEvent))
}

// memCollection is one named collection's mutable state.
type memCollection struct {
	name     string
	docs     []corpus.Document
	personas map[int]int // client persona label → dense store label
}

// MemStore is the in-memory DocumentStore.
type MemStore struct {
	mu      sync.RWMutex
	order   []*memCollection
	byName  map[string]*memCollection
	version uint64
	docs    int
	subs    []func(AppendEvent)
}

// SubscribeAppend implements AppendObserver.
func (m *MemStore) SubscribeAppend(fn func(AppendEvent)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byName: make(map[string]*memCollection)}
}

// ValidateBatch runs the exact validation Append applies before
// committing anything. It is exported so write-ahead backends can check
// a batch BEFORE journaling it: a batch that passes ValidateBatch is
// guaranteed to be accepted by Append, which is what lets them journal
// first and merge second without the two ever diverging.
func ValidateBatch(cols []*corpus.Collection) error {
	for _, col := range cols {
		if col == nil {
			return fmt.Errorf("store: nil collection")
		}
		if col.Name == "" {
			return fmt.Errorf("store: collection has empty name")
		}
		for i, d := range col.Docs {
			if d.PersonaID < 0 {
				return fmt.Errorf("store: collection %q doc %d has negative persona %d",
					col.Name, i, d.PersonaID)
			}
		}
	}
	return nil
}

// Append implements DocumentStore.
func (m *MemStore) Append(cols []*corpus.Collection) (int, error) {
	if err := ValidateBatch(cols); err != nil {
		return 0, err
	}

	m.mu.Lock()
	added := 0
	mutated := false
	touched := make([]string, 0, len(cols))
	for _, col := range cols {
		entry, ok := m.byName[col.Name]
		if !ok {
			entry = &memCollection{name: col.Name, personas: make(map[int]int)}
			m.byName[col.Name] = entry
			m.order = append(m.order, entry)
			mutated = true
		}
		touched = append(touched, col.Name)
		for _, d := range col.Docs {
			label, seen := entry.personas[d.PersonaID]
			if !seen {
				label = len(entry.personas)
				entry.personas[d.PersonaID] = label
			}
			d.ID = len(entry.docs)
			d.PersonaID = label
			entry.docs = append(entry.docs, d)
			added++
		}
	}
	if added > 0 || mutated {
		m.version++
	}
	m.docs += added
	event := AppendEvent{
		Stats:   Stats{Collections: len(m.order), Docs: m.docs, Version: m.version},
		Touched: touched,
		Added:   added,
	}
	subs := m.subs
	m.mu.Unlock()

	// Notify after the commit, outside the lock, so observers may read the
	// store (or trigger index maintenance that does) without deadlocking.
	if added > 0 || mutated {
		for _, fn := range subs {
			fn(event)
		}
	}
	return added, nil
}

// Snapshot implements DocumentStore.
func (m *MemStore) Snapshot() ([]*corpus.Collection, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*corpus.Collection, len(m.order))
	for i, entry := range m.order {
		out[i] = &corpus.Collection{
			Name:        entry.name,
			Docs:        append([]corpus.Document(nil), entry.docs...),
			NumPersonas: len(entry.personas),
		}
	}
	return out, m.version
}

// Stats implements DocumentStore.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Stats{Collections: len(m.order), Docs: m.docs, Version: m.version}
}
