package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
)

func col(name string, personas ...int) *corpus.Collection {
	c := &corpus.Collection{Name: name}
	for i, p := range personas {
		c.Docs = append(c.Docs, corpus.Document{
			ID:        999, // store must ignore incoming IDs
			URL:       fmt.Sprintf("http://example.com/%s/%d", name, i),
			Text:      fmt.Sprintf("%s doc %d", name, i),
			PersonaID: p,
		})
	}
	c.NumPersonas = 100 // store recomputes
	return c
}

func TestMemStoreAppendAndSnapshot(t *testing.T) {
	m := NewMemStore()
	added, err := m.Append([]*corpus.Collection{col("smith", 5, 5, 9), col("cohen", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if added != 4 {
		t.Fatalf("added = %d, want 4", added)
	}

	// Second batch grows smith: persona 9 was seen, persona 2 is new.
	if _, err := m.Append([]*corpus.Collection{col("smith", 9, 2)}); err != nil {
		t.Fatal(err)
	}

	cols, version := m.Snapshot()
	if version != 2 {
		t.Errorf("version = %d, want 2", version)
	}
	if len(cols) != 2 || cols[0].Name != "smith" || cols[1].Name != "cohen" {
		t.Fatalf("snapshot order = %v", cols)
	}
	smith := cols[0]
	if len(smith.Docs) != 5 || smith.NumPersonas != 3 {
		t.Fatalf("smith = %d docs, %d personas, want 5 and 3", len(smith.Docs), smith.NumPersonas)
	}
	// Dense IDs in append order, personas remapped first-seen: 5→0, 9→1, 2→2.
	wantPersonas := []int{0, 0, 1, 1, 2}
	for i, d := range smith.Docs {
		if d.ID != i {
			t.Errorf("doc %d has ID %d", i, d.ID)
		}
		if d.PersonaID != wantPersonas[i] {
			t.Errorf("doc %d persona = %d, want %d", i, d.PersonaID, wantPersonas[i])
		}
	}
	if err := smith.Validate(); err != nil {
		t.Errorf("snapshot collection does not validate: %v", err)
	}

	st := m.Stats()
	if st.Collections != 2 || st.Docs != 6 || st.Version != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMemStoreSnapshotIsolated(t *testing.T) {
	m := NewMemStore()
	if _, err := m.Append([]*corpus.Collection{col("smith", 0, 0)}); err != nil {
		t.Fatal(err)
	}
	cols, _ := m.Snapshot()
	cols[0].Docs[0].Text = "mutated"
	cols2, _ := m.Snapshot()
	if cols2[0].Docs[0].Text == "mutated" {
		t.Fatal("snapshot shares memory with the store")
	}
}

func TestMemStoreAppendAtomic(t *testing.T) {
	m := NewMemStore()
	bad := col("smith", 0)
	bad.Docs[0].PersonaID = -1
	if _, err := m.Append([]*corpus.Collection{col("cohen", 0), bad}); err == nil {
		t.Fatal("Append accepted a negative persona")
	}
	if st := m.Stats(); st.Docs != 0 || st.Collections != 0 || st.Version != 0 {
		t.Fatalf("failed Append committed state: %+v", st)
	}
	if _, err := m.Append([]*corpus.Collection{{Name: ""}}); err == nil {
		t.Fatal("Append accepted an empty collection name")
	}
}

func TestMemStoreConcurrentAppend(t *testing.T) {
	m := NewMemStore()
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := m.Append([]*corpus.Collection{col(fmt.Sprintf("name%d", w%4), i%3)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Docs != workers*perWorker {
		t.Errorf("docs = %d, want %d (no lost documents)", st.Docs, workers*perWorker)
	}
	cols, _ := m.Snapshot()
	if len(cols) != 4 {
		t.Errorf("collections = %d, want 4", len(cols))
	}
	for _, c := range cols {
		if err := c.Validate(); err != nil {
			t.Errorf("collection %q: %v", c.Name, err)
		}
	}
}

// TestSubscribeAppendNotifiesAfterCommit pins the observer contract:
// callbacks run after the batch is visible, outside the store's locks (the
// callback reads the store back), and only for batches that changed it.
func TestSubscribeAppendNotifiesAfterCommit(t *testing.T) {
	m := NewMemStore()
	var got []AppendEvent
	m.SubscribeAppend(func(ev AppendEvent) {
		// Reading the store inside the callback must not deadlock, and
		// must already see the commit the callback reports.
		if live := m.Stats(); live.Docs < ev.Stats.Docs {
			t.Errorf("callback carried %d docs but the store reports %d", ev.Stats.Docs, live.Docs)
		}
		got = append(got, ev)
	})

	if _, err := m.Append([]*corpus.Collection{col("smith", 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]*corpus.Collection{col("smith", 1)}); err != nil {
		t.Fatal(err)
	}
	// A no-op batch (nothing added, nothing created) does not notify.
	if _, err := m.Append(nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Stats.Docs != 2 || got[1].Stats.Docs != 3 {
		t.Fatalf("notifications = %+v, want docs 2 then 3", got)
	}
	if got[0].Added != 2 || got[1].Added != 1 {
		t.Fatalf("added = %d then %d, want 2 then 1", got[0].Added, got[1].Added)
	}
	if len(got[0].Touched) != 1 || got[0].Touched[0] != "smith" {
		t.Fatalf("touched = %v, want [smith]", got[0].Touched)
	}

	// A failed append notifies nobody.
	if _, err := m.Append([]*corpus.Collection{{Name: ""}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if len(got) != 2 {
		t.Fatalf("failed append notified: %+v", got)
	}
}
