// Package stats provides small numeric helpers shared across the entity
// resolution framework: summary statistics, correlation, histograms and
// deterministic pseudo-random number utilities.
//
// All functions are pure and allocation-conscious; they operate on float64
// slices without retaining references to their inputs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 for inputs with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ArgMax returns the index of the largest element of xs, breaking ties in
// favour of the smallest index. It returns -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of xs, breaking ties in
// favour of the smallest index. It returns -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x < xs[best] {
			best = i + 1
		}
	}
	return best
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns 0 when either series has zero
// variance, and an error when the lengths differ or the input is empty.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. The input does not need to be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Harmonic returns the harmonic mean of a and b, the combinator used by both
// the F-measure and the Fp-measure. It returns 0 when a+b == 0.
func Harmonic(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// Clamp constrains x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram counts how many values of xs fall into each of n equal-width
// buckets spanning [lo, hi]. Values outside the range are clamped into the
// first or last bucket. It returns nil when n <= 0 or hi <= lo.
func Histogram(xs []float64, n int, lo, hi float64) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, n)
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	return counts
}
