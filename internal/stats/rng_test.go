package stats

import (
	"math"
	"testing"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestSplitSeedDistinctLabels(t *testing.T) {
	s1 := SplitSeed(7, "alpha")
	s2 := SplitSeed(7, "beta")
	if s1 == s2 {
		t.Error("distinct labels should give distinct seeds")
	}
	if SplitSeed(7, "alpha") != s1 {
		t.Error("SplitSeed must be deterministic")
	}
	if SplitSeed(8, "alpha") == s1 {
		t.Error("distinct parents should give distinct seeds")
	}
}

func TestSplitSeedNDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := SplitSeedN(99, i)
		if seen[s] {
			t.Fatalf("collision at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeedN(99, 5) != SplitSeedN(99, 5) {
		t.Error("SplitSeedN must be deterministic")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRNG(1)
	got := SampleWithoutReplacement(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Errorf("value %d out of range", v)
		}
		if seen[v] {
			t.Errorf("duplicate value %d", v)
		}
		seen[v] = true
	}
	// k > n returns the whole range.
	all := SampleWithoutReplacement(rng, 3, 10)
	if len(all) != 3 {
		t.Errorf("k>n: len = %d, want 3", len(all))
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRNG(2)
	if got := WeightedChoice(rng, nil); got != -1 {
		t.Errorf("empty weights = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, 0}); got != -1 {
		t.Errorf("zero weights = %d, want -1", got)
	}
	// A dominant weight must be chosen overwhelmingly often.
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		idx := WeightedChoice(rng, []float64{0.01, 10, 0.01})
		counts[idx]++
	}
	if counts[1] < 9900 {
		t.Errorf("dominant weight chosen only %d/10000 times", counts[1])
	}
	// Zero-weight entries must never be selected.
	for i := 0; i < 1000; i++ {
		if idx := WeightedChoice(rng, []float64{0, 1, 0}); idx != 1 {
			t.Fatalf("selected zero-weight index %d", idx)
		}
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	rng := NewRNG(3)
	weights := []float64{1, 2, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	for i, w := range weights {
		expected := w / 6 * n
		if math.Abs(float64(counts[i])-expected) > 0.05*n {
			t.Errorf("weight %d: count %d, expected ~%.0f", i, counts[i], expected)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		idx := Zipf(rng, 10, 1.5)
		if idx < 0 || idx >= 10 {
			t.Fatalf("Zipf out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf should skew to low indices: head=%d tail=%d", counts[0], counts[9])
	}
	if counts[0] <= counts[4] {
		t.Errorf("Zipf monotone decrease expected: %v", counts)
	}
	if got := Zipf(rng, 0, 1); got != 0 {
		t.Errorf("Zipf(n=0) = %d, want 0", got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewRNG(5)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(rng, idx)
	seen := make(map[int]bool)
	for _, v := range idx {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", idx)
	}
}
