package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic pseudo-random generator for the given seed.
// Every stochastic component of the reproduction (corpus generation,
// training-sample selection, k-means seeding) draws from an RNG created here
// so experiments are exactly repeatable.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives a child seed from a parent seed and a stream label.
// Distinct labels yield decorrelated streams, letting independent components
// (one per person name, one per experiment run, ...) use independent RNGs
// that are still fully determined by the root seed.
func SplitSeed(seed int64, label string) int64 {
	// FNV-1a over the label, folded into the seed with an odd multiplier.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	mixed := uint64(seed)*0x9E3779B97F4A7C15 ^ h
	// Avoid the all-zero seed which some generators treat specially.
	if mixed == 0 {
		mixed = prime64
	}
	return int64(mixed)
}

// SplitSeedN derives a child seed from a parent seed and an integer stream
// index, for loops over runs or blocks.
func SplitSeedN(seed int64, n int) int64 {
	mixed := uint64(seed) ^ (uint64(n)+1)*0xBF58476D1CE4E5B9
	mixed ^= mixed >> 31
	mixed *= 0x94D049BB133111EB
	mixed ^= mixed >> 29
	if mixed == 0 {
		mixed = 1
	}
	return int64(mixed)
}

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). If k >= n it returns the full range in random order.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	Shuffle(rng, idx)
	if k > n {
		k = n
	}
	return idx[:k]
}

// WeightedChoice returns an index into weights drawn proportionally to the
// weights, which must be non-negative. It returns -1 when all weights are
// zero or the slice is empty.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	// Floating point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Zipf draws an integer in [0, n) following a Zipf-like distribution with
// exponent s (s > 0 skews towards small indices). Used by the corpus
// generator to produce the skewed cluster-size distributions observed in web
// people-search data.
func Zipf(rng *rand.Rand, n int, s float64) int {
	if n <= 0 {
		return 0
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1.0 / math.Pow(float64(i+1), s)
	}
	c := WeightedChoice(rng, weights)
	if c < 0 {
		return 0
	}
	return c
}
