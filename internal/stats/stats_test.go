package stats

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got, err := Min(xs); err != nil || got != -2 {
		t.Errorf("Min = %v, %v, want -2, nil", got, err)
	}
	if got, err := Max(xs); err != nil || got != 7 {
		t.Errorf("Max = %v, %v, want 7, nil", got, err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{1, 5, 5, 2}
	if got := ArgMax(xs); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin([]float64{3, 0, 0, 4}); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d, want -1", got)
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive correlation.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson perfect = %v, %v; want 1, nil", r, err)
	}
	// Perfect negative correlation.
	ys2 := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, ys2)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson negative = %v; want -1", r)
	}
	// Zero variance: defined as 0.
	r, err = Pearson(xs, []float64{5, 5, 5, 5})
	if err != nil || r != 0 {
		t.Errorf("Pearson constant = %v, %v; want 0, nil", r, err)
	}
	if _, err := Pearson(xs, ys[:2]); err == nil {
		t.Error("Pearson length mismatch: want error")
	}
	if _, err := Pearson(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Pearson empty err = %v, want ErrEmpty", err)
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	med, err := Median(xs)
	if err != nil || !almostEqual(med, 2.5, 1e-12) {
		t.Errorf("Median = %v, %v; want 2.5", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 4 {
		t.Errorf("Quantile extremes = %v, %v; want 1, 4", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile out of range: want error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile empty err = %v, want ErrEmpty", err)
	}
	single, _ := Quantile([]float64{7}, 0.3)
	if single != 7 {
		t.Errorf("Quantile singleton = %v, want 7", single)
	}
}

func TestHarmonic(t *testing.T) {
	if got := Harmonic(0, 0); got != 0 {
		t.Errorf("Harmonic(0,0) = %v, want 0", got)
	}
	if got := Harmonic(1, 1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Harmonic(1,1) = %v, want 1", got)
	}
	if got := Harmonic(0.5, 1); !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Errorf("Harmonic(0.5,1) = %v, want 2/3", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 1); got != 0 {
		t.Errorf("Clamp(-1) = %v", got)
	}
	if got := Clamp(2, 0, 1); got != 1 {
		t.Errorf("Clamp(2) = %v", got)
	}
	if got := Clamp(0.4, 0, 1); got != 0.4 {
		t.Errorf("Clamp(0.4) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.95, 1.0, -0.2, 1.3}
	h := Histogram(xs, 10, 0, 1)
	if h[0] != 2 { // 0.05 and clamped -0.2
		t.Errorf("bucket 0 = %d, want 2", h[0])
	}
	if h[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", h[1])
	}
	if h[9] != 3 { // 0.95, 1.0 (clamped into last), 1.3 (clamped)
		t.Errorf("bucket 9 = %d, want 3", h[9])
	}
	if Histogram(xs, 0, 0, 1) != nil {
		t.Error("Histogram with n=0 should be nil")
	}
	if Histogram(xs, 5, 1, 0) != nil {
		t.Error("Histogram with hi<=lo should be nil")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := Histogram(raw, 7, 0, 1)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return Mean(raw) == 0
		}
		for _, x := range raw {
			// Skip pathological floats whose sums overflow or are undefined.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		m := Mean(raw)
		lo, _ := Min(raw)
		hi, _ := Max(raw)
		return m >= lo-1e-9*math.Abs(lo)-1e-9 && m <= hi+1e-9*math.Abs(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(raw) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// floorOf wraps the stats error across a call boundary the way the
// service layers do before surfacing it.
func floorOf(xs []float64) (float64, error) {
	m, err := Min(xs)
	if err != nil {
		return 0, fmt.Errorf("computing floor: %w", err)
	}
	return m, nil
}

// TestErrEmptyMatchesThroughWrap pins the behavior the errwrap linter
// exists to protect: a sentinel wrapped with %w at a call boundary still
// matches via errors.Is, while the direct comparison the linter bans
// silently stops matching.
func TestErrEmptyMatchesThroughWrap(t *testing.T) {
	_, err := floorOf(nil)
	if err == nil {
		t.Fatal("floorOf(nil) = nil error, want wrapped ErrEmpty")
	}
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("floorOf(nil) error = %v, want errors.Is match with ErrEmpty", err)
	}
	// erlint:ignore demonstrating the failure mode the lint rule prevents
	if err == ErrEmpty {
		t.Fatal("wrapped error compares == to ErrEmpty; the wrap this test guards is gone")
	}
}
