package extract

import (
	"strings"

	"repro/internal/textsim"
)

// URLFeatures are the components of a page URL relevant to similarity
// function F2: two pages hosted on the same web domain (a personal home
// page and its subpages, a lab site, ...) are likely about the same person.
type URLFeatures struct {
	// Raw is the original URL string.
	Raw string
	// Host is the full host name (e.g. "cs.stanford.edu").
	Host string
	// Domain is the registrable domain approximation: the last two labels,
	// or three when the TLD is a two-part country suffix like "ac.uk".
	Domain string
	// PathTokens are the lower-cased path segments split on separators.
	PathTokens []string
}

// twoPartTLDs lists common two-label public suffixes so that
// "www.ox.ac.uk" yields domain "ox.ac.uk" rather than "ac.uk".
var twoPartTLDs = map[string]struct{}{
	"ac.uk": {}, "co.uk": {}, "gov.uk": {}, "org.uk": {},
	"com.au": {}, "edu.au": {}, "co.jp": {}, "ac.jp": {},
	"com.br": {}, "co.in": {}, "ac.in": {}, "edu.cn": {},
	"uni-trier.de": {},
}

// ParseURL extracts URL features without the net/url dependency's scheme
// strictness; web-crawl URLs are frequently malformed, so parsing is
// forgiving: missing schemes are tolerated and errors never occur.
func ParseURL(raw string) URLFeatures {
	f := URLFeatures{Raw: raw}
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	// Trim userinfo.
	if i := strings.IndexByte(s, '@'); i >= 0 && (strings.IndexByte(s, '/') == -1 || i < strings.IndexByte(s, '/')) {
		s = s[i+1:]
	}
	hostPath := strings.SplitN(s, "/", 2)
	host := hostPath[0]
	// Strip port and query fragments on the host part.
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	f.Host = host
	f.Domain = registrableDomain(host)
	if len(hostPath) == 2 {
		path := hostPath[1]
		if i := strings.IndexAny(path, "?#"); i >= 0 {
			path = path[:i]
		}
		for _, seg := range strings.FieldsFunc(path, func(r rune) bool {
			return r == '/' || r == '.' || r == '-' || r == '_' || r == '~'
		}) {
			f.PathTokens = append(f.PathTokens, strings.ToLower(seg))
		}
	}
	return f
}

func registrableDomain(host string) string {
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	lastTwo := strings.Join(labels[len(labels)-2:], ".")
	if _, ok := twoPartTLDs[lastTwo]; ok && len(labels) >= 3 {
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return lastTwo
}

// URLSimilarity compares two URLs for similarity function F2. Same host
// scores highest, same registrable domain scores high, and otherwise the
// score falls back to a scaled string similarity of the hosts, so that
// near-identical mirror hosts retain some signal.
func URLSimilarity(a, b URLFeatures) float64 {
	if a.Host == "" || b.Host == "" {
		return 0
	}
	if a.Host == b.Host {
		// Shared path prefixes push same-host scores towards 1.
		return 0.9 + 0.1*pathOverlap(a.PathTokens, b.PathTokens)
	}
	if a.Domain != "" && a.Domain == b.Domain {
		return 0.8
	}
	// Different domains: damped character similarity of hosts. The cap at
	// 0.6 keeps unrelated-but-lexically-close hosts below the same-domain
	// band.
	return 0.6 * textsim.JaroWinkler(a.Host, b.Host)
}

func pathOverlap(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	return textsim.SetJaccard(a, b)
}
