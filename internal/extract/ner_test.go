package extract

import (
	"testing"
)

func testNER() *NER {
	return NewNER(
		[]string{"john", "mary", "andrew"},
		[]string{"smith", "cohen", "mccallum"},
		[]string{"stanford university", "google", "ibm research"},
		[]string{"new york", "boston"},
	)
}

func TestNERFullNames(t *testing.T) {
	n := testNER()
	text := "John Smith met Mary Cohen in Boston. John Smith works at Google."
	persons := n.Persons(text)
	if len(persons) < 2 {
		t.Fatalf("persons = %v", persons)
	}
	// "john smith" appears twice → most frequent first.
	if persons[0] != "john smith" {
		t.Errorf("most frequent = %q, want john smith", persons[0])
	}
	found := false
	for _, p := range persons {
		if p == "mary cohen" {
			found = true
		}
	}
	if !found {
		t.Errorf("mary cohen missing from %v", persons)
	}
}

func TestNERBareSurname(t *testing.T) {
	n := testNER()
	persons := n.Persons("Professor Cohen presented the results.")
	if len(persons) != 1 || persons[0] != "cohen" {
		t.Errorf("persons = %v, want [cohen]", persons)
	}
}

func TestNEROrganizationsAndLocations(t *testing.T) {
	n := testNER()
	text := "She moved from IBM Research to Stanford University in New York."
	orgs := n.Organizations(text)
	if len(orgs) != 2 {
		t.Fatalf("orgs = %v", orgs)
	}
	locs := n.Locations(text)
	if len(locs) != 1 || locs[0] != "new york" {
		t.Errorf("locs = %v", locs)
	}
}

func TestNEREntityCountsAndOrdering(t *testing.T) {
	n := testNER()
	text := "Google Google Google. Boston. Smith."
	entities := n.Extract(text)
	if len(entities) == 0 {
		t.Fatal("no entities")
	}
	if entities[0].Name != "google" || entities[0].Count != 3 {
		t.Errorf("top entity = %+v, want google ×3", entities[0])
	}
}

func TestNEROrgTokensNotPersons(t *testing.T) {
	// "smith" inside an org mention must not surface as a person.
	n := NewNER(
		[]string{"john"},
		[]string{"smith"},
		[]string{"smith barney"},
		nil,
	)
	persons := n.Persons("He invested with Smith Barney last year.")
	if len(persons) != 0 {
		t.Errorf("org token leaked as person: %v", persons)
	}
}

func TestNEREmptyText(t *testing.T) {
	n := testNER()
	if got := n.Extract(""); len(got) != 0 {
		t.Errorf("entities in empty text: %v", got)
	}
}

func TestDefaultNERUsesSharedWordlists(t *testing.T) {
	n := DefaultNER()
	persons := n.Persons("Andrew McCallum wrote the paper.")
	if len(persons) == 0 || persons[0] != "andrew mccallum" {
		t.Errorf("persons = %v, want [andrew mccallum]", persons)
	}
	orgs := n.Organizations("EPFL is in Lausanne.")
	if len(orgs) != 1 || orgs[0] != "epfl" {
		t.Errorf("orgs = %v, want [epfl]", orgs)
	}
	locs := n.Locations("EPFL is in Lausanne.")
	if len(locs) != 1 || locs[0] != "lausanne" {
		t.Errorf("locs = %v, want [lausanne]", locs)
	}
}

func TestEntityTypeString(t *testing.T) {
	if PersonEntity.String() != "person" ||
		OrganizationEntity.String() != "organization" ||
		LocationEntity.String() != "location" {
		t.Error("entity type labels wrong")
	}
	if EntityType(99).String() != "unknown" {
		t.Error("unknown entity type label wrong")
	}
}
