package extract

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/textsim"
	"repro/internal/wordlists"
)

// ConceptExtractor maps document text onto a weighted vector of
// Wikipedia-style concepts, simulating the SemanticHacker service of the
// paper's pipeline (used by similarity functions F1 and F4).
//
// Each concept is activated by its associated trigger terms (the stemmed
// topical vocabulary of the concept's topic) and by literal mentions of the
// concept label itself; the concept weight is the normalized activation.
type ConceptExtractor struct {
	// triggers maps stemmed trigger term → list of (concept, weight).
	triggers map[string][]conceptTrigger
	labels   *Gazetteer
	// labelConcept maps the canonical gazetteer form back to the concept.
	labelConcept map[string]string
}

type conceptTrigger struct {
	concept string
	weight  float64
}

// NewConceptExtractor builds an extractor from a topic → concepts map and a
// topic → vocabulary map: every concept of a topic is triggered by every
// vocabulary word of that topic (weight 1), and strongly (weight 3) by its
// own label tokens.
func NewConceptExtractor(concepts map[string][]string, topicWords map[string][]string) *ConceptExtractor {
	ce := &ConceptExtractor{
		triggers:     make(map[string][]conceptTrigger),
		labelConcept: make(map[string]string),
	}
	var allLabels []string
	for topic, clist := range concepts {
		words := topicWords[topic]
		for _, concept := range clist {
			for _, w := range words {
				stem := analysis.PorterStem(strings.ToLower(w))
				ce.triggers[stem] = append(ce.triggers[stem], conceptTrigger{concept: concept, weight: 1})
			}
			allLabels = append(allLabels, concept)
			canonical := strings.ToLower(concept)
			ce.labelConcept[canonical] = concept
		}
	}
	ce.labels = NewGazetteer(allLabels)
	return ce
}

// DefaultConceptExtractor returns an extractor over the built-in concept
// dictionary shared with the corpus generator.
func DefaultConceptExtractor() *ConceptExtractor {
	return NewConceptExtractor(wordlists.Concepts, wordlists.TopicWords)
}

// Extract returns the weighted concept vector of text, L2-normalized so
// that cosine comparisons (F1) are well scaled. The vector is empty when no
// concept is activated.
func (ce *ConceptExtractor) Extract(text string) textsim.SparseVector {
	v := textsim.NewSparseVector()
	// Trigger-word activation over the analyzed (stemmed) terms.
	for _, term := range analysis.Standard.Terms(text) {
		for _, tr := range ce.triggers[term] {
			v.Add(tr.concept, tr.weight)
		}
	}
	// Literal label mentions are strong evidence.
	for _, m := range ce.labels.FindAllInText(text) {
		if concept, ok := ce.labelConcept[m.Canonical]; ok {
			v.Add(concept, 3)
		}
	}
	if n := v.Norm(); n > 0 {
		v.Scale(1 / n)
	}
	return v
}

// TopConcepts returns the k highest-weighted concept labels of text, in
// decreasing weight order (ties broken lexicographically). This is the
// unweighted concept set used by the overlap-based function F4.
func (ce *ConceptExtractor) TopConcepts(text string, k int) []string {
	v := ce.Extract(text)
	type cw struct {
		c string
		w float64
	}
	all := make([]cw, 0, len(v))
	for c, w := range v {
		all = append(all, cw{c, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].c < all[j].c
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, 0, k)
	for _, x := range all[:k] {
		out = append(out, x.c)
	}
	return out
}
