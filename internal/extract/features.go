package extract

import (
	"context"

	"repro/internal/textsim"
)

// DocumentFeatures is the full feature bundle the similarity functions
// (Table I) consume for one web page. It is produced once per document by a
// FeatureExtractor as the preprocessing step of the pipeline.
type DocumentFeatures struct {
	// ConceptVector is the L2-normalized weighted concept vector (F1).
	ConceptVector textsim.SparseVector
	// Concepts is the unweighted top-concept set (F4).
	Concepts []string
	// Organizations are the canonical organization mentions (F5).
	Organizations []string
	// OtherPersons are person mentions excluding the query name itself (F6).
	OtherPersons []string
	// MostFrequentName is the most frequent person name on the page (F3).
	MostFrequentName string
	// ClosestName is the person mention most similar to the search keyword
	// (F7); empty when the page mentions no person.
	ClosestName string
	// URL carries the parsed URL features (F2).
	URL URLFeatures
	// Locations are canonical location mentions (extension feature).
	Locations []string
}

// FeatureExtractor bundles the NER and concept extractors and applies them
// to documents. A nil field in Config selects the built-in default.
type FeatureExtractor struct {
	ner      *NER
	concepts *ConceptExtractor
	// topK bounds the unweighted concept set size for F4.
	topK int
}

// NewFeatureExtractor returns an extractor using the given components; nil
// components select the defaults built on the shared wordlists.
func NewFeatureExtractor(ner *NER, concepts *ConceptExtractor) *FeatureExtractor {
	if ner == nil {
		ner = DefaultNER()
	}
	if concepts == nil {
		concepts = DefaultConceptExtractor()
	}
	return &FeatureExtractor{ner: ner, concepts: concepts, topK: 10}
}

// Extract computes the full feature bundle for a page given its text, URL
// and the ambiguous query name the collection was retrieved for.
func (fe *FeatureExtractor) Extract(text, url, queryName string) DocumentFeatures {
	var f DocumentFeatures
	f.ConceptVector = fe.concepts.Extract(text)
	f.Concepts = fe.concepts.TopConcepts(text, fe.topK)
	f.Organizations = fe.ner.Organizations(text)
	f.Locations = fe.ner.Locations(text)
	f.URL = ParseURL(url)

	persons := fe.ner.Persons(text) // most frequent first
	if len(persons) > 0 {
		f.MostFrequentName = persons[0]
	}
	f.ClosestName = closestName(persons, queryName)
	f.OtherPersons = excludeQueryName(persons, queryName)
	return f
}

// Page is the raw input of a batch extraction: one web page's text and URL.
type Page struct {
	Text, URL string
}

// ExtractAll computes the feature bundle for every page of one blocking
// unit, checking the context between documents so a canceled or timed-out
// context aborts a long extraction promptly with ctx.Err(). It is the
// context-aware entry point the resolution pipeline uses; per-page results
// are identical to calling Extract on each page.
func (fe *FeatureExtractor) ExtractAll(ctx context.Context, pages []Page, queryName string) ([]DocumentFeatures, error) {
	out := make([]DocumentFeatures, len(pages))
	for i, p := range pages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = fe.Extract(p.Text, p.URL, queryName)
	}
	return out, nil
}

// closestName returns the person mention with the highest name similarity
// to the query keyword, the feature F7 compares across pages.
func closestName(persons []string, queryName string) string {
	best := ""
	bestScore := -1.0
	for _, p := range persons {
		if s := textsim.NameSimilarity(p, queryName); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// excludeQueryName filters out mentions that are the query name itself
// (exact or one-token-containment matches), keeping genuine co-occurring
// persons for F6.
func excludeQueryName(persons []string, queryName string) []string {
	var out []string
	for _, p := range persons {
		if textsim.NameSimilarity(p, queryName) >= 0.95 {
			continue
		}
		if containsToken(p, queryName) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// containsToken reports whether any token of a equals any token of b, the
// heuristic that drops "john smith" and bare "smith" mentions for query
// "smith".
func containsToken(a, b string) bool {
	ta := tokenSet(a)
	for _, t := range tokenSet(b) {
		for _, s := range ta {
			if s == t {
				return true
			}
		}
	}
	return false
}

func tokenSet(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
