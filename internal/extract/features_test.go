package extract

import (
	"testing"
)

func TestFeatureExtractorFullBundle(t *testing.T) {
	fe := NewFeatureExtractor(nil, nil)
	text := "John Smith is a professor at Stanford University in San Francisco. " +
		"Smith works on machine learning and clustering with Mary Johnson. " +
		"His research covers supervised learning and bayesian inference."
	f := fe.Extract(text, "http://cs.stanford.edu/~smith", "smith")

	if f.MostFrequentName == "" {
		t.Error("MostFrequentName empty")
	}
	if len(f.ConceptVector) == 0 {
		t.Error("ConceptVector empty for topical text")
	}
	if len(f.Concepts) == 0 {
		t.Error("Concepts empty")
	}
	if len(f.Organizations) == 0 {
		t.Error("Organizations empty")
	}
	if f.URL.Host != "cs.stanford.edu" {
		t.Errorf("URL host = %q", f.URL.Host)
	}
	// Query-name mentions must be excluded from OtherPersons.
	for _, p := range f.OtherPersons {
		if p == "smith" || p == "john smith" {
			t.Errorf("query name leaked into OtherPersons: %v", f.OtherPersons)
		}
	}
	// Mary Johnson must remain.
	found := false
	for _, p := range f.OtherPersons {
		if p == "mary johnson" {
			found = true
		}
	}
	if !found {
		t.Errorf("co-occurring person missing: %v", f.OtherPersons)
	}
}

func TestClosestName(t *testing.T) {
	fe := NewFeatureExtractor(nil, nil)
	text := "Mary Cohen and David Cohen attended. The paper cites Andrew McCallum."
	f := fe.Extract(text, "", "david cohen")
	if f.ClosestName != "david cohen" {
		t.Errorf("ClosestName = %q, want david cohen", f.ClosestName)
	}
}

func TestFeatureExtractorEmptyText(t *testing.T) {
	fe := NewFeatureExtractor(nil, nil)
	f := fe.Extract("", "", "smith")
	if f.MostFrequentName != "" || f.ClosestName != "" {
		t.Error("names from empty text")
	}
	if len(f.OtherPersons) != 0 || len(f.Organizations) != 0 {
		t.Error("entities from empty text")
	}
	if len(f.ConceptVector) != 0 {
		t.Error("concepts from empty text")
	}
}

func TestContainsToken(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"john smith", "smith", true},
		{"smith", "john smith", true},
		{"mary cohen", "smith", false},
		{"", "smith", false},
		{"", "", false},
	}
	for _, tc := range cases {
		if got := containsToken(tc.a, tc.b); got != tc.want {
			t.Errorf("containsToken(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
