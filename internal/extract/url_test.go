package extract

import (
	"testing"
	"testing/quick"
)

func TestParseURL(t *testing.T) {
	cases := []struct {
		raw        string
		host       string
		domain     string
		pathTokens int
	}{
		{"http://cs.stanford.edu/~jsmith/index.html", "cs.stanford.edu", "stanford.edu", 3},
		{"https://www.ox.ac.uk/people/smith", "www.ox.ac.uk", "ox.ac.uk", 2},
		{"http://example.com", "example.com", "example.com", 0},
		{"example.com/page", "example.com", "example.com", 1},
		{"http://host.com:8080/a?q=1", "host.com", "host.com", 1},
		{"http://user@host.com/a#frag", "host.com", "host.com", 1},
		{"", "", "", 0},
	}
	for _, tc := range cases {
		f := ParseURL(tc.raw)
		if f.Host != tc.host {
			t.Errorf("ParseURL(%q).Host = %q, want %q", tc.raw, f.Host, tc.host)
		}
		if f.Domain != tc.domain {
			t.Errorf("ParseURL(%q).Domain = %q, want %q", tc.raw, f.Domain, tc.domain)
		}
		if len(f.PathTokens) != tc.pathTokens {
			t.Errorf("ParseURL(%q).PathTokens = %v, want %d tokens", tc.raw, f.PathTokens, tc.pathTokens)
		}
	}
}

func TestURLSimilarityBands(t *testing.T) {
	sameHostA := ParseURL("http://cs.stanford.edu/~jsmith/pubs.html")
	sameHostB := ParseURL("http://cs.stanford.edu/~jsmith/cv.html")
	sameDomain := ParseURL("http://ai.stanford.edu/people")
	otherA := ParseURL("http://recipes-blog.com/cake")

	sHost := URLSimilarity(sameHostA, sameHostB)
	sDomain := URLSimilarity(sameHostA, sameDomain)
	sOther := URLSimilarity(sameHostA, otherA)

	if !(sHost > sDomain && sDomain > sOther) {
		t.Errorf("band ordering violated: host=%v domain=%v other=%v", sHost, sDomain, sOther)
	}
	if sHost < 0.9 {
		t.Errorf("same host = %v, want >= 0.9", sHost)
	}
	if sDomain != 0.8 {
		t.Errorf("same domain = %v, want 0.8", sDomain)
	}
	if sOther > 0.6 {
		t.Errorf("different domain = %v, want <= 0.6", sOther)
	}
}

func TestURLSimilarityIdentical(t *testing.T) {
	u := ParseURL("http://a.b.com/x/y")
	if got := URLSimilarity(u, u); got != 1 {
		t.Errorf("identical URL = %v, want 1", got)
	}
}

func TestURLSimilarityEmpty(t *testing.T) {
	u := ParseURL("http://a.com")
	e := ParseURL("")
	if got := URLSimilarity(u, e); got != 0 {
		t.Errorf("empty URL = %v, want 0", got)
	}
	if got := URLSimilarity(e, e); got != 0 {
		t.Errorf("both empty = %v, want 0", got)
	}
}

func TestURLSimilarityBoundsAndSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		fa, fb := ParseURL(a), ParseURL(b)
		s := URLSimilarity(fa, fb)
		if s < 0 || s > 1 {
			return false
		}
		return s == URLSimilarity(fb, fa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseURLNeverPanicsProperty(t *testing.T) {
	f := func(raw string) bool {
		_ = ParseURL(raw)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
