package extract

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/wordlists"
)

// EntityType classifies named entities recognized by the extractor.
type EntityType int

const (
	// PersonEntity is a person name (first + last, or bare surname).
	PersonEntity EntityType = iota
	// OrganizationEntity is a company, university or institution.
	OrganizationEntity
	// LocationEntity is a city or region.
	LocationEntity
)

// String returns the entity type label.
func (t EntityType) String() string {
	switch t {
	case PersonEntity:
		return "person"
	case OrganizationEntity:
		return "organization"
	case LocationEntity:
		return "location"
	default:
		return "unknown"
	}
}

// Entity is one recognized named entity occurrence.
type Entity struct {
	Type EntityType
	// Name is the canonical lower-cased surface form.
	Name string
	// Count is the number of occurrences in the document.
	Count int
}

// NER is a dictionary-based named entity recognizer for persons,
// organizations and locations, mirroring the role of the GATE/OpenCalais/
// AlchemyAPI services in the paper's pipeline.
type NER struct {
	firstNames *Gazetteer
	surnames   *Gazetteer
	orgs       *Gazetteer
	locations  *Gazetteer
}

// NewNER builds a recognizer over explicit dictionaries.
func NewNER(firstNames, surnames, orgs, locations []string) *NER {
	return &NER{
		firstNames: NewGazetteer(firstNames),
		surnames:   NewGazetteer(surnames),
		orgs:       NewGazetteer(orgs),
		locations:  NewGazetteer(locations),
	}
}

// DefaultNER returns a recognizer over the built-in wordlists, the
// dictionaries shared with the synthetic corpus generator.
func DefaultNER() *NER {
	return NewNER(wordlists.FirstNames, wordlists.Surnames,
		wordlists.Organizations, wordlists.Locations)
}

// Extract recognizes all entities in text and returns them aggregated by
// canonical name with occurrence counts, in decreasing count order (ties
// broken lexicographically for determinism).
func (n *NER) Extract(text string) []Entity {
	tokens := analysis.Tokenize(text)
	counts := make(map[EntityType]map[string]int)
	for _, t := range []EntityType{PersonEntity, OrganizationEntity, LocationEntity} {
		counts[t] = make(map[string]int)
	}

	// Organizations and locations: straight gazetteer hits.
	for _, m := range n.orgs.FindAll(tokens) {
		counts[OrganizationEntity][m.Canonical]++
	}
	for _, m := range n.locations.FindAll(tokens) {
		counts[LocationEntity][m.Canonical]++
	}

	// Persons: a first-name token followed by a surname token forms a full
	// name; a surname alone also counts (person pages frequently use bare
	// surnames), but only when the token is not part of an organization or
	// location mention.
	occupied := make([]bool, len(tokens))
	for _, m := range append(n.orgs.FindAll(tokens), n.locations.FindAll(tokens)...) {
		for i := m.Start; i < m.End; i++ {
			occupied[i] = true
		}
	}
	lower := make([]string, len(tokens))
	for i, t := range tokens {
		lower[i] = strings.ToLower(t)
	}
	i := 0
	for i < len(lower) {
		if occupied[i] {
			i++
			continue
		}
		if n.firstNames.Contains(lower[i]) && i+1 < len(lower) && !occupied[i+1] && n.surnames.Contains(lower[i+1]) {
			counts[PersonEntity][lower[i]+" "+lower[i+1]]++
			i += 2
			continue
		}
		if n.surnames.Contains(lower[i]) {
			counts[PersonEntity][lower[i]]++
		}
		i++
	}

	// Page-local coreference: a bare surname mention refers to the full
	// name with that surname appearing on the same page ("Cohen" after
	// "James Cohen"). Attribute bare counts to the most frequent matching
	// full name, so MostFrequentName reflects the specific person.
	persons := counts[PersonEntity]
	for name, c := range persons {
		if strings.Contains(name, " ") {
			continue
		}
		best, bestCount := "", 0
		for other, oc := range persons {
			if other != name && strings.HasSuffix(other, " "+name) &&
				(oc > bestCount || (oc == bestCount && other < best)) {
				best, bestCount = other, oc
			}
		}
		if best != "" {
			persons[best] += c
			delete(persons, name)
		}
	}

	var out []Entity
	for etype, byName := range counts {
		for name, c := range byName {
			out = append(out, Entity{Type: etype, Name: name, Count: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].Type != out[b].Type {
			return out[a].Type < out[b].Type
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Persons returns the canonical person names in text, most frequent first.
func (n *NER) Persons(text string) []string {
	return filterType(n.Extract(text), PersonEntity)
}

// Organizations returns the canonical organization names in text.
func (n *NER) Organizations(text string) []string {
	return filterType(n.Extract(text), OrganizationEntity)
}

// Locations returns the canonical location names in text.
func (n *NER) Locations(text string) []string {
	return filterType(n.Extract(text), LocationEntity)
}

func filterType(entities []Entity, t EntityType) []string {
	var out []string
	for _, e := range entities {
		if e.Type == t {
			out = append(out, e.Name)
		}
	}
	return out
}
