package extract

import (
	"math"
	"testing"

	"repro/internal/textsim"
)

func testConceptExtractor() *ConceptExtractor {
	concepts := map[string][]string{
		"ml": {"Machine learning", "Neural network"},
		"db": {"Database", "Entity resolution"},
	}
	words := map[string][]string{
		"ml": {"learning", "classifier", "training", "model"},
		"db": {"database", "query", "record", "linkage"},
	}
	return NewConceptExtractor(concepts, words)
}

func TestConceptExtraction(t *testing.T) {
	ce := testConceptExtractor()
	v := ce.Extract("We study learning with a classifier model trained on data.")
	if len(v) == 0 {
		t.Fatal("no concepts extracted")
	}
	if _, ok := v["Machine learning"]; !ok {
		t.Errorf("Machine learning missing: %v", v)
	}
	// L2 normalized.
	if n := v.Norm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("Norm = %v, want 1", n)
	}
}

func TestConceptLabelMention(t *testing.T) {
	ce := testConceptExtractor()
	// The literal label carries weight 3, so a label mention alone
	// activates the concept strongly.
	v := ce.Extract("A tutorial on entity resolution.")
	if _, ok := v["Entity resolution"]; !ok {
		t.Fatalf("label mention not detected: %v", v)
	}
	// A page about databases should be more similar to another database
	// page than to an ML page.
	dbA := ce.Extract("database query record linkage database")
	dbB := ce.Extract("The query hit every record in the database.")
	ml := ce.Extract("training a classifier model with learning")
	simDB := textsim.Cosine(dbA, dbB)
	simCross := textsim.Cosine(dbA, ml)
	if simDB <= simCross {
		t.Errorf("same-topic similarity %v should exceed cross-topic %v", simDB, simCross)
	}
}

func TestConceptEmptyText(t *testing.T) {
	ce := testConceptExtractor()
	if v := ce.Extract(""); len(v) != 0 {
		t.Errorf("concepts from empty text: %v", v)
	}
	if v := ce.Extract("完全 无关 词汇"); len(v) != 0 {
		t.Errorf("concepts from out-of-vocabulary text: %v", v)
	}
}

func TestTopConcepts(t *testing.T) {
	ce := testConceptExtractor()
	text := "database query record linkage and some learning"
	top := ce.TopConcepts(text, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// db concepts triggered by 4 words + ml by 1 → db concepts first.
	if top[0] != "Database" && top[0] != "Entity resolution" {
		t.Errorf("top concept = %q, want a db concept", top[0])
	}
	// k larger than the activation set truncates gracefully.
	all := ce.TopConcepts(text, 100)
	if len(all) < 2 {
		t.Errorf("all concepts = %v", all)
	}
	if got := ce.TopConcepts("", 5); len(got) != 0 {
		t.Errorf("TopConcepts of empty text = %v", got)
	}
}

func TestDefaultConceptExtractorCoverage(t *testing.T) {
	ce := DefaultConceptExtractor()
	v := ce.Extract("He published work on clustering, supervised learning and bayesian inference.")
	if len(v) == 0 {
		t.Fatal("default extractor found nothing in ML text")
	}
	found := false
	for c := range v {
		if c == "Machine learning" {
			found = true
		}
	}
	if !found {
		t.Errorf("Machine learning not activated: %v", v)
	}
}

func TestConceptDeterminism(t *testing.T) {
	ce := DefaultConceptExtractor()
	text := "clustering learning database query recipe kitchen"
	a := ce.TopConcepts(text, 5)
	b := ce.TopConcepts(text, 5)
	if len(a) != len(b) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering: %v vs %v", a, b)
		}
	}
}
