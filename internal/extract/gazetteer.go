// Package extract implements the information-extraction substrate the
// framework runs before computing similarities: dictionary-based named
// entity recognition for persons, organizations and locations, weighted
// Wikipedia-style concept extraction, and URL feature parsing. It plays the
// role of the AlchemyAPI / GATE / OpenCalais / SemanticHacker services the
// paper invoked; the paper itself characterizes the preprocessing as
// "(dictionary-based) named entity recognition techniques".
package extract

import (
	"strings"

	"repro/internal/analysis"
)

// Gazetteer is a dictionary of multi-word entries matched greedily (longest
// match first) against token sequences. Matching is case-insensitive.
type Gazetteer struct {
	// entries maps the first token of each entry to the candidate token
	// sequences starting with it, longest first.
	entries map[string][][]string
	size    int
	maxLen  int
}

// NewGazetteer builds a gazetteer from dictionary entries. Each entry is a
// (possibly multi-word) name; empty entries are ignored.
func NewGazetteer(names []string) *Gazetteer {
	g := &Gazetteer{entries: make(map[string][][]string)}
	for _, name := range names {
		tokens := strings.Fields(strings.ToLower(name))
		if len(tokens) == 0 {
			continue
		}
		g.entries[tokens[0]] = append(g.entries[tokens[0]], tokens)
		g.size++
		if len(tokens) > g.maxLen {
			g.maxLen = len(tokens)
		}
	}
	// Order candidates longest-first for greedy longest-match semantics.
	for first, cands := range g.entries {
		sortByLenDesc(cands)
		g.entries[first] = cands
	}
	return g
}

// Size returns the number of dictionary entries.
func (g *Gazetteer) Size() int { return g.size }

// Match is one gazetteer hit in a token sequence.
type Match struct {
	// Canonical is the matched dictionary entry joined by single spaces,
	// lower-cased.
	Canonical string
	// Start and End delimit the matched token span [Start, End).
	Start, End int
}

// FindAll scans the token sequence and returns all non-overlapping matches,
// greedily preferring longer matches at each position.
func (g *Gazetteer) FindAll(tokens []string) []Match {
	var matches []Match
	lower := make([]string, len(tokens))
	for i, t := range tokens {
		lower[i] = strings.ToLower(t)
	}
	i := 0
	for i < len(lower) {
		cands, ok := g.entries[lower[i]]
		if !ok {
			i++
			continue
		}
		matched := false
		for _, cand := range cands {
			if i+len(cand) > len(lower) {
				continue
			}
			if equalSeq(lower[i:i+len(cand)], cand) {
				matches = append(matches, Match{
					Canonical: strings.Join(cand, " "),
					Start:     i,
					End:       i + len(cand),
				})
				i += len(cand)
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return matches
}

// FindAllInText tokenizes text (without stemming or stopword removal, since
// entity names may contain stopwords) and returns all matches.
func (g *Gazetteer) FindAllInText(text string) []Match {
	return g.FindAll(analysis.Tokenize(text))
}

// Contains reports whether the exact (case-insensitive) name is in the
// dictionary.
func (g *Gazetteer) Contains(name string) bool {
	tokens := strings.Fields(strings.ToLower(name))
	if len(tokens) == 0 {
		return false
	}
	for _, cand := range g.entries[tokens[0]] {
		if equalSeq(cand, tokens) {
			return true
		}
	}
	return false
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortByLenDesc(cands [][]string) {
	// Insertion sort: candidate lists per first-token are tiny.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && len(cands[j]) > len(cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}
