package extract

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestGazetteerBasicMatch(t *testing.T) {
	g := NewGazetteer([]string{"stanford university", "google", "mit"})
	if g.Size() != 3 {
		t.Fatalf("Size = %d, want 3", g.Size())
	}
	matches := g.FindAll([]string{"He", "joined", "Google", "after", "MIT"})
	if len(matches) != 2 {
		t.Fatalf("matches = %v, want 2", matches)
	}
	if matches[0].Canonical != "google" || matches[0].Start != 2 {
		t.Errorf("first match = %+v", matches[0])
	}
	if matches[1].Canonical != "mit" || matches[1].Start != 4 {
		t.Errorf("second match = %+v", matches[1])
	}
}

func TestGazetteerLongestMatchWins(t *testing.T) {
	g := NewGazetteer([]string{"new york", "new york university", "york"})
	matches := g.FindAll([]string{"at", "new", "york", "university", "campus"})
	if len(matches) != 1 {
		t.Fatalf("matches = %v, want exactly 1", matches)
	}
	if matches[0].Canonical != "new york university" {
		t.Errorf("longest match lost: %+v", matches[0])
	}
	// Without the longer entry available, the two-token entry matches.
	matches = g.FindAll([]string{"in", "new", "york", "city"})
	if len(matches) != 1 || matches[0].Canonical != "new york" {
		t.Errorf("matches = %v, want [new york]", matches)
	}
}

func TestGazetteerNonOverlapping(t *testing.T) {
	g := NewGazetteer([]string{"a b", "b c"})
	matches := g.FindAll([]string{"a", "b", "c"})
	// Greedy: "a b" consumes tokens 0-1; token 2 alone matches nothing.
	if len(matches) != 1 || matches[0].Canonical != "a b" {
		t.Errorf("matches = %v, want [a b]", matches)
	}
}

func TestGazetteerCaseInsensitive(t *testing.T) {
	g := NewGazetteer([]string{"EPFL"})
	matches := g.FindAll([]string{"at", "epfl", "in", "Lausanne"})
	if len(matches) != 1 || matches[0].Canonical != "epfl" {
		t.Errorf("matches = %v", matches)
	}
}

func TestGazetteerContains(t *testing.T) {
	g := NewGazetteer([]string{"stanford university", "google"})
	if !g.Contains("Stanford University") {
		t.Error("Contains should be case-insensitive")
	}
	if g.Contains("stanford") {
		t.Error("prefix of an entry is not an entry")
	}
	if g.Contains("") {
		t.Error("empty string is not an entry")
	}
}

func TestGazetteerEmptyEntries(t *testing.T) {
	g := NewGazetteer([]string{"", "   ", "real entry"})
	if g.Size() != 1 {
		t.Errorf("Size = %d, want 1 (blank entries dropped)", g.Size())
	}
}

func TestGazetteerFindAllInText(t *testing.T) {
	g := NewGazetteer([]string{"ibm research"})
	matches := g.FindAllInText("She works at IBM Research, in the NLP group.")
	if len(matches) != 1 || matches[0].Canonical != "ibm research" {
		t.Errorf("matches = %v", matches)
	}
}

func TestGazetteerNoPanicsProperty(t *testing.T) {
	g := NewGazetteer([]string{"alpha beta", "gamma"})
	f := func(tokens []string) bool {
		matches := g.FindAll(tokens)
		// Matches must be in-range, ordered and non-overlapping.
		prevEnd := 0
		for _, m := range matches {
			if m.Start < prevEnd || m.End <= m.Start || m.End > len(tokens) {
				return false
			}
			prevEnd = m.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGazetteerDeterministic(t *testing.T) {
	names := []string{"x y z", "x y", "x"}
	g1 := NewGazetteer(names)
	g2 := NewGazetteer(names)
	tokens := []string{"x", "y", "z", "x", "y", "x"}
	if !reflect.DeepEqual(g1.FindAll(tokens), g2.FindAll(tokens)) {
		t.Error("gazetteer matching must be deterministic")
	}
	m := g1.FindAll(tokens)
	want := []string{"x y z", "x y", "x"}
	if len(m) != 3 {
		t.Fatalf("matches = %v", m)
	}
	for i, w := range want {
		if m[i].Canonical != w {
			t.Errorf("match %d = %q, want %q", i, m[i].Canonical, w)
		}
	}
}
