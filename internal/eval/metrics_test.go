package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectClustering(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	truth := []int{5, 5, 9, 9, 7} // same partition, different labels
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Fp, 1) || !almostEqual(r.F, 1) || !almostEqual(r.Rand, 1) {
		t.Errorf("perfect clustering scored %+v", r)
	}
	ari, _ := AdjustedRandIndex(pred, truth)
	if !almostEqual(ari, 1) {
		t.Errorf("ARI = %v, want 1", ari)
	}
	b, _ := BCubed(pred, truth)
	if !almostEqual(b.F, 1) {
		t.Errorf("BCubed F = %v, want 1", b.F)
	}
}

func TestPairwiseScoresKnown(t *testing.T) {
	// truth: {0,1} {2,3}; pred: {0,1,2} {3}
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 1}
	// Pairs: (0,1) TP; (0,2),(1,2) FP; (2,3) FN; (0,3),(1,3) TN.
	s, err := PairwiseScores(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Precision, 1.0/3.0) {
		t.Errorf("precision = %v, want 1/3", s.Precision)
	}
	if !almostEqual(s.Recall, 0.5) {
		t.Errorf("recall = %v, want 0.5", s.Recall)
	}
	wantF := 2 * (1.0 / 3.0) * 0.5 / (1.0/3.0 + 0.5)
	if !almostEqual(s.F, wantF) {
		t.Errorf("F = %v, want %v", s.F, wantF)
	}
}

func TestPairwiseVacuousCases(t *testing.T) {
	// All singletons predicted, all singletons true: no pairs on either
	// side → P = R = 1.
	s, err := PairwiseScores([]int{0, 1, 2}, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Precision, 1) || !almostEqual(s.Recall, 1) {
		t.Errorf("vacuous scores = %+v", s)
	}
}

func TestPurityKnown(t *testing.T) {
	// pred {0,1,2}: majority class 0 (2 of 3); pred {3}: pure.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 1}
	p, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 0.75) { // (2 + 1) / 4
		t.Errorf("purity = %v, want 0.75", p)
	}
	ip, err := InversePurity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// truth cluster {0,1} fully inside pred 0 (2); truth {2,3} split 1/1 → 1.
	if !almostEqual(ip, 0.75) {
		t.Errorf("inverse purity = %v, want 0.75", ip)
	}
	fp, _ := FpMeasure(pred, truth)
	if !almostEqual(fp, 0.75) {
		t.Errorf("Fp = %v, want 0.75", fp)
	}
}

func TestPurityExtremes(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	// All singletons: purity 1, inverse purity 0.5.
	singles := []int{0, 1, 2, 3}
	p, _ := Purity(singles, truth)
	ip, _ := InversePurity(singles, truth)
	if !almostEqual(p, 1) {
		t.Errorf("singleton purity = %v, want 1", p)
	}
	if !almostEqual(ip, 0.5) {
		t.Errorf("singleton inverse purity = %v, want 0.5", ip)
	}
	// One big cluster: purity 0.5, inverse purity 1.
	big := []int{0, 0, 0, 0}
	p, _ = Purity(big, truth)
	ip, _ = InversePurity(big, truth)
	if !almostEqual(p, 0.5) {
		t.Errorf("one-cluster purity = %v, want 0.5", p)
	}
	if !almostEqual(ip, 1) {
		t.Errorf("one-cluster inverse purity = %v, want 1", ip)
	}
}

func TestRandIndexKnown(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 1}
	// 6 pairs; agreements: (0,1) both-same; (0,3),(1,3) both-diff; (2,3)
	// diff-in-pred/same-in-truth disagree; (0,2),(1,2) same-in-pred/diff-
	// in-truth disagree → 4/6... wait recount: (0,3): pred 0 vs 1 diff,
	// truth 0 vs 1 diff → agree. (1,3): same → agree. (2,3): pred diff,
	// truth same → disagree. (0,2),(1,2): pred same, truth diff →
	// disagree ×2. (0,1): agree. Total agree = 3 of 6.
	r, err := RandIndex(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 0.5) {
		t.Errorf("Rand = %v, want 0.5", r)
	}
	// Single document.
	r, _ = RandIndex([]int{0}, []int{3})
	if !almostEqual(r, 1) {
		t.Errorf("single-doc Rand = %v", r)
	}
}

func TestBCubedKnown(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 1}
	b, err := BCubed(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Precision: docs 0,1: cluster {0,1,2}, same-class 2/3 each; doc 2:
	// 1/3; doc 3: 1/1 → (2/3+2/3+1/3+1)/4 = 2/3... compute: 2.6667/4 = 0.6667.
	if !almostEqual(b.Precision, (2.0/3+2.0/3+1.0/3+1)/4) {
		t.Errorf("BCubed P = %v", b.Precision)
	}
	// Recall: docs 0,1: class {0,1} both in cluster 0 → 1 each; doc 2:
	// class {2,3}, only itself in its cluster → 1/2; doc 3: 1/2.
	if !almostEqual(b.Recall, (1+1+0.5+0.5)/4) {
		t.Errorf("BCubed R = %v", b.Recall)
	}
}

func TestAdjustedRandIndexChanceLevel(t *testing.T) {
	// Identical partitions → 1 (tested above). Orthogonal partitions →
	// near 0 or below.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 0, 1}
	ari, err := AdjustedRandIndex(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari > 0.2 {
		t.Errorf("orthogonal ARI = %v, want near/below 0", ari)
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := Evaluate([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty clustering accepted")
	}
	if _, err := PairwiseScores([]int{0}, nil); err == nil {
		t.Error("PairwiseScores mismatch accepted")
	}
	if _, err := BCubed(nil, nil); err == nil {
		t.Error("BCubed empty accepted")
	}
	if _, err := RandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Error("RandIndex mismatch accepted")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("Purity empty accepted")
	}
	if _, err := AdjustedRandIndex([]int{0}, []int{0, 1}); err == nil {
		t.Error("ARI mismatch accepted")
	}
	if _, err := FpMeasure([]int{0}, []int{0, 1}); err == nil {
		t.Error("Fp mismatch accepted")
	}
	if _, err := InversePurity([]int{0}, []int{0, 1}); err == nil {
		t.Error("InversePurity mismatch accepted")
	}
}

func randomLabels(raw []byte, k int) []int {
	out := make([]int, len(raw))
	for i, b := range raw {
		out[i] = int(b) % k
	}
	return out
}

func TestMetricsBoundedProperty(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n == 0 {
			return true
		}
		pred := randomLabels(rawA[:n], 5)
		truth := randomLabels(rawB[:n], 5)
		r, err := Evaluate(pred, truth)
		if err != nil {
			return false
		}
		for _, v := range []float64{r.Fp, r.F, r.Rand} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		b, err := BCubed(pred, truth)
		if err != nil {
			return false
		}
		return b.F >= 0 && b.F <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMetricsLabelPermutationInvariantProperty(t *testing.T) {
	// Renaming cluster labels must not change any metric.
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		pred := randomLabels(raw, 4)
		truth := randomLabels(raw, 3) // deterministic function of raw, fine
		renamed := make([]int, len(pred))
		for i, l := range pred {
			renamed[i] = 100 - l*7
		}
		a, err1 := Evaluate(pred, truth)
		b, err2 := Evaluate(renamed, truth)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(a.Fp, b.Fp) && almostEqual(a.F, b.F) && almostEqual(a.Rand, b.Rand)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	got := Aggregate([]Result{
		{Fp: 0.8, F: 0.6, Rand: 0.7},
		{Fp: 0.6, F: 0.8, Rand: 0.9},
	})
	if !almostEqual(got.Fp, 0.7) || !almostEqual(got.F, 0.7) || !almostEqual(got.Rand, 0.8) {
		t.Errorf("Aggregate = %+v", got)
	}
	if z := Aggregate(nil); z.Fp != 0 || z.F != 0 || z.Rand != 0 {
		t.Errorf("Aggregate(nil) = %+v", z)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Test Table", "A", "B")
	tb.AddRow("row1", map[string]float64{"A": 0.5, "B": 0.9})
	tb.AddRow("row2", map[string]float64{"A": 0.7})
	if v, ok := tb.Get("row1", "B"); !ok || v != 0.9 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := tb.Get("row2", "B"); ok {
		t.Error("missing cell reported present")
	}
	if _, ok := tb.Get("nope", "A"); ok {
		t.Error("missing row reported present")
	}
	s := tb.String()
	if s == "" || len(tb.RowLabels()) != 2 {
		t.Error("table rendering broken")
	}
	best := tb.ArgBest()
	if best["row1"] != "B" || best["row2"] != "A" {
		t.Errorf("ArgBest = %v", best)
	}
	bestExcl := tb.ArgBest("B")
	if bestExcl["row1"] != "A" {
		t.Errorf("ArgBest with exclusion = %v", bestExcl)
	}
	if cols := tb.Columns(); len(cols) != 2 || cols[0] != "A" {
		t.Errorf("Columns = %v", cols)
	}
}
