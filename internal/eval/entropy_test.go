package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClusterEntropy(t *testing.T) {
	if got := ClusterEntropy(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := ClusterEntropy([]int{1, 1, 1}); got != 0 {
		t.Errorf("single cluster = %v, want 0", got)
	}
	// Two equal halves: H = ln 2.
	got := ClusterEntropy([]int{0, 0, 1, 1})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("two halves = %v, want ln2", got)
	}
	// Four singletons: H = ln 4.
	got = ClusterEntropy([]int{0, 1, 2, 3})
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("singletons = %v, want ln4", got)
	}
}

func TestMutualInformation(t *testing.T) {
	// Identical partitions: MI = H.
	labels := []int{0, 0, 1, 1, 2}
	mi, err := MutualInformation(labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-ClusterEntropy(labels)) > 1e-12 {
		t.Errorf("MI(self) = %v, want H = %v", mi, ClusterEntropy(labels))
	}
	// Independent partitions: MI = 0.
	pred := []int{0, 1, 0, 1}
	truth := []int{0, 0, 1, 1}
	mi, _ = MutualInformation(pred, truth)
	if math.Abs(mi) > 1e-12 {
		t.Errorf("MI(independent) = %v, want 0", mi)
	}
	if _, err := MutualInformation([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNMI(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2}
	renamed := []int{7, 7, 3, 3, 9}
	nmi, err := NMI(renamed, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI identical partitions = %v, want 1", nmi)
	}
	// Independent: 0.
	nmi, _ = NMI([]int{0, 1, 0, 1}, []int{0, 0, 1, 1})
	if math.Abs(nmi) > 1e-12 {
		t.Errorf("NMI independent = %v, want 0", nmi)
	}
	// Both trivial single-cluster partitions: identical → 1.
	nmi, _ = NMI([]int{5, 5}, []int{3, 3})
	if nmi != 1 {
		t.Errorf("NMI trivial identical = %v, want 1", nmi)
	}
	// One trivial, one not → 0 (no information shared).
	nmi, _ = NMI([]int{0, 0, 0}, []int{0, 1, 2})
	if nmi != 0 {
		t.Errorf("NMI trivial vs singletons = %v, want 0", nmi)
	}
}

func TestVI(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	vi, err := VI(labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vi) > 1e-12 {
		t.Errorf("VI(self) = %v, want 0", vi)
	}
	// Independent halves: VI = H1 + H2 = 2 ln2.
	vi, _ = VI([]int{0, 1, 0, 1}, []int{0, 0, 1, 1})
	if math.Abs(vi-2*math.Log(2)) > 1e-12 {
		t.Errorf("VI independent = %v, want 2ln2", vi)
	}
}

func TestVIIsMetricProperties(t *testing.T) {
	// Symmetry and identity over random partitions; triangle inequality on
	// a sampled triple.
	f := func(rawA, rawB, rawC []byte) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if len(rawC) < n {
			n = len(rawC)
		}
		if n == 0 {
			return true
		}
		a := randomLabels(rawA[:n], 4)
		b := randomLabels(rawB[:n], 4)
		c := randomLabels(rawC[:n], 4)
		ab, err1 := VI(a, b)
		ba, err2 := VI(b, a)
		if err1 != nil || err2 != nil || math.Abs(ab-ba) > 1e-9 {
			return false
		}
		aa, _ := VI(a, a)
		if math.Abs(aa) > 1e-9 {
			return false
		}
		ac, _ := VI(a, c)
		cb, _ := VI(c, b)
		return ab <= ac+cb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNMIBoundedProperty(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n == 0 {
			return true
		}
		nmi, err := NMI(randomLabels(rawA[:n], 5), randomLabels(rawB[:n], 5))
		if err != nil {
			return false
		}
		return nmi >= 0 && nmi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamePartition(t *testing.T) {
	if !samePartition([]int{0, 0, 1}, []int{5, 5, 9}) {
		t.Error("renamed partitions should be equal")
	}
	if samePartition([]int{0, 0, 1}, []int{5, 9, 9}) {
		t.Error("different partitions reported equal")
	}
	if samePartition([]int{0, 1}, []int{5, 5}) {
		t.Error("merge not detected")
	}
}
