package eval_test

import (
	"fmt"

	"repro/internal/eval"
)

func ExampleEvaluate() {
	truth := []int{0, 0, 1, 1} // two real persons, two pages each
	pred := []int{0, 0, 0, 1}  // one page of person 1 wrongly merged
	r, _ := eval.Evaluate(pred, truth)
	fmt.Printf("Fp=%.2f F=%.2f Rand=%.2f\n", r.Fp, r.F, r.Rand)
	// Output: Fp=0.75 F=0.40 Rand=0.50
}

func ExampleFpMeasure() {
	truth := []int{0, 0, 1, 1}
	perfect := []int{5, 5, 9, 9} // label names do not matter
	fp, _ := eval.FpMeasure(perfect, truth)
	fmt.Printf("%.2f\n", fp)
	// Output: 1.00
}

func ExampleBCubed() {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 0, 1}
	b, _ := eval.BCubed(pred, truth)
	fmt.Printf("P=%.2f R=%.2f\n", b.Precision, b.Recall)
	// Output: P=0.67 R=0.75
}
