// Package eval implements the clustering-quality measures of the paper's
// evaluation (Section V-A.3): pairwise precision/recall/F-measure, the
// Fp-measure (harmonic mean of purity and inverse purity), and the Rand
// index; plus adjusted Rand and B-Cubed (the official WePS-2 measure) as
// extensions. All metrics compare a predicted clustering against a
// reference clustering given as parallel label slices.
package eval

import (
	"fmt"

	"repro/internal/stats"
)

// Result bundles the three headline metrics the paper reports.
type Result struct {
	// Fp is the harmonic mean of purity and inverse purity.
	Fp float64
	// F is the pairwise F-measure.
	F float64
	// Rand is the Rand index.
	Rand float64
}

// Evaluate computes the paper's three metrics at once.
func Evaluate(pred, truth []int) (Result, error) {
	if len(pred) != len(truth) {
		return Result{}, fmt.Errorf("eval: %d predictions but %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return Result{}, fmt.Errorf("eval: empty clustering")
	}
	fp, err := FpMeasure(pred, truth)
	if err != nil {
		return Result{}, err
	}
	pr, err := PairwiseScores(pred, truth)
	if err != nil {
		return Result{}, err
	}
	rand, err := RandIndex(pred, truth)
	if err != nil {
		return Result{}, err
	}
	return Result{Fp: fp, F: pr.F, Rand: rand}, nil
}

// PairScores are pairwise precision, recall and F-measure: over all
// document pairs, a true positive is a pair clustered together that is
// together in the truth.
type PairScores struct {
	Precision, Recall, F float64
}

// PairwiseScores computes pairwise precision/recall/F.
func PairwiseScores(pred, truth []int) (PairScores, error) {
	if err := checkLabels(pred, truth); err != nil {
		return PairScores{}, err
	}
	var tp, fp, fn float64
	n := len(pred)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samePred := pred[i] == pred[j]
			sameTruth := truth[i] == truth[j]
			switch {
			case samePred && sameTruth:
				tp++
			case samePred && !sameTruth:
				fp++
			case !samePred && sameTruth:
				fn++
			}
		}
	}
	p := 1.0 // no predicted pairs: vacuous precision
	if tp+fp > 0 {
		p = tp / (tp + fp)
	}
	r := 1.0 // no true pairs: vacuous recall
	if tp+fn > 0 {
		r = tp / (tp + fn)
	}
	return PairScores{Precision: p, Recall: r, F: stats.Harmonic(p, r)}, nil
}

// Purity is the weighted fraction of each predicted cluster belonging to
// its majority truth class; it is 1 when every predicted cluster is pure
// (over-splitting is not punished).
func Purity(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	return directedPurity(pred, truth), nil
}

// InversePurity is Purity with the roles swapped: how well each true
// cluster is concentrated in one predicted cluster (over-merging is not
// punished).
func InversePurity(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	return directedPurity(truth, pred), nil
}

// FpMeasure is the harmonic mean of purity and inverse purity, the
// "Fp-measure" of the paper (after Hu et al.).
func FpMeasure(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	return stats.Harmonic(directedPurity(pred, truth), directedPurity(truth, pred)), nil
}

// directedPurity computes sum over clusters of from of max overlap with a
// cluster of to, divided by n.
func directedPurity(from, to []int) float64 {
	n := len(from)
	overlap := make(map[[2]int]int)
	sizes := make(map[int]int)
	for i := 0; i < n; i++ {
		overlap[[2]int{from[i], to[i]}]++
		sizes[from[i]]++
	}
	best := make(map[int]int)
	for key, c := range overlap {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	total := 0
	for _, b := range best {
		total += b
	}
	return float64(total) / float64(n)
}

// RandIndex is the fraction of document pairs on which the two clusterings
// agree (both together or both apart).
func RandIndex(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	n := len(pred)
	if n == 1 {
		return 1, nil
	}
	var agree, total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (pred[i] == pred[j]) == (truth[i] == truth[j]) {
				agree++
			}
			total++
		}
	}
	return agree / total, nil
}

// AdjustedRandIndex is the Rand index corrected for chance (Hubert &
// Arabie), an extension metric; 1 means identical partitions, ~0 means
// chance-level agreement.
func AdjustedRandIndex(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	n := len(pred)
	// Contingency table.
	table := make(map[[2]int]int)
	rowSums := make(map[int]int)
	colSums := make(map[int]int)
	for i := 0; i < n; i++ {
		table[[2]int{truth[i], pred[i]}]++
		rowSums[truth[i]]++
		colSums[pred[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumTable, sumRows, sumCols float64
	for _, c := range table {
		sumTable += choose2(c)
	}
	for _, c := range rowSums {
		sumRows += choose2(c)
	}
	for _, c := range colSums {
		sumCols += choose2(c)
	}
	totalPairs := choose2(n)
	if totalPairs == 0 {
		return 1, nil
	}
	expected := sumRows * sumCols / totalPairs
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial (all-singletons vs all-singletons etc.)
	}
	return (sumTable - expected) / (maxIndex - expected), nil
}

// BCubed computes B-Cubed precision, recall and F (Bagga & Baldwin), the
// official WePS-2 measure: per-document precision is the fraction of the
// document's predicted cluster sharing its true class, per-document recall
// the fraction of its true class found in its predicted cluster.
func BCubed(pred, truth []int) (PairScores, error) {
	if err := checkLabels(pred, truth); err != nil {
		return PairScores{}, err
	}
	n := len(pred)
	var pSum, rSum float64
	for i := 0; i < n; i++ {
		var sameCluster, sameClass, both int
		for j := 0; j < n; j++ {
			sc := pred[j] == pred[i]
			st := truth[j] == truth[i]
			if sc {
				sameCluster++
			}
			if st {
				sameClass++
			}
			if sc && st {
				both++
			}
		}
		pSum += float64(both) / float64(sameCluster)
		rSum += float64(both) / float64(sameClass)
	}
	p := pSum / float64(n)
	r := rSum / float64(n)
	return PairScores{Precision: p, Recall: r, F: stats.Harmonic(p, r)}, nil
}

func checkLabels(pred, truth []int) error {
	if len(pred) != len(truth) {
		return fmt.Errorf("eval: %d predictions but %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return fmt.Errorf("eval: empty clustering")
	}
	return nil
}
