package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Aggregate averages per-collection results into dataset-level numbers, the
// way the paper reports whole-dataset metrics (macro-average across names,
// then across runs).
func Aggregate(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	var out Result
	for _, r := range results {
		out.Fp += r.Fp
		out.F += r.F
		out.Rand += r.Rand
	}
	n := float64(len(results))
	out.Fp /= n
	out.F /= n
	out.Rand /= n
	return out
}

// Table accumulates named rows of named columns of float values and renders
// them as a fixed-width text table — the mechanism the experiment harness
// uses to print each of the paper's tables and figure series.
type Table struct {
	// Title labels the table ("Table II", "Figure 2", ...).
	Title   string
	columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells map[string]float64
}

// NewTable creates a table with the given column order.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, columns: columns}
}

// AddRow appends a row; cells maps column name to value. Missing columns
// render as blanks.
func (t *Table) AddRow(label string, cells map[string]float64) {
	copied := make(map[string]float64, len(cells))
	for k, v := range cells {
		copied[k] = v
	}
	t.rows = append(t.rows, tableRow{label: label, cells: copied})
}

// Columns returns the column order.
func (t *Table) Columns() []string { return t.columns }

// Get returns the cell value and whether it is present.
func (t *Table) Get(rowLabel, column string) (float64, bool) {
	for _, r := range t.rows {
		if r.label == rowLabel {
			v, ok := r.cells[column]
			return v, ok
		}
	}
	return 0, false
}

// RowLabels returns the row labels in insertion order.
func (t *Table) RowLabels() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.label
	}
	return out
}

// String renders the table with 4-decimal cells.
func (t *Table) String() string {
	var b strings.Builder
	labelWidth := len("row")
	for _, r := range t.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	colWidth := 8
	for _, c := range t.columns {
		if len(c) > colWidth {
			colWidth = len(c)
		}
	}
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-*s", labelWidth+2, "")
	for _, c := range t.columns {
		fmt.Fprintf(&b, "%*s", colWidth+2, c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, r.label)
		for _, c := range t.columns {
			if v, ok := r.cells[c]; ok {
				fmt.Fprintf(&b, "%*.4f", colWidth+2, v)
			} else {
				fmt.Fprintf(&b, "%*s", colWidth+2, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ArgBest returns, per row, the column with the highest value — used to
// check the Table III shape claim that different names are won by different
// functions. Columns listed in exclude are skipped.
func (t *Table) ArgBest(exclude ...string) map[string]string {
	skip := make(map[string]bool, len(exclude))
	for _, c := range exclude {
		skip[c] = true
	}
	out := make(map[string]string, len(t.rows))
	for _, r := range t.rows {
		bestCol, bestVal := "", -1.0
		cols := make([]string, 0, len(t.columns))
		cols = append(cols, t.columns...)
		sort.Strings(cols) // deterministic tie-breaking
		for _, c := range cols {
			if skip[c] {
				continue
			}
			if v, ok := r.cells[c]; ok && v > bestVal {
				bestCol, bestVal = c, v
			}
		}
		out[r.label] = bestCol
	}
	return out
}
