package eval

import "math"

// Entropy-based clustering measures. The paper's future work proposes
// "considering entropy based metrics" for judging resolution under
// incomplete information; this file provides the standard information-
// theoretic comparison measures: cluster entropy, mutual information,
// normalized mutual information (NMI) and variation of information (VI).

// ClusterEntropy returns the Shannon entropy (in nats) of the cluster-size
// distribution of labels.
func ClusterEntropy(labels []int) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, l := range labels {
		counts[l]++
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// MutualInformation returns the mutual information (in nats) between two
// clusterings of the same documents.
func MutualInformation(pred, truth []int) (float64, error) {
	if err := checkLabels(pred, truth); err != nil {
		return 0, err
	}
	n := float64(len(pred))
	joint := make(map[[2]int]int)
	pc := make(map[int]int)
	tc := make(map[int]int)
	for i := range pred {
		joint[[2]int{pred[i], truth[i]}]++
		pc[pred[i]]++
		tc[truth[i]]++
	}
	var mi float64
	for key, c := range joint {
		pxy := float64(c) / n
		px := float64(pc[key[0]]) / n
		py := float64(tc[key[1]]) / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0 {
		mi = 0 // guard tiny negative rounding
	}
	return mi, nil
}

// NMI returns the normalized mutual information in [0, 1], normalized by
// the arithmetic mean of the two entropies. Two identical partitions score
// 1; independent partitions score ~0. When both partitions are trivial
// (single cluster or all singletons on both sides identically), NMI is
// defined as 1 if they are equal partitions and 0 otherwise.
func NMI(pred, truth []int) (float64, error) {
	mi, err := MutualInformation(pred, truth)
	if err != nil {
		return 0, err
	}
	hp := ClusterEntropy(pred)
	ht := ClusterEntropy(truth)
	if hp == 0 && ht == 0 {
		if samePartition(pred, truth) {
			return 1, nil
		}
		return 0, nil
	}
	den := (hp + ht) / 2
	if den == 0 {
		return 0, nil
	}
	v := mi / den
	if v > 1 {
		v = 1
	}
	return v, nil
}

// VI returns the variation of information VI = H(pred) + H(truth) − 2·MI,
// a true metric on partitions (0 means identical; larger means more
// different).
func VI(pred, truth []int) (float64, error) {
	mi, err := MutualInformation(pred, truth)
	if err != nil {
		return 0, err
	}
	v := ClusterEntropy(pred) + ClusterEntropy(truth) - 2*mi
	if v < 0 {
		v = 0
	}
	return v, nil
}

func samePartition(a, b []int) bool {
	mapping := make(map[int]int)
	reverse := make(map[int]int)
	for i := range a {
		if m, ok := mapping[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			if _, ok := reverse[b[i]]; ok {
				return false
			}
			mapping[a[i]] = b[i]
			reverse[b[i]] = a[i]
		}
	}
	return true
}
