package eval

// CandidateRecall measures how much of a reference blocking an
// approximate blocking preserves: the fraction of co-blocked document
// pairs of the reference partition that are also co-blocked in the
// approximate one. It is the pair-level recall of the Block stage — the
// single quantity the ANN candidate index trades for sublinear time —
// and the number the recall sweep pins against the exact schemes.
//
// Both partitions are given as blocks of document indices; indices must
// be unique within a partition. Documents missing from the approximate
// partition count as singletons (their reference pairs are lost).
// A reference with no co-blocked pairs has nothing to lose: recall 1.
func CandidateRecall(reference, approx [][]int) float64 {
	block := make(map[int]int)
	for bi, members := range approx {
		for _, doc := range members {
			block[doc] = bi
		}
	}
	pairs, kept := 0, 0
	for _, members := range reference {
		for i := 0; i < len(members); i++ {
			bi, ok := block[members[i]]
			for j := i + 1; j < len(members); j++ {
				pairs++
				if bj, okj := block[members[j]]; ok && okj && bi == bj {
					kept++
				}
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return float64(kept) / float64(pairs)
}
