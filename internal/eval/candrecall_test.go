package eval

import "testing"

func TestCandidateRecall(t *testing.T) {
	ref := [][]int{{0, 1, 2}, {3, 4}, {5}}
	cases := []struct {
		name   string
		approx [][]int
		want   float64
	}{
		{"identical", [][]int{{0, 1, 2}, {3, 4}, {5}}, 1},
		{"coarser", [][]int{{0, 1, 2, 3, 4, 5}}, 1},
		{"one block split", [][]int{{0, 1}, {2}, {3, 4}, {5}}, 0.5},
		{"all singletons", [][]int{{0}, {1}, {2}, {3}, {4}, {5}}, 0},
		{"docs missing", [][]int{{0, 1, 2}}, 0.75},
	}
	for _, c := range cases {
		if got := CandidateRecall(ref, c.approx); got != c.want {
			t.Errorf("%s: recall %g, want %g", c.name, got, c.want)
		}
	}
	if got := CandidateRecall([][]int{{0}, {1}}, nil); got != 1 {
		t.Errorf("pairless reference: recall %g, want 1", got)
	}
}
