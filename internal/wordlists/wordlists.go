// Package wordlists holds the built-in vocabularies shared by the
// dictionary-based information extractors (internal/extract) and the
// synthetic web-corpus generator (internal/corpus).
//
// The paper's preprocessing applies dictionary-based named entity
// recognition; sharing one vocabulary between generation and extraction
// reproduces the closed-world part of that setup, while the generator also
// injects out-of-dictionary entities to model extraction misses.
package wordlists

// FirstNames are common given names used for person entities.
var FirstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "daniel",
	"nancy", "matthew", "lisa", "anthony", "betty", "mark", "margaret",
	"donald", "sandra", "steven", "ashley", "paul", "kimberly", "andrew",
	"emily", "joshua", "donna", "kenneth", "michelle", "kevin", "dorothy",
	"brian", "carol", "george", "amanda", "edward", "melissa", "ronald",
	"deborah", "timothy", "stephanie", "jason", "rebecca", "jeffrey",
	"sharon", "ryan", "laura", "jacob", "cynthia", "gary", "kathleen",
	"nicholas", "amy", "eric", "angela", "jonathan", "shirley", "stephen",
	"anna", "larry", "brenda", "justin", "pamela", "scott", "emma",
	"zoltan", "karl", "surender", "pedro", "andras", "wei", "yuki", "ivan",
}

// Surnames are common family names; the ambiguous query names of the
// synthetic datasets are drawn from this list.
var Surnames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "cohen", "hardt", "israel", "kaelbling", "voss",
	"mulford", "cheyer", "mccallum", "pereira", "ng", "mark", "chen",
	"kalashnikov", "mehrotra", "aberer", "miklos", "yerva", "bekkerman",
}

// Organizations are employer/affiliation entities appearing on web pages.
var Organizations = []string{
	"stanford university", "mit", "carnegie mellon university",
	"university of california", "epfl", "eth zurich", "oxford university",
	"cambridge university", "princeton university", "harvard university",
	"cornell university", "university of washington", "georgia tech",
	"university of toronto", "university of edinburgh", "tsinghua university",
	"google", "microsoft", "ibm research", "yahoo research", "bell labs",
	"xerox parc", "intel", "oracle", "sun microsystems", "hewlett packard",
	"general electric", "boeing", "lockheed martin", "siemens", "philips",
	"toyota", "ford motor company", "general motors", "exxon mobil",
	"goldman sachs", "morgan stanley", "mckinsey", "deloitte", "accenture",
	"world bank", "united nations", "red cross", "nasa", "darpa",
	"national science foundation", "acm", "ieee", "mayo clinic",
	"johns hopkins hospital", "cleveland clinic", "pfizer", "novartis",
	"roche", "first baptist church", "city council", "state department",
	"supreme court", "county school district", "art institute",
	"symphony orchestra", "modern art museum", "little league association",
	"rotary club", "chamber of commerce", "habitat for humanity",
}

// Locations are place entities appearing on web pages.
var Locations = []string{
	"new york", "san francisco", "los angeles", "chicago", "boston",
	"seattle", "austin", "denver", "portland", "atlanta", "miami",
	"philadelphia", "pittsburgh", "houston", "dallas", "phoenix",
	"minneapolis", "detroit", "baltimore", "washington", "london", "paris",
	"berlin", "munich", "zurich", "geneva", "lausanne", "vienna", "prague",
	"budapest", "amsterdam", "brussels", "madrid", "barcelona", "rome",
	"milan", "stockholm", "oslo", "helsinki", "copenhagen", "dublin",
	"tokyo", "kyoto", "beijing", "shanghai", "singapore", "sydney",
	"melbourne", "toronto", "vancouver", "montreal", "mexico city",
	"buenos aires", "sao paulo", "mumbai", "bangalore", "delhi", "cairo",
	"cape town", "nairobi", "tel aviv", "istanbul", "moscow", "warsaw",
}

// Domains are web hosts the generator assigns pages to; one per "community"
// so that the URL feature carries identity signal for some personas.
var Domains = []string{
	"cs.stanford.edu", "mit.edu", "cmu.edu", "berkeley.edu", "epfl.ch",
	"ethz.ch", "ox.ac.uk", "cam.ac.uk", "princeton.edu", "harvard.edu",
	"cornell.edu", "washington.edu", "gatech.edu", "toronto.edu",
	"research.google.com", "research.microsoft.com", "research.ibm.com",
	"labs.yahoo.com", "linkedin.com", "facebook.com", "twitter.com",
	"blogspot.com", "wordpress.com", "geocities.com", "tripod.com",
	"nytimes.com", "washingtonpost.com", "bbc.co.uk", "cnn.com",
	"reuters.com", "local-gazette.com", "smalltown-herald.com",
	"church-community.org", "sports-league.org", "art-gallery.org",
	"realestate-listings.com", "lawfirm-partners.com", "medical-center.org",
	"county-gov.us", "city-hall.gov", "genealogy-archive.org",
	"conference-site.org", "dblp.uni-trier.de", "arxiv.org",
	"slideshare.net", "youtube.com", "flickr.com", "imdb.com",
}

// TopicNames labels the topical communities personas belong to; each topic
// maps to a set of concepts and vocabulary in Concepts and TopicWords.
var TopicNames = []string{
	"machine-learning", "databases", "software-engineering", "physics",
	"medicine", "law", "finance", "journalism", "sports", "music",
	"visual-arts", "religion", "politics", "real-estate", "education",
	"genealogy", "cooking", "travel", "military-history", "environment",
}

// TopicWords maps each topic to content vocabulary the generator samples
// from and the TF-IDF functions pick up as signal.
var TopicWords = map[string][]string{
	"machine-learning": {
		"learning", "classifier", "neural", "training", "model", "feature",
		"kernel", "regression", "clustering", "supervised", "bayesian",
		"inference", "gradient", "optimization", "dataset", "accuracy",
		"algorithm", "prediction", "probabilistic", "reinforcement",
	},
	"databases": {
		"database", "query", "transaction", "index", "schema", "relational",
		"tuple", "join", "optimizer", "storage", "concurrency", "recovery",
		"warehouse", "mining", "integration", "cleaning", "duplicate",
		"record", "linkage", "resolution",
	},
	"software-engineering": {
		"software", "compiler", "testing", "debugging", "architecture",
		"module", "interface", "refactoring", "deployment", "version",
		"repository", "agile", "requirement", "specification", "framework",
		"library", "runtime", "performance", "scalability", "maintenance",
	},
	"physics": {
		"quantum", "particle", "relativity", "photon", "electron", "energy",
		"momentum", "entropy", "thermodynamics", "cosmology", "gravity",
		"collider", "spectrum", "wavelength", "plasma", "superconductor",
		"measurement", "symmetry", "field", "theory",
	},
	"medicine": {
		"patient", "clinical", "diagnosis", "treatment", "surgery",
		"therapy", "cardiology", "oncology", "pediatric", "hospital",
		"medication", "symptom", "disease", "vaccine", "immunology",
		"radiology", "prognosis", "trial", "dosage", "recovery",
	},
	"law": {
		"attorney", "litigation", "contract", "plaintiff", "defendant",
		"court", "appeal", "statute", "counsel", "verdict", "testimony",
		"deposition", "patent", "copyright", "liability", "settlement",
		"jurisdiction", "tribunal", "arbitration", "clause",
	},
	"finance": {
		"investment", "portfolio", "equity", "dividend", "hedge", "asset",
		"bond", "market", "trading", "merger", "acquisition", "valuation",
		"earnings", "revenue", "audit", "capital", "interest", "liquidity",
		"derivative", "brokerage",
	},
	"journalism": {
		"report", "editor", "column", "headline", "interview", "coverage",
		"press", "broadcast", "byline", "newsroom", "investigative",
		"correspondent", "editorial", "scoop", "deadline", "feature",
		"syndicate", "publication", "media", "story",
	},
	"sports": {
		"season", "coach", "tournament", "championship", "league", "score",
		"playoff", "roster", "stadium", "athlete", "training", "record",
		"defense", "offense", "victory", "defeat", "referee", "draft",
		"contract", "fans",
	},
	"music": {
		"album", "concert", "guitar", "orchestra", "symphony", "melody",
		"rhythm", "recording", "studio", "tour", "lyrics", "composer",
		"conductor", "harmony", "jazz", "chorus", "soprano", "ensemble",
		"acoustic", "performance",
	},
	"visual-arts": {
		"painting", "gallery", "exhibition", "sculpture", "canvas",
		"portrait", "landscape", "curator", "museum", "abstract",
		"watercolor", "etching", "installation", "photography", "studio",
		"brushwork", "palette", "commission", "collector", "retrospective",
	},
	"religion": {
		"congregation", "ministry", "sermon", "parish", "worship", "faith",
		"scripture", "pastor", "chapel", "mission", "prayer", "diocese",
		"theology", "baptism", "fellowship", "deacon", "liturgy", "choir",
		"pilgrimage", "charity",
	},
	"politics": {
		"election", "campaign", "senate", "congress", "policy", "governor",
		"legislation", "ballot", "candidate", "caucus", "diplomat",
		"embassy", "treaty", "referendum", "constituency", "lobbying",
		"administration", "cabinet", "incumbent", "coalition",
	},
	"real-estate": {
		"property", "listing", "mortgage", "realtor", "appraisal", "zoning",
		"tenant", "lease", "escrow", "foreclosure", "development",
		"commercial", "residential", "acreage", "brokerage", "closing",
		"inspection", "renovation", "equity", "neighborhood",
	},
	"education": {
		"curriculum", "classroom", "teacher", "student", "lesson", "grade",
		"principal", "tutoring", "literacy", "enrollment", "scholarship",
		"graduation", "semester", "faculty", "kindergarten", "homework",
		"assessment", "pedagogy", "district", "syllabus",
	},
	"genealogy": {
		"ancestor", "descendant", "census", "marriage", "birth", "death",
		"cemetery", "obituary", "lineage", "pedigree", "archive",
		"immigration", "homestead", "baptismal", "registry", "surname",
		"generation", "kinship", "estate", "will",
	},
	"cooking": {
		"recipe", "ingredient", "kitchen", "baking", "roasted", "sauce",
		"flavor", "cuisine", "chef", "restaurant", "menu", "dessert",
		"appetizer", "grill", "simmer", "seasoning", "pastry", "vegetarian",
		"organic", "delicious",
	},
	"travel": {
		"itinerary", "destination", "hotel", "flight", "tourism", "resort",
		"excursion", "passport", "adventure", "backpacking", "cruise",
		"sightseeing", "landmark", "souvenir", "hostel", "airfare",
		"vacation", "guidebook", "trek", "expedition",
	},
	"military-history": {
		"regiment", "battalion", "campaign", "infantry", "veteran",
		"armistice", "fortification", "siege", "cavalry", "garrison",
		"artillery", "brigade", "memorial", "medal", "deployment",
		"squadron", "trench", "armor", "reconnaissance", "treaty",
	},
	"environment": {
		"conservation", "ecosystem", "wildlife", "habitat", "emission",
		"renewable", "sustainability", "biodiversity", "wetland", "forest",
		"pollution", "climate", "recycling", "watershed", "species",
		"restoration", "drought", "erosion", "solar", "carbon",
	},
}

// Concepts maps each topic to Wikipedia-style concept labels; the concept
// extractor recognizes these and F1/F4 compare pages by them.
var Concepts = map[string][]string{
	"machine-learning": {
		"Machine learning", "Artificial intelligence", "Neural network",
		"Statistical classification", "Pattern recognition",
		"Data mining", "Support vector machine", "Deep learning",
	},
	"databases": {
		"Database", "SQL", "Data integration", "Entity resolution",
		"Record linkage", "Data warehouse", "Query optimization",
		"Information retrieval",
	},
	"software-engineering": {
		"Software engineering", "Compiler", "Software testing",
		"Version control", "Agile software development",
		"Software architecture", "Programming language", "Open source",
	},
	"physics": {
		"Quantum mechanics", "Particle physics", "General relativity",
		"Thermodynamics", "Cosmology", "String theory",
		"Condensed matter physics", "Astrophysics",
	},
	"medicine": {
		"Medicine", "Cardiology", "Oncology", "Surgery", "Clinical trial",
		"Immunology", "Pediatrics", "Public health",
	},
	"law": {
		"Law", "Contract law", "Intellectual property", "Litigation",
		"Constitutional law", "Criminal law", "Corporate law", "Tort",
	},
	"finance": {
		"Finance", "Investment banking", "Stock market", "Hedge fund",
		"Private equity", "Corporate finance", "Risk management",
		"Financial regulation",
	},
	"journalism": {
		"Journalism", "Newspaper", "Broadcast journalism",
		"Investigative journalism", "Mass media", "Editorial",
		"Freedom of the press", "News agency",
	},
	"sports": {
		"Sport", "Baseball", "Basketball", "American football", "Soccer",
		"Olympic Games", "Athletics", "Coaching",
	},
	"music": {
		"Music", "Classical music", "Jazz", "Rock music", "Opera",
		"Music theory", "Orchestra", "Songwriter",
	},
	"visual-arts": {
		"Visual arts", "Painting", "Sculpture", "Photography",
		"Modern art", "Art museum", "Contemporary art", "Printmaking",
	},
	"religion": {
		"Religion", "Christianity", "Theology", "Church", "Ministry",
		"Buddhism", "Interfaith dialogue", "Religious education",
	},
	"politics": {
		"Politics", "Election", "Legislature", "Political party",
		"Public policy", "Diplomacy", "Government", "Democracy",
	},
	"real-estate": {
		"Real estate", "Mortgage", "Property management", "Urban planning",
		"Construction", "Housing market", "Land development",
		"Commercial property",
	},
	"education": {
		"Education", "Primary education", "Secondary education",
		"Higher education", "Curriculum", "Educational technology",
		"Teacher", "School district",
	},
	"genealogy": {
		"Genealogy", "Family history", "Census", "Vital record",
		"Immigration", "Heraldry", "Archive", "Ancestry",
	},
	"cooking": {
		"Cooking", "Cuisine", "Chef", "Restaurant", "Baking",
		"Food critic", "Culinary arts", "Gastronomy",
	},
	"travel": {
		"Travel", "Tourism", "Hotel", "Airline", "Adventure travel",
		"Ecotourism", "Travel writing", "Cruise ship",
	},
	"military-history": {
		"Military history", "World War II", "Infantry", "Navy",
		"Air force", "Veteran", "Military strategy", "War memorial",
	},
	"environment": {
		"Environmentalism", "Climate change", "Conservation biology",
		"Renewable energy", "Ecology", "Sustainability",
		"Wildlife conservation", "Environmental policy",
	},
}

// BoilerplateWords are content-bearing navigation/chrome vocabulary used to
// build per-site page templates. Pages generated from the same template
// share large identical text blocks, so their TF-IDF similarity is very
// high even when they are about different persons — the "deceptive
// high-similarity band" that makes per-region accuracy estimation beat any
// single threshold (template/mirror pages are ubiquitous in web crawls).
var BoilerplateWords = []string{
	"homepage", "gallery", "archive", "newsletter", "sponsors", "events",
	"calendar", "directory", "listings", "profiles", "members", "login",
	"register", "password", "settings", "feedback", "guestbook", "webring",
	"bookmark", "sitemap", "copyright", "disclaimer", "privacy", "terms",
	"conditions", "advertising", "banner", "announcements", "bulletin",
	"classifieds", "forum", "downloads", "resources", "links", "photos",
	"webcam", "chat", "polls", "survey", "donate", "volunteer",
}

// FillerSentences are generic web-page boilerplate carrying no identity
// signal; the generator mixes them in to dilute topical words.
var FillerSentences = []string{
	"Welcome to this page.",
	"Please find more information below.",
	"Last updated recently by the site administrator.",
	"Click the links in the navigation bar to continue browsing.",
	"All rights reserved by the respective owners.",
	"This site is best viewed in any modern browser.",
	"Contact the webmaster for questions regarding this site.",
	"Thank you for visiting and come back soon.",
	"See the archive section for older entries.",
	"Subscribe to the newsletter for regular updates.",
	"The opinions expressed here are personal views only.",
	"Use the search box to find specific items on this site.",
	"This material may not be reproduced without permission.",
	"Details are subject to change without prior notice.",
	"A printable version of this page is available.",
}
