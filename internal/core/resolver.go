package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/extract"
	"repro/internal/simfn"
	"repro/internal/stats"
)

// Resolver runs Algorithm 1 over collections. It is safe to reuse across
// collections; each Resolve/Prepare call is independent.
type Resolver struct {
	opts  Options
	funcs []simfn.Func
	fe    *extract.FeatureExtractor
}

// New validates the options and returns a resolver.
func New(opts Options) (*Resolver, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	funcs, err := simfn.Subset(opts.FunctionIDs)
	if err != nil {
		return nil, err
	}
	return &Resolver{opts: opts, funcs: funcs, fe: extract.NewFeatureExtractor(nil, nil)}, nil
}

// Options returns a copy of the resolver's options.
func (r *Resolver) Options() Options { return r.opts }

// Prepared caches the per-collection work that does not depend on the
// training split: the prepared block (feature extraction, TF-IDF vectors)
// and the pairwise similarity matrices of every selected function. Multiple
// experiment runs with different training samples share one Prepared.
type Prepared struct {
	// Block is the prepared blocking unit.
	Block *simfn.Block
	// Matrices are the per-function similarity matrices, keyed by ID.
	Matrices map[string]*simfn.Matrix

	resolver *Resolver
}

// Prepare extracts features and computes all similarity matrices for one
// collection (the per-block G_w^fi computation of Algorithm 1).
//
// erlint:ignore non-cancelable compatibility shim; new callers use PrepareCtx
func (r *Resolver) Prepare(col *corpus.Collection) (*Prepared, error) {
	return r.PrepareCtx(context.Background(), col)
}

// PrepareCtx is Prepare with cancellation: the context is threaded into
// feature extraction and the pairwise matrix computation, so a canceled or
// timed-out context aborts mid-extraction or mid-matrix and returns
// ctx.Err(). The result is identical to Prepare's when the context never
// fires.
func (r *Resolver) PrepareCtx(ctx context.Context, col *corpus.Collection) (*Prepared, error) {
	if len(col.Docs) < 2 {
		return nil, fmt.Errorf("core: collection %q has %d documents", col.Name, len(col.Docs))
	}
	block, err := simfn.PrepareBlockCtx(ctx, col, r.fe)
	if err != nil {
		return nil, err
	}
	matrices, err := simfn.ComputeAllCtx(ctx, block, r.funcs)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Block:    block,
		Matrices: matrices,
		resolver: r,
	}, nil
}

// AdoptPrepared rebinds externally reconstructed prepared state — a
// decoded persistence snapshot — to this resolver, so its Run/RunWith use
// this resolver's options and function set. It validates that the state
// covers every function the resolver scores with and that each matrix
// matches the block's document count; adopting a snapshot produced by a
// different function subset fails here rather than misresolving later.
func (r *Resolver) AdoptPrepared(block *simfn.Block, matrices map[string]*simfn.Matrix) (*Prepared, error) {
	if block == nil {
		return nil, fmt.Errorf("core: adopting prepared state with no block")
	}
	if len(block.Truth) != len(block.Docs) {
		return nil, fmt.Errorf("core: block %q has %d documents but %d truth labels",
			block.Name, len(block.Docs), len(block.Truth))
	}
	for _, f := range r.funcs {
		m := matrices[f.ID]
		if m == nil {
			return nil, fmt.Errorf("core: prepared state for block %q lacks the %s matrix", block.Name, f.ID)
		}
		if m.Len() != len(block.Docs) {
			return nil, fmt.Errorf("core: block %q matrix %s covers %d documents, block has %d",
				block.Name, f.ID, m.Len(), len(block.Docs))
		}
	}
	return &Prepared{Block: block, Matrices: matrices, resolver: r}, nil
}

// PrepareAll prepares independent collections concurrently on a bounded
// worker pool (GOMAXPROCS) and returns the results in input order. Blocks
// are independent by construction — the paper's blocking scheme computes
// similarities only within a block — so per-name preparation (feature
// extraction, TF-IDF, all similarity matrices) parallelizes without
// coordination. The result slice is deterministic: out[i] always
// corresponds to cols[i], and each Prepared is identical to what a serial
// r.Prepare(cols[i]) would build.
//
// erlint:ignore non-cancelable compatibility shim; new callers use PrepareAllCtx
func (r *Resolver) PrepareAll(cols []*corpus.Collection) ([]*Prepared, error) {
	return r.PrepareAllCtx(context.Background(), cols)
}

// PrepareAllCtx is PrepareAll with cancellation: a canceled or timed-out
// context stops workers from claiming further collections, aborts the
// in-flight per-collection preparations, and returns ctx.Err().
func (r *Resolver) PrepareAllCtx(ctx context.Context, cols []*corpus.Collection) ([]*Prepared, error) {
	out := make([]*Prepared, len(cols))
	errs := make([]error, len(cols))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers <= 1 {
		for i, col := range cols {
			p, err := r.PrepareCtx(ctx, col)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				return nil, fmt.Errorf("core: preparing %q: %w", col.Name, err)
			}
			out[i] = p
		}
		return out, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= len(cols) {
					return
				}
				out[i], errs[i] = r.PrepareCtx(ctx, cols[i])
				if errs[i] != nil {
					// Stop claiming further collections; the error is
					// reported to the caller, so finishing the rest of
					// the dataset would be wasted work.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: preparing %q: %w", cols[i].Name, err)
		}
	}
	return out, nil
}

// Analysis is the per-run state of Algorithm 1: a training sample and the
// full set of decision graphs G_{i,Dj} with their accuracy estimates.
type Analysis struct {
	// Prepared links back to the shared per-collection state.
	Prepared *Prepared
	// Train is this run's training sample.
	Train *Training
	// Graphs holds one decision graph per (function, criterion).
	Graphs []*DecisionGraph

	opts Options
	rng  *rand.Rand
}

// Run draws a training sample with the given seed and builds every
// decision graph. Distinct seeds give the independent runs the paper
// averages over.
func (p *Prepared) Run(runSeed int64) (*Analysis, error) {
	return p.RunWith(runSeed, p.resolver.opts)
}

// RunWith is Run with per-run option overrides (training fraction, region
// count, clustering method), letting ablation experiments share one
// expensive Prepare across many configurations. The function set is fixed
// by the Prepare call; opts.FunctionIDs is ignored here.
func (p *Prepared) RunWith(runSeed int64, opts Options) (*Analysis, error) {
	if opts.TrainFraction <= 0 || opts.TrainFraction >= 1 {
		return nil, fmt.Errorf("core: train fraction %v out of (0,1)", opts.TrainFraction)
	}
	if opts.RegionK < 2 {
		return nil, fmt.Errorf("core: region count %d < 2", opts.RegionK)
	}
	rng := stats.NewRNG(runSeed)
	train, err := NewTraining(p.Block, opts.TrainFraction, rng)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Prepared: p, Train: train, opts: opts, rng: rng}
	for _, f := range p.resolver.funcs {
		for _, crit := range AllCriteria {
			dg, err := buildDecisionGraph(f.ID, crit, p.Matrices[f.ID], train,
				opts.RegionK, rng)
			if err != nil {
				return nil, err
			}
			a.Graphs = append(a.Graphs, dg)
		}
	}
	return a, nil
}

// Resolution is one final entity resolution of a block.
type Resolution struct {
	// Labels assigns each document a cluster index.
	Labels []int
	// Source describes which combination produced the clustering.
	Source string
}

// NumEntities returns the number of predicted entities.
func (r *Resolution) NumEntities() int { return ergraph.NumClusters(r.Labels) }

// cluster applies the configured final clustering step to a combined graph.
func (a *Analysis) cluster(g *ergraph.Graph) []int {
	switch a.opts.Clustering {
	case CorrelationClustering:
		return ergraph.CorrelationCluster(g, a.rng)
	default:
		return g.ConnectedComponents()
	}
}

// BestThresholdOnly resolves with the best threshold-criterion graph (the
// paper's I columns: "maximal performance considering just the threshold-
// based technique").
func (a *Analysis) BestThresholdOnly() (*Resolution, error) {
	best, err := SelectBestGraph(a.Graphs, ThresholdCriterion)
	if err != nil {
		return nil, err
	}
	return &Resolution{Labels: a.cluster(best.Graph), Source: best.Label()}, nil
}

// BestAnyCriterion resolves with the best graph over all decision criteria
// (the paper's C columns: "chose the best decision criteria, based on
// accuracy estimation of the regions" — the combination that performed
// best in the paper).
func (a *Analysis) BestAnyCriterion() (*Resolution, error) {
	best, err := SelectBestGraph(a.Graphs, AllCriteria...)
	if err != nil {
		return nil, err
	}
	return &Resolution{Labels: a.cluster(best.Graph), Source: best.Label()}, nil
}

// WeightedAverage resolves with the accuracy-weighted average combination
// (the paper's W column). Each function is represented by its best
// criterion's graph.
func (a *Analysis) WeightedAverage() (*Resolution, error) {
	per := bestPerFunction(a.Graphs)
	combined, threshold, err := WeightedAverageGraph(per, a.Prepared.Matrices, a.Train)
	if err != nil {
		return nil, err
	}
	return &Resolution{
		Labels: a.cluster(combined),
		Source: fmt.Sprintf("weighted-average(th=%.3f)", threshold),
	}, nil
}

// MajorityVote resolves with the simple majority-vote fusion over each
// function's best graph (ablation baseline).
func (a *Analysis) MajorityVote() (*Resolution, error) {
	per := bestPerFunction(a.Graphs)
	combined, err := MajorityVoteGraph(per)
	if err != nil {
		return nil, err
	}
	return &Resolution{Labels: a.cluster(combined), Source: "majority-vote"}, nil
}

// SingleFunction resolves with one function under one criterion — the
// per-function bars of Figures 2 and 3 and the F1..F10 columns of Table III
// use the threshold criterion.
func (a *Analysis) SingleFunction(funcID string, crit CriterionKind) (*Resolution, error) {
	for _, g := range a.Graphs {
		if g.FuncID == funcID && g.Criterion == crit {
			return &Resolution{Labels: a.cluster(g.Graph), Source: g.Label()}, nil
		}
	}
	return nil, fmt.Errorf("core: no graph for %s/%s", funcID, crit)
}

// Graph returns the decision graph for (funcID, crit), for inspection
// (Figure 1 reads the k-means estimate of F3 this way).
func (a *Analysis) Graph(funcID string, crit CriterionKind) (*DecisionGraph, error) {
	for _, g := range a.Graphs {
		if g.FuncID == funcID && g.Criterion == crit {
			return g, nil
		}
	}
	return nil, fmt.Errorf("core: no graph for %s/%s", funcID, crit)
}

// GraphsFor returns the decision graphs restricted to the given function
// IDs and criteria — the mechanism behind the paper's I4/I7/I10 and
// C4/C7/C10 columns, which select the best graph from different candidate
// pools.
func (a *Analysis) GraphsFor(funcIDs []string, criteria ...CriterionKind) []*DecisionGraph {
	wantFunc := make(map[string]bool, len(funcIDs))
	for _, id := range funcIDs {
		wantFunc[id] = true
	}
	wantCrit := make(map[CriterionKind]bool, len(criteria))
	for _, c := range criteria {
		wantCrit[c] = true
	}
	var out []*DecisionGraph
	for _, g := range a.Graphs {
		if wantFunc[g.FuncID] && wantCrit[g.Criterion] {
			out = append(out, g)
		}
	}
	return out
}

// BestOver resolves with the best graph among the given functions and
// criteria, selected by training accuracy.
func (a *Analysis) BestOver(funcIDs []string, criteria ...CriterionKind) (*Resolution, error) {
	best, err := SelectBestGraph(a.GraphsFor(funcIDs, criteria...), criteria...)
	if err != nil {
		return nil, err
	}
	return &Resolution{Labels: a.cluster(best.Graph), Source: best.Label()}, nil
}

// WeightedAverageOver resolves with the weighted-average combination
// restricted to the given functions.
func (a *Analysis) WeightedAverageOver(funcIDs []string) (*Resolution, error) {
	per := bestPerFunction(a.GraphsFor(funcIDs, AllCriteria...))
	combined, threshold, err := WeightedAverageGraph(per, a.Prepared.Matrices, a.Train)
	if err != nil {
		return nil, err
	}
	return &Resolution{
		Labels: a.cluster(combined),
		Source: fmt.Sprintf("weighted-average(th=%.3f)", threshold),
	}, nil
}

// Resolve runs the full pipeline on a collection with the resolver's seed
// and the paper's best-performing combination (best graph over all
// criteria, then clustering).
//
// erlint:ignore non-cancelable compatibility shim; new callers use ResolveCtx
func (r *Resolver) Resolve(col *corpus.Collection) (*Resolution, error) {
	return r.ResolveCtx(context.Background(), col)
}

// ResolveCtx is Resolve with cancellation: a canceled or timed-out context
// aborts the preparation stage (feature extraction and pairwise matrices)
// and returns ctx.Err().
func (r *Resolver) ResolveCtx(ctx context.Context, col *corpus.Collection) (*Resolution, error) {
	prep, err := r.PrepareCtx(ctx, col)
	if err != nil {
		return nil, err
	}
	a, err := prep.Run(r.opts.Seed)
	if err != nil {
		return nil, err
	}
	return a.BestAnyCriterion()
}
