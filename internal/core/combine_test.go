package core

import (
	"testing"

	"repro/internal/ergraph"
	"repro/internal/simfn"
)

// buildGraph makes a DecisionGraph over n docs with the given edges and
// metadata, for combination-level unit tests.
func buildGraph(t *testing.T, funcID string, n int, acc float64, edges ...[2]int) *DecisionGraph {
	t.Helper()
	g := ergraph.NewGraph(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return &DecisionGraph{
		FuncID:        funcID,
		Criterion:     ThresholdCriterion,
		Graph:         g,
		TrainAccuracy: acc,
		Threshold:     0.5,
	}
}

// uniformMatrix returns an n×n similarity matrix with every off-diagonal
// value v.
func uniformMatrix(n int, v float64) *simfn.Matrix {
	m := simfn.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, v)
		}
	}
	return m
}

func TestMajorityVoteGraphCounting(t *testing.T) {
	// Edge (0,1) in 2 of 3 graphs → kept; edge (1,2) in 1 of 3 → dropped.
	graphs := []*DecisionGraph{
		buildGraph(t, "F1", 3, 0.9, [2]int{0, 1}),
		buildGraph(t, "F2", 3, 0.9, [2]int{0, 1}, [2]int{1, 2}),
		buildGraph(t, "F3", 3, 0.9),
	}
	combined, err := MajorityVoteGraph(graphs)
	if err != nil {
		t.Fatal(err)
	}
	if !combined.HasEdge(0, 1) {
		t.Error("majority edge dropped")
	}
	if combined.HasEdge(1, 2) {
		t.Error("minority edge kept")
	}
}

func TestWeightedAverageGraphUnanimousHighConfidence(t *testing.T) {
	// Three graphs all agree on edge (0,1) with high confidence; the
	// trained threshold must keep it and reject the never-voted edge (2,3).
	n := 4
	graphs := []*DecisionGraph{
		buildGraph(t, "F1", n, 0.9, [2]int{0, 1}),
		buildGraph(t, "F2", n, 0.9, [2]int{0, 1}),
		buildGraph(t, "F3", n, 0.9, [2]int{0, 1}),
	}
	matrices := map[string]*simfn.Matrix{
		"F1": uniformMatrix(n, 0.8),
		"F2": uniformMatrix(n, 0.8),
		"F3": uniformMatrix(n, 0.8),
	}
	train := &Training{
		Docs:     []int{0, 1, 2, 3},
		DocTruth: []int{0, 0, 1, 2},
		Pairs:    [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
		Links:    []bool{true, false, false, false, false, false},
	}
	combined, threshold, err := WeightedAverageGraph(graphs, matrices, train)
	if err != nil {
		t.Fatal(err)
	}
	if threshold <= 0 || threshold > 1 {
		t.Errorf("threshold = %v", threshold)
	}
	if !combined.HasEdge(0, 1) {
		t.Error("unanimous high-confidence edge dropped")
	}
	if combined.HasEdge(2, 3) {
		t.Error("unvoted edge linked")
	}
}

func TestWeightedAverageGraphDownWeightsNoisyFunction(t *testing.T) {
	// One reliable graph votes for the true link; one chance-level graph
	// votes for a wrong link. The reliable function's weight dominates, so
	// only the true link survives the trained threshold.
	n := 4
	good := buildGraph(t, "F1", n, 0.95, [2]int{0, 1})
	noisy := buildGraph(t, "F2", n, 0.50, [2]int{2, 3})
	matrices := map[string]*simfn.Matrix{
		"F1": uniformMatrix(n, 0.9),
		"F2": uniformMatrix(n, 0.9),
	}
	train := &Training{
		Docs:     []int{0, 1, 2, 3},
		DocTruth: []int{0, 0, 1, 2},
		Pairs:    [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
		Links:    []bool{true, false, false, false, false, false},
	}
	combined, _, err := WeightedAverageGraph([]*DecisionGraph{good, noisy}, matrices, train)
	if err != nil {
		t.Fatal(err)
	}
	if !combined.HasEdge(0, 1) {
		t.Error("reliable vote lost")
	}
	if combined.HasEdge(2, 3) {
		t.Error("chance-level vote won")
	}
}

func TestThresholdCandidatesCoverRange(t *testing.T) {
	n := 3
	scores := simfn.NewMatrix(n)
	scores.Set(0, 1, 0.2)
	scores.Set(0, 2, 0.6)
	scores.Set(1, 2, 0.9)
	train := &Training{
		Pairs: [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Links: []bool{false, true, true},
	}
	cands := thresholdCandidates(train, scores)
	// 0, midpoints 0.4 and 0.75, top 0.9+ε.
	if len(cands) != 4 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0] != 0 {
		t.Errorf("first candidate = %v, want 0", cands[0])
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("candidates not increasing: %v", cands)
		}
	}
}

func TestGraphFromScores(t *testing.T) {
	scores := simfn.NewMatrix(3)
	scores.Set(0, 1, 0.7)
	scores.Set(0, 2, 0.3)
	scores.Set(1, 2, 0.5)
	g := graphFromScores(scores, 0.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("edges at/above threshold missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("edge below threshold present")
	}
}
