package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/simfn"
	"repro/internal/stats"
)

// Training is the labeled sample the framework learns from: a fraction of
// the block's documents is revealed, and every pair among them becomes a
// labeled training pair ("a small training sample, where we know the
// equivalence relations").
type Training struct {
	// Docs are the revealed document indices.
	Docs []int
	// Pairs are the training pairs (indices into the block).
	Pairs [][2]int
	// Links are the ground-truth labels, parallel to Pairs.
	Links []bool
	// DocTruth is the ground-truth persona label per revealed document,
	// parallel to Docs.
	DocTruth []int
}

// NewTraining samples a training set from the block. The paper trains on
// "10% of the complete dataset"; we read the dataset as the pair space the
// similarity functions operate on, so a fraction f reveals ceil(sqrt(f)·n)
// documents — all pairs among them (≈ f of all pairs) become labeled
// training pairs. At least 4 documents are always revealed so some pairs
// exist.
func NewTraining(b *simfn.Block, fraction float64, rng *rand.Rand) (*Training, error) {
	n := len(b.Docs)
	if n < 2 {
		return nil, fmt.Errorf("core: block %q has %d documents", b.Name, n)
	}
	k := int(math.Ceil(math.Sqrt(fraction) * float64(n)))
	if k < 4 {
		k = 4
	}
	if k > n {
		k = n
	}
	docs := stats.SampleWithoutReplacement(rng, n, k)
	sort.Ints(docs)
	t := &Training{Docs: docs}
	for _, d := range docs {
		t.DocTruth = append(t.DocTruth, b.Truth[d])
	}
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			a, b2 := docs[i], docs[j]
			t.Pairs = append(t.Pairs, [2]int{a, b2})
			t.Links = append(t.Links, b.Truth[a] == b.Truth[b2])
		}
	}
	return t, nil
}

// Values extracts the similarity values of the training pairs from a
// similarity matrix, parallel to Pairs.
func (t *Training) Values(m *simfn.Matrix) []float64 {
	out := make([]float64, len(t.Pairs))
	for i, p := range t.Pairs {
		out[i] = m.At(p[0], p[1])
	}
	return out
}

// Positives returns the number of positive (link) training pairs.
func (t *Training) Positives() int {
	c := 0
	for _, l := range t.Links {
		if l {
			c++
		}
	}
	return c
}

// LearnThreshold picks the threshold maximizing the number of correct
// decisions on the training sample ("we have chosen a threshold, which –
// based on the training set – maximizes the number of correct decisions").
// Candidates are midpoints between adjacent distinct values plus the
// extremes 0 and 1+ε; ties prefer the higher threshold (fewer links, safer
// precision). With no data it returns 0.5.
func LearnThreshold(values []float64, links []bool) float64 {
	if len(values) == 0 || len(values) != len(links) {
		return 0.5
	}
	type vl struct {
		v    float64
		link bool
	}
	pairs := make([]vl, len(values))
	for i := range values {
		pairs[i] = vl{values[i], links[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	totalPos := 0
	for _, p := range pairs {
		if p.link {
			totalPos++
		}
	}
	// Threshold t classifies v >= t as link. Sweep thresholds from above
	// the max (everything non-link) down; correct(t) = negBelow + posAtOrAbove.
	// Start: t = max+ε → correct = totalNeg.
	bestCorrect := len(pairs) - totalPos
	bestThreshold := pairs[len(pairs)-1].v + 1e-9
	if bestThreshold > 1 {
		bestThreshold = 1
	}

	// Walk cut positions: threshold just below pairs[i].v for descending i
	// groups of equal value.
	posAbove, negAbove := 0, 0
	i := len(pairs) - 1
	for i >= 0 {
		j := i
		for j >= 0 && pairs[j].v == pairs[i].v {
			if pairs[j].link {
				posAbove++
			} else {
				negAbove++
			}
			j--
		}
		// Threshold between pairs[j].v and pairs[i].v (or at 0).
		var t float64
		if j >= 0 {
			t = (pairs[j].v + pairs[i].v) / 2
		} else {
			t = pairs[i].v - 1e-9
			if t < 0 {
				t = 0
			}
		}
		correct := (len(pairs) - totalPos - negAbove) + posAbove
		if correct > bestCorrect {
			bestCorrect = correct
			bestThreshold = t
		}
		i = j
	}
	return stats.Clamp(bestThreshold, 0, 1)
}
