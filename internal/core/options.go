// Package core implements the paper's entity-resolution framework
// (Section IV, Algorithm 1): per-function similarity graphs over a block,
// threshold and region-accuracy decision criteria learned from a small
// training sample, combination of the per-function decision graphs (best-
// graph selection, weighted average, majority vote), and a final clustering
// step (transitive closure or correlation clustering).
package core

import (
	"fmt"
	"strings"

	"repro/internal/simfn"
)

// ClusteringMethod selects Algorithm 1's final clustering step.
type ClusteringMethod int

const (
	// TransitiveClosure clusters by connected components of the combined
	// graph, the paper's primary implementation.
	TransitiveClosure ClusteringMethod = iota
	// CorrelationClustering runs pivot + local-search correlation
	// clustering, the alternative the paper experimented with.
	CorrelationClustering
)

// String returns the method label.
func (m ClusteringMethod) String() string {
	switch m {
	case TransitiveClosure:
		return "transitive-closure"
	case CorrelationClustering:
		return "correlation-clustering"
	default:
		return "unknown"
	}
}

// ClusteringNames are the accepted ParseClusteringMethod spellings, in
// display order for CLI/API usage messages.
var ClusteringNames = []string{"closure", "correlation"}

// ParseClusteringMethod maps a CLI/API name to a clustering method. Unknown
// names return an error listing every valid spelling.
func ParseClusteringMethod(name string) (ClusteringMethod, error) {
	switch name {
	case "closure":
		return TransitiveClosure, nil
	case "correlation":
		return CorrelationClustering, nil
	default:
		return 0, fmt.Errorf("core: unknown clustering %q (valid: %s)",
			name, strings.Join(ClusteringNames, ", "))
	}
}

// Options configures a Resolver. The zero value is not valid; use
// DefaultOptions as a base.
type Options struct {
	// FunctionIDs selects the similarity functions ("F1".."F10").
	FunctionIDs []string
	// TrainFraction is the fraction of each block's documents revealed as
	// the labeled training sample (the paper uses 10%).
	TrainFraction float64
	// RegionK is the number of regions for both equal-width bins and
	// k-means partitioning (the paper shows k-means regions with ~10
	// clusters in Figure 1).
	RegionK int
	// Clustering is the final clustering step.
	Clustering ClusteringMethod
	// Seed drives training-sample selection and k-means seeding.
	Seed int64
}

// DefaultOptions mirrors the paper's experimental setup: all ten functions,
// 10% training, 10 regions, transitive closure.
func DefaultOptions() Options {
	return Options{
		FunctionIDs:   simfn.SubsetI10,
		TrainFraction: 0.10,
		RegionK:       10,
		Clustering:    TransitiveClosure,
		Seed:          1,
	}
}

// validate normalizes and checks options.
func (o *Options) validate() error {
	if len(o.FunctionIDs) == 0 {
		return fmt.Errorf("core: no similarity functions selected")
	}
	if o.TrainFraction <= 0 || o.TrainFraction >= 1 {
		return fmt.Errorf("core: train fraction %v out of (0,1)", o.TrainFraction)
	}
	if o.RegionK < 2 {
		return fmt.Errorf("core: region count %d < 2", o.RegionK)
	}
	switch o.Clustering {
	case TransitiveClosure, CorrelationClustering:
	default:
		return fmt.Errorf("core: unknown clustering method %d", o.Clustering)
	}
	return nil
}
