package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/eval"
	"repro/internal/simfn"
)

func testCollection(t *testing.T, seed int64, docs, personas int) *corpus.Collection {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: docs, NumPersonas: personas,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("zero options accepted")
	}
	bad := DefaultOptions()
	bad.TrainFraction = 1.5
	if _, err := New(bad); err == nil {
		t.Error("bad train fraction accepted")
	}
	bad = DefaultOptions()
	bad.RegionK = 1
	if _, err := New(bad); err == nil {
		t.Error("bad region count accepted")
	}
	bad = DefaultOptions()
	bad.FunctionIDs = []string{"F99"}
	if _, err := New(bad); err == nil {
		t.Error("unknown function accepted")
	}
	bad = DefaultOptions()
	bad.Clustering = ClusteringMethod(42)
	if _, err := New(bad); err == nil {
		t.Error("unknown clustering accepted")
	}
	good, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := good.Options(); got.RegionK != 10 {
		t.Errorf("Options() = %+v", got)
	}
}

func TestPrepareAndRun(t *testing.T) {
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	col := testCollection(t, 1, 40, 4)
	prep, err := r.Prepare(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Matrices) != 10 {
		t.Fatalf("matrices = %d, want 10", len(prep.Matrices))
	}
	a, err := prep.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	// 10 functions × 3 criteria.
	if len(a.Graphs) != 30 {
		t.Fatalf("graphs = %d, want 30", len(a.Graphs))
	}
	for _, g := range a.Graphs {
		if g.TrainAccuracy < 0 || g.TrainAccuracy > 1 {
			t.Errorf("%s accuracy = %v", g.Label(), g.TrainAccuracy)
		}
		if g.Graph.Len() != 40 {
			t.Errorf("%s graph size = %d", g.Label(), g.Graph.Len())
		}
		if g.Criterion != ThresholdCriterion && g.Estimate == nil {
			t.Errorf("%s missing region estimate", g.Label())
		}
	}
}

func TestPrepareRejectsTinyCollection(t *testing.T) {
	r, _ := New(DefaultOptions())
	col := &corpus.Collection{Name: "one", NumPersonas: 1,
		Docs: []corpus.Document{{ID: 0, Text: "x", URL: "http://a.com"}}}
	if _, err := r.Prepare(col); err == nil {
		t.Error("single-doc collection accepted")
	}
}

func TestAllStrategiesProduceValidClusterings(t *testing.T) {
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	col := testCollection(t, 5, 50, 6)
	prep, err := r.Prepare(col)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prep.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	strategies := map[string]func() (*Resolution, error){
		"I": a.BestThresholdOnly,
		"C": a.BestAnyCriterion,
		"W": a.WeightedAverage,
		"M": a.MajorityVote,
	}
	truth := col.GroundTruth()
	for name, run := range strategies {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Labels) != 50 {
			t.Fatalf("%s: %d labels", name, len(res.Labels))
		}
		if res.Source == "" {
			t.Errorf("%s: empty source", name)
		}
		if res.NumEntities() < 1 || res.NumEntities() > 50 {
			t.Errorf("%s: %d entities", name, res.NumEntities())
		}
		// Any strategy must beat random guessing comfortably on this
		// moderately easy block.
		score, err := eval.Evaluate(res.Labels, truth)
		if err != nil {
			t.Fatal(err)
		}
		if score.Fp < 0.4 {
			t.Errorf("%s: Fp = %v, implausibly low", name, score.Fp)
		}
	}
}

func TestSingleFunctionAndGraphLookup(t *testing.T) {
	r, _ := New(DefaultOptions())
	col := testCollection(t, 9, 30, 3)
	prep, err := r.Prepare(col)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prep.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.SingleFunction("F8", ThresholdCriterion)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 30 {
		t.Fatalf("labels = %d", len(res.Labels))
	}
	if _, err := a.SingleFunction("F99", ThresholdCriterion); err == nil {
		t.Error("unknown function accepted")
	}
	g, err := a.Graph("F3", KMeansCriterion)
	if err != nil {
		t.Fatal(err)
	}
	if g.Estimate == nil {
		t.Error("k-means graph missing estimate")
	}
	if _, err := a.Graph("F3", CriterionKind(9)); err == nil {
		t.Error("unknown criterion accepted")
	}
}

func TestResolveEndToEnd(t *testing.T) {
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	col := testCollection(t, 11, 60, 5)
	res, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	if score.Fp < 0.5 {
		t.Errorf("end-to-end Fp = %v, want >= 0.5", score.Fp)
	}
}

func TestResolveDeterministic(t *testing.T) {
	r, _ := New(DefaultOptions())
	col := testCollection(t, 13, 40, 4)
	a, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("Resolve is not deterministic")
		}
	}
}

func TestCorrelationClusteringOption(t *testing.T) {
	opts := DefaultOptions()
	opts.Clustering = CorrelationClustering
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	col := testCollection(t, 17, 30, 3)
	res, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 30 {
		t.Fatalf("labels = %d", len(res.Labels))
	}
	score, _ := eval.Evaluate(res.Labels, col.GroundTruth())
	if score.Fp < 0.4 {
		t.Errorf("correlation clustering Fp = %v", score.Fp)
	}
}

func TestSelectBestGraph(t *testing.T) {
	g1 := &DecisionGraph{FuncID: "F1", Criterion: ThresholdCriterion, TrainAccuracy: 0.6,
		Graph: ergraph.NewGraph(2)}
	g2 := &DecisionGraph{FuncID: "F2", Criterion: KMeansCriterion, TrainAccuracy: 0.9,
		Graph: ergraph.NewGraph(2)}
	g3 := &DecisionGraph{FuncID: "F3", Criterion: ThresholdCriterion, TrainAccuracy: 0.7,
		Graph: ergraph.NewGraph(2)}
	graphs := []*DecisionGraph{g1, g2, g3}

	best, err := SelectBestGraph(graphs, AllCriteria...)
	if err != nil || best != g2 {
		t.Errorf("best over all = %v, %v", best, err)
	}
	best, err = SelectBestGraph(graphs, ThresholdCriterion)
	if err != nil || best != g3 {
		t.Errorf("best threshold-only = %v, %v", best, err)
	}
	if _, err := SelectBestGraph(nil, AllCriteria...); err == nil {
		t.Error("empty graph list accepted")
	}
	if _, err := SelectBestGraph(graphs); err == nil {
		t.Error("no allowed criteria accepted")
	}
}

func TestBestPerFunction(t *testing.T) {
	graphs := []*DecisionGraph{
		{FuncID: "F1", Criterion: ThresholdCriterion, TrainAccuracy: 0.6},
		{FuncID: "F1", Criterion: KMeansCriterion, TrainAccuracy: 0.8},
		{FuncID: "F2", Criterion: ThresholdCriterion, TrainAccuracy: 0.7},
	}
	per := bestPerFunction(graphs)
	if len(per) != 2 {
		t.Fatalf("per-function = %d graphs", len(per))
	}
	if per[0].FuncID != "F1" || per[0].Criterion != KMeansCriterion {
		t.Errorf("F1 best = %+v", per[0])
	}
	if per[1].FuncID != "F2" {
		t.Errorf("order broken: %+v", per[1])
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := MajorityVoteGraph(nil); err == nil {
		t.Error("empty majority vote accepted")
	}
	mismatched := []*DecisionGraph{
		{FuncID: "F1", Graph: ergraph.NewGraph(2)},
		{FuncID: "F2", Graph: ergraph.NewGraph(3)},
	}
	if _, err := MajorityVoteGraph(mismatched); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, _, err := WeightedAverageGraph(nil, nil, &Training{}); err == nil {
		t.Error("empty weighted average accepted")
	}
	if _, _, err := WeightedAverageGraph(mismatched, map[string]*simfn.Matrix{
		"F1": simfn.NewMatrix(2), "F2": simfn.NewMatrix(3),
	}, &Training{}); err == nil {
		t.Error("size mismatch accepted in weighted average")
	}
	ok := []*DecisionGraph{{FuncID: "F1", Graph: ergraph.NewGraph(2)}}
	if _, _, err := WeightedAverageGraph(ok, map[string]*simfn.Matrix{}, &Training{}); err == nil {
		t.Error("missing matrix accepted")
	}
}

func TestCriterionAndMethodStrings(t *testing.T) {
	if ThresholdCriterion.String() != "threshold" ||
		EqualBinsCriterion.String() != "regions-equal" ||
		KMeansCriterion.String() != "regions-kmeans" {
		t.Error("criterion labels wrong")
	}
	if CriterionKind(9).String() != "unknown" {
		t.Error("unknown criterion label wrong")
	}
	if TransitiveClosure.String() != "transitive-closure" ||
		CorrelationClustering.String() != "correlation-clustering" ||
		ClusteringMethod(9).String() != "unknown" {
		t.Error("clustering labels wrong")
	}
}

func TestLinkConfidence(t *testing.T) {
	g := &DecisionGraph{Criterion: ThresholdCriterion, Threshold: 0.5, TrainAccuracy: 0.8}
	if got := g.LinkConfidence(0.7); got != 0.8 {
		t.Errorf("above threshold = %v, want 0.8", got)
	}
	if got := g.LinkConfidence(0.3); got < 0.2-1e-9 || got > 0.2+1e-9 {
		t.Errorf("below threshold = %v, want 0.2", got)
	}
}
