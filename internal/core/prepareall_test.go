package core

import (
	"runtime"
	"testing"

	"repro/internal/corpus"
)

// TestPrepareAllMatchesSerialPrepare pins concurrent block preparation to
// the serial path: same collection order, same matrices, bit-identical
// values. Run with -race to exercise the shared-extractor claim.
func TestPrepareAllMatchesSerialPrepare(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		old := runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
	d, err := corpus.WWW05Profile().Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	cols := d.Collections[:4]
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.PrepareAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(cols) {
		t.Fatalf("PrepareAll returned %d blocks, want %d", len(all), len(cols))
	}
	for i, col := range cols {
		want, err := r.Prepare(col)
		if err != nil {
			t.Fatal(err)
		}
		got := all[i]
		if got.Block.Name != col.Name {
			t.Fatalf("block %d is %q, want %q (order not preserved)", i, got.Block.Name, col.Name)
		}
		for id, wm := range want.Matrices {
			gm, ok := got.Matrices[id]
			if !ok {
				t.Fatalf("%s: matrix %s missing", col.Name, id)
			}
			for k, v := range wm.Values() {
				if gv := gm.Values()[k]; gv != v {
					t.Fatalf("%s/%s cell %d: %v != %v", col.Name, id, k, gv, v)
				}
			}
		}
	}
}

func TestPrepareAllPropagatesErrors(t *testing.T) {
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := corpus.WWW05Profile().Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	bad := &corpus.Collection{Name: "tiny"} // < 2 documents
	if _, err := r.PrepareAll([]*corpus.Collection{d.Collections[0], bad}); err == nil {
		t.Fatal("PrepareAll accepted a 0-document collection")
	}
}
