package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/simfn"
	"repro/internal/stats"
)

func testBlock(t *testing.T, seed int64, docs, personas int) *simfn.Block {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: docs, NumPersonas: personas,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return simfn.PrepareBlock(col, nil)
}

func TestNewTraining(t *testing.T) {
	b := testBlock(t, 1, 50, 5)
	train, err := NewTraining(b, 0.10, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(sqrt(0.1)·50) = 16 docs → 120 pairs ≈ 10% of the 1225 pairs.
	if len(train.Docs) != 16 {
		t.Errorf("training docs = %d, want 16", len(train.Docs))
	}
	if len(train.Pairs) != 120 || len(train.Links) != 120 {
		t.Errorf("pairs = %d, links = %d, want 120 each", len(train.Pairs), len(train.Links))
	}
	if len(train.DocTruth) != 16 {
		t.Errorf("doc truth = %d, want 16", len(train.DocTruth))
	}
	// Labels must match ground truth.
	for i, p := range train.Pairs {
		want := b.Truth[p[0]] == b.Truth[p[1]]
		if train.Links[i] != want {
			t.Fatalf("pair %v labeled %v, truth %v", p, train.Links[i], want)
		}
	}
}

func TestNewTrainingMinimumDocs(t *testing.T) {
	b := testBlock(t, 2, 20, 3)
	// 1% of 20 would be 1 doc; the floor of 4 applies.
	train, err := NewTraining(b, 0.01, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Docs) != 4 {
		t.Errorf("training docs = %d, want 4 (floor)", len(train.Docs))
	}
}

func TestNewTrainingErrors(t *testing.T) {
	b := &simfn.Block{Name: "tiny", Docs: make([]simfn.Doc, 1), Truth: []int{0}}
	if _, err := NewTraining(b, 0.5, stats.NewRNG(1)); err == nil {
		t.Error("single-doc block accepted")
	}
}

func TestTrainingValuesAndPositives(t *testing.T) {
	b := testBlock(t, 3, 30, 3)
	train, err := NewTraining(b, 0.2, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := simfn.ByID("F8")
	m := simfn.ComputeMatrix(b, f)
	values := train.Values(m)
	if len(values) != len(train.Pairs) {
		t.Fatal("values not parallel to pairs")
	}
	for i, p := range train.Pairs {
		if values[i] != m.At(p[0], p[1]) {
			t.Fatal("value mismatch")
		}
	}
	if train.Positives() < 0 || train.Positives() > len(train.Links) {
		t.Error("positives out of range")
	}
}

func TestLearnThresholdSeparable(t *testing.T) {
	// Perfectly separable: negatives below 0.4, positives above 0.6.
	values := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9}
	links := []bool{false, false, false, false, true, true, true, true}
	th := LearnThreshold(values, links)
	if th <= 0.4 || th > 0.6 {
		t.Errorf("threshold = %v, want in (0.4, 0.6]", th)
	}
	// All decisions correct at the learned threshold.
	for i, v := range values {
		if (v >= th) != links[i] {
			t.Errorf("value %v misclassified at threshold %v", v, th)
		}
	}
}

func TestLearnThresholdAllPositive(t *testing.T) {
	values := []float64{0.2, 0.5, 0.8}
	links := []bool{true, true, true}
	th := LearnThreshold(values, links)
	// Everything should be classified as link.
	for _, v := range values {
		if v < th {
			t.Errorf("threshold %v excludes positive value %v", th, v)
		}
	}
}

func TestLearnThresholdAllNegative(t *testing.T) {
	values := []float64{0.2, 0.5, 0.8}
	links := []bool{false, false, false}
	th := LearnThreshold(values, links)
	for _, v := range values {
		if v >= th {
			t.Errorf("threshold %v includes negative value %v", th, v)
		}
	}
}

func TestLearnThresholdDegenerate(t *testing.T) {
	if th := LearnThreshold(nil, nil); th != 0.5 {
		t.Errorf("empty input threshold = %v, want 0.5", th)
	}
	if th := LearnThreshold([]float64{0.5}, []bool{true, false}); th != 0.5 {
		t.Errorf("mismatched input threshold = %v, want 0.5", th)
	}
}

func TestLearnThresholdOptimalProperty(t *testing.T) {
	// The learned threshold must achieve at least as many correct
	// decisions as any value-midpoint candidate.
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		values := make([]float64, len(raw))
		links := make([]bool, len(raw))
		for i, b := range raw {
			values[i] = float64(b%100) / 100
			links[i] = b%3 == 0
		}
		th := LearnThreshold(values, links)
		correct := func(t float64) int {
			c := 0
			for i, v := range values {
				if (v >= t) == links[i] {
					c++
				}
			}
			return c
		}
		best := correct(th)
		for _, cand := range values {
			if correct(cand) > best || correct(cand+0.005) > best {
				return false
			}
		}
		return correct(0) <= best && correct(1.01) <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLearnThresholdInUnitInterval(t *testing.T) {
	f := func(raw []byte) bool {
		values := make([]float64, len(raw))
		links := make([]bool, len(raw))
		for i, b := range raw {
			values[i] = float64(b) / 255
			links[i] = b%2 == 0
		}
		th := LearnThreshold(values, links)
		return th >= 0 && th <= 1 && !math.IsNaN(th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
