package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/simfn"
	"repro/internal/stats"
	"repro/internal/textsim"
)

// Failure-injection and boundary tests: the resolver must stay total and
// sane on degenerate collections — all pages about one person, every page
// its own person, empty or hostile page content, extreme noise.

func resolveWithOptions(t *testing.T, col *corpus.Collection, opts Options) *Resolution {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(col)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResolveSinglePersonaCollection(t *testing.T) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "hall", NumDocs: 20, NumPersonas: 1,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := resolveWithOptions(t, col, DefaultOptions())
	// Every pair is a true link: a good resolver should mostly merge.
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	if score.Fp < 0.5 {
		t.Errorf("single-persona Fp = %v", score.Fp)
	}
}

func TestResolveAllSingletonsCollection(t *testing.T) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "green", NumDocs: 20, NumPersonas: 20,
		Noise: 0.5, MissingInfo: 0.2, Spurious: 0.2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := resolveWithOptions(t, col, DefaultOptions())
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	// All pairs are non-links; the framework must not collapse everything.
	if res.NumEntities() < 5 {
		t.Errorf("all-singleton block collapsed to %d entities", res.NumEntities())
	}
	if score.Fp < 0.4 {
		t.Errorf("all-singleton Fp = %v", score.Fp)
	}
}

func TestResolveHostileContent(t *testing.T) {
	// Hand-built collection with empty pages, whitespace, huge tokens and
	// unicode soup; the pipeline must not panic and must return a total
	// labeling.
	docs := []corpus.Document{
		{ID: 0, URL: "", Text: "", PersonaID: 0},
		{ID: 1, URL: "not a url at all", Text: "    \n\t  ", PersonaID: 0},
		{ID: 2, URL: "http://x.com", Text: "年糕 κόσμε املاء \x00 emoji 🦄🦄", PersonaID: 1},
		{ID: 3, URL: "ftp://weird:port:123/a//b", Text: string(make([]byte, 64)), PersonaID: 1},
		{ID: 4, URL: "http://y.com/a", Text: "Smith Smith Smith Smith", PersonaID: 2},
		{ID: 5, URL: "http://y.com/b", Text: "smith works at EPFL in Lausanne on learning.", PersonaID: 2},
	}
	col := &corpus.Collection{Name: "smith", Docs: docs, NumPersonas: 3}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	res := resolveWithOptions(t, col, DefaultOptions())
	if len(res.Labels) != 6 {
		t.Fatalf("labels = %d", len(res.Labels))
	}
}

func TestResolveExtremeNoise(t *testing.T) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "rivera", NumDocs: 30, NumPersonas: 5,
		Noise: 1.0, MissingInfo: 0.9, Spurious: 1.0, Template: 0.9, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := resolveWithOptions(t, col, DefaultOptions())
	score, err := eval.Evaluate(res.Labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	// Under extreme noise we only require totality and bounded scores.
	if score.Fp < 0 || score.Fp > 1 {
		t.Errorf("score out of range: %+v", score)
	}
}

func TestRunWithValidation(t *testing.T) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "adams", NumDocs: 20, NumPersonas: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := r.Prepare(col)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.TrainFraction = 0
	if _, err := prep.RunWith(1, bad); err == nil {
		t.Error("zero train fraction accepted")
	}
	bad = DefaultOptions()
	bad.RegionK = 1
	if _, err := prep.RunWith(1, bad); err == nil {
		t.Error("region count 1 accepted")
	}
	// Clustering override is honored.
	cc := DefaultOptions()
	cc.Clustering = CorrelationClustering
	a, err := prep.RunWith(1, cc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.BestAnyCriterion(); err != nil {
		t.Fatal(err)
	}
}

func TestConstantSimilarityFunctionDegrades(t *testing.T) {
	// A similarity function that returns the same value for every pair
	// must not break threshold learning or region fitting.
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "king", NumDocs: 15, NumPersonas: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := simfn.PrepareBlock(col, nil)
	constant := simfn.Func{
		ID: "FX", Feature: "constant", Measure: "constant",
		Compare: func(a, b *simfn.Doc) float64 { return 0.5 },
	}
	m := simfn.ComputeMatrix(block, constant)
	rng := stats.NewRNG(1)
	train, err := NewTraining(block, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	values := train.Values(m)
	th := LearnThreshold(values, train.Links)
	if th < 0 || th > 1 {
		t.Errorf("threshold = %v", th)
	}
	dg, err := buildDecisionGraph("FX", KMeansCriterion, m, train, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Estimate == nil || dg.Estimate.Part.NumRegions() != 1 {
		t.Errorf("constant values should collapse to one region")
	}
}

func TestNameSimilarityUsedInPipelineIsBounded(t *testing.T) {
	// Spot-check the feature path used by F3/F7 on hostile names.
	for _, pair := range [][2]string{
		{"", ""}, {"", "x"}, {"🦄", "🦄🦄"}, {string(make([]byte, 32)), "a"},
	} {
		s := textsim.NameSimilarity(pair[0], pair[1])
		if s < 0 || s > 1 {
			t.Errorf("NameSimilarity(%q,%q) = %v", pair[0], pair[1], s)
		}
	}
}
