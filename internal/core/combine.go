package core

import (
	"fmt"
	"sort"

	"repro/internal/ergraph"
	"repro/internal/simfn"
)

// Combination of multiple functions (Section IV-B). The paper combines the
// per-function decision graphs rather than the raw similarity values,
// because the functions report values with very different distributions.

// SelectBestGraph implements the paper's best-performing combination:
// "estimate the overall accuracy of all G_Dj graphs, and chose the best one
// as G_combined" (dynamic classifier selection). Only graphs whose
// criterion is in allowed are considered; ties break towards the earlier
// graph for determinism. It returns an error when no graph qualifies.
func SelectBestGraph(graphs []*DecisionGraph, allowed ...CriterionKind) (*DecisionGraph, error) {
	permit := make(map[CriterionKind]bool, len(allowed))
	for _, c := range allowed {
		permit[c] = true
	}
	// Selection score: training accuracy softly penalized by
	// miscalibration. A trivial graph (no links, or everything linked) can
	// reach a high training accuracy on skewed blocks while its linking
	// rate is far from the training base rate; the penalty keeps such
	// degenerate graphs from out-ranking genuinely informative ones.
	score := func(g *DecisionGraph) float64 {
		return g.TrainAccuracy - 0.5*g.Calibration
	}
	var best *DecisionGraph
	for _, g := range graphs {
		if !permit[g.Criterion] {
			continue
		}
		if best == nil || score(g) > score(best) {
			best = g
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no decision graph matches the allowed criteria")
	}
	return best, nil
}

// WeightedAverageGraph implements the paper's weighted-average combination
// (column W of Table II): the per-function decision graphs form a
// multigraph whose edges are weighted by the accuracy estimations
// ("estimations of the probability of a link"); each pair's combined score
// is the accuracy-weighted vote mass
//
//	score(i,j) = Σ_f conf_f(i,j) · edge_f(i,j) / |F|
//
// and an optimal threshold for the combined score is trained on the
// training sample. graphs must contain exactly one graph per function (the
// caller picks which criterion represents each function).
func WeightedAverageGraph(graphs []*DecisionGraph, matrices map[string]*simfn.Matrix,
	train *Training) (*ergraph.Graph, float64, error) {

	if len(graphs) == 0 {
		return nil, 0, fmt.Errorf("core: no graphs to combine")
	}
	n := graphs[0].Graph.Len()
	for _, g := range graphs {
		if g.Graph.Len() != n {
			return nil, 0, fmt.Errorf("core: graph size mismatch: %d vs %d", g.Graph.Len(), n)
		}
		if matrices[g.FuncID] == nil {
			return nil, 0, fmt.Errorf("core: missing matrix for %s", g.FuncID)
		}
	}

	// Graph weights: how far each function's decisions rise above chance.
	// Functions whose decision graphs barely beat the base rate contribute
	// almost nothing, so a few noisy functions cannot drown out the
	// reliable ones.
	weights := make([]float64, len(graphs))
	var totalWeight float64
	for k, g := range graphs {
		w := g.TrainAccuracy - 0.5
		if w < 0.01 {
			w = 0.01
		}
		weights[k] = w
		totalWeight += w
	}

	// Combined score matrix: per-pair link confidences of the agreeing
	// graphs, weighted by graph reliability.
	scores := simfn.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k, g := range graphs {
				if g.Graph.HasEdge(i, j) {
					s += weights[k] * g.LinkConfidence(matrices[g.FuncID].At(i, j))
				}
			}
			scores.Set(i, j, s/totalWeight)
		}
	}

	// Train the combined threshold by sweeping candidates and scoring each
	// resulting graph after transitive closure on the training pairs — the
	// final resolution is the closure, and a threshold that looks optimal
	// on raw pair decisions can chain everything together.
	candidates := thresholdCandidates(train, scores)
	bestThreshold, bestCorrect := 1.0, -1
	for _, cand := range candidates {
		g := graphFromScores(scores, cand)
		closure := g.ConnectedComponents()
		correct := 0
		for k, p := range train.Pairs {
			if (closure[p[0]] == closure[p[1]]) == train.Links[k] {
				correct++
			}
		}
		if correct > bestCorrect || (correct == bestCorrect && cand > bestThreshold) {
			bestCorrect = correct
			bestThreshold = cand
		}
	}

	return graphFromScores(scores, bestThreshold), bestThreshold, nil
}

// thresholdCandidates returns the candidate thresholds for the combined
// score: midpoints between adjacent distinct training-pair scores, plus the
// extremes.
func thresholdCandidates(train *Training, scores *simfn.Matrix) []float64 {
	values := make([]float64, 0, len(train.Pairs))
	for _, p := range train.Pairs {
		values = append(values, scores.At(p[0], p[1]))
	}
	sort.Float64s(values)
	cands := []float64{0}
	for i := 1; i < len(values); i++ {
		if values[i] != values[i-1] {
			cands = append(cands, (values[i]+values[i-1])/2)
		}
	}
	if len(values) > 0 {
		top := values[len(values)-1] + 1e-9
		if top > 1 {
			top = 1
		}
		cands = append(cands, top)
	}
	return cands
}

// graphFromScores links every pair whose combined score reaches threshold.
func graphFromScores(scores *simfn.Matrix, threshold float64) *ergraph.Graph {
	n := scores.Len()
	g := ergraph.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if scores.At(i, j) >= threshold {
				// AddEdge cannot fail for in-range distinct vertices.
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

// MajorityVoteGraph links a pair when strictly more than half of the given
// decision graphs contain the edge — the classifier-fusion baseline from
// the related-work discussion, kept as an ablation target.
func MajorityVoteGraph(graphs []*DecisionGraph) (*ergraph.Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: no graphs to combine")
	}
	n := graphs[0].Graph.Len()
	for _, g := range graphs {
		if g.Graph.Len() != n {
			return nil, fmt.Errorf("core: graph size mismatch: %d vs %d", g.Graph.Len(), n)
		}
	}
	combined := ergraph.NewGraph(n)
	need := len(graphs)/2 + 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			votes := 0
			for _, g := range graphs {
				if g.Graph.HasEdge(i, j) {
					votes++
				}
			}
			if votes >= need {
				if err := combined.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return combined, nil
}

// bestPerFunction reduces a graph list to one graph per function: the
// criterion with the highest training accuracy, preserving function order.
func bestPerFunction(graphs []*DecisionGraph) []*DecisionGraph {
	var order []string
	best := make(map[string]*DecisionGraph)
	for _, g := range graphs {
		cur, ok := best[g.FuncID]
		if !ok {
			order = append(order, g.FuncID)
		}
		if !ok || g.TrainAccuracy > cur.TrainAccuracy {
			best[g.FuncID] = g
		}
	}
	out := make([]*DecisionGraph, 0, len(order))
	for _, id := range order {
		out = append(out, best[id])
	}
	return out
}
