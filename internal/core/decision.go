package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ergraph"
	"repro/internal/eval"
	"repro/internal/regions"
	"repro/internal/simfn"
)

// CriterionKind identifies a decision criterion Dj: how a weighted
// similarity graph G_w^fi is turned into an unweighted decision graph G_Dj.
type CriterionKind int

const (
	// ThresholdCriterion links pairs whose similarity exceeds the trained
	// threshold.
	ThresholdCriterion CriterionKind = iota
	// EqualBinsCriterion links pairs whose similarity falls in an
	// equal-width region with link accuracy >= 0.5.
	EqualBinsCriterion
	// KMeansCriterion is EqualBinsCriterion with k-means regions fitted to
	// the training value distribution.
	KMeansCriterion
)

// String returns the criterion label used in reports.
func (k CriterionKind) String() string {
	switch k {
	case ThresholdCriterion:
		return "threshold"
	case EqualBinsCriterion:
		return "regions-equal"
	case KMeansCriterion:
		return "regions-kmeans"
	default:
		return "unknown"
	}
}

// AllCriteria lists every decision criterion, the Dj set of Algorithm 1.
var AllCriteria = []CriterionKind{ThresholdCriterion, EqualBinsCriterion, KMeansCriterion}

// DecisionGraph is one G_{i,Dj}: the decision graph of similarity function
// i under criterion Dj, with its training-estimated accuracy acc(G_{i,Dj}).
type DecisionGraph struct {
	// FuncID is the similarity function ("F3").
	FuncID string
	// Criterion is the decision criterion used.
	Criterion CriterionKind
	// Graph holds an edge for every pair decided equivalent.
	Graph *ergraph.Graph
	// TrainAccuracy is the fraction of training pairs the graph decides
	// correctly — the acc(G_{i,Dj}) estimate used for combination.
	TrainAccuracy float64
	// Calibration is |closure link rate − training link rate|, the
	// secondary selection signal: among graphs tied on training accuracy,
	// the one whose overall linking rate matches the training base rate is
	// the better calibrated one.
	Calibration float64
	// Threshold is the trained threshold (ThresholdCriterion only).
	Threshold float64
	// Estimate is the fitted region-accuracy estimate (region criteria
	// only; nil for ThresholdCriterion).
	Estimate *regions.AccuracyEstimate
}

// Label renders "F3/threshold" style identifiers.
func (d *DecisionGraph) Label() string {
	return d.FuncID + "/" + d.Criterion.String()
}

// fitCriterion learns one decision criterion from labeled similarity
// values, returning the decision function plus the fitted artifacts.
func fitCriterion(crit CriterionKind, values []float64, links []bool,
	regionK int, rng *rand.Rand) (decide func(float64) bool, est *regions.AccuracyEstimate, threshold float64, err error) {

	switch crit {
	case ThresholdCriterion:
		threshold = LearnThreshold(values, links)
		th := threshold
		return func(v float64) bool { return v >= th }, nil, threshold, nil
	case EqualBinsCriterion:
		est, err = regions.EstimateAccuracy(regions.NewEqualWidthBins(regionK), values, links)
		if err != nil {
			return nil, nil, 0, err
		}
		return est.Decide, est, 0, nil
	case KMeansCriterion:
		km, kerr := regions.FitKMeans1D(values, regionK, rng)
		if kerr != nil {
			return nil, nil, 0, kerr
		}
		est, err = regions.EstimateAccuracy(km, values, links)
		if err != nil {
			return nil, nil, 0, err
		}
		return est.Decide, est, 0, nil
	default:
		return nil, nil, 0, fmt.Errorf("core: unknown criterion %d", crit)
	}
}

// buildDecisionGraph applies one criterion to one similarity matrix. The
// graph is fitted on the full training sample; TrainAccuracy — the
// acc(G_{i,Dj}) estimate driving best-graph selection — scores the graph's
// transitive closure on the training sample (see the comment below).
func buildDecisionGraph(funcID string, crit CriterionKind, m *simfn.Matrix,
	train *Training, regionK int, rng *rand.Rand) (*DecisionGraph, error) {

	values := train.Values(m)
	dg := &DecisionGraph{FuncID: funcID, Criterion: crit}

	decide, est, threshold, err := fitCriterion(crit, values, train.Links, regionK, rng)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", funcID, crit, err)
	}
	dg.Estimate = est
	dg.Threshold = threshold

	n := m.Len()
	g := ergraph.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if decide(m.At(i, j)) {
				if err := g.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	dg.Graph = g

	// acc(G_{i,Dj}) is estimated on the training sample, as in the paper
	// ("we also use accuracy estimations acc(G_{i,Dj}), based on the
	// training set"). Two refinements over raw pair accuracy:
	//
	//  1. Accuracy is measured after transitive closure, not on the raw
	//     edge decisions — the final resolution is the closure, and a
	//     graph whose few wrong edges chain whole groups together is far
	//     worse than its raw pair accuracy suggests.
	//  2. The pair accuracy is blended with the Fp-measure of the closure
	//     restricted to the training documents, so selection tracks the
	//     cluster-quality objective the system is evaluated on, not only
	//     the pair agreement (which favours over-conservative graphs on
	//     fragmented blocks).
	//
	// (2-fold cross-validation of the raw decisions was evaluated as an
	// alternative; its fold noise on ~45-pair samples made selection
	// strictly worse.)
	closure := g.ConnectedComponents()
	correct, positives := 0, 0
	for i, p := range train.Pairs {
		if (closure[p[0]] == closure[p[1]]) == train.Links[i] {
			correct++
		}
		if train.Links[i] {
			positives++
		}
	}
	if len(train.Pairs) > 0 {
		pairAcc := float64(correct) / float64(len(train.Pairs))
		dg.TrainAccuracy = (pairAcc + trainingFp(closure, train)) / 2
		baseRate := float64(positives) / float64(len(train.Pairs))
		dg.Calibration = absDiff(closureLinkRate(closure), baseRate)
	}
	return dg, nil
}

// trainingFp computes the Fp-measure (harmonic mean of purity and inverse
// purity) of the clustering restricted to the training documents, against
// their known labels.
func trainingFp(closure []int, train *Training) float64 {
	pred := make([]int, len(train.Docs))
	for i, d := range train.Docs {
		pred[i] = closure[d]
	}
	fp, err := eval.FpMeasure(pred, train.DocTruth)
	if err != nil {
		return 0
	}
	return fp
}

// closureLinkRate returns the fraction of all pairs the clustering places
// together, computed from component sizes.
func closureLinkRate(labels []int) float64 {
	n := len(labels)
	if n < 2 {
		return 0
	}
	sizes := make(map[int]int)
	for _, l := range labels {
		sizes[l]++
	}
	var together float64
	for _, s := range sizes {
		together += float64(s) * float64(s-1) / 2
	}
	total := float64(n) * float64(n-1) / 2
	return together / total
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// LinkConfidence returns the graph's estimated probability that the pair
// (i, j) with similarity v is a link: the region link probability for
// region criteria, or a two-sided threshold confidence for the threshold
// criterion (its overall training accuracy on the side it decided).
func (d *DecisionGraph) LinkConfidence(v float64) float64 {
	if d.Estimate != nil {
		return d.Estimate.LinkProbability(v)
	}
	// Threshold graphs: approximate the link probability by the graph's
	// training accuracy for "link" decisions and its complement otherwise.
	if v >= d.Threshold {
		return d.TrainAccuracy
	}
	return 1 - d.TrainAccuracy
}
