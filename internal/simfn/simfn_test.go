package simfn

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/stats"
)

func testBlock(t *testing.T, seed int64) *Block {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 40, NumPersonas: 4,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return PrepareBlock(col, nil)
}

func TestRegistryMetadata(t *testing.T) {
	funcs := Registry()
	if len(funcs) != 10 {
		t.Fatalf("registry size = %d, want 10", len(funcs))
	}
	seen := make(map[string]bool)
	for i, f := range funcs {
		wantID := "F" + itoa(i+1)
		if f.ID != wantID {
			t.Errorf("function %d ID = %q, want %q", i, f.ID, wantID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate ID %q", f.ID)
		}
		seen[f.ID] = true
		if f.Compare == nil {
			t.Errorf("%s has nil Compare", f.ID)
		}
		if f.Feature == "" || f.Measure == "" {
			t.Errorf("%s missing metadata", f.ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestByIDAndSubset(t *testing.T) {
	f, err := ByID("F7")
	if err != nil || f.ID != "F7" {
		t.Errorf("ByID(F7) = %v, %v", f.ID, err)
	}
	if _, err := ByID("F11"); err == nil {
		t.Error("ByID(F11) should fail")
	}
	sub, err := Subset(SubsetI4)
	if err != nil || len(sub) != 4 {
		t.Errorf("Subset I4 = %d funcs, %v", len(sub), err)
	}
	if sub[0].ID != "F4" || sub[3].ID != "F9" {
		t.Errorf("subset order wrong: %v, %v", sub[0].ID, sub[3].ID)
	}
	if _, err := Subset([]string{"F1", "nope"}); err == nil {
		t.Error("invalid subset accepted")
	}
	if len(SubsetI7) != 7 || len(SubsetI10) != 10 {
		t.Error("paper subsets sized wrong")
	}
}

func TestAllFunctionsBoundedAndSymmetric(t *testing.T) {
	b := testBlock(t, 42)
	rng := stats.NewRNG(1)
	for _, f := range Registry() {
		for trial := 0; trial < 200; trial++ {
			i, j := rng.Intn(len(b.Docs)), rng.Intn(len(b.Docs))
			s := f.Compare(&b.Docs[i], &b.Docs[j])
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s out of range: %v (docs %d,%d)", f.ID, s, i, j)
			}
			r := f.Compare(&b.Docs[j], &b.Docs[i])
			if math.Abs(s-r) > 1e-9 {
				t.Fatalf("%s asymmetric: %v vs %v", f.ID, s, r)
			}
		}
	}
}

func TestFunctionsCarrySignal(t *testing.T) {
	// Averaged over same-persona vs different-persona pairs, at least 6 of
	// the 10 functions must rank same-persona pairs higher — the premise
	// that similarity functions carry identity signal at all.
	b := testBlock(t, 7)
	signal := 0
	for _, f := range Registry() {
		var sameSum, diffSum float64
		var sameN, diffN int
		for i := 0; i < len(b.Docs); i++ {
			for j := i + 1; j < len(b.Docs); j++ {
				s := f.Compare(&b.Docs[i], &b.Docs[j])
				if b.Truth[i] == b.Truth[j] {
					sameSum += s
					sameN++
				} else {
					diffSum += s
					diffN++
				}
			}
		}
		if sameN == 0 || diffN == 0 {
			t.Fatal("degenerate block")
		}
		if sameSum/float64(sameN) > diffSum/float64(diffN) {
			signal++
		}
	}
	if signal < 6 {
		t.Errorf("only %d/10 functions separate same from different personas", signal)
	}
}

func TestPrepareBlockShape(t *testing.T) {
	b := testBlock(t, 3)
	if len(b.Docs) != 40 || len(b.Truth) != 40 {
		t.Fatalf("block shape: %d docs, %d labels", len(b.Docs), len(b.Truth))
	}
	if b.Name != "cohen" || b.NumPersonas != 4 {
		t.Errorf("metadata: %q, %d", b.Name, b.NumPersonas)
	}
	nonEmptyVectors := 0
	for _, d := range b.Docs {
		if len(d.TermVector) > 0 {
			nonEmptyVectors++
		}
	}
	if nonEmptyVectors < 35 {
		t.Errorf("only %d/40 docs have term vectors", nonEmptyVectors)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(4)
	if m.Len() != 4 || m.Pairs() != 6 {
		t.Fatalf("matrix shape: %d, %d", m.Len(), m.Pairs())
	}
	m.Set(1, 3, 0.7)
	if m.At(1, 3) != 0.7 || m.At(3, 1) != 0.7 {
		t.Error("symmetric access broken")
	}
	if m.At(2, 2) != 1 {
		t.Error("diagonal should be 1")
	}
	m.Set(2, 2, 0.5) // must be ignored
	if m.At(2, 2) != 1 {
		t.Error("diagonal must stay 1")
	}
	// All condensed positions distinct.
	m2 := NewMatrix(5)
	v := 0.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			v += 0.1
			m2.Set(i, j, v)
		}
	}
	v = 0.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			v += 0.1
			if math.Abs(m2.At(i, j)-v) > 1e-12 {
				t.Fatalf("condensed index collision at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewMatrixNegative(t *testing.T) {
	m := NewMatrix(-3)
	if m.Len() != 0 || m.Pairs() != 0 {
		t.Error("negative size should clamp to empty")
	}
}

func TestComputeMatrixMatchesDirect(t *testing.T) {
	b := testBlock(t, 5)
	f, _ := ByID("F8")
	m := ComputeMatrix(b, f)
	if m.Len() != len(b.Docs) {
		t.Fatal("matrix size mismatch")
	}
	for trial := 0; trial < 50; trial++ {
		i, j := trial%len(b.Docs), (trial*7+3)%len(b.Docs)
		if i == j {
			continue
		}
		want := f.Compare(&b.Docs[i], &b.Docs[j])
		if math.Abs(m.At(i, j)-want) > 1e-12 {
			t.Fatalf("matrix value differs at (%d,%d)", i, j)
		}
	}
}

func TestComputeAll(t *testing.T) {
	b := testBlock(t, 9)
	funcs, _ := Subset(SubsetI4)
	ms := ComputeAll(b, funcs)
	if len(ms) != 4 {
		t.Fatalf("ComputeAll returned %d matrices", len(ms))
	}
	for _, id := range SubsetI4 {
		if ms[id] == nil {
			t.Errorf("missing matrix for %s", id)
		}
	}
}

func TestPairIndex(t *testing.T) {
	pairs := PairIndex(4)
	if len(pairs) != 6 {
		t.Fatalf("pairs = %v", pairs)
	}
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i, p := range want {
		if pairs[i] != p {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], p)
		}
	}
	if got := PairIndex(0); len(got) != 0 {
		t.Errorf("PairIndex(0) = %v", got)
	}
	if got := PairIndex(1); len(got) != 0 {
		t.Errorf("PairIndex(1) = %v", got)
	}
}

func TestMatrixString(t *testing.T) {
	small := NewMatrix(2)
	small.Set(0, 1, 0.5)
	if s := small.String(); s == "" {
		t.Error("empty String for small matrix")
	}
	big := NewMatrix(50)
	if s := big.String(); s != "Matrix(50×50)" {
		t.Errorf("big matrix String = %q", s)
	}
}
