package simfn

import (
	"runtime"
	"testing"

	"repro/internal/corpus"
)

// forceParallel pins GOMAXPROCS to at least 4 for the duration of a test so
// the worker-pool paths are exercised (and race-checked) even on small CI
// machines where GOMAXPROCS(0) == 1 would select the serial fallback.
func forceParallel(t testing.TB) {
	if runtime.GOMAXPROCS(0) >= 4 {
		return
	}
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// parallelTestBlock prepares a seeded ~60-doc block, large enough (with all
// ten functions) to cross the parallel cutoff.
func parallelTestBlock(t testing.TB, numDocs int) *Block {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "parallel", NumDocs: numDocs, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return PrepareBlock(col, nil)
}

// TestComputeAllParallelMatchesSerial is the determinism guarantee: the
// worker-pool ComputeAll must produce bit-identical matrices to the serial
// reference loop, for every function, on every run. Run with -race to also
// exercise the disjoint-writes claim.
func TestComputeAllParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	b := parallelTestBlock(t, 60)
	funcs := Registry()
	want := ComputeAllSerial(b, funcs)
	for round := 0; round < 3; round++ {
		got := ComputeAll(b, funcs)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d matrices, want %d", round, len(got), len(want))
		}
		for id, wm := range want {
			gm := got[id]
			if gm.Len() != wm.Len() {
				t.Fatalf("round %d %s: dim %d, want %d", round, id, gm.Len(), wm.Len())
			}
			for k, v := range wm.Values() {
				if gv := gm.Values()[k]; gv != v {
					t.Fatalf("round %d %s: cell %d = %v, want %v (not bit-identical)",
						round, id, k, gv, v)
				}
			}
		}
	}
}

// TestComputeMatrixParallelMatchesSerial covers the single-function entry
// point at a size above the cutoff.
func TestComputeMatrixParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	b := parallelTestBlock(t, 80)
	f, err := ByID("F9")
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeMatrixSerial(b, f)
	got := ComputeMatrix(b, f)
	for k, v := range want.Values() {
		if gv := got.Values()[k]; gv != v {
			t.Fatalf("cell %d = %v, want %v", k, gv, v)
		}
	}
}

// TestPackedRegistryMatchesFallback compares every function's packed fast
// path against the map/string fallback on the same block: stripping the
// packed fields from the docs must change no similarity by more than float
// summation-order noise.
func TestPackedRegistryMatchesFallback(t *testing.T) {
	b := parallelTestBlock(t, 30)
	unpacked := &Block{
		Name:        b.Name,
		Docs:        make([]Doc, len(b.Docs)),
		Truth:       b.Truth,
		NumPersonas: b.NumPersonas,
	}
	for i, d := range b.Docs {
		unpacked.Docs[i] = Doc{Features: d.Features, TermVector: d.TermVector}
	}
	for _, f := range Registry() {
		packed := ComputeMatrixSerial(b, f)
		fallback := ComputeMatrixSerial(unpacked, f)
		for k, v := range fallback.Values() {
			diff := packed.Values()[k] - v
			if diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%s: cell %d packed %v, fallback %v", f.ID, k, packed.Values()[k], v)
			}
		}
	}
}

// TestComputeAllSmallBlock exercises the below-cutoff serial path and the
// degenerate sizes.
func TestComputeAllSmallBlock(t *testing.T) {
	b := parallelTestBlock(t, 6)
	got := ComputeAll(b, Registry())
	want := ComputeAllSerial(b, Registry())
	for id, wm := range want {
		for k, v := range wm.Values() {
			if gv := got[id].Values()[k]; gv != v {
				t.Fatalf("%s cell %d: %v != %v", id, k, gv, v)
			}
		}
	}
	empty := &Block{Name: "empty"}
	if ms := ComputeAll(empty, Registry()); len(ms) != 10 {
		t.Fatalf("empty block: %d matrices", len(ms))
	}
	one := &Block{Name: "one", Docs: make([]Doc, 1)}
	for _, m := range ComputeAll(one, Registry()) {
		if m.Len() != 1 || m.Pairs() != 0 {
			t.Fatalf("one-doc block: dim %d pairs %d", m.Len(), m.Pairs())
		}
	}
}
