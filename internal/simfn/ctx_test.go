package simfn

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowBlock returns a block and function whose full computation takes far
// longer than the test's cancellation horizon: n=80 docs → 3160 pairs at
// 1ms each (≈3s serial), comfortably above the parallel cutoff.
func slowBlock() (*Block, []Func) {
	b := &Block{Name: "slow", Docs: make([]Doc, 80)}
	f := Func{ID: "slow", Compare: func(a, d *Doc) float64 {
		time.Sleep(time.Millisecond)
		return 0
	}}
	return b, []Func{f}
}

func TestComputeAllCtxCanceledMidMatrix(t *testing.T) {
	b, funcs := slowBlock()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ms, err := ComputeAllCtx(ctx, b, funcs)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ms != nil {
		t.Errorf("partial matrices returned alongside error")
	}
	// Workers check the context between rows; one in-flight row is at most
	// 79ms of compares, so the abort must be far quicker than the ≈3s a
	// full computation would take even on many cores.
	if elapsed > time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

func TestComputeAllCtxPreCanceled(t *testing.T) {
	b, funcs := slowBlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ComputeAllCtx(ctx, b, funcs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("pre-canceled context still ran for %v", elapsed)
	}
}

func TestComputeMatrixCtxTimeout(t *testing.T) {
	b, funcs := slowBlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := ComputeMatrixCtx(ctx, b, funcs[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestComputeAllCtxMatchesComputeAll(t *testing.T) {
	// With a context that never fires, the ctx path must be bit-identical
	// to the plain path on real prepared docs.
	b := testBlock(t, 11)
	funcs := Registry()
	want := ComputeAllSerial(b, funcs)
	got, err := ComputeAllCtx(context.Background(), b, funcs)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range want {
		g := got[id]
		for i, v := range m.Values() {
			if g.Values()[i] != v {
				t.Fatalf("%s: cell %d differs: %v vs %v", id, i, g.Values()[i], v)
			}
		}
	}
}
