package simfn

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestMatrixGobRoundTrip checks every cell of the condensed triangle
// survives a round trip bit-exactly.
func TestMatrixGobRoundTrip(t *testing.T) {
	m := NewMatrix(5)
	v := 0.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			v += 0.07
			m.Set(i, j, v)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	got := new(Matrix)
	if err := gob.NewDecoder(&buf).Decode(got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != m.Len() || got.Pairs() != m.Pairs() {
		t.Fatalf("decoded %d×%d (%d pairs), want %d×%d (%d pairs)",
			got.Len(), got.Len(), got.Pairs(), m.Len(), m.Len(), m.Pairs())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

// TestMatrixGobRejectsMismatch checks a triangle whose length contradicts
// the dimension is refused.
func TestMatrixGobRejectsMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(matrixWire{N: 4, Vals: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	m := new(Matrix)
	if err := m.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoded a matrix with 3 values for dimension 4 (want 6)")
	}
}
