package simfn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// matrixWire is the wire form of a Matrix: the dimension and the condensed
// strict upper triangle. Both fields of Matrix are unexported (the
// condensed indexing is an implementation detail), so the persistence
// layer round-trips matrices through these gob methods.
type matrixWire struct {
	N    int
	Vals []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(matrixWire{N: m.n, Vals: m.vals}); err != nil {
		return nil, fmt.Errorf("simfn: encoding matrix: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(data []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("simfn: decoding matrix: %w", err)
	}
	if w.N < 0 || len(w.Vals) != w.N*(w.N-1)/2 {
		return fmt.Errorf("simfn: decoding matrix: %d values for dimension %d (want %d)",
			len(w.Vals), w.N, w.N*(w.N-1)/2)
	}
	m.n, m.vals = w.N, w.Vals
	return nil
}
