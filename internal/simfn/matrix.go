package simfn

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Matrix is a symmetric pairwise similarity matrix over a block, stored as
// the strict upper triangle in row-major order. The diagonal is implicitly
// 1 (a document is identical to itself).
type Matrix struct {
	n    int
	vals []float64
}

// NewMatrix allocates an n×n symmetric matrix with zero off-diagonals.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	return &Matrix{n: n, vals: make([]float64, n*(n-1)/2)}
}

// Len returns the matrix dimension (number of documents).
func (m *Matrix) Len() int { return m.n }

// Pairs returns the number of stored pairs n·(n−1)/2.
func (m *Matrix) Pairs() int { return len(m.vals) }

// idx maps (i, j), i < j, to the condensed index.
func (m *Matrix) idx(i, j int) int {
	// Row i starts after sum_{r<i} (n-1-r) entries.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// At returns the similarity of documents i and j. At(i, i) is 1.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 1
	}
	if i > j {
		i, j = j, i
	}
	return m.vals[m.idx(i, j)]
}

// Set stores the similarity of documents i and j (i ≠ j).
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	m.vals[m.idx(i, j)] = v
}

// Values returns the condensed upper triangle; the slice is shared with
// the matrix and must not be modified.
func (m *Matrix) Values() []float64 { return m.vals }

// parallelMinPairs is the total pair count below which the worker pool is
// not worth its startup cost and computation stays on the calling
// goroutine. Parallel and serial paths produce bit-identical matrices, so
// the cutoff is a pure performance knob.
const parallelMinPairs = 2048

// ComputeMatrix evaluates the similarity function on every pair of
// documents in the block, using all available cores for large blocks. The
// result is bit-identical to ComputeMatrixSerial: every cell is a pure
// function of its document pair and is written exactly once, by exactly
// one worker, so scheduling order cannot affect the values.
func ComputeMatrix(b *Block, f Func) *Matrix {
	return computeMatrices(b, []Func{f}, nil)[0]
}

// ComputeMatrixCtx is ComputeMatrix with cancellation: workers check the
// context between matrix rows, so a canceled or timed-out context aborts an
// in-flight computation mid-matrix and returns ctx.Err(). When the context
// never fires the result is bit-identical to ComputeMatrix.
func ComputeMatrixCtx(ctx context.Context, b *Block, f Func) (*Matrix, error) {
	ms := computeMatrices(b, []Func{f}, ctx.Done())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ms[0], nil
}

// ComputeMatrixSerial is the single-goroutine reference implementation of
// ComputeMatrix, kept for determinism tests and benchmark baselines.
func ComputeMatrixSerial(b *Block, f Func) *Matrix {
	m := NewMatrix(len(b.Docs))
	for i := 0; i < m.n-1; i++ {
		fillRow(b, f, m, i)
	}
	return m
}

// ComputeAll evaluates every function on the block and returns the
// matrices keyed by function ID. All (function, row) units are computed by
// one bounded worker pool, so a single call saturates the machine even
// when individual matrices are small. Output is bit-identical to
// ComputeAllSerial.
func ComputeAll(b *Block, funcs []Func) map[string]*Matrix {
	ms := computeMatrices(b, funcs, nil)
	out := make(map[string]*Matrix, len(funcs))
	for i, f := range funcs {
		out[f.ID] = ms[i]
	}
	return out
}

// ComputeAllCtx is ComputeAll with cancellation: every worker checks the
// context between (function, row) work units, so a canceled or timed-out
// context aborts the in-flight matrix computation promptly and returns
// ctx.Err(). When the context never fires the result is bit-identical to
// ComputeAll.
func ComputeAllCtx(ctx context.Context, b *Block, funcs []Func) (map[string]*Matrix, error) {
	ms := computeMatrices(b, funcs, ctx.Done())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*Matrix, len(funcs))
	for i, f := range funcs {
		out[f.ID] = ms[i]
	}
	return out, nil
}

// ComputeAllSerial is the single-goroutine reference implementation of
// ComputeAll.
func ComputeAllSerial(b *Block, funcs []Func) map[string]*Matrix {
	out := make(map[string]*Matrix, len(funcs))
	for _, f := range funcs {
		out[f.ID] = ComputeMatrixSerial(b, f)
	}
	return out
}

// extraWorkerSlots bounds the total number of *extra* worker goroutines
// across all concurrent matrix computations in the process, so nested
// parallelism (PrepareAll over blocks × ComputeAll within a block) adds up
// linearly instead of multiplying into GOMAXPROCS² runnable CPU-bound
// goroutines. The calling goroutine always computes, so every call makes
// progress at least at serial speed even when no slot is free. The floor
// of 3 extra slots keeps the concurrent paths exercised (and race-checked)
// on single-core machines.
var extraWorkerSlots = sync.OnceValue(func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 3 {
		n = 3
	}
	return make(chan struct{}, n)
})

// computeMatrices fills one matrix per function over a shared worker pool.
// The unit of work is one matrix row: workers claim rows from an atomic
// counter (dynamic load balancing — early rows of the condensed triangle
// are longest) and write into disjoint sub-slices of the matrices' backing
// arrays, so no synchronization of the values themselves is needed. A
// non-nil done channel makes workers stop claiming rows once it closes;
// the caller is then responsible for discarding the partial matrices.
//
// erlint:ignore cancellation arrives through the done channel, plumbed from ctx.Done() by the Ctx entry points
func computeMatrices(b *Block, funcs []Func, done <-chan struct{}) []*Matrix {
	n := len(b.Docs)
	ms := make([]*Matrix, len(funcs))
	for i := range funcs {
		ms[i] = NewMatrix(n)
	}
	if n < 2 || len(funcs) == 0 {
		return ms
	}

	// Tasks are (function, row) pairs flattened as fi*(n-1)+row; rows
	// beyond n-2 have no upper-triangle entries and are excluded by the
	// bound.
	rowsPerFunc := n - 1
	totalTasks := int64(len(funcs) * rowsPerFunc)
	var next atomic.Int64
	run := func() {
		for {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			t := next.Add(1) - 1
			if t >= totalTasks {
				return
			}
			fi, row := int(t)/rowsPerFunc, int(t)%rowsPerFunc
			fillRow(b, funcs[fi], ms[fi], row)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	totalPairs := len(funcs) * n * (n - 1) / 2
	if workers > 1 && totalPairs >= parallelMinPairs {
		slots := extraWorkerSlots()
		var wg sync.WaitGroup
	spawn:
		for w := 0; w < workers-1 && int64(w) < totalTasks-1; w++ {
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer func() {
						<-slots
						wg.Done()
					}()
					run()
				}()
			default:
				// Every slot is busy in another computation; this
				// call proceeds on the calling goroutine alone.
				break spawn
			}
		}
		defer wg.Wait()
	}
	run()
	return ms
}

// fillRow computes row i of the condensed upper triangle of m: the cells
// (i, i+1) … (i, n−1), a contiguous slice of the backing array.
func fillRow(b *Block, f Func, m *Matrix, i int) {
	base := m.idx(i, i+1)
	row := m.vals[base : base+m.n-1-i]
	di := &b.Docs[i]
	for j := i + 1; j < m.n; j++ {
		row[j-i-1] = f.Compare(di, &b.Docs[j])
	}
}

// PairIndex enumerates the pairs (i, j), i < j, of an n-document block in
// the same order as the condensed matrix storage; it is the canonical pair
// ordering used by training-sample selection.
func PairIndex(n int) [][2]int {
	pairs := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.n > 12 {
		return fmt.Sprintf("Matrix(%d×%d)", m.n, m.n)
	}
	var sb strings.Builder
	sb.Grow(m.n * (m.n*6 + 1))
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			fmt.Fprintf(&sb, "%5.2f ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
