package simfn

import "fmt"

// Matrix is a symmetric pairwise similarity matrix over a block, stored as
// the strict upper triangle in row-major order. The diagonal is implicitly
// 1 (a document is identical to itself).
type Matrix struct {
	n    int
	vals []float64
}

// NewMatrix allocates an n×n symmetric matrix with zero off-diagonals.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	return &Matrix{n: n, vals: make([]float64, n*(n-1)/2)}
}

// Len returns the matrix dimension (number of documents).
func (m *Matrix) Len() int { return m.n }

// Pairs returns the number of stored pairs n·(n−1)/2.
func (m *Matrix) Pairs() int { return len(m.vals) }

// idx maps (i, j), i < j, to the condensed index.
func (m *Matrix) idx(i, j int) int {
	// Row i starts after sum_{r<i} (n-1-r) entries.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// At returns the similarity of documents i and j. At(i, i) is 1.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 1
	}
	if i > j {
		i, j = j, i
	}
	return m.vals[m.idx(i, j)]
}

// Set stores the similarity of documents i and j (i ≠ j).
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	m.vals[m.idx(i, j)] = v
}

// Values returns the condensed upper triangle; the slice is shared with
// the matrix and must not be modified.
func (m *Matrix) Values() []float64 { return m.vals }

// ComputeMatrix evaluates the similarity function on every pair of
// documents in the block.
func ComputeMatrix(b *Block, f Func) *Matrix {
	m := NewMatrix(len(b.Docs))
	for i := 0; i < len(b.Docs); i++ {
		for j := i + 1; j < len(b.Docs); j++ {
			m.Set(i, j, f.Compare(&b.Docs[i], &b.Docs[j]))
		}
	}
	return m
}

// ComputeAll evaluates every function on the block and returns the
// matrices keyed by function ID.
func ComputeAll(b *Block, funcs []Func) map[string]*Matrix {
	out := make(map[string]*Matrix, len(funcs))
	for _, f := range funcs {
		out[f.ID] = ComputeMatrix(b, f)
	}
	return out
}

// PairIndex enumerates the pairs (i, j), i < j, of an n-document block in
// the same order as the condensed matrix storage; it is the canonical pair
// ordering used by training-sample selection.
func PairIndex(n int) [][2]int {
	pairs := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.n > 12 {
		return fmt.Sprintf("Matrix(%d×%d)", m.n, m.n)
	}
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			s += fmt.Sprintf("%5.2f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
