// Package simfn implements the ten pairwise similarity functions of the
// paper's Table I. Each function compares two web pages on one extracted
// feature and reports a similarity in [0, 1]:
//
//	F1  weighted concept vector      cosine similarity
//	F2  URL of the page              string/host similarity
//	F3  most frequent name           string similarity
//	F4  concept set                  number of overlapping concepts
//	F5  organization entities        number of overlapping organizations
//	F6  other person names           number of overlapping persons
//	F7  name closest to the query    string similarity
//	F8  TF-IDF word vector           cosine similarity
//	F9  TF-IDF word vector           Pearson correlation similarity
//	F10 TF-IDF word vector           extended Jaccard similarity
//
// The functions operate on prepared Docs (extracted features plus TF-IDF
// term vectors); PrepareBlock builds them for a whole blocking unit (all
// pages sharing one ambiguous name, the paper's natural blocking scheme).
package simfn

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/index"
	"repro/internal/textsim"
)

// Doc bundles everything the similarity functions consume for one page.
//
// The packed fields (Packed, ConceptPacked and the three ID sets) are the
// allocation-lean forms the pairwise hot loop reads; they are built once by
// Pack (PrepareBlock does this for every document) and are nil on manually
// constructed Docs, in which case every similarity function falls back to
// the map/string representations. A packed Doc is immutable and safe for
// concurrent reads.
type Doc struct {
	// Features is the information-extraction output for the page.
	Features extract.DocumentFeatures
	// TermVector is the TF-IDF weighted word vector over the block corpus.
	TermVector textsim.SparseVector
	// Packed is the interned, sorted form of TermVector with precomputed
	// norm and Pearson statistics (F8-F10).
	Packed *textsim.PackedVector
	// ConceptPacked is the packed form of Features.ConceptVector (F1).
	ConceptPacked *textsim.PackedVector
	// ConceptSet, OrgSet and PersonSet are the deduplicated, sorted
	// interned-ID forms of the F4-F6 entity sets.
	ConceptSet, OrgSet, PersonSet []int32
	// FrequentName and ClosestName are the prepared (pre-normalized,
	// pre-tokenized) forms of the F3 and F7 name features.
	FrequentName, ClosestName textsim.Name
}

// Pack interns the document's term vectors and entity sets through the
// block vocabulary, precomputing everything the packed similarity paths
// read per pair. Documents of one block must be packed against the same
// Vocab, in a fixed order for run-to-run determinism.
func (d *Doc) Pack(vocab *textsim.Vocab) {
	d.Packed = d.TermVector.Pack(vocab)
	d.ConceptPacked = d.Features.ConceptVector.Pack(vocab)
	d.ConceptSet = textsim.InternSet(vocab, d.Features.Concepts)
	d.OrgSet = textsim.InternSet(vocab, d.Features.Organizations)
	d.PersonSet = textsim.InternSet(vocab, d.Features.OtherPersons)
	d.FrequentName = textsim.PrepareName(d.Features.MostFrequentName)
	d.ClosestName = textsim.PrepareName(d.Features.ClosestName)
}

// Block is a prepared blocking unit: the documents of one collection with
// extracted features and block-local TF-IDF statistics. The paper computes
// similarities only within blocks ("documents which are about a person with
// the same name").
type Block struct {
	// Name is the ambiguous query name of the block.
	Name string
	// Docs are the prepared documents, parallel to the collection's Docs.
	Docs []Doc
	// Truth is the ground-truth persona label per document, carried along
	// for training-sample selection and evaluation.
	Truth []int
	// NumPersonas is the ground-truth number of entities.
	NumPersonas int
	// Vocab is the block-local term/entity interning table the packed
	// document forms were built against; custom similarity functions can
	// use it to pack their own features.
	Vocab *textsim.Vocab
}

// PrepareBlock extracts features and builds TF-IDF vectors for every page
// of a collection. A nil extractor selects the default built on the shared
// wordlists. IDF statistics are block-local, mirroring a per-name Lucene
// index.
//
// erlint:ignore non-cancelable compatibility shim; new callers use PrepareBlockCtx
func PrepareBlock(col *corpus.Collection, fe *extract.FeatureExtractor) *Block {
	b, _ := PrepareBlockCtx(context.Background(), col, fe) // background ctx never cancels
	return b
}

// PrepareBlockCtx is PrepareBlock with cancellation: the context is checked
// between documents during indexing and feature extraction, so a canceled
// or timed-out context aborts block preparation promptly with ctx.Err().
// The returned block is identical to PrepareBlock's when the context never
// fires.
func PrepareBlockCtx(ctx context.Context, col *corpus.Collection, fe *extract.FeatureExtractor) (*Block, error) {
	if fe == nil {
		fe = extract.NewFeatureExtractor(nil, nil)
	}
	ix := index.New(nil)
	pages := make([]extract.Page, len(col.Docs))
	for i, d := range col.Docs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ix.Add(fmt.Sprintf("%s/%d", col.Name, d.ID), d.Text)
		pages[i] = extract.Page{Text: d.Text, URL: d.URL}
	}
	features, err := fe.ExtractAll(ctx, pages, col.Name)
	if err != nil {
		return nil, err
	}
	vectors := ix.AllVectors()

	b := &Block{
		Name:        col.Name,
		Docs:        make([]Doc, len(col.Docs)),
		Truth:       col.GroundTruth(),
		NumPersonas: col.NumPersonas,
		Vocab:       textsim.NewVocab(),
	}
	for i := range col.Docs {
		b.Docs[i] = Doc{
			Features:   features[i],
			TermVector: vectors[i],
		}
		b.Docs[i].Pack(b.Vocab)
	}
	return b, nil
}

// Func is one pairwise similarity function with its Table I metadata.
type Func struct {
	// ID is the paper's function label ("F1" … "F10").
	ID string
	// Feature describes what the function compares.
	Feature string
	// Measure describes the similarity measure used.
	Measure string
	// Compare returns the similarity of two prepared documents in [0, 1].
	Compare func(a, b *Doc) float64
}

// overlapHalf is the saturation constant for the overlap-count functions
// F4-F6: an overlap of two shared entities maps to 0.5.
const overlapHalf = 2

// Registry returns the ten similarity functions in order F1..F10. The
// returned slice is freshly allocated; callers may subset it (the paper's
// I4/I7/I10 experiments use {F4,F5,F7,F9}, {F3,F4,F5,F7,F8,F9,F10} and all
// ten, respectively).
func Registry() []Func {
	return []Func{
		{
			ID: "F1", Feature: "Weighted Concept Vector", Measure: "Cosine Similarity",
			Compare: func(a, b *Doc) float64 {
				if a.ConceptPacked != nil && b.ConceptPacked != nil {
					if a.ConceptPacked.Len() == 0 || b.ConceptPacked.Len() == 0 {
						return 0
					}
					return clamp01(textsim.PackedCosine(a.ConceptPacked, b.ConceptPacked))
				}
				if len(a.Features.ConceptVector) == 0 || len(b.Features.ConceptVector) == 0 {
					return 0
				}
				return clamp01(textsim.Cosine(a.Features.ConceptVector, b.Features.ConceptVector))
			},
		},
		{
			ID: "F2", Feature: "URL of the page", Measure: "String Similarity",
			Compare: func(a, b *Doc) float64 {
				return clamp01(extract.URLSimilarity(a.Features.URL, b.Features.URL))
			},
		},
		{
			ID: "F3", Feature: "Most frequent name on the page", Measure: "String Similarity",
			Compare: func(a, b *Doc) float64 {
				if a.Features.MostFrequentName == "" || b.Features.MostFrequentName == "" {
					return 0
				}
				// Gate on the prepared names themselves: a partially
				// packed Doc (Packed set by hand, names never prepared)
				// must fall back to the string path, not compare two
				// zero-value Names as equal.
				if a.FrequentName.Norm != "" && b.FrequentName.Norm != "" {
					return clamp01(textsim.PreparedNameSimilarity(a.FrequentName, b.FrequentName))
				}
				return clamp01(textsim.NameSimilarity(a.Features.MostFrequentName, b.Features.MostFrequentName))
			},
		},
		{
			ID: "F4", Feature: "Concepts Vector", Measure: "Number of overlapping concepts",
			Compare: func(a, b *Doc) float64 {
				var n int
				if a.ConceptSet != nil && b.ConceptSet != nil {
					n = textsim.IntersectSortedCount(a.ConceptSet, b.ConceptSet)
				} else {
					n = textsim.SetOverlapCount(a.Features.Concepts, b.Features.Concepts)
				}
				return textsim.NormalizedOverlap(n, overlapHalf)
			},
		},
		{
			ID: "F5", Feature: "Organizations Entities on the page", Measure: "Number of overlapping organizations",
			Compare: func(a, b *Doc) float64 {
				var n int
				if a.OrgSet != nil && b.OrgSet != nil {
					n = textsim.IntersectSortedCount(a.OrgSet, b.OrgSet)
				} else {
					n = textsim.SetOverlapCount(a.Features.Organizations, b.Features.Organizations)
				}
				return textsim.NormalizedOverlap(n, overlapHalf)
			},
		},
		{
			ID: "F6", Feature: "Other Person-Names on the page", Measure: "Number of overlapping persons",
			Compare: func(a, b *Doc) float64 {
				var n int
				if a.PersonSet != nil && b.PersonSet != nil {
					n = textsim.IntersectSortedCount(a.PersonSet, b.PersonSet)
				} else {
					n = textsim.SetOverlapCount(a.Features.OtherPersons, b.Features.OtherPersons)
				}
				return textsim.NormalizedOverlap(n, overlapHalf)
			},
		},
		{
			ID: "F7", Feature: "The name closest to the search keyword", Measure: "String Similarity",
			Compare: func(a, b *Doc) float64 {
				if a.Features.ClosestName == "" || b.Features.ClosestName == "" {
					return 0
				}
				if a.ClosestName.Norm != "" && b.ClosestName.Norm != "" {
					return clamp01(textsim.PreparedNameSimilarity(a.ClosestName, b.ClosestName))
				}
				return clamp01(textsim.NameSimilarity(a.Features.ClosestName, b.Features.ClosestName))
			},
		},
		{
			ID: "F8", Feature: "TF-IDF words vector", Measure: "Cosine Similarity",
			Compare: func(a, b *Doc) float64 {
				if a.Packed != nil && b.Packed != nil {
					if a.Packed.Len() == 0 || b.Packed.Len() == 0 {
						return 0
					}
					return clamp01(textsim.PackedCosine(a.Packed, b.Packed))
				}
				if len(a.TermVector) == 0 || len(b.TermVector) == 0 {
					return 0
				}
				return clamp01(textsim.Cosine(a.TermVector, b.TermVector))
			},
		},
		{
			ID: "F9", Feature: "TF-IDF words vector", Measure: "Pearson Correlation similarity",
			Compare: func(a, b *Doc) float64 {
				if a.Packed != nil && b.Packed != nil {
					if a.Packed.Len() == 0 || b.Packed.Len() == 0 {
						return 0
					}
					return clamp01(textsim.PackedPearsonSim(a.Packed, b.Packed))
				}
				if len(a.TermVector) == 0 || len(b.TermVector) == 0 {
					return 0
				}
				return clamp01(textsim.PearsonSim(a.TermVector, b.TermVector))
			},
		},
		{
			ID: "F10", Feature: "TF-IDF words vector", Measure: "Extended Jaccard similarity",
			Compare: func(a, b *Doc) float64 {
				if a.Packed != nil && b.Packed != nil {
					if a.Packed.Len() == 0 || b.Packed.Len() == 0 {
						return 0
					}
					return clamp01(textsim.PackedExtendedJaccard(a.Packed, b.Packed))
				}
				if len(a.TermVector) == 0 || len(b.TermVector) == 0 {
					return 0
				}
				return clamp01(textsim.ExtendedJaccard(a.TermVector, b.TermVector))
			},
		},
	}
}

// ByID returns the registered function with the given ID.
func ByID(id string) (Func, error) {
	for _, f := range Registry() {
		if f.ID == id {
			return f, nil
		}
	}
	return Func{}, fmt.Errorf("simfn: unknown function %q", id)
}

// Subset returns the registered functions with the given IDs, in the given
// order.
func Subset(ids []string) ([]Func, error) {
	out := make([]Func, 0, len(ids))
	for _, id := range ids {
		f, err := ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Paper's function subsets for Table II.
var (
	// SubsetI4 is the paper's I4/C4 set {F4, F5, F7, F9}.
	SubsetI4 = []string{"F4", "F5", "F7", "F9"}
	// SubsetI7 is the paper's I7/C7 set {F3, F4, F5, F7, F8, F9, F10}.
	SubsetI7 = []string{"F3", "F4", "F5", "F7", "F8", "F9", "F10"}
	// SubsetI10 is all ten functions.
	SubsetI10 = []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10"}
)

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
