package simfn

import (
	"testing"

	"repro/internal/corpus"
)

// benchComputeAll measures full ten-function matrix computation on a
// ~100-doc block (the size of a WWW'05 collection), reporting pairs/sec so
// speedups are directly visible in bench output.
func benchComputeAll(b *testing.B, compute func(*Block, []Func) map[string]*Matrix) {
	blk := parallelTestBlock(b, 100)
	funcs := Registry()
	n := len(blk.Docs)
	pairsPerOp := float64(len(funcs) * n * (n - 1) / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compute(blk, funcs)
	}
	b.ReportMetric(pairsPerOp*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkComputeAll_Serial is the single-goroutine reference.
func BenchmarkComputeAll_Serial(b *testing.B) {
	benchComputeAll(b, ComputeAllSerial)
}

// BenchmarkComputeAll_Parallel is the worker-pool path used by the
// pipeline; compare pairs/s against BenchmarkComputeAll_Serial.
func BenchmarkComputeAll_Parallel(b *testing.B) {
	benchComputeAll(b, ComputeAll)
}

// BenchmarkPrepareBlock measures block preparation (feature extraction,
// TF-IDF materialization, packing) on the same 100-doc collection.
func BenchmarkPrepareBlock(b *testing.B) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "parallel", NumDocs: 100, NumPersonas: 5,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 77,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrepareBlock(col, nil)
	}
}
