package regions

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEqualWidthBins(t *testing.T) {
	b := NewEqualWidthBins(10)
	if b.NumRegions() != 10 {
		t.Fatalf("NumRegions = %d", b.NumRegions())
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.99, 9}, {1.0, 9},
		{-0.5, 0}, {1.5, 9},
	}
	for _, tc := range cases {
		if got := b.Region(tc.v); got != tc.want {
			t.Errorf("Region(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	bounds := b.Boundaries()
	if len(bounds) != 10 || bounds[9] != 1 || math.Abs(bounds[0]-0.1) > 1e-12 {
		t.Errorf("Boundaries = %v", bounds)
	}
}

func TestEqualWidthBinsDegenerate(t *testing.T) {
	b := NewEqualWidthBins(0)
	if b.NumRegions() != 1 {
		t.Errorf("k<1 should clamp to 1, got %d", b.NumRegions())
	}
	if b.Region(0.3) != 0 || b.Region(1) != 0 {
		t.Error("single-bin region assignment broken")
	}
}

func TestKMeans1DTwoClusters(t *testing.T) {
	// Values concentrated near 0.1 and 0.9 must be split there.
	values := []float64{0.05, 0.1, 0.12, 0.08, 0.88, 0.9, 0.95, 0.92}
	km, err := FitKMeans1D(values, 2, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if km.NumRegions() != 2 {
		t.Fatalf("regions = %d, want 2", km.NumRegions())
	}
	if km.Region(0.1) == km.Region(0.9) {
		t.Error("clearly separated values in same region")
	}
	if km.Region(0.0) != 0 || km.Region(1.0) != 1 {
		t.Error("extremes mis-assigned")
	}
	// Centers must be near the modes.
	if math.Abs(km.Centers[0]-0.0875) > 0.05 || math.Abs(km.Centers[1]-0.9125) > 0.05 {
		t.Errorf("centers = %v", km.Centers)
	}
}

func TestKMeans1DCollapsesDuplicates(t *testing.T) {
	values := []float64{0.5, 0.5, 0.5, 0.5}
	km, err := FitKMeans1D(values, 5, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if km.NumRegions() != 1 {
		t.Errorf("identical values should yield one region, got %d", km.NumRegions())
	}
}

func TestKMeans1DErrors(t *testing.T) {
	if _, err := FitKMeans1D(nil, 3, stats.NewRNG(1)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitKMeans1D([]float64{0.5}, 0, stats.NewRNG(1)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeans1DRegionsAreIntervalsProperty(t *testing.T) {
	// For any fitted partitioner, region assignment must be monotone in v.
	f := func(raw []float64, seed int64) bool {
		values := make([]float64, 0, len(raw))
		for _, v := range raw {
			values = append(values, math.Abs(v)-math.Floor(math.Abs(v))) // into [0,1)
		}
		if len(values) < 2 {
			return true
		}
		km, err := FitKMeans1D(values, 4, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		sorted := make([]float64, len(values))
		copy(sorted, values)
		sort.Float64s(sorted)
		prev := 0
		for _, v := range sorted {
			r := km.Region(v)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKMeans1DDeterministicWithSeed(t *testing.T) {
	values := []float64{0.1, 0.2, 0.5, 0.6, 0.9, 0.3, 0.8, 0.05}
	a, _ := FitKMeans1D(values, 3, stats.NewRNG(7))
	b, _ := FitKMeans1D(values, 3, stats.NewRNG(7))
	if len(a.Centers) != len(b.Centers) {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatal("non-deterministic centers")
		}
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Bin 0 ([0,0.5)): 1 of 4 is a link → 0.25.
	// Bin 1 ([0.5,1]): 3 of 4 are links → 0.75.
	p := NewEqualWidthBins(2)
	values := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9}
	links := []bool{true, false, false, false, true, true, true, false}
	e, err := EstimateAccuracy(p, values, links)
	if err != nil {
		t.Fatal(err)
	}
	// Raw frequencies 0.25 and 0.75 smoothed towards the base rate 0.5
	// with pseudo-count 2: (1 + 2·0.5)/(4+2) = 1/3 and (3 + 2·0.5)/(4+2) = 2/3.
	if math.Abs(e.Accuracy[0]-1.0/3.0) > 1e-12 {
		t.Errorf("region 0 accuracy = %v, want 1/3", e.Accuracy[0])
	}
	if math.Abs(e.Accuracy[1]-2.0/3.0) > 1e-12 {
		t.Errorf("region 1 accuracy = %v, want 2/3", e.Accuracy[1])
	}
	if e.Support[0] != 4 || e.Support[1] != 4 {
		t.Errorf("support = %v", e.Support)
	}
	if math.Abs(e.BaseRate-0.5) > 1e-12 {
		t.Errorf("base rate = %v", e.BaseRate)
	}
	// Decisions follow region majority.
	if e.Decide(0.2) {
		t.Error("low region should not link")
	}
	if !e.Decide(0.8) {
		t.Error("high region should link")
	}
	if math.Abs(e.LinkProbability(0.9)-2.0/3.0) > 1e-12 {
		t.Errorf("LinkProbability = %v", e.LinkProbability(0.9))
	}
	if math.Abs(e.Variation()-1.0/3.0) > 1e-12 {
		t.Errorf("Variation = %v, want 1/3", e.Variation())
	}
}

func TestEstimateAccuracyEmptyRegionFallsBack(t *testing.T) {
	p := NewEqualWidthBins(10)
	// All samples in bin 0; other bins get the base rate.
	values := []float64{0.01, 0.02, 0.03, 0.04}
	links := []bool{true, true, false, false}
	e, err := EstimateAccuracy(p, values, links)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Accuracy[5]-0.5) > 1e-12 {
		t.Errorf("unsupported region accuracy = %v, want base rate 0.5", e.Accuracy[5])
	}
	if e.Variation() != 0 {
		t.Errorf("single supported region: Variation = %v, want 0", e.Variation())
	}
}

func TestEstimateAccuracyErrors(t *testing.T) {
	p := NewEqualWidthBins(2)
	if _, err := EstimateAccuracy(p, []float64{0.5}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := EstimateAccuracy(p, nil, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestAccuracyEstimateWithKMeansPartition(t *testing.T) {
	// Bimodal similarities: low mode mostly non-links, high mode mostly
	// links — the structure Figure 1 visualizes.
	rng := stats.NewRNG(99)
	var values []float64
	var links []bool
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			values = append(values, 0.1+0.2*rng.Float64())
			links = append(links, rng.Float64() < 0.15)
		} else {
			values = append(values, 0.65+0.3*rng.Float64())
			links = append(links, rng.Float64() < 0.85)
		}
	}
	km, err := FitKMeans1D(values, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EstimateAccuracy(km, values, links)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy in the lowest region must be below the highest region.
	if e.Accuracy[0] >= e.Accuracy[e.Part.NumRegions()-1] {
		t.Errorf("accuracy not increasing: %v", e.Accuracy)
	}
	// Variation should be large for this structured data.
	if e.Variation() < 0.4 {
		t.Errorf("Variation = %v, want >= 0.4", e.Variation())
	}
}

func TestBoundariesLastIsOne(t *testing.T) {
	km, err := FitKMeans1D([]float64{0.2, 0.4, 0.8}, 3, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	b := km.Boundaries()
	if b[len(b)-1] != 1 {
		t.Errorf("last boundary = %v, want 1", b[len(b)-1])
	}
	if len(b) != km.NumRegions() {
		t.Errorf("boundaries length %d != regions %d", len(b), km.NumRegions())
	}
}
