package regions

import "fmt"

// AccuracyEstimate is the per-region accuracy of link existence, fitted on
// a labeled training sample (Section IV-A): for region r, Accuracy[r] is
// the fraction of training pairs whose similarity fell in r that are true
// links. When Accuracy[r] < 0.5 the majority of pairs in the region are
// non-links, so the region votes against an edge.
type AccuracyEstimate struct {
	// Part is the partitioner the estimate was fitted over.
	Part Partitioner
	// Accuracy[r] is the estimated link probability in region r; regions
	// with no training support fall back to the global base rate.
	Accuracy []float64
	// Support[r] is the number of training pairs observed in region r.
	Support []int
	// BaseRate is the overall fraction of positive training pairs, the
	// fallback for unsupported regions.
	BaseRate float64
}

// smoothingWeight is the pseudo-count pulling low-support regions towards
// the base rate. The paper estimates raw per-region frequencies; with the
// very small training samples (10% of a 100-page block gives ~45 pairs) a
// light Laplace-style prior stops single-pair regions from flipping
// decisions. Regions with solid support are barely affected.
const smoothingWeight = 2.0

// EstimateAccuracy fits per-region link accuracies from parallel slices of
// training similarity values and link labels, smoothing each region's
// frequency towards the global base rate with a pseudo-count of
// smoothingWeight.
func EstimateAccuracy(p Partitioner, values []float64, links []bool) (*AccuracyEstimate, error) {
	if len(values) != len(links) {
		return nil, fmt.Errorf("regions: %d values but %d labels", len(values), len(links))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("regions: empty training sample")
	}
	k := p.NumRegions()
	pos := make([]int, k)
	support := make([]int, k)
	totalPos := 0
	for i, v := range values {
		r := p.Region(v)
		support[r]++
		if links[i] {
			pos[r]++
			totalPos++
		}
	}
	base := float64(totalPos) / float64(len(values))
	acc := make([]float64, k)
	for r := 0; r < k; r++ {
		if support[r] == 0 {
			acc[r] = base
			continue
		}
		acc[r] = (float64(pos[r]) + smoothingWeight*base) /
			(float64(support[r]) + smoothingWeight)
	}
	return &AccuracyEstimate{Part: p, Accuracy: acc, Support: support, BaseRate: base}, nil
}

// LinkProbability returns the estimated probability that a pair with
// similarity v is a true link.
func (e *AccuracyEstimate) LinkProbability(v float64) float64 {
	return e.Accuracy[e.Part.Region(v)]
}

// Decide reports whether a pair with similarity v should be linked under
// the region-accuracy criterion: link iff the region's estimated link
// probability is at least 0.5 (the region's majority class is "link").
func (e *AccuracyEstimate) Decide(v float64) bool {
	return e.LinkProbability(v) >= 0.5
}

// Variation returns max − min of the per-region accuracies over supported
// regions, quantifying the paper's observation that "the accuracy values
// varied significantly" across regions. It returns 0 when fewer than two
// regions have support.
func (e *AccuracyEstimate) Variation() float64 {
	lo, hi := 2.0, -1.0
	supported := 0
	for r, s := range e.Support {
		if s == 0 {
			continue
		}
		supported++
		if e.Accuracy[r] < lo {
			lo = e.Accuracy[r]
		}
		if e.Accuracy[r] > hi {
			hi = e.Accuracy[r]
		}
	}
	if supported < 2 {
		return 0
	}
	return hi - lo
}
