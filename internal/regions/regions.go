// Package regions implements the paper's region-based accuracy estimation
// (Section IV-A): the similarity value space [0, 1] is partitioned into
// regions — either equal-width sub-intervals or 1-D k-means clusters of the
// observed training values — and for each region the "accuracy of link
// existence" is estimated as the fraction of training pairs falling in the
// region that are true links. Decisions can then consult the region
// accuracy instead of (or in addition to) a single global threshold.
package regions

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partitioner assigns similarity values in [0, 1] to region indices.
type Partitioner interface {
	// Region returns the region index of v, in [0, NumRegions).
	Region(v float64) int
	// NumRegions returns the number of regions.
	NumRegions() int
	// Boundaries returns the region upper boundaries in increasing order;
	// the last boundary is 1 (used to render Figure 1's dotted lines).
	Boundaries() []float64
}

// EqualWidthBins partitions [0, 1] into k equal-width sub-intervals
// [0, 1/k), [1/k, 2/k), …, [1−1/k, 1] — the paper's first region scheme.
type EqualWidthBins struct {
	k int
}

// NewEqualWidthBins returns a k-bin equal-width partitioner; k < 1 is
// treated as 1.
func NewEqualWidthBins(k int) *EqualWidthBins {
	if k < 1 {
		k = 1
	}
	return &EqualWidthBins{k: k}
}

// Region implements Partitioner.
func (b *EqualWidthBins) Region(v float64) int {
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		return b.k - 1
	}
	return int(v * float64(b.k))
}

// NumRegions implements Partitioner.
func (b *EqualWidthBins) NumRegions() int { return b.k }

// Boundaries implements Partitioner.
func (b *EqualWidthBins) Boundaries() []float64 {
	out := make([]float64, b.k)
	for i := 1; i <= b.k; i++ {
		out[i-1] = float64(i) / float64(b.k)
	}
	return out
}

// KMeans1D partitions by nearest cluster center, the centers fitted to the
// observed training similarity values — the paper's second scheme, which
// adapts region density to the (non-uniform) value distribution.
type KMeans1D struct {
	// Centers are the fitted cluster centers in increasing order.
	Centers []float64
	// bounds[i] is the midpoint between Centers[i] and Centers[i+1]; a
	// value belongs to region i when it is below bounds[i].
	bounds []float64
}

// FitKMeans1D clusters values into at most k regions with Lloyd's
// algorithm, seeded by k-means++ draws from rng. Duplicate centers collapse,
// so the fitted partitioner may have fewer than k regions when the data has
// fewer than k distinct values. It returns an error for empty input or
// k < 1.
func FitKMeans1D(values []float64, k int, rng *rand.Rand) (*KMeans1D, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("regions: no values to cluster")
	}
	if k < 1 {
		return nil, fmt.Errorf("regions: k = %d", k)
	}
	distinct := distinctSorted(values)
	if k > len(distinct) {
		k = len(distinct)
	}

	centers := seedPlusPlus(distinct, values, k, rng)
	sort.Float64s(centers)

	assign := make([]int, len(values))
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step: nearest center (centers stay sorted).
		for i, v := range values {
			c := nearestCenter(centers, v)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		sums := make([]float64, len(centers))
		counts := make([]int, len(centers))
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		sort.Float64s(centers)
	}

	// Collapse coincident centers.
	centers = dedupeCenters(centers)
	km := &KMeans1D{Centers: centers}
	km.bounds = make([]float64, len(centers)-1)
	for i := 0; i+1 < len(centers); i++ {
		km.bounds[i] = (centers[i] + centers[i+1]) / 2
	}
	return km, nil
}

// Region implements Partitioner.
func (km *KMeans1D) Region(v float64) int {
	return sort.SearchFloat64s(km.bounds, v)
}

// NumRegions implements Partitioner.
func (km *KMeans1D) NumRegions() int { return len(km.Centers) }

// Boundaries implements Partitioner.
func (km *KMeans1D) Boundaries() []float64 {
	out := make([]float64, 0, len(km.Centers))
	out = append(out, km.bounds...)
	return append(out, 1)
}

func distinctSorted(values []float64) []float64 {
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// seedPlusPlus draws k initial centers with k-means++ weighting: the first
// uniformly, subsequent ones proportional to squared distance from the
// nearest chosen center.
func seedPlusPlus(distinct, values []float64, k int, rng *rand.Rand) []float64 {
	centers := make([]float64, 0, k)
	centers = append(centers, values[rng.Intn(len(values))])
	for len(centers) < k {
		weights := make([]float64, len(distinct))
		total := 0.0
		for i, v := range distinct {
			d := v - centers[nearestCenter(centers, v)]
			weights[i] = d * d
			total += weights[i]
		}
		if total == 0 {
			break
		}
		r := rng.Float64() * total
		chosen := len(distinct) - 1
		for i, w := range weights {
			r -= w
			if r < 0 {
				chosen = i
				break
			}
		}
		centers = append(centers, distinct[chosen])
	}
	return centers
}

// nearestCenter returns the index of the center closest to v; centers must
// be sorted.
func nearestCenter(centers []float64, v float64) int {
	i := sort.SearchFloat64s(centers, v)
	if i == 0 {
		return 0
	}
	if i == len(centers) {
		return len(centers) - 1
	}
	if v-centers[i-1] <= centers[i]-v {
		return i - 1
	}
	return i
}

func dedupeCenters(centers []float64) []float64 {
	out := centers[:0]
	for i, c := range centers {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
