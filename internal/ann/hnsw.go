package ann

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/textsim"
)

// distNode is one graph node paired with its exact distance (1 - cosine)
// to the current query.
type distNode struct {
	dist float64
	id   int32
}

// nodeLess is the total order every queue and selection uses: nearer
// first, insertion id breaking exact ties — the id tiebreak is what keeps
// truncated result sets deterministic when distances collide.
func nodeLess(a, b distNode) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// minQueue pops the nearest node first (the expansion frontier).
type minQueue []distNode

func (q minQueue) Len() int           { return len(q) }
func (q minQueue) Less(i, j int) bool { return nodeLess(q[i], q[j]) }
func (q minQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *minQueue) Push(v any)        { *q = append(*q, v.(distNode)) }
func (q *minQueue) Pop() any          { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

// maxQueue pops the farthest node first (the bounded result set).
type maxQueue []distNode

func (q maxQueue) Len() int           { return len(q) }
func (q maxQueue) Less(i, j int) bool { return nodeLess(q[j], q[i]) }
func (q maxQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *maxQueue) Push(v any)        { *q = append(*q, v.(distNode)) }
func (q *maxQueue) Pop() any          { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

// levelFor draws a node's top layer from its content hash: the standard
// geometric level distribution, but seeded by blocking.DocHash instead of
// a PRNG so the same document lands on the same layer in every build.
func levelFor(hash uint64, mL float64) int32 {
	// 53 high bits → uniform in (0, 1); the +0.5 keeps u strictly
	// positive so the log is finite.
	u := (float64(hash>>11) + 0.5) / (1 << 53)
	l := int32(-math.Log(u) * mL)
	if l < 0 {
		l = 0
	}
	if l > maxGraphLevel {
		l = maxGraphLevel
	}
	return l
}

// distTo is the graph metric: one minus the exact cosine over the packed
// key-token vectors. Cosine of non-negative vectors lives in [0, 1], so
// the distance does too.
func (x *CandidateIndex) distTo(q *textsim.PackedVector, id int32) float64 {
	return 1 - textsim.PackedCosine(q, x.vecs[id])
}

// searchLayer is the HNSW best-first beam search over one layer: expand
// the nearest unexpanded candidate until the frontier cannot improve the
// ef nearest found so far. Returns the results nearest-first. Callers
// hold x.mu.
func (x *CandidateIndex) searchLayer(q *textsim.PackedVector, eps []distNode, ef int, layer int32) []distNode {
	visited := make([]bool, len(x.docs))
	cand := make(minQueue, len(eps))
	res := make(maxQueue, 0, ef+1)
	for i, e := range eps {
		cand[i] = e
		visited[e.id] = true
	}
	heap.Init(&cand)
	for _, e := range eps {
		heap.Push(&res, e)
		if len(res) > ef {
			heap.Pop(&res)
		}
	}

	for len(cand) > 0 {
		c := heap.Pop(&cand).(distNode)
		if len(res) >= ef && nodeLess(res[0], c) {
			break // the frontier is farther than the worst result
		}
		links := x.neighbors[c.id]
		if int(layer) >= len(links) {
			continue
		}
		for _, nb := range links[layer] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := distNode{dist: x.distTo(q, nb), id: nb}
			if len(res) < ef || nodeLess(d, res[0]) {
				heap.Push(&cand, d)
				heap.Push(&res, d)
				if len(res) > ef {
					heap.Pop(&res)
				}
			}
		}
	}

	out := []distNode(res)
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

// insert links node id (whose vector, level and empty adjacency are
// already appended) into the graph and returns the layer-0 beam — the
// node's nearest neighbors, which applyPolicy turns into candidate
// edges. Callers hold x.mu.
func (x *CandidateIndex) insert(id int32) []distNode {
	level := x.levels[id]
	if x.entry < 0 {
		x.entry, x.maxLevel = id, level
		return nil
	}
	q := x.vecs[id]
	eps := []distNode{{dist: x.distTo(q, x.entry), id: x.entry}}

	// Greedy descent through the layers above the node's level.
	for l := x.maxLevel; l > level; l-- {
		eps = x.searchLayer(q, eps, 1, l)
	}

	// Link downward. The beam is sized for both jobs it feeds: efCons for
	// link selection, efSrch for the candidate query at layer 0.
	ef := x.efCons
	if x.efSrch > ef {
		ef = x.efSrch
	}
	var beam []distNode
	top := level
	if x.maxLevel < top {
		top = x.maxLevel
	}
	for l := top; l >= 0; l-- {
		w := x.searchLayer(q, eps, ef, l)
		sel := w
		if len(sel) > x.m {
			sel = sel[:x.m]
		}
		for _, n := range sel {
			x.link(id, n.id, l)
			x.link(n.id, id, l)
		}
		if l == 0 {
			beam = w
		}
		eps = w
	}
	if level > x.maxLevel {
		x.entry, x.maxLevel = id, level
	}
	return beam
}

// link appends `to` to `from`'s layer adjacency, pruning back to the
// degree bound (M, or 2M on layer 0) by exact distance when it overflows
// — the simple nearest-keep heuristic, deterministic via nodeLess.
func (x *CandidateIndex) link(from, to int32, layer int32) {
	lst := append(x.neighbors[from][layer], to)
	bound := x.m
	if layer == 0 {
		bound = 2 * x.m
	}
	if len(lst) > bound {
		v := x.vecs[from]
		nds := make([]distNode, len(lst))
		for i, nb := range lst {
			nds[i] = distNode{dist: x.distTo(v, nb), id: nb}
		}
		sort.Slice(nds, func(i, j int) bool { return nodeLess(nds[i], nds[j]) })
		lst = lst[:0]
		for i := 0; i < bound; i++ {
			lst = append(lst, nds[i].id)
		}
	}
	x.neighbors[from][layer] = lst
}
