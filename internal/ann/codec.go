package ann

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/textsim"
)

// annMagic heads every encoded index; the digit is the format version.
const annMagic = "ERANN001"

// ErrCodecVersion reports an encoded index from an unsupported format
// version; ErrCodecCorrupt reports structural damage. Callers treat both
// as "no usable index": correctness never depends on the encoded form —
// the index rebuilds from the corpus — only the restart head-start does.
var (
	ErrCodecVersion = errors.New("ann: unsupported index format version")
	ErrCodecCorrupt = errors.New("ann: encoded index is corrupt")
)

// crcTable is the Castagnoli table, matching the persist layer's journal.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodedIndex is the gob payload: the primary state only — the graph
// adjacency, the packed vectors in wire form (vocabulary terms in intern
// order, per-doc id/weight slices), refs, hashes, levels, high-water
// marks, and the spanning forest of merging candidate edges. Derived
// state (union-find, member lists, fingerprints) is rebuilt on decode by
// replaying the edges, which is cheap next to re-running the neighbor
// searches that found them.
type encodedIndex struct {
	M              int
	EfConstruction int
	EfSearch       int
	Cols           []encodedCol
	Refs           []DocRef
	Hashes         []uint64
	Levels         []int32
	Terms          []string
	VecIDs         [][]int32
	VecWeights     [][]float64
	Neighbors      [][][]int32
	Entry          int32
	MaxLevel       int32
	Edges          [][2]int32
}

type encodedCol struct {
	Name    string
	Indexed int
}

// EncodeTo writes the index in its versioned, checksummed wire form and
// returns the version (document count) the encoding reflects — what
// callers compare against Version() to skip redundant saves.
func (x *CandidateIndex) EncodeTo(w io.Writer) (uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()

	enc := encodedIndex{
		M:              x.m,
		EfConstruction: x.efCons,
		EfSearch:       x.efSrch,
		Cols:           make([]encodedCol, len(x.cols)),
		Refs:           make([]DocRef, len(x.docs)),
		Hashes:         make([]uint64, len(x.docs)),
		Levels:         x.levels,
		Terms:          make([]string, x.vocab.Len()),
		VecIDs:         make([][]int32, len(x.vecs)),
		VecWeights:     make([][]float64, len(x.vecs)),
		Neighbors:      x.neighbors,
		Entry:          x.entry,
		MaxLevel:       x.maxLevel,
		Edges:          x.edges,
	}
	for i, cs := range x.cols {
		enc.Cols[i] = encodedCol{Name: cs.name, Indexed: cs.indexed}
	}
	for i, d := range x.docs {
		enc.Refs[i] = d.ref
		enc.Hashes[i] = d.hash
	}
	for i := 0; i < x.vocab.Len(); i++ {
		enc.Terms[i] = x.vocab.Term(int32(i))
	}
	for i, v := range x.vecs {
		enc.VecIDs[i] = v.IDs
		enc.VecWeights[i] = v.Weights
	}

	if _, err := io.WriteString(w, annMagic); err != nil {
		return 0, fmt.Errorf("ann: writing header: %w", err)
	}
	crc := crc32.New(crcTable)
	if err := gob.NewEncoder(io.MultiWriter(w, crc)).Encode(enc); err != nil {
		return 0, fmt.Errorf("ann: encoding index: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return 0, fmt.Errorf("ann: writing checksum: %w", err)
	}
	return x.version, nil
}

// Decode reads an index written by EncodeTo and rebuilds it under cfg,
// which must describe the same configuration (scheme, key function,
// graph knobs) that produced it — the index records only the knobs, so
// the caller's storage key must carry the rest. A knob mismatch is an
// error, not corruption: the persisted graph was built under different
// parameters and the caller should rebuild from the corpus instead.
func Decode(r io.Reader, cfg Config) (*CandidateIndex, error) {
	header := make([]byte, len(annMagic))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCodecCorrupt, err)
	}
	if string(header) != annMagic {
		if string(header[:5]) == annMagic[:5] {
			return nil, fmt.Errorf("%w: %q", ErrCodecVersion, header)
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodecCorrupt, header)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCodecCorrupt, err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: payload shorter than its checksum", ErrCodecCorrupt)
	}
	payload, sum := body[:len(body)-4], binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, trailer declares %08x", ErrCodecCorrupt, got, sum)
	}
	var enc encodedIndex
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodecCorrupt, err)
	}

	x, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if enc.M != x.m || enc.EfConstruction != x.efCons || enc.EfSearch != x.efSrch {
		return nil, fmt.Errorf("ann: encoded index was built with M=%d efc=%d efs=%d, configuration wants M=%d efc=%d efs=%d; rebuild from the corpus",
			enc.M, enc.EfConstruction, enc.EfSearch, x.m, x.efCons, x.efSrch)
	}

	n := len(enc.Refs)
	if len(enc.Hashes) != n || len(enc.Levels) != n ||
		len(enc.VecIDs) != n || len(enc.VecWeights) != n || len(enc.Neighbors) != n {
		return nil, fmt.Errorf("%w: %d refs but %d hashes, %d levels, %d vectors, %d weight sets, %d adjacencies",
			ErrCodecCorrupt, n, len(enc.Hashes), len(enc.Levels), len(enc.VecIDs), len(enc.VecWeights), len(enc.Neighbors))
	}
	if n > 0 && (enc.Entry < 0 || int(enc.Entry) >= n) {
		return nil, fmt.Errorf("%w: entry point %d of %d documents", ErrCodecCorrupt, enc.Entry, n)
	}

	for _, c := range enc.Cols {
		x.cols = append(x.cols, colState{name: c.Name, indexed: c.Indexed})
	}
	// Rebuild the vocabulary in intern order so term IDs keep their
	// meaning for both the stored vectors and every future insertion.
	terms := x.vocab.Len() // 0; kept for clarity of the invariant below
	for _, t := range enc.Terms {
		x.vocab.ID(t)
	}
	if x.vocab.Len() != terms+len(enc.Terms) {
		return nil, fmt.Errorf("%w: duplicate vocabulary terms", ErrCodecCorrupt)
	}
	nTerms := int32(x.vocab.Len())
	for i := 0; i < n; i++ {
		ids := enc.VecIDs[i]
		if len(ids) > 0 && ids[len(ids)-1] >= nTerms {
			return nil, fmt.Errorf("%w: vector %d references term %d of %d", ErrCodecCorrupt, i, ids[len(ids)-1], nTerms)
		}
		vec, err := textsim.PackedFromParts(ids, enc.VecWeights[i])
		if err != nil {
			return nil, fmt.Errorf("%w: vector %d: %v", ErrCodecCorrupt, i, err)
		}
		if enc.Levels[i] < 0 || enc.Levels[i] > maxGraphLevel {
			return nil, fmt.Errorf("%w: document %d at level %d", ErrCodecCorrupt, i, enc.Levels[i])
		}
		if len(enc.Neighbors[i]) != int(enc.Levels[i])+1 {
			return nil, fmt.Errorf("%w: document %d at level %d has %d adjacency layers",
				ErrCodecCorrupt, i, enc.Levels[i], len(enc.Neighbors[i]))
		}
		for _, layer := range enc.Neighbors[i] {
			for _, nb := range layer {
				if nb < 0 || int(nb) >= n {
					return nil, fmt.Errorf("%w: document %d links to %d of %d", ErrCodecCorrupt, i, nb, n)
				}
			}
		}
		id := int32(x.uf.Add())
		x.docs = append(x.docs, docState{ref: enc.Refs[i], hash: enc.Hashes[i]})
		x.vecs = append(x.vecs, vec)
		x.members = append(x.members, []int32{id})
		// First occurrence wins, as at insertion time: the primary is the
		// node in the graph, later copies are duplicate satellites.
		key := vecKey(vec)
		if _, ok := x.primary[key]; !ok {
			x.primary[key] = id
		}
	}
	x.levels = enc.Levels
	x.neighbors = enc.Neighbors
	if n > 0 {
		x.entry = enc.Entry
		x.maxLevel = enc.MaxLevel
	}
	// Replay the merging edges to rebuild the union-find and member
	// lists — the spanning forest reproduces the components exactly.
	for _, e := range enc.Edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("%w: candidate edge (%d, %d) of %d documents", ErrCodecCorrupt, e[0], e[1], n)
		}
		root, absorbed, merged := x.uf.Merge(int(e[0]), int(e[1]))
		if merged {
			x.members[root] = append(x.members[root], x.members[absorbed]...)
			x.members[absorbed] = nil
		}
	}
	x.edges = enc.Edges
	x.version = uint64(n)
	return x, nil
}
