// Package ann is the incremental approximate-nearest-neighbor candidate
// index behind the global blocking schemes (canopy, sorted neighborhood).
// The exact schemes compare every record pair — O(N²) per run, the last
// O(corpus) path in the Block stage — while this index inserts each new
// document into a layered proximity graph (HNSW: Malkov & Yashunin) once
// and discovers its candidate partners with a near-logarithmic neighbor
// query. The scheme's blocking.ApproxPolicy turns the query results into
// candidate edges, an incremental union-find folds the edges into
// key-connected components, and the components feed RunIncremental as
// membership-fingerprinted blocks exactly like the sharded key index —
// so the resolve path downstream of the Block stage cannot tell the two
// apart.
//
// Documents are embedded as binary token-set vectors over their
// normalized blocking keys (the same token set canopy's exact Jaccard
// compares), and every similarity that accepts or rejects an edge is an
// exact textsim.PackedCosine over those vectors — the graph only decides
// which pairs get examined, never how they score. On binary sets cosine
// bounds Jaccard from above, so a pair the exact canopy links is only
// ever missed by not being surfaced among the efSearch nearest; recall is
// the single quantity the approximation trades, and the eval harness
// measures it against the exact scheme.
//
// Determinism: graph levels are drawn from each document's content hash
// (blocking.DocHash), neighbor selection breaks distance ties by insertion
// id, and vocabulary interning follows insertion order — so the same
// corpus ingested in the same order builds the same graph, the same
// edges, and the same blocks on every run. Batch splits that keep the
// flattened (collection, position) order — whole collections per batch,
// or growth confined to the tail collection — reproduce the one-shot
// build exactly; other append-only splits stay correct and
// recall-governed but may link through different neighbors than a fresh
// rebuild would.
package ann

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/textsim"
)

// DocRef addresses one document by collection and position, shared with
// the sharded key index so the pipeline assembles both the same way.
type DocRef = blockindex.DocRef

// KeyFunc derives a document's blocking keys, shared with the key index.
type KeyFunc = blockindex.KeyFunc

// Graph parameter defaults. M is the per-node degree bound (layer 0
// keeps 2M); EfConstruction sizes the candidate beam while linking a new
// node; EfSearch sizes the neighbor query the candidate edges come from.
// Larger ef raises recall and cost roughly linearly.
const (
	DefaultM              = 12
	DefaultEfConstruction = 100
	DefaultEfSearch       = 64
)

// maxGraphLevel caps the level draw; beyond this a level adds nothing at
// any plausible corpus size.
const maxGraphLevel = 30

// ErrOutOfSync reports a corpus that is not an append-only extension of
// what the index has already seen — same semantics as the key index.
var ErrOutOfSync = errors.New("ann: index is out of sync with the offered corpus")

// Config assembles a CandidateIndex.
type Config struct {
	// Scheme is the global scheme being approximated; its ApproxPolicy
	// decides which queried neighbors become candidate edges.
	Scheme blocking.ApproxScheme
	// Keys derives each document's blocking keys; nil selects the
	// collection-name KeyFunc.
	Keys KeyFunc
	// M, EfConstruction and EfSearch are the graph knobs; zero selects
	// the package defaults. M must be at least 2.
	M              int
	EfConstruction int
	EfSearch       int
	// Workers bounds the delta-keying worker pool; zero selects
	// GOMAXPROCS.
	Workers int
}

// withDefaults resolves the zero knobs.
func (c Config) withDefaults() Config {
	if c.Keys == nil {
		c.Keys = blockindex.CollectionNameKey
	}
	if c.M == 0 {
		c.M = DefaultM
	}
	if c.EfConstruction == 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.EfSearch == 0 {
		c.EfSearch = DefaultEfSearch
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// UpdateStats reports what one Update changed.
type UpdateStats struct {
	// DeltaDocs is the number of newly inserted documents.
	DeltaDocs int
	// IndexedDocs is the total document count after the update.
	IndexedDocs int
	// DirtyBlocks is the number of blocks whose membership changed:
	// components that gained a document or merged.
	DirtyBlocks int
	// Blocks is the total number of blocks after the update.
	Blocks int
	// Edges is the total number of component-merging candidate edges.
	Edges int
	// M and EfSearch echo the graph knobs for stats reporting.
	M        int
	EfSearch int
}

// colState tracks how much of one collection is indexed.
type colState struct {
	name    string
	indexed int
}

// docState is one inserted document: its stable position and content
// hash (blocking.DocHash), computed once at insertion time.
type docState struct {
	ref  DocRef
	hash uint64
}

// blockEntry caches one component's derived state — member refs sorted
// by (Col, Doc) and the membership fingerprint over the members' content
// hashes in that order — invalidated when the component changes.
type blockEntry struct {
	refs []DocRef
	fp   uint64
}

// CandidateIndex is the incremental HNSW candidate index. All methods
// are safe for concurrent use; calls serialize on one mutex, like the
// sharded key index.
type CandidateIndex struct {
	mu      sync.Mutex
	scheme  blocking.ApproxScheme
	policy  blocking.ApproxPolicy
	keys    KeyFunc
	m       int
	efCons  int
	efSrch  int
	workers int
	levelML float64 // 1/ln(M), the level-draw scale

	vocab *textsim.Vocab
	cols  []colState
	docs  []docState
	vecs  []*textsim.PackedVector
	// primary maps each distinct key vector (by vecKey) to the first node
	// that carries it — the only node with that vector that lives in the
	// graph. Later documents with an identical vector stay out of the
	// adjacency lists (a flood of zero-distance copies would evict every
	// bridge out of the cluster under the degree bound and disconnect the
	// graph) and instead join the primary's component through one
	// candidate edge.
	primary map[string]int32
	// levels[id] is the node's top layer; neighbors[id][l] its adjacency
	// at layer l (l <= levels[id]).
	levels    []int32
	neighbors [][][]int32
	entry     int32 // entry point node, -1 while empty
	maxLevel  int32

	// edges is the append-only log of component-merging candidate edges —
	// a spanning forest of the block graph, replayed on decode to rebuild
	// the union-find.
	edges   [][2]int32
	uf      *ergraph.UnionFind
	members [][]int32 // element → member ids while a root, nil otherwise
	blocks  map[int32]*blockEntry

	version uint64
}

// New assembles an empty index.
func New(cfg Config) (*CandidateIndex, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("ann: config has no approximable scheme")
	}
	if v, ok := cfg.Scheme.(blocking.Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.M < 0 || cfg.M == 1 {
		return nil, fmt.Errorf("ann: graph degree M=%d cannot hold a proximity graph (want >= 2, or 0 for the default)", cfg.M)
	}
	if cfg.EfConstruction < 0 || cfg.EfSearch < 0 {
		return nil, fmt.Errorf("ann: negative ef (construction %d, search %d)", cfg.EfConstruction, cfg.EfSearch)
	}
	cfg = cfg.withDefaults()
	return &CandidateIndex{
		scheme:  cfg.Scheme,
		policy:  cfg.Scheme.ApproxPolicy(),
		keys:    cfg.Keys,
		m:       cfg.M,
		efCons:  cfg.EfConstruction,
		efSrch:  cfg.EfSearch,
		workers: cfg.Workers,
		levelML: 1 / math.Log(float64(cfg.M)),
		vocab:   textsim.NewVocab(),
		primary: make(map[string]int32),
		entry:   -1,
		uf:      ergraph.NewUnionFind(0),
		blocks:  make(map[int32]*blockEntry),
	}, nil
}

// Version counts inserted documents; it increases exactly when the index
// changes, so equal versions mean equal indexes (for one configuration).
func (x *CandidateIndex) Version() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.version
}

// Workers returns the worker-pool bound, fixed at construction.
func (x *CandidateIndex) Workers() int { return x.workers }

// Update inserts every document of cols not yet indexed and returns what
// changed. cols must be the same append-only corpus the index has seen
// so far; anything else is ErrOutOfSync.
func (x *CandidateIndex) Update(cols []*corpus.Collection) (UpdateStats, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.update(cols)
}

func (x *CandidateIndex) update(cols []*corpus.Collection) (UpdateStats, error) {
	if len(cols) < len(x.cols) {
		return UpdateStats{}, fmt.Errorf("%w: %d collections indexed, %d offered",
			ErrOutOfSync, len(x.cols), len(cols))
	}
	for i := range cols {
		if cols[i] == nil {
			return UpdateStats{}, fmt.Errorf("ann: nil collection at %d", i)
		}
		if i < len(x.cols) {
			if cols[i].Name != x.cols[i].name {
				return UpdateStats{}, fmt.Errorf("%w: collection %d is %q, index has %q",
					ErrOutOfSync, i, cols[i].Name, x.cols[i].name)
			}
			if len(cols[i].Docs) < x.cols[i].indexed {
				return UpdateStats{}, fmt.Errorf("%w: collection %q shrank from %d to %d documents",
					ErrOutOfSync, cols[i].Name, x.cols[i].indexed, len(cols[i].Docs))
			}
		}
	}

	// Gather the delta in ingest order.
	type newDoc struct {
		ref    DocRef
		tokens []string
		hash   uint64
	}
	var delta []newDoc
	for ci, col := range cols {
		start := 0
		if ci < len(x.cols) {
			start = x.cols[ci].indexed
		}
		for di := start; di < len(col.Docs); di++ {
			delta = append(delta, newDoc{ref: DocRef{Col: ci, Doc: di}})
		}
	}

	stats := UpdateStats{M: x.m, EfSearch: x.efSrch}
	if len(delta) > 0 {
		// Key, tokenize and hash the delta in parallel — with rich key
		// functions (extracted person names) this is the expensive part.
		// Graph insertion below is sequential: determinism requires a
		// fixed insertion order, and the vocabulary interns as it goes.
		blockindex.Parallel(x.workers, len(delta), func(i int) {
			d := &delta[i]
			col := cols[d.ref.Col]
			doc := col.Docs[d.ref.Doc]
			d.tokens = strings.Fields(blocking.NormalizeKey(strings.Join(x.keys(col, doc), " ")))
			d.hash = blocking.DocHash(col.Name, d.ref.Doc, doc.URL, doc.Text, doc.PersonaID)
		})

		firstID := len(x.docs)
		for i := range delta {
			d := &delta[i]
			// Binary token-set vector: the support canopy's exact Jaccard
			// compares, packed through the index vocabulary.
			sv := make(textsim.SparseVector, len(d.tokens))
			for _, tok := range d.tokens {
				sv[tok] = 1
			}
			id := int32(x.uf.Add())
			x.docs = append(x.docs, docState{ref: d.ref, hash: d.hash})
			vec := sv.Pack(x.vocab)
			x.vecs = append(x.vecs, vec)
			key := vecKey(vec)
			if prim, dup := x.primary[key]; dup {
				// Exact-duplicate key vector: the graph already holds
				// this point. The copy stays out of the graph — one
				// candidate edge to the primary carries it into the
				// component, and searches keep finding the primary.
				x.levels = append(x.levels, 0)
				x.neighbors = append(x.neighbors, make([][]int32, 1))
				x.members = append(x.members, []int32{id})
				x.applyPolicy(id, []distNode{{dist: x.distTo(vec, prim), id: prim}})
				continue
			}
			x.primary[key] = id
			level := levelFor(d.hash, x.levelML)
			x.levels = append(x.levels, level)
			x.neighbors = append(x.neighbors, make([][]int32, level+1))
			x.members = append(x.members, []int32{id})

			// Insert into the graph; the layer-0 beam doubles as the
			// neighbor query the candidate edges come from.
			x.applyPolicy(id, x.insert(id))
		}
		// Every candidate edge links a new document to an existing one, so
		// the dirty set is exactly the delta's components.
		dirty := make(map[int]bool)
		for id := firstID; id < len(x.docs); id++ {
			root := x.uf.Find(id)
			dirty[root] = true
			delete(x.blocks, int32(root))
		}
		stats.DirtyBlocks = len(dirty)
	}

	// Record the new high-water marks.
	for ci, col := range cols {
		if ci < len(x.cols) {
			x.cols[ci].indexed = len(col.Docs)
		} else {
			x.cols = append(x.cols, colState{name: col.Name, indexed: len(col.Docs)})
		}
	}
	x.version += uint64(len(delta))

	stats.DeltaDocs = len(delta)
	stats.IndexedDocs = len(x.docs)
	stats.Blocks = x.uf.Sets()
	stats.Edges = len(x.edges)
	return stats, nil
}

// vecKey is the canonical byte string of a packed vector — term ids and
// weights in their sorted order — used to detect exact-duplicate key
// vectors at insertion time. Term ids are interned in lexicographic
// order through one vocabulary, so equal keys mean equal token sets.
func vecKey(p *textsim.PackedVector) string {
	buf := make([]byte, 0, 12*p.Len())
	for i, id := range p.IDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Weights[i]))
	}
	return string(buf)
}

// applyPolicy turns one insertion's neighbor query results (nearest
// first) into candidate edges under the scheme's policy, merging the
// document's component with each accepted neighbor's.
func (x *CandidateIndex) applyPolicy(id int32, cand []distNode) {
	if x.policy.MaxNeighbors > 0 && len(cand) > x.policy.MaxNeighbors {
		cand = cand[:x.policy.MaxNeighbors]
	}
	if len(cand) > x.efSrch {
		cand = cand[:x.efSrch]
	}
	q := x.vecs[id]
	for _, n := range cand {
		if x.policy.MinSim > 0 && textsim.PackedCosine(q, x.vecs[n.id]) < x.policy.MinSim {
			// cand is ordered nearest-first and distance is exactly
			// 1-cosine, so every later neighbor fails the threshold too.
			break
		}
		root, absorbed, merged := x.uf.Merge(int(id), int(n.id))
		if merged {
			x.members[root] = append(x.members[root], x.members[absorbed]...)
			x.members[absorbed] = nil
			delete(x.blocks, int32(root))
			delete(x.blocks, int32(absorbed))
			x.edges = append(x.edges, [2]int32{id, n.id})
		}
	}
}

// Membership returns every block's member refs and membership
// fingerprint, in block order: blocks ordered by their smallest member's
// (Col, Doc) position, members ascending the same way. Only components
// the last Update dirtied are re-sorted and re-hashed; the rest come
// from the cache. The returned slices are shared with the cache and must
// not be mutated.
func (x *CandidateIndex) Membership() ([][]DocRef, []uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.membership()
}

// UpdateMembership inserts cols' delta and returns the resulting block
// membership as one atomic operation, so the returned refs lie within
// cols even when concurrent updaters (the background warmer) are
// advancing the index.
func (x *CandidateIndex) UpdateMembership(cols []*corpus.Collection) (UpdateStats, [][]DocRef, []uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	stats, err := x.update(cols)
	if err != nil {
		return stats, nil, nil, err
	}
	refs, fps := x.membership()
	return stats, refs, fps, nil
}

// membership materializes the block order; callers hold x.mu.
func (x *CandidateIndex) membership() ([][]DocRef, []uint64) {
	entries := x.entries()
	refs := make([][]DocRef, len(entries))
	fps := make([]uint64, len(entries))
	for i, e := range entries {
		refs[i] = e.refs
		fps[i] = e.fp
	}
	return refs, fps
}

// MembershipOf computes the membership of an arbitrary corpus under this
// index's configuration without touching its state — a one-off full pass
// through a throwaway index, the fallback for corpora the incremental
// state cannot serve (a snapshot older than what the index has seen).
func (x *CandidateIndex) MembershipOf(cols []*corpus.Collection) ([][]DocRef, []uint64, error) {
	x.mu.Lock()
	cfg := Config{Scheme: x.scheme, Keys: x.keys, M: x.m,
		EfConstruction: x.efCons, EfSearch: x.efSrch, Workers: x.workers}
	x.mu.Unlock()
	tmp, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := tmp.Update(cols); err != nil {
		return nil, nil, err
	}
	refs, fps := tmp.Membership()
	return refs, fps, nil
}

// entries materializes the block cache for every live component and
// returns the entries in block order. Callers hold x.mu.
func (x *CandidateIndex) entries() []*blockEntry {
	var missing []int32
	roots := make([]int32, 0, x.uf.Sets())
	for id := range x.members {
		if x.members[id] == nil {
			continue
		}
		root := int32(id)
		roots = append(roots, root)
		if _, ok := x.blocks[root]; !ok {
			missing = append(missing, root)
		}
	}

	built := make([]*blockEntry, len(missing))
	blockindex.Parallel(x.workers, len(missing), func(i int) {
		built[i] = x.buildEntry(missing[i])
	})
	for i, root := range missing {
		x.blocks[root] = built[i]
	}

	entries := make([]*blockEntry, len(roots))
	for i, root := range roots {
		entries[i] = x.blocks[root]
	}
	sort.Slice(entries, func(i, j int) bool {
		return refLess(entries[i].refs[0], entries[j].refs[0])
	})
	return entries
}

// buildEntry sorts one component's members by position and folds their
// content hashes into the membership fingerprint. Reads only immutable
// per-doc state, so it is safe to run in parallel for disjoint roots.
func (x *CandidateIndex) buildEntry(root int32) *blockEntry {
	ids := x.members[root]
	refs := make([]DocRef, len(ids))
	order := make([]int32, len(ids))
	copy(order, ids)
	sort.Slice(order, func(i, j int) bool {
		return refLess(x.docs[order[i]].ref, x.docs[order[j]].ref)
	})
	hashes := make([]uint64, len(order))
	for i, id := range order {
		refs[i] = x.docs[id].ref
		hashes[i] = x.docs[id].hash
	}
	return &blockEntry{refs: refs, fp: blocking.CombineIDs(hashes)}
}

// refLess orders refs by (Col, Doc) — flattened ingest order.
func refLess(a, b DocRef) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.Doc < b.Doc
}

// Stats describes the index's current shape.
type Stats struct {
	// Docs is the number of inserted documents.
	Docs int `json:"docs"`
	// Collections is the number of indexed collections.
	Collections int `json:"collections"`
	// Blocks is the number of candidate-connected components.
	Blocks int `json:"blocks"`
	// Edges is the number of component-merging candidate edges.
	Edges int `json:"edges"`
	// Terms is the vocabulary size the vectors are packed over.
	Terms int `json:"terms"`
	// MaxLevel is the top graph layer in use.
	MaxLevel int `json:"max_level"`
	// M, EfConstruction and EfSearch are the graph knobs.
	M              int `json:"m"`
	EfConstruction int `json:"ef_construction"`
	EfSearch       int `json:"ef_search"`
	// Version counts inserted documents.
	Version uint64 `json:"version"`
}

// Stats reports the index's current shape.
func (x *CandidateIndex) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	maxLevel := 0
	if x.entry >= 0 {
		maxLevel = int(x.maxLevel)
	}
	return Stats{
		Docs:           len(x.docs),
		Collections:    len(x.cols),
		Blocks:         x.uf.Sets(),
		Edges:          len(x.edges),
		Terms:          x.vocab.Len(),
		MaxLevel:       maxLevel,
		M:              x.m,
		EfConstruction: x.efCons,
		EfSearch:       x.efSrch,
		Version:        x.version,
	}
}
