package ann

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
)

// doc builds a test document at position id with the given text.
func doc(id int, text string) corpus.Document {
	return corpus.Document{ID: id, URL: fmt.Sprintf("http://example.com/%d", id), Text: text, PersonaID: 0}
}

// namedCols builds collections keyed (by default) by their names.
func namedCols(names ...string) []*corpus.Collection {
	out := make([]*corpus.Collection, len(names))
	for i, name := range names {
		out[i] = &corpus.Collection{Name: name, NumPersonas: 1,
			Docs: []corpus.Document{doc(0, "page about "+name)}}
	}
	return out
}

// testCanopy is the approximable canopy the tests index under.
func testCanopy() blocking.Canopy { return blocking.Canopy{Loose: 0.4, Tight: 0.8} }

// nameCorpus is a small mixed corpus: name collections that overlap
// across collections token-wise but not exactly.
func nameCorpus() []*corpus.Collection {
	return []*corpus.Collection{
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "a"), doc(1, "b"), doc(2, "c"), doc(3, "d"),
		}},
		{Name: "mary jones", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "e"), doc(1, "f"), doc(2, "g"),
		}},
		{Name: "john p smith", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "h"), doc(1, "i"),
		}},
		{Name: "walter cohen", NumPersonas: 1, Docs: []corpus.Document{
			doc(0, "j"),
		}},
	}
}

// schemeMembership computes the reference block membership the way
// SchemeBlocker does: full candidate generation plus a fresh union-find.
func schemeMembership(scheme blocking.Scheme, keys KeyFunc, cols []*corpus.Collection) [][]DocRef {
	var refs []DocRef
	var records []blocking.Record
	for ci, col := range cols {
		for di := range col.Docs {
			records = append(records, blocking.Record{ID: len(refs), Keys: keys(col, col.Docs[di])})
			refs = append(refs, DocRef{Col: ci, Doc: di})
		}
	}
	uf := ergraph.NewUnionFind(len(refs))
	for _, p := range scheme.Candidates(records) {
		uf.Union(p.A, p.B)
	}
	comp := make(map[int]int)
	var members [][]DocRef
	for i := range refs {
		root := uf.Find(i)
		slot, ok := comp[root]
		if !ok {
			slot = len(members)
			comp[root] = slot
			members = append(members, nil)
		}
		members[slot] = append(members[slot], refs[i])
	}
	return members
}

func TestDeterministicRebuild(t *testing.T) {
	build := func() *CandidateIndex {
		x, err := New(Config{Scheme: testCanopy()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Update(nameCorpus()); err != nil {
			t.Fatal(err)
		}
		return x
	}
	a, b := build(), build()
	aRefs, aFps := a.Membership()
	bRefs, bFps := b.Membership()
	if !reflect.DeepEqual(aRefs, bRefs) || !reflect.DeepEqual(aFps, bFps) {
		t.Fatal("two builds of the same corpus disagree on membership")
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("two builds of the same corpus disagree on stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	if !reflect.DeepEqual(a.edges, b.edges) {
		t.Fatal("two builds of the same corpus logged different candidate edges")
	}
}

func TestPrefixBatchesMatchOneShot(t *testing.T) {
	full := nameCorpus()
	prefix := func(counts ...int) []*corpus.Collection {
		out := make([]*corpus.Collection, 0, len(counts))
		for i, n := range counts {
			if n < 0 {
				continue
			}
			out = append(out, &corpus.Collection{Name: full[i].Name, NumPersonas: 1, Docs: full[i].Docs[:n]})
		}
		return out
	}
	// Batches that extend the flattened (collection, position) order: each
	// grows only the tail collection or appends new ones — the splits the
	// package doc promises reproduce the one-shot build bit for bit.
	batches := [][]*corpus.Collection{
		prefix(2, -1, -1),
		prefix(4, 2, -1),
		prefix(4, 3, 1),
		prefix(4, 3, 2, 1),
	}

	incremental, err := New(Config{Scheme: testCanopy()})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for bi, batch := range batches {
		stats, err := incremental.Update(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		docs := 0
		for _, col := range batch {
			docs += len(col.Docs)
		}
		if stats.DeltaDocs != docs-seen || stats.IndexedDocs != docs {
			t.Fatalf("batch %d: stats %+v, want delta %d of %d", bi, stats, docs-seen, docs)
		}
		seen = docs

		oneShot, err := New(Config{Scheme: testCanopy()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := oneShot.Update(batch); err != nil {
			t.Fatalf("batch %d one-shot: %v", bi, err)
		}
		gotRefs, gotFps := incremental.Membership()
		wantRefs, wantFps := oneShot.Membership()
		if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
			t.Fatalf("batch %d: incremental membership %v, one-shot %v", bi, gotRefs, wantRefs)
		}
		if !reflect.DeepEqual(incremental.edges, oneShot.edges) {
			t.Fatalf("batch %d: incremental edges %v, one-shot %v", bi, incremental.edges, oneShot.edges)
		}
	}
}

// TestCanopyBlocksCoverExactBlocks: cosine over binary token vectors
// bounds Jaccard from above, and at this corpus size the beam sees every
// node — so every exact canopy block must land inside a single ANN block
// (the approximation can coarsen blocks here, never split them).
func TestCanopyBlocksCoverExactBlocks(t *testing.T) {
	cols := nameCorpus()
	x, err := New(Config{Scheme: testCanopy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(cols); err != nil {
		t.Fatal(err)
	}
	annRefs, _ := x.Membership()
	annBlock := make(map[DocRef]int)
	for bi, block := range annRefs {
		for _, ref := range block {
			annBlock[ref] = bi
		}
	}
	for _, block := range schemeMembership(testCanopy(), blockindex.CollectionNameKey, cols) {
		for _, ref := range block[1:] {
			if annBlock[ref] != annBlock[block[0]] {
				t.Fatalf("exact block %v split across ANN blocks %v", block, annRefs)
			}
		}
	}
	// "walter cohen" shares no token with anyone and must stay alone.
	if got := len(annRefs[len(annRefs)-1]); got != 1 {
		t.Fatalf("ANN membership %v: expected a singleton cohen block", annRefs)
	}
}

// TestSortedNeighborhoodPolicy: the window policy has no similarity
// floor — like the exact scheme, whose overlapping windows chain the
// whole sorted order into one component — so everything co-blocks, and
// each insertion accepts at most window-1 neighbors.
func TestSortedNeighborhoodPolicy(t *testing.T) {
	scheme := blocking.SortedNeighborhood{Window: 3}
	x, err := New(Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	cols := []*corpus.Collection{
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{doc(0, "a"), doc(1, "b"), doc(2, "c")}},
		{Name: "mary jones", NumPersonas: 1, Docs: []corpus.Document{doc(0, "d")}},
	}
	stats, err := x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := x.Membership()
	want := schemeMembership(scheme, blockindex.CollectionNameKey, cols)
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("membership %v, exact sorted neighborhood gives %v", refs, want)
	}
	if max := (len(cols[0].Docs) + len(cols[1].Docs)) * (scheme.Window - 1); stats.Edges > max {
		t.Fatalf("%d candidate edges exceed the window bound %d", stats.Edges, max)
	}
}

func TestDirtyBlockAccounting(t *testing.T) {
	x, err := New(Config{Scheme: testCanopy()})
	if err != nil {
		t.Fatal(err)
	}
	cols := namedCols("smith", "jones")
	stats, err := x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyBlocks != 2 || stats.Blocks != 2 {
		t.Fatalf("first update stats %+v, want 2 dirty of 2", stats)
	}

	// Re-offering the same corpus is a no-op.
	stats, err = x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 0 || stats.DirtyBlocks != 0 {
		t.Fatalf("no-op update stats %+v", stats)
	}

	// Growing one collection dirties exactly its block.
	cols[1].Docs = append(cols[1].Docs, doc(1, "another jones page"))
	stats, err = x.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 1 || stats.DirtyBlocks != 1 || stats.Blocks != 2 {
		t.Fatalf("delta update stats %+v, want 1 dirty of 2", stats)
	}
	if stats.M != DefaultM || stats.EfSearch != DefaultEfSearch {
		t.Fatalf("stats %+v do not echo the graph knobs", stats)
	}
}

func TestOutOfSync(t *testing.T) {
	x, err := New(Config{Scheme: testCanopy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(namedCols("smith", "jones")); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]*corpus.Collection{
		"fewer collections": namedCols("smith"),
		"renamed":           namedCols("smith", "cohen"),
		"shrunk": {
			{Name: "smith", NumPersonas: 1, Docs: nil},
			namedCols("jones")[0],
		},
	}
	for name, cols := range cases {
		if _, err := x.Update(cols); !errors.Is(err, ErrOutOfSync) {
			t.Errorf("%s: error %v, want ErrOutOfSync", name, err)
		}
	}
}

func TestMembershipOfLeavesIndexUntouched(t *testing.T) {
	x, err := New(Config{Scheme: testCanopy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(nameCorpus()); err != nil {
		t.Fatal(err)
	}
	before := x.Version()

	old := namedCols("smith")
	refs, fps, err := x.MembershipOf(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || len(fps) != 1 {
		t.Fatalf("one-off membership %v", refs)
	}
	if x.Version() != before {
		t.Fatalf("MembershipOf advanced the index from %d to %d", before, x.Version())
	}
}

func TestNewValidation(t *testing.T) {
	cases := map[string]Config{
		"nil scheme":     {},
		"M of one":       {Scheme: testCanopy(), M: 1},
		"negative M":     {Scheme: testCanopy(), M: -3},
		"negative ef":    {Scheme: testCanopy(), EfSearch: -1},
		"invalid canopy": {Scheme: blocking.Canopy{Loose: 0.8, Tight: 0.2}},
		"invalid window": {Scheme: blocking.SortedNeighborhood{Window: 1}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config was accepted", name)
		}
	}
}

func TestLevelFor(t *testing.T) {
	mL := 1 / 2.4849 // 1/ln(12)
	if a, b := levelFor(12345, mL), levelFor(12345, mL); a != b {
		t.Fatalf("same hash drew levels %d and %d", a, b)
	}
	zeros := 0
	for h := uint64(0); h < 1000; h++ {
		l := levelFor(h*0x9e3779b97f4a7c15, mL)
		if l < 0 || l > maxGraphLevel {
			t.Fatalf("hash %d drew level %d", h, l)
		}
		if l == 0 {
			zeros++
		}
	}
	// The geometric draw keeps roughly (1 - 1/M) of nodes on layer 0.
	if zeros < 800 {
		t.Fatalf("only %d of 1000 nodes on layer 0", zeros)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cfg := Config{Scheme: testCanopy(), M: 8, EfConstruction: 40, EfSearch: 24}
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := nameCorpus()
	if _, err := x.Update(cols); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	version, err := x.EncodeTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != x.Version() {
		t.Fatalf("encode reported version %d, index is at %d", version, x.Version())
	}
	decoded, err := Decode(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantRefs, wantFps := x.Membership()
	gotRefs, gotFps := decoded.Membership()
	if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
		t.Fatal("decoded index reports different membership than the original")
	}
	if !reflect.DeepEqual(decoded.Stats(), x.Stats()) {
		t.Fatalf("decoded stats %+v, original %+v", decoded.Stats(), x.Stats())
	}

	// The decoded index keeps indexing incrementally, and lands exactly
	// where the original does on the same delta.
	cols[2].Docs = append(cols[2].Docs, doc(2, "k"))
	stats, err := decoded.Update(cols)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaDocs != 1 {
		t.Fatalf("post-decode delta stats %+v", stats)
	}
	if _, err := x.Update(cols); err != nil {
		t.Fatal(err)
	}
	wantRefs, wantFps = x.Membership()
	gotRefs, gotFps = decoded.Membership()
	if !reflect.DeepEqual(gotRefs, wantRefs) || !reflect.DeepEqual(gotFps, wantFps) {
		t.Fatal("decoded index diverged from the original after the same delta")
	}
}

func TestCodecRejectsDamage(t *testing.T) {
	cfg := Config{Scheme: testCanopy()}
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Update(namedCols("smith", "jones")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := x.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped), cfg); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("bit flip: error %v, want ErrCodecCorrupt", err)
	}

	truncated := good[:len(good)-3]
	if _, err := Decode(bytes.NewReader(truncated), cfg); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("truncation: error %v, want ErrCodecCorrupt", err)
	}

	skewed := append([]byte(nil), good...)
	copy(skewed, "ERANN999")
	if _, err := Decode(bytes.NewReader(skewed), cfg); !errors.Is(err, ErrCodecVersion) {
		t.Errorf("version skew: error %v, want ErrCodecVersion", err)
	}

	if _, err := Decode(bytes.NewReader(good), Config{Scheme: testCanopy(), M: 24}); err == nil {
		t.Error("graph-knob mismatch was accepted")
	}
}
