package swoosh

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/eval"
	"repro/internal/simfn"
	"repro/internal/textsim"
)

func rec(id int, orgs ...string) *Record {
	return &Record{IDs: []int{id}, Organizations: orgs}
}

func orgMatch(min int) MatchFunc {
	return func(a, b *Record) bool {
		return textsim.SetOverlapCount(a.Organizations, b.Organizations) >= min
	}
}

func TestRSwooshSimpleMerge(t *testing.T) {
	records := []*Record{
		rec(0, "epfl"),
		rec(1, "epfl", "google"),
		rec(2, "mit"),
	}
	resolved, err := RSwoosh(records, orgMatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 2 {
		t.Fatalf("resolved = %d records, want 2", len(resolved))
	}
	labels := Labels(resolved, 3)
	if labels[0] != labels[1] {
		t.Error("records 0 and 1 should merge")
	}
	if labels[0] == labels[2] {
		t.Error("record 2 should stay separate")
	}
}

func TestRSwooshTransitiveViaMerge(t *testing.T) {
	// 0 and 2 share nothing, but both share with 1 — and crucially the
	// merged (0,1) record accumulates 1's orgs, enabling the match with 2.
	records := []*Record{
		rec(0, "epfl"),
		rec(1, "epfl", "google"),
		rec(2, "google"),
	}
	resolved, err := RSwoosh(records, orgMatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 {
		t.Fatalf("resolved = %d records, want 1 (merge enables new matches)", len(resolved))
	}
	if len(resolved[0].IDs) != 3 {
		t.Errorf("merged IDs = %v", resolved[0].IDs)
	}
}

func TestRSwooshDominanceOverPairwiseClosure(t *testing.T) {
	// Swoosh's merges can only add matches relative to the pairwise match
	// graph's transitive closure, never split it: every pairwise-connected
	// component ends in one record.
	records := []*Record{
		rec(0, "a", "b"),
		rec(1, "b", "c"),
		rec(2, "c", "d"),
		rec(3, "x"),
	}
	match := orgMatch(1)
	resolved, err := RSwoosh(records, match)
	if err != nil {
		t.Fatal(err)
	}
	labels := Labels(resolved, 4)

	g := ergraph.NewGraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if match(records[i], records[j]) {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	closure := g.ConnectedComponents()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if closure[i] == closure[j] && labels[i] != labels[j] {
				t.Errorf("closure joins (%d,%d) but swoosh split them", i, j)
			}
		}
	}
}

func TestRSwooshNoMatchesKeepsSingletons(t *testing.T) {
	records := []*Record{rec(0, "a"), rec(1, "b"), rec(2, "c")}
	resolved, err := RSwoosh(records, orgMatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 3 {
		t.Errorf("resolved = %d, want 3 singletons", len(resolved))
	}
}

func TestRSwooshNilMatch(t *testing.T) {
	if _, err := RSwoosh(nil, nil); err == nil {
		t.Error("nil match accepted")
	}
}

func TestRSwooshEmptyInput(t *testing.T) {
	resolved, err := RSwoosh(nil, orgMatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 0 {
		t.Errorf("resolved = %v", resolved)
	}
}

func TestRSwooshIdempotent(t *testing.T) {
	records := []*Record{
		rec(0, "a"), rec(1, "a", "b"), rec(2, "b"), rec(3, "z"),
	}
	match := orgMatch(1)
	once, err := RSwoosh(records, match)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := RSwoosh(once, match)
	if err != nil {
		t.Fatal(err)
	}
	if len(once) != len(twice) {
		t.Errorf("not a fixpoint: %d then %d records", len(once), len(twice))
	}
}

func TestMerge(t *testing.T) {
	a := &Record{
		IDs: []int{2, 0}, Persons: []string{"x"},
		Organizations: []string{"epfl"}, Names: []string{"john smith"},
		Concepts: textsim.SparseVector{"ML": 1},
		Terms:    textsim.SparseVector{"learn": 2},
	}
	b := &Record{
		IDs: []int{1}, Persons: []string{"x", "y"},
		Organizations: []string{"mit"},
		Concepts:      textsim.SparseVector{"DB": 1},
		Terms:         textsim.SparseVector{"learn": 1, "query": 3},
	}
	m := Merge(a, b)
	if len(m.IDs) != 3 || m.IDs[0] != 0 || m.IDs[2] != 2 {
		t.Errorf("IDs = %v", m.IDs)
	}
	if len(m.Persons) != 2 || len(m.Organizations) != 2 {
		t.Errorf("entity union wrong: %v / %v", m.Persons, m.Organizations)
	}
	if m.Terms["learn"] != 3 || m.Terms["query"] != 3 {
		t.Errorf("terms sum wrong: %v", m.Terms)
	}
	if math.Abs(m.Concepts.Norm()-1) > 1e-9 {
		t.Errorf("concepts not renormalized: %v", m.Concepts.Norm())
	}
	// Inputs untouched.
	if len(a.IDs) != 2 || a.Terms["learn"] != 2 {
		t.Error("Merge modified its input")
	}
}

func TestLabelsUncoveredDocs(t *testing.T) {
	resolved := []*Record{{IDs: []int{0, 2}}}
	labels := Labels(resolved, 4)
	if labels[0] != labels[2] {
		t.Error("covered docs should share a label")
	}
	if labels[1] == labels[0] || labels[3] == labels[0] || labels[1] == labels[3] {
		t.Errorf("uncovered docs should get fresh singletons: %v", labels)
	}
}

func TestFromBlockAndEndToEnd(t *testing.T) {
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "cohen", NumDocs: 40, NumPersonas: 4,
		Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Template: 0.25, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := simfn.PrepareBlock(col, nil)
	records := FromBlock(block)
	if len(records) != 40 {
		t.Fatalf("records = %d", len(records))
	}
	for i, r := range records {
		if len(r.IDs) != 1 || r.IDs[0] != i {
			t.Fatalf("record %d IDs = %v", i, r.IDs)
		}
	}
	resolved, err := RSwoosh(records, ThresholdMatch(0.55, 0.9, 2))
	if err != nil {
		t.Fatal(err)
	}
	labels := Labels(resolved, 40)
	score, err := eval.Evaluate(labels, col.GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline should clearly beat chance on this easy block.
	if score.Fp < 0.4 {
		t.Errorf("R-Swoosh baseline Fp = %v, implausibly low", score.Fp)
	}
}

func TestThresholdMatch(t *testing.T) {
	a := &Record{Terms: textsim.SparseVector{"x": 1}}
	b := &Record{Terms: textsim.SparseVector{"x": 1}}
	if !ThresholdMatch(0.9, 0.9, 0)(a, b) {
		t.Error("identical term vectors should match")
	}
	c := &Record{Terms: textsim.SparseVector{"y": 1}}
	if ThresholdMatch(0.9, 0.9, 0)(a, c) {
		t.Error("orthogonal vectors should not match")
	}
	// Entity overlap path.
	d := &Record{Organizations: []string{"epfl", "mit"}}
	e := &Record{Organizations: []string{"epfl", "mit", "eth"}}
	if !ThresholdMatch(2, 2, 2)(d, e) {
		t.Error("two shared orgs should match with minShared=2")
	}
	if ThresholdMatch(2, 2, 0)(d, e) {
		t.Error("minShared=0 must disable the entity path")
	}
}
