// Package swoosh implements the R-Swoosh generic entity-resolution
// algorithm (Benjelloun, Garcia-Molina, Menestrina, Su, Whang, Widom: "a
// generic approach to entity resolution", reference [7] of the paper) as a
// baseline comparator for the paper's framework. R-Swoosh interleaves
// matching and merging: whenever two records match they are merged
// immediately, and the merged record — carrying the union of both records'
// features — can match records that neither constituent matched alone.
package swoosh

import (
	"fmt"
	"sort"

	"repro/internal/simfn"
	"repro/internal/textsim"
)

// Record is a mergeable entity profile: the union of features of one or
// more source documents.
type Record struct {
	// IDs are the source document indices merged into this record.
	IDs []int
	// Persons, Organizations and Locations are entity-mention sets.
	Persons, Organizations, Locations []string
	// Names collects the "most frequent name" values of the sources.
	Names []string
	// Concepts is the summed (re-normalized) concept vector.
	Concepts textsim.SparseVector
	// Terms is the summed TF-IDF term vector.
	Terms textsim.SparseVector
}

// FromBlock converts a prepared block into singleton records.
func FromBlock(b *simfn.Block) []*Record {
	out := make([]*Record, len(b.Docs))
	for i := range b.Docs {
		d := &b.Docs[i]
		r := &Record{
			IDs:           []int{i},
			Persons:       append([]string(nil), d.Features.OtherPersons...),
			Organizations: append([]string(nil), d.Features.Organizations...),
			Locations:     append([]string(nil), d.Features.Locations...),
			Concepts:      d.Features.ConceptVector.Clone(),
			Terms:         d.TermVector.Clone(),
		}
		if d.Features.MostFrequentName != "" {
			r.Names = append(r.Names, d.Features.MostFrequentName)
		}
		out[i] = r
	}
	return out
}

// MatchFunc decides whether two records refer to the same entity.
type MatchFunc func(a, b *Record) bool

// Merge returns the union of two records: feature sets united, vectors
// summed, concept vector re-normalized. Neither input is modified.
func Merge(a, b *Record) *Record {
	m := &Record{
		IDs:           unionInts(a.IDs, b.IDs),
		Persons:       unionStrings(a.Persons, b.Persons),
		Organizations: unionStrings(a.Organizations, b.Organizations),
		Locations:     unionStrings(a.Locations, b.Locations),
		Names:         unionStrings(a.Names, b.Names),
		Concepts:      addVectors(a.Concepts, b.Concepts),
		Terms:         addVectors(a.Terms, b.Terms),
	}
	if n := m.Concepts.Norm(); n > 0 {
		m.Concepts.Scale(1 / n)
	}
	return m
}

// RSwoosh runs the R-Swoosh algorithm: records are taken in order; each is
// compared against the resolved set, and on the first match the pair is
// merged and re-enqueued. The result is the fixpoint set of merged records.
// The input slice is not modified.
func RSwoosh(records []*Record, match MatchFunc) ([]*Record, error) {
	if match == nil {
		return nil, fmt.Errorf("swoosh: nil match function")
	}
	queue := make([]*Record, len(records))
	copy(queue, records)
	var resolved []*Record
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		matched := -1
		for i, r2 := range resolved {
			if match(r, r2) {
				matched = i
				break
			}
		}
		if matched < 0 {
			resolved = append(resolved, r)
			continue
		}
		r2 := resolved[matched]
		resolved = append(resolved[:matched], resolved[matched+1:]...)
		queue = append(queue, Merge(r, r2))
	}
	return resolved, nil
}

// Labels converts a resolved record set back into per-document cluster
// labels for n source documents. Documents not covered by any record get
// fresh singleton labels (cannot happen for RSwoosh output over FromBlock
// input, but keeps the function total).
func Labels(resolved []*Record, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	for _, r := range resolved {
		for _, id := range r.IDs {
			if id >= 0 && id < n {
				labels[id] = next
			}
		}
		next++
	}
	for i, l := range labels {
		if l == -1 {
			labels[i] = next
			next++
		}
	}
	return labels
}

// ThresholdMatch builds the classic feature-disjunction match predicate
// used with Swoosh-style resolvers: two records match when their term
// vectors are sufficiently similar, their concept vectors are sufficiently
// similar, or they share enough entity mentions.
func ThresholdMatch(termThreshold, conceptThreshold float64, minSharedEntities int) MatchFunc {
	return func(a, b *Record) bool {
		if len(a.Terms) > 0 && len(b.Terms) > 0 &&
			textsim.Cosine(a.Terms, b.Terms) >= termThreshold {
			return true
		}
		if len(a.Concepts) > 0 && len(b.Concepts) > 0 &&
			textsim.Cosine(a.Concepts, b.Concepts) >= conceptThreshold {
			return true
		}
		shared := textsim.SetOverlapCount(a.Organizations, b.Organizations) +
			textsim.SetOverlapCount(a.Persons, b.Persons)
		return minSharedEntities > 0 && shared >= minSharedEntities
	}
}

func unionInts(a, b []int) []int {
	set := make(map[int]struct{}, len(a)+len(b))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func unionStrings(a, b []string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

func addVectors(a, b textsim.SparseVector) textsim.SparseVector {
	out := a.Clone()
	for t, w := range b {
		out.Add(t, w)
	}
	return out
}
