package analysis

// Analyzer is a configurable text-analysis chain producing index terms from
// raw text: tokenize → lower-case → (optional) stopword removal →
// (optional) Porter stemming. The zero value is not usable; construct one
// with NewAnalyzer or use the package-level Standard analyzer.
type Analyzer struct {
	removeStopwords bool
	stem            bool
	minTokenLen     int
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithoutStopwords disables stopword removal.
func WithoutStopwords() Option {
	return func(a *Analyzer) { a.removeStopwords = false }
}

// WithoutStemming disables Porter stemming.
func WithoutStemming() Option {
	return func(a *Analyzer) { a.stem = false }
}

// WithMinTokenLength drops tokens shorter than n runes after normalization.
func WithMinTokenLength(n int) Option {
	return func(a *Analyzer) { a.minTokenLen = n }
}

// NewAnalyzer returns an analyzer with the standard chain (stopword removal
// and stemming on, minimum token length 2) modified by the given options.
func NewAnalyzer(opts ...Option) *Analyzer {
	a := &Analyzer{removeStopwords: true, stem: true, minTokenLen: 2}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Standard is the shared default analyzer used across the framework.
var Standard = NewAnalyzer()

// Terms runs the full chain on text and returns the resulting index terms
// in document order (duplicates preserved — term frequency matters).
func (a *Analyzer) Terms(text string) []string {
	raw := Tokenize(text)
	out := make([]string, 0, len(raw))
	for _, tok := range raw {
		t := FoldCase(tok)
		if a.removeStopwords && IsStopword(t) {
			continue
		}
		if a.stem {
			t = PorterStem(t)
		}
		if len([]rune(t)) < a.minTokenLen {
			continue
		}
		out = append(out, t)
	}
	return out
}

// TermFreqs runs the chain and returns a term → frequency map.
func (a *Analyzer) TermFreqs(text string) map[string]int {
	freqs := make(map[string]int)
	for _, t := range a.Terms(text) {
		freqs[t]++
	}
	return freqs
}
