package analysis

import (
	"testing"
	"testing/quick"
)

// Reference pairs from Porter's published examples and the standard
// vocabulary test set.
func TestPorterStemKnownValues(t *testing.T) {
	cases := []struct{ in, want string }{
		// Step 1a
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		// Step 1b
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// Step 1c
		{"happy", "happi"},
		{"sky", "sky"},
		// Step 2
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		// Step 3
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// Step 4
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		// Step 5
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// General
		{"university", "univers"},
		{"universities", "univers"},
		{"running", "run"},
		{"database", "databas"},
		{"databases", "databas"},
	}
	for _, tc := range cases {
		if got := PorterStem(tc.in); got != tc.want {
			t.Errorf("PorterStem(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be"} {
		if got := PorterStem(w); got != w {
			t.Errorf("short word %q changed to %q", w, got)
		}
	}
}

func TestPorterStemNonAlpha(t *testing.T) {
	for _, w := range []string{"abc123", "año2024", "c++"} {
		if got := PorterStem(w); got != w {
			t.Errorf("non-alpha %q changed to %q", w, got)
		}
	}
}

func TestPorterStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem usually returns the stem itself for typical
	// vocabulary. (This is not a theorem for all of Porter, but holds on
	// the standard test vocabulary; we check a representative sample.)
	words := []string{
		"run", "walk", "comput", "databas", "network", "cluster",
		"entiti", "resolut", "similar", "person", "organ", "page",
	}
	for _, w := range words {
		once := PorterStem(w)
		twice := PorterStem(once)
		if once != twice {
			t.Errorf("not idempotent: %q → %q → %q", w, once, twice)
		}
	}
}

func TestPorterStemNeverPanicsProperty(t *testing.T) {
	f := func(w string) bool {
		_ = PorterStem(w)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPorterStemNeverGrowsAlphaWordsProperty(t *testing.T) {
	// For pure a-z inputs, the stem is never longer than the word except
	// for the undoubling/e-restoring rules which can add at most one byte
	// relative to the post-removal form, never relative to the input.
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		word := string(w)
		return len(PorterStem(word)) <= len(word)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
