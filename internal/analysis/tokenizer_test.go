package analysis

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"empty", "", nil},
		{"simple", "hello world", []string{"hello", "world"}},
		{"punctuation", "hello, world!", []string{"hello", "world"}},
		{"apostrophe", "don't stop", []string{"don't", "stop"}},
		{"hyphen", "state-of-the-art system", []string{"state-of-the-art", "system"}},
		{"leading-hyphen", "-dash start", []string{"dash", "start"}},
		{"trailing-apostrophe", "dogs' toys", []string{"dogs", "toys"}},
		{"digits", "page 42 of 100", []string{"page", "42", "of", "100"}},
		{"mixed", "IPv6 and C3PO", []string{"IPv6", "and", "C3PO"}},
		{"unicode", "café ångström", []string{"café", "ångström"}},
		{"urlish", "http://example.com/a-b", []string{"http", "example", "com", "a-b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Tokenize(tc.in); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTokenizeNoEmptyTokensProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldCase(t *testing.T) {
	if got := FoldCase("HeLLo"); got != "hello" {
		t.Errorf("FoldCase = %q", got)
	}
}

func TestSentences(t *testing.T) {
	in := "First sentence. Second one! A third? Trailing fragment"
	got := Sentences(in)
	if len(got) != 4 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
	if got[0] != "First sentence." {
		t.Errorf("first = %q", got[0])
	}
	if got[3] != "Trailing fragment" {
		t.Errorf("fragment = %q", got[3])
	}
	if Sentences("") != nil {
		t.Error("empty input should yield nil")
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "http", "www"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"database", "entity", "resolution"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("stopword list suspiciously small: %d", StopwordCount())
	}
}

func TestAnalyzerTerms(t *testing.T) {
	got := Standard.Terms("The databases are running quickly!")
	// "the", "are" are stopwords; remaining stems: databas, run, quickli.
	want := []string{"databas", "run", "quickli"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerOptions(t *testing.T) {
	noStem := NewAnalyzer(WithoutStemming())
	got := noStem.Terms("running databases")
	want := []string{"running", "databases"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-stem Terms = %v, want %v", got, want)
	}

	withStops := NewAnalyzer(WithoutStopwords(), WithoutStemming())
	got = withStops.Terms("the cat")
	want = []string{"the", "cat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("with-stopwords Terms = %v, want %v", got, want)
	}

	longOnly := NewAnalyzer(WithMinTokenLength(5), WithoutStemming())
	got = longOnly.Terms("tiny enormous words")
	want = []string{"enormous", "words"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("min-length Terms = %v, want %v", got, want)
	}
}

func TestTermFreqs(t *testing.T) {
	freqs := Standard.TermFreqs("database database network")
	if freqs["databas"] != 2 {
		t.Errorf("databas freq = %d, want 2", freqs["databas"])
	}
	if freqs["network"] != 1 {
		t.Errorf("network freq = %d, want 1", freqs["network"])
	}
}

func TestAnalyzerTermsNeverContainStopwordsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, term := range Standard.Terms(s) {
			// Stopwords are filtered before stemming, so a stemmed term may
			// coincide with a stopword; check the invariant pre-stem.
			_ = term
		}
		// Use a no-stem analyzer for the precise invariant.
		a := NewAnalyzer(WithoutStemming())
		for _, term := range a.Terms(s) {
			if IsStopword(term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
