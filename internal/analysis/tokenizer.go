// Package analysis implements the text-analysis chain the framework uses to
// turn raw web-page text into index terms: tokenization, lower-casing,
// stopword removal and Porter stemming. It is the stand-in for the Lucene
// analysis pipeline the paper used to build document vectors.
package analysis

import (
	"strings"
	"unicode"
)

// Tokenize splits text into word tokens. A token is a maximal run of
// letters, digits and embedded apostrophes/hyphens between letters; all
// other characters separate tokens. Tokens are returned in document order,
// preserving case (use the Analyzer for the full normalizing chain).
func Tokenize(text string) []string {
	var tokens []string
	runes := []rune(text)
	i := 0
	for i < len(runes) {
		if !isTokenRune(runes[i]) {
			i++
			continue
		}
		start := i
		for i < len(runes) && (isTokenRune(runes[i]) || isJoiner(runes, i)) {
			i++
		}
		tokens = append(tokens, string(runes[start:i]))
	}
	return tokens
}

// isTokenRune reports whether r can appear inside a token on its own.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isJoiner reports whether the rune at position i joins two token runes
// (apostrophe or hyphen flanked by letters/digits), so "don't" and
// "state-of-the-art" survive as single tokens.
func isJoiner(runes []rune, i int) bool {
	r := runes[i]
	if r != '\'' && r != '-' && r != '’' {
		return false
	}
	if i == 0 || i+1 >= len(runes) {
		return false
	}
	return isTokenRune(runes[i-1]) && isTokenRune(runes[i+1])
}

// FoldCase lower-cases a token using Unicode case folding rules adequate for
// English web text.
func FoldCase(token string) string {
	return strings.ToLower(token)
}

// Sentences splits text into rough sentences on terminal punctuation. The
// corpus generator and extractors use it to scope entity co-occurrence.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			s := strings.TrimSpace(b.String())
			if s != "" {
				out = append(out, s)
			}
			b.Reset()
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}
