package analysis

// englishStopwords is the classic Lucene/Snowball English stopword list with
// a few web-specific additions (http, www, com) that carry no topical signal
// on web pages.
var englishStopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by",
		"for", "if", "in", "into", "is", "it",
		"no", "not", "of", "on", "or", "such",
		"that", "the", "their", "then", "there", "these",
		"they", "this", "to", "was", "will", "with",
		"he", "she", "his", "her", "him", "hers", "its", "i", "we", "you",
		"our", "us", "your", "yours", "me", "my", "mine", "them", "those",
		"from", "have", "has", "had", "do", "does", "did", "were", "been",
		"being", "am", "can", "could", "would", "should", "may", "might",
		"must", "shall", "about", "after", "all", "also", "any", "because",
		"before", "between", "both", "during", "each", "few", "more", "most",
		"other", "some", "than", "too", "very", "what", "when", "where",
		"which", "while", "who", "whom", "why", "how", "here", "just",
		"now", "only", "over", "own", "same", "so", "under", "until", "up",
		"down", "out", "off", "again", "further", "once",
		"http", "https", "www", "com", "org", "net", "html", "htm", "page",
	} {
		englishStopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lower-cased) token is an English
// stopword.
func IsStopword(token string) bool {
	_, ok := englishStopwords[token]
	return ok
}

// StopwordCount returns the size of the built-in stopword list, exposed for
// tests and documentation.
func StopwordCount() int { return len(englishStopwords) }
