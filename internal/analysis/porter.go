package analysis

// PorterStem returns the Porter (1980) stem of an English word. The input is
// expected to be a lower-case token; words shorter than three letters are
// returned unchanged, following the original algorithm's convention. The
// implementation follows the published five-step algorithm exactly.
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	// The algorithm is defined over a-z; tokens with other runes (digits,
	// accents) pass through unstemmed, which is what an English analyzer
	// should do with them anyway.
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether the letter at index i behaves as a consonant:
// a, e, i, o, u are vowels; y is a consonant when word-initial or following
// a vowel, otherwise it acts as a vowel.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m in the [C](VC)^m[V] decomposition of b[:k].
func (s *stemmer) measure(k int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < k && s.isConsonant(i) {
		i++
	}
	for {
		// Vowel run.
		for i < k && !s.isConsonant(i) {
			i++
		}
		if i >= k {
			return m
		}
		// Consonant run closes a VC pair.
		for i < k && s.isConsonant(i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether b[:k] contains a vowel.
func (s *stemmer) hasVowel(k int) bool {
	for i := 0; i < k; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:k] ends in a doubled consonant.
func (s *stemmer) endsDoubleConsonant(k int) bool {
	if k < 2 {
		return false
	}
	return s.b[k-1] == s.b[k-2] && s.isConsonant(k-1)
}

// endsCVC reports whether b[:k] ends consonant-vowel-consonant where the
// final consonant is not w, x or y ("*o" in Porter's notation).
func (s *stemmer) endsCVC(k int) bool {
	if k < 3 {
		return false
	}
	if !s.isConsonant(k-3) || s.isConsonant(k-2) || !s.isConsonant(k-1) {
		return false
	}
	c := s.b[k-1]
	return c != 'w' && c != 'x' && c != 'y'
}

// hasSuffix reports whether the current word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	if len(s.b) < len(suf) {
		return false
	}
	return string(s.b[len(s.b)-len(suf):]) == suf
}

// stemLen returns the length of the word with suf removed.
func (s *stemmer) stemLen(suf string) int { return len(s.b) - len(suf) }

// replace replaces the suffix suf (assumed present) with rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:len(s.b)-len(suf)], rep...)
}

// replaceIfM replaces suf with rep when the measure of the remaining stem
// exceeds minM; reports whether suf matched (regardless of replacement).
func (s *stemmer) replaceIfM(suf, rep string, minM int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemLen(suf)) > minM {
		s.replace(suf, rep)
	}
	return true
}

// step1a handles plurals: SSES→SS, IES→I, SS→SS, S→"".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// keep
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

// step1b handles past participles and gerunds: EED, ED, ING.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemLen("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	fired := false
	if s.hasSuffix("ed") && s.hasVowel(s.stemLen("ed")) {
		s.replace("ed", "")
		fired = true
	} else if s.hasSuffix("ing") && s.hasVowel(s.stemLen("ing")) {
		s.replace("ing", "")
		fired = true
	}
	if !fired {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.endsDoubleConsonant(len(s.b)):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.endsCVC(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

// step1c turns terminal Y to I when the stem contains a vowel.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemLen("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (s *stemmer) step2() {
	if len(s.b) < 3 {
		return
	}
	// Dispatch on the penultimate letter, per Porter's original program.
	switch s.b[len(s.b)-2] {
	case 'a':
		if s.replaceIfM("ational", "ate", 0) {
			return
		}
		s.replaceIfM("tional", "tion", 0)
	case 'c':
		if s.replaceIfM("enci", "ence", 0) {
			return
		}
		s.replaceIfM("anci", "ance", 0)
	case 'e':
		s.replaceIfM("izer", "ize", 0)
	case 'l':
		if s.replaceIfM("abli", "able", 0) {
			return
		}
		if s.replaceIfM("alli", "al", 0) {
			return
		}
		if s.replaceIfM("entli", "ent", 0) {
			return
		}
		if s.replaceIfM("eli", "e", 0) {
			return
		}
		s.replaceIfM("ousli", "ous", 0)
	case 'o':
		if s.replaceIfM("ization", "ize", 0) {
			return
		}
		if s.replaceIfM("ation", "ate", 0) {
			return
		}
		s.replaceIfM("ator", "ate", 0)
	case 's':
		if s.replaceIfM("alism", "al", 0) {
			return
		}
		if s.replaceIfM("iveness", "ive", 0) {
			return
		}
		if s.replaceIfM("fulness", "ful", 0) {
			return
		}
		s.replaceIfM("ousness", "ous", 0)
	case 't':
		if s.replaceIfM("aliti", "al", 0) {
			return
		}
		if s.replaceIfM("iviti", "ive", 0) {
			return
		}
		s.replaceIfM("biliti", "ble", 0)
	}
}

// step3 deals with -ic-, -full, -ness etc. when m > 0.
func (s *stemmer) step3() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-1] {
	case 'e':
		if s.replaceIfM("icate", "ic", 0) {
			return
		}
		if s.replaceIfM("ative", "", 0) {
			return
		}
		s.replaceIfM("alize", "al", 0)
	case 'i':
		s.replaceIfM("iciti", "ic", 0)
	case 'l':
		if s.replaceIfM("ical", "ic", 0) {
			return
		}
		s.replaceIfM("ful", "", 0)
	case 's':
		s.replaceIfM("ness", "", 0)
	}
}

// step4 removes suffixes when m > 1.
func (s *stemmer) step4() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		s.replaceIfM("al", "", 1)
	case 'c':
		if s.replaceIfM("ance", "", 1) {
			return
		}
		s.replaceIfM("ence", "", 1)
	case 'e':
		s.replaceIfM("er", "", 1)
	case 'i':
		s.replaceIfM("ic", "", 1)
	case 'l':
		if s.replaceIfM("able", "", 1) {
			return
		}
		s.replaceIfM("ible", "", 1)
	case 'n':
		if s.replaceIfM("ant", "", 1) {
			return
		}
		if s.replaceIfM("ement", "", 1) {
			return
		}
		if s.replaceIfM("ment", "", 1) {
			return
		}
		s.replaceIfM("ent", "", 1)
	case 'o':
		if s.hasSuffix("ion") {
			k := s.stemLen("ion")
			if k > 0 && (s.b[k-1] == 's' || s.b[k-1] == 't') && s.measure(k) > 1 {
				s.replace("ion", "")
			}
			return
		}
		s.replaceIfM("ou", "", 1)
	case 's':
		s.replaceIfM("ism", "", 1)
	case 't':
		if s.replaceIfM("ate", "", 1) {
			return
		}
		s.replaceIfM("iti", "", 1)
	case 'u':
		s.replaceIfM("ous", "", 1)
	case 'v':
		s.replaceIfM("ive", "", 1)
	case 'z':
		s.replaceIfM("ize", "", 1)
	}
}

// step5a removes a terminal E when m > 1, or when m == 1 and the stem does
// not end in CVC.
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	k := len(s.b) - 1
	m := s.measure(k)
	if m > 1 || (m == 1 && !s.endsCVC(k)) {
		s.b = s.b[:k]
	}
}

// step5b reduces a terminal double L when m > 1.
func (s *stemmer) step5b() {
	if s.measure(len(s.b)) > 1 && s.endsDoubleConsonant(len(s.b)) && s.b[len(s.b)-1] == 'l' {
		s.b = s.b[:len(s.b)-1]
	}
}
