// Package ergraph provides the graph machinery of the entity-resolution
// framework (Section II and IV-C of the paper): undirected decision graphs
// whose edges assert "these two pages refer to the same person", transitive
// closure via connected components (the paper's clustering of choice), and
// correlation clustering as the alternative the paper experimented with.
//
// The true entity graph is a union of disjoint cliques (equivalence
// classes); the decision graphs produced by similarity functions are not
// transitive, so a clustering step reconciles them.
package ergraph

import "fmt"

// Graph is an undirected simple graph over n vertices (documents of one
// block), stored as adjacency sets.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// NewGraph returns an edgeless graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{n: n, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the undirected edge (i, j). Self-loops and out-of-range
// vertices are rejected with an error.
func (g *Graph) AddEdge(i, j int) error {
	if i == j {
		return fmt.Errorf("ergraph: self-loop at %d", i)
	}
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return fmt.Errorf("ergraph: edge (%d,%d) out of range [0,%d)", i, j, g.n)
	}
	g.adj[i][j] = struct{}{}
	g.adj[j][i] = struct{}{}
	return nil
}

// RemoveEdge deletes the undirected edge (i, j) if present.
func (g *Graph) RemoveEdge(i, j int) {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return
	}
	delete(g.adj[i], j)
	delete(g.adj[j], i)
}

// HasEdge reports whether (i, j) is an edge.
func (g *Graph) HasEdge(i, j int) bool {
	if i < 0 || j < 0 || i >= g.n || j >= g.n || i == j {
		return false
	}
	_, ok := g.adj[i][j]
	return ok
}

// Degree returns the degree of vertex i.
func (g *Graph) Degree(i int) int {
	if i < 0 || i >= g.n {
		return 0
	}
	return len(g.adj[i])
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Neighbors returns the neighbors of i in ascending order.
func (g *Graph) Neighbors(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	out := make([]int, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, j)
	}
	sortInts(out)
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for i, nbrs := range g.adj {
		for j := range nbrs {
			c.adj[i][j] = struct{}{}
		}
	}
	return c
}

// ConnectedComponents labels each vertex with its component index; labels
// are dense, assigned in order of the smallest vertex of each component.
// This is the transitive-closure clustering of Algorithm 1.
func (g *Graph) ConnectedComponents() []int {
	labels := make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	stack := make([]int, 0, g.n)
	for start := 0; start < g.n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for w := range g.adj[v] {
				if labels[w] == -1 {
					labels[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return labels
}

func sortInts(xs []int) {
	// Insertion sort: neighbor lists are small and this avoids pulling in
	// sort for a hot path.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
