package ergraph

import (
	"math/rand"
	"sort"
)

// Correlation clustering (Bansal, Blum, Chawla 2004) treats each decision-
// graph edge as a "+" pair and each non-edge as a "−" pair, and seeks the
// partition minimizing disagreements: "+" pairs split across clusters plus
// "−" pairs placed together. The paper lists it as the alternative to
// transitive closure in Algorithm 1's final clustering step.

// Disagreements counts the correlation-clustering cost of labels against
// the decision graph g: edges between clusters plus non-edges within
// clusters.
func Disagreements(g *Graph, labels []int) int {
	n := g.Len()
	cost := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := labels[i] == labels[j]
			edge := g.HasEdge(i, j)
			if edge != same {
				cost++
			}
		}
	}
	return cost
}

// PivotCluster runs the CC-Pivot 3-approximation (Ailon, Charikar, Newman):
// pick a random unclustered pivot, form a cluster from the pivot and its
// unclustered neighbors, repeat. Labels are dense in pivot order.
func PivotCluster(g *Graph, rng *rand.Rand) []int {
	n := g.Len()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	order := rng.Perm(n)
	next := 0
	for _, pivot := range order {
		if labels[pivot] != -1 {
			continue
		}
		labels[pivot] = next
		for nbr := range g.adj[pivot] {
			if labels[nbr] == -1 {
				labels[nbr] = next
			}
		}
		next++
	}
	return labels
}

// LocalSearch greedily improves a clustering: repeatedly move single
// vertices to the neighboring cluster (or a fresh singleton) that most
// reduces disagreements, until no move helps or maxPasses passes complete.
// It returns the improved labels (the input slice is not modified).
func LocalSearch(g *Graph, start []int, maxPasses int) []int {
	n := g.Len()
	labels := make([]int, n)
	copy(labels, start)
	if n == 0 {
		return labels
	}

	// freshLabel is guaranteed unused, for "move to own singleton" moves.
	freshLabel := 0
	for _, l := range labels {
		if l >= freshLabel {
			freshLabel = l + 1
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			best := labels[v]
			bestDelta := 0
			// Candidate targets: clusters of v's neighbors plus a fresh
			// singleton. Candidates are visited in sorted order so that
			// ties between equally good moves resolve the same way on
			// every run — map iteration order must not leak into the
			// clustering.
			candSet := map[int]struct{}{freshLabel: {}}
			for nbr := range g.adj[v] {
				candSet[labels[nbr]] = struct{}{}
			}
			cands := make([]int, 0, len(candSet))
			for cand := range candSet {
				cands = append(cands, cand)
			}
			sort.Ints(cands)
			for _, cand := range cands {
				if cand == labels[v] {
					continue
				}
				if d := moveDelta(g, labels, v, cand); d < bestDelta {
					bestDelta = d
					best = cand
				}
			}
			if best != labels[v] {
				labels[v] = best
				if best == freshLabel {
					freshLabel++
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return canonicalize(labels)
}

// moveDelta computes the change in disagreements if v moves to cluster c.
func moveDelta(g *Graph, labels []int, v, c int) int {
	delta := 0
	for u := 0; u < len(labels); u++ {
		if u == v {
			continue
		}
		edge := g.HasEdge(u, v)
		sameNow := labels[u] == labels[v]
		sameAfter := labels[u] == c
		if sameNow == sameAfter {
			continue
		}
		// Disagreement before: edge != sameNow; after: edge != sameAfter.
		before := 0
		if edge != sameNow {
			before = 1
		}
		after := 0
		if edge != sameAfter {
			after = 1
		}
		delta += after - before
	}
	return delta
}

// CorrelationCluster runs pivot seeding followed by local-search refinement
// — the full correlation-clustering alternative for Algorithm 1.
func CorrelationCluster(g *Graph, rng *rand.Rand) []int {
	return LocalSearch(g, PivotCluster(g, rng), 10)
}

// canonicalize renumbers labels densely in order of first appearance.
func canonicalize(labels []int) []int {
	mapping := make(map[int]int)
	out := make([]int, len(labels))
	next := 0
	for i, l := range labels {
		m, ok := mapping[l]
		if !ok {
			m = next
			mapping[l] = m
			next++
		}
		out[i] = m
	}
	return out
}

// NumClusters returns the number of distinct labels.
func NumClusters(labels []int) int {
	seen := make(map[int]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
