package ergraph

// UnionFind is a disjoint-set forest with union by rank and path
// compression, the standard structure behind transitive-closure clustering
// at scale.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		n = 0
	}
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; it reports whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	_, _, merged := uf.Merge(x, y)
	return merged
}

// Add appends one new singleton element and returns its index. It is the
// growth primitive behind incremental structures (the sharded blocking
// index) that extend a union-find as documents arrive instead of
// rebuilding it per run.
func (uf *UnionFind) Add() int {
	id := len(uf.parent)
	uf.parent = append(uf.parent, id)
	uf.rank = append(uf.rank, 0)
	uf.sets++
	return id
}

// Merge unions the sets of x and y like Union, but additionally reports
// which representative survived and which was absorbed — what incremental
// callers that maintain per-set state (member lists, cached fingerprints)
// need to move that state to the surviving root. When x and y are already
// in one set, merged is false and root is that set's representative.
func (uf *UnionFind) Merge(x, y int) (root, absorbed int, merged bool) {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return rx, rx, false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return rx, ry, true
}

// Len returns the number of elements.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Labels returns dense cluster labels, assigned in order of each set's
// smallest member.
func (uf *UnionFind) Labels() []int {
	labels := make([]int, len(uf.parent))
	repr := make(map[int]int)
	next := 0
	for i := range uf.parent {
		r := uf.Find(i)
		if _, ok := repr[r]; !ok {
			repr[r] = next
			next++
		}
		labels[i] = repr[r]
	}
	return labels
}
