package ergraph

// UnionFind is a disjoint-set forest with union by rank and path
// compression, the standard structure behind transitive-closure clustering
// at scale.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		n = 0
	}
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; it reports whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Labels returns dense cluster labels, assigned in order of each set's
// smallest member.
func (uf *UnionFind) Labels() []int {
	labels := make([]int, len(uf.parent))
	repr := make(map[int]int)
	next := 0
	for i := range uf.parent {
		r := uf.Find(i)
		if _, ok := repr[r]; !ok {
			repr[r] = next
			next++
		}
		labels[i] = repr[r]
	}
	return labels
}
