package ergraph

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(5)
	if g.Len() != 5 || g.NumEdges() != 0 {
		t.Fatal("fresh graph wrong shape")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err) // duplicate insert is fine
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Error("edge not removed")
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	// Out-of-range queries are safe.
	if g.HasEdge(-1, 5) || g.Degree(9) != 0 || g.Neighbors(9) != nil {
		t.Error("out-of-range queries should be inert")
	}
	g.RemoveEdge(-1, 5) // must not panic
	if NewGraph(-2).Len() != 0 {
		t.Error("negative size should clamp")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(6)
	for _, j := range []int{5, 2, 4, 1} {
		if err := g.AddEdge(0, j); err != nil {
			t.Fatal(err)
		}
	}
	nbrs := g.Neighbors(0)
	want := []int{1, 2, 4, 5}
	if len(nbrs) != 4 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Errorf("neighbors = %v, want %v", nbrs, want)
			break
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(7)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	labels := g.ConnectedComponents()
	// {0,1,2} = 0, {3,4} = 1, {5} = 2, {6} = 3 (dense, by smallest member).
	want := []int{0, 0, 0, 1, 1, 2, 3}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func mustEdge(t *testing.T, g *Graph, i, j int) {
	t.Helper()
	if err := g.AddEdge(i, j); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponentsTransitivity(t *testing.T) {
	// A chain must collapse into one component even though the similarity
	// relation that produced it is not transitive.
	g := NewGraph(10)
	for i := 0; i+1 < 10; i++ {
		mustEdge(t, g, i, i+1)
	}
	labels := g.ConnectedComponents()
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("chain should be one component: %v", labels)
		}
	}
}

func TestClone(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 2, 3)
	if g.HasEdge(2, 3) {
		t.Error("clone not independent")
	}
	if !c.HasEdge(0, 1) {
		t.Error("clone lost edge")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(0, 1) {
		t.Error("repeat union should not merge")
	}
	uf.Union(1, 2)
	if !uf.Connected(0, 2) {
		t.Error("transitivity broken")
	}
	if uf.Connected(0, 3) {
		t.Error("phantom connection")
	}
	if uf.Sets() != 4 {
		t.Errorf("Sets = %d, want 4", uf.Sets())
	}
	labels := uf.Labels()
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("labels = %v", labels)
	}
	if labels[3] == labels[0] {
		t.Errorf("labels = %v", labels)
	}
}

func TestUnionFindMatchesComponentsProperty(t *testing.T) {
	f := func(rawEdges [][2]uint8, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := NewGraph(n)
		uf := NewUnionFind(n)
		for _, e := range rawEdges {
			i, j := int(e[0])%n, int(e[1])%n
			if i == j {
				continue
			}
			if err := g.AddEdge(i, j); err != nil {
				return false
			}
			uf.Union(i, j)
		}
		cc := g.ConnectedComponents()
		labels := uf.Labels()
		// Same partition (possibly different label numbering).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (cc[i] == cc[j]) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return NumClusters(cc) == uf.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisagreements(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	// Perfect clustering: zero disagreements.
	if d := Disagreements(g, []int{0, 0, 1, 1}); d != 0 {
		t.Errorf("perfect clustering cost = %d", d)
	}
	// Everything together: the 4 non-edges inside the single cluster count.
	if d := Disagreements(g, []int{0, 0, 0, 0}); d != 4 {
		t.Errorf("one-cluster cost = %d, want 4", d)
	}
	// Everything apart: the 2 edges crossing clusters count.
	if d := Disagreements(g, []int{0, 1, 2, 3}); d != 2 {
		t.Errorf("singletons cost = %d, want 2", d)
	}
}

func TestPivotClusterRespectsCliques(t *testing.T) {
	// Two disjoint cliques must always be recovered exactly.
	g := NewGraph(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			mustEdge(t, g, i, j)
			mustEdge(t, g, i+3, j+3)
		}
	}
	rng := stats.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		labels := PivotCluster(g, rng)
		if NumClusters(labels) != 2 {
			t.Fatalf("clique graph clustered into %d parts: %v", NumClusters(labels), labels)
		}
		if Disagreements(g, labels) != 0 {
			t.Fatalf("clique clustering has disagreements: %v", labels)
		}
	}
}

func TestLocalSearchImproves(t *testing.T) {
	// Near-clique structure with one noisy edge: local search must reach a
	// cost no worse than the pivot start, and fix bad starts.
	g := NewGraph(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			mustEdge(t, g, i, j)
			mustEdge(t, g, i+3, j+3)
		}
	}
	mustEdge(t, g, 2, 3) // noise edge across the cliques

	badStart := []int{0, 1, 2, 3, 4, 5} // all singletons
	improved := LocalSearch(g, badStart, 20)
	if got, was := Disagreements(g, improved), Disagreements(g, badStart); got > was {
		t.Errorf("local search worsened cost: %d > %d", got, was)
	}
	// The optimal clustering {0,1,2} {3,4,5} has cost 1 (the noise edge).
	if got := Disagreements(g, improved); got > 1 {
		t.Errorf("local search cost = %d, want <= 1", got)
	}
}

func TestCorrelationClusterEndToEnd(t *testing.T) {
	g := NewGraph(8)
	// Clique A: 0-3, clique B: 4-7, with one edge missing in A and one
	// noise edge between them.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if i == 0 && j == 3 {
				continue // missing edge
			}
			mustEdge(t, g, i, j)
			mustEdge(t, g, i+4, j+4)
		}
	}
	mustEdge(t, g, 4, 7)
	mustEdge(t, g, 3, 4) // noise

	labels := CorrelationCluster(g, stats.NewRNG(11))
	// The two groups must separate: 0 and 1 together, 4 and 5 together,
	// and the groups apart.
	if labels[0] != labels[1] || labels[4] != labels[5] {
		t.Errorf("groups split: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Errorf("groups merged: %v", labels)
	}
}

func TestLocalSearchEmptyGraph(t *testing.T) {
	g := NewGraph(0)
	if got := LocalSearch(g, nil, 5); len(got) != 0 {
		t.Errorf("empty graph labels = %v", got)
	}
}

func TestCanonicalize(t *testing.T) {
	got := canonicalize([]int{7, 7, 3, 7, 3, 9})
	want := []int{0, 0, 1, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonicalize = %v, want %v", got, want)
		}
	}
}

func TestNumClusters(t *testing.T) {
	if NumClusters([]int{0, 1, 1, 2}) != 3 {
		t.Error("NumClusters wrong")
	}
	if NumClusters(nil) != 0 {
		t.Error("NumClusters(nil) should be 0")
	}
}
