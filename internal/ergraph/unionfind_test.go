package ergraph

import "testing"

func TestUnionFindAdd(t *testing.T) {
	uf := NewUnionFind(0)
	if uf.Len() != 0 || uf.Sets() != 0 {
		t.Fatalf("empty union-find: len %d, sets %d", uf.Len(), uf.Sets())
	}
	for i := 0; i < 5; i++ {
		if id := uf.Add(); id != i {
			t.Fatalf("Add #%d returned id %d", i, id)
		}
	}
	if uf.Len() != 5 || uf.Sets() != 5 {
		t.Fatalf("after 5 Adds: len %d, sets %d", uf.Len(), uf.Sets())
	}
	uf.Union(0, 4)
	id := uf.Add()
	if id != 5 || uf.Find(id) != id {
		t.Fatalf("Add after Union: id %d, root %d", id, uf.Find(id))
	}
	if !uf.Connected(0, 4) || uf.Connected(0, 5) {
		t.Fatal("Add disturbed existing sets")
	}
}

func TestUnionFindMerge(t *testing.T) {
	uf := NewUnionFind(4)
	root, absorbed, merged := uf.Merge(0, 1)
	if !merged || root == absorbed {
		t.Fatalf("Merge(0,1) = (%d, %d, %v)", root, absorbed, merged)
	}
	if uf.Find(0) != root || uf.Find(1) != root {
		t.Fatalf("after merge, roots are %d and %d, want %d", uf.Find(0), uf.Find(1), root)
	}
	if uf.Find(absorbed) != root {
		t.Fatalf("absorbed representative %d no longer finds %d", absorbed, root)
	}
	again, _, merged := uf.Merge(0, 1)
	if merged || again != root {
		t.Fatalf("re-merging one set = (%d, _, %v), want (%d, _, false)", again, merged, root)
	}
	if uf.Sets() != 3 {
		t.Fatalf("sets = %d, want 3", uf.Sets())
	}
}
