package ergraph

import (
	"math/rand"
	"testing"
)

// TestCorrelationClusterDeterministic pins run-to-run determinism: with
// equal seeds the full pivot + local-search pipeline must produce identical
// labels. (LocalSearch once let map iteration order break ties between
// equally good moves, which leaked nondeterminism into every
// correlation-clustered resolution.)
func TestCorrelationClusterDeterministic(t *testing.T) {
	build := func(seed int64) *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(60)
		for i := 0; i < 60; i++ {
			for j := i + 1; j < 60; j++ {
				// Dense enough that local search faces many tied moves.
				if rng.Float64() < 0.5 {
					if err := g.AddEdge(i, j); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return g
	}
	for seed := int64(0); seed < 5; seed++ {
		g := build(seed)
		a := CorrelationCluster(g, rand.New(rand.NewSource(99)))
		for rep := 0; rep < 3; rep++ {
			b := CorrelationCluster(build(seed), rand.New(rand.NewSource(99)))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: labels differ at %d: %d vs %d", seed, i, a[i], b[i])
				}
			}
		}
	}
}
