package service

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/corpus"
)

// TestConcurrentIngestAndResolve stress-drives parallel POST
// /v1/collections and incremental resolves against one store. Run with
// -race. Afterwards no document may be lost and the final clusters must be
// deterministic: a cached incremental run and a forced-fresh full run over
// the settled store agree exactly.
func TestConcurrentIngestAndResolve(t *testing.T) {
	ts := testServer(t, Config{})
	const (
		workers   = 4
		batches   = 3
		batchDocs = 8
	)

	// Each worker owns one collection and delivers it in order, so every
	// collection's final content is deterministic even though workers
	// interleave arbitrarily.
	full := make([]*corpus.Collection, workers)
	for w := 0; w < workers; w++ {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name:    map[int]string{0: "rivera", 1: "cohen", 2: "smith", 3: "garcia"}[w],
			NumDocs: batches * batchDocs, NumPersonas: 3,
			Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(100 + w),
		})
		if err != nil {
			t.Fatal(err)
		}
		full[w] = col
	}

	var (
		wg     sync.WaitGroup
		jobsMu sync.Mutex
		jobIDs []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			col := full[w]
			for b := 0; b < batches; b++ {
				batch := &corpus.Collection{
					Name:        col.Name,
					Docs:        col.Docs[b*batchDocs : (b+1)*batchDocs],
					NumPersonas: col.NumPersonas,
				}
				var ack CollectionsResponse
				code := postJSON(t, ts, "/v1/collections",
					CollectionsRequest{Collections: []*corpus.Collection{batch}}, &ack)
				if code != http.StatusAccepted {
					t.Errorf("worker %d batch %d: status %d", w, b, code)
					return
				}
				jobsMu.Lock()
				jobIDs = append(jobIDs, ack.JobID)
				jobsMu.Unlock()
			}
		}(w)
	}
	// Incremental resolves race the ingest; they may observe any prefix of
	// the store (or, before the first commit, an empty one).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				var out IncrementalResolveResponse
				code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &out)
				if code != http.StatusOK && code != http.StatusConflict {
					t.Errorf("concurrent incremental: status %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()

	for _, id := range jobIDs {
		if job := waitJob(t, ts, id); job.Status != "done" {
			t.Fatalf("job %s = %+v", id, job)
		}
	}

	var final, fresh IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &final); code != http.StatusOK {
		t.Fatalf("final incremental: status %d", code)
	}
	want := workers * batches * batchDocs
	if final.Docs != want {
		t.Fatalf("store holds %d docs, want %d (lost documents)", final.Docs, want)
	}
	covered := 0
	for _, b := range final.Blocks {
		covered += b.Docs
	}
	if covered != want {
		t.Fatalf("blocks cover %d docs, want %d", covered, want)
	}

	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{Fresh: true}, &fresh); code != http.StatusOK {
		t.Fatalf("fresh resolve: status %d", code)
	}
	if len(final.Blocks) != len(fresh.Blocks) {
		t.Fatalf("final has %d blocks, fresh %d", len(final.Blocks), len(fresh.Blocks))
	}
	for i := range final.Blocks {
		if final.Blocks[i].Name != fresh.Blocks[i].Name || !equalInts(final.Blocks[i].Labels, fresh.Blocks[i].Labels) {
			t.Errorf("block %d: incremental %q %v != fresh %q %v", i,
				final.Blocks[i].Name, final.Blocks[i].Labels,
				fresh.Blocks[i].Name, fresh.Blocks[i].Labels)
		}
	}
}
