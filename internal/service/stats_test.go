package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/persist"
)

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", resp.StatusCode)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStatsEndpoint pins the observability surface: per-stage counters,
// queue depth, and the sharded index's shape all show up after ingest and
// two incremental resolves.
func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t, Config{BlockShards: 4})
	col := testCollection(t, 24)

	empty := getStats(t, ts)
	if empty.Store.Docs != 0 || empty.Resolve.Runs != 0 || len(empty.Blocking.Indexes) != 0 {
		t.Fatalf("fresh-server stats = %+v", empty)
	}

	ingestCollection(t, ts, col)

	var run IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &run); code != http.StatusOK {
		t.Fatalf("incremental resolve = %d", code)
	}
	if run.Blocking.Indexer != "index" {
		t.Fatalf("blocking stats = %+v, want the index path", run.Blocking)
	}
	if run.Blocking.DeltaDocs != 24 && run.Blocking.DeltaDocs != 0 {
		// The background warmer may have indexed the batch already; either
		// way the docs are indexed exactly once.
		t.Fatalf("first resolve delta_docs = %d, want 24 (cold) or 0 (warmed)", run.Blocking.DeltaDocs)
	}
	if run.Blocking.IndexedDocs != 24 || run.Blocking.Shards != 4 {
		t.Fatalf("blocking stats = %+v, want 24 docs over 4 shards", run.Blocking)
	}

	var again IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &again); code != http.StatusOK {
		t.Fatalf("second incremental resolve = %d", code)
	}
	if again.Blocking.DeltaDocs != 0 || again.Blocking.DirtyBlocks != 0 {
		t.Fatalf("unchanged-store resolve blocking stats = %+v, want no delta", again.Blocking)
	}
	if again.Incremental.ReusedBlocks != again.Incremental.Blocks {
		t.Fatalf("unchanged-store resolve reused %d of %d blocks", again.Incremental.ReusedBlocks, again.Incremental.Blocks)
	}

	st := getStats(t, ts)
	if st.Store.Docs != 24 || st.Ingest.Batches != 1 {
		t.Fatalf("stats store/ingest = %+v / %+v", st.Store, st.Ingest)
	}
	if st.Queue.Depth != 0 {
		t.Fatalf("queue depth = %d after drain", st.Queue.Depth)
	}
	if st.Resolve.Runs != 2 || st.Resolve.Blocks != st.Resolve.ReusedBlocks+st.Resolve.PreparedBlocks+st.Resolve.TrivialBlocks {
		t.Fatalf("resolve counters = %+v", st.Resolve)
	}
	if len(st.Blocking.Indexes) != 1 {
		t.Fatalf("indexes = %+v, want exactly one", st.Blocking.Indexes)
	}
	idx := st.Blocking.Indexes[0]
	if idx.Key != "exact|collection|4" || idx.Docs != 24 || len(idx.ShardKeys) != 4 {
		t.Fatalf("index report = %+v", idx)
	}
	total := 0
	for _, n := range idx.ShardKeys {
		total += n
	}
	if total != idx.Keys {
		t.Fatalf("shard keys sum to %d, index reports %d keys", total, idx.Keys)
	}
	if st.SnapshotStates != 1 {
		t.Fatalf("snapshot states = %d", st.SnapshotStates)
	}

	// The stats endpoint is GET-only.
	if code := postJSON(t, ts, "/v1/stats", struct{}{}, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d, want 405", code)
	}
}

// TestIncrementalSchemeFallbackReported pins that global schemes still
// work and report the scheme path in the blocking stats.
func TestIncrementalSchemeFallbackReported(t *testing.T) {
	ts := testServer(t, Config{})
	ingestCollection(t, ts, testCollection(t, 24))

	var run IncrementalResolveResponse
	req := IncrementalResolveRequest{}
	req.Blocking = "sortedneighborhood"
	if code := postJSON(t, ts, "/v1/resolve/incremental", req, &run); code != http.StatusOK {
		t.Fatalf("incremental resolve = %d", code)
	}
	if run.Blocking.Indexer != "scheme" {
		t.Fatalf("blocking stats = %+v, want the scheme path", run.Blocking)
	}
	st := getStats(t, ts)
	if len(st.Blocking.Indexes) != 0 {
		t.Fatalf("a global scheme grew an index: %+v", st.Blocking.Indexes)
	}
}

// TestNamesKeysKnob pins the richer-keys knob end to end: "keys":"names"
// is accepted, keyed separately from the default, and merges
// cross-collection name variants into one block.
func TestNamesKeysKnob(t *testing.T) {
	ts := testServer(t, Config{})
	variant := func(name, url, text string) *corpus.Collection {
		return &corpus.Collection{Name: name, NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: url, Text: text, PersonaID: 0},
		}}
	}
	ingestCollection(t, ts, variant("smith, j", "http://a.example/1", "John Smith wrote the database survey"))
	ingestCollection(t, ts, variant("john smith", "http://b.example/1", "John Smith presented the keynote"))

	var byCollection IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &byCollection); code != http.StatusOK {
		t.Fatalf("default-keys resolve = %d", code)
	}
	if len(byCollection.Blocks) != 2 {
		t.Fatalf("collection keys produced %d blocks, want 2", len(byCollection.Blocks))
	}

	var byNames IncrementalResolveResponse
	req := IncrementalResolveRequest{}
	req.Keys = "names"
	if code := postJSON(t, ts, "/v1/resolve/incremental", req, &byNames); code != http.StatusOK {
		t.Fatalf("names-keys resolve = %d", code)
	}
	if len(byNames.Blocks) != 1 || byNames.Blocks[0].Docs != 2 {
		t.Fatalf("names keys produced %+v, want one merged 2-doc block", byNames.Blocks)
	}

	var errOut errorResponse
	bad := IncrementalResolveRequest{}
	bad.Keys = "bogus"
	if code := postJSON(t, ts, "/v1/resolve/incremental", bad, &errOut); code != http.StatusBadRequest ||
		!strings.Contains(errOut.Error, "collection, names") {
		t.Fatalf("bogus keys = %d %+v, want 400 listing valid values", code, errOut)
	}
}

// TestWarmerPersistsIndex pins that index state built by the background
// warmer — not just by resolves — survives a restart: an ingest-heavy,
// resolve-light server must not lose its keying work on shutdown.
func TestWarmerPersistsIndex(t *testing.T) {
	dir := t.TempDir()
	data, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: data.Store, Snapshots: data.Snapshots, Indexes: data.Indexes})
	ts := httptest.NewServer(srv.Handler())

	// One resolve creates the index entry; the second ingest is only ever
	// seen by the warmer.
	ingestCollection(t, ts, testCollection(t, 10))
	var run IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &run); code != http.StatusOK {
		t.Fatalf("resolve = %d", code)
	}
	grown := testCollection(t, 20)
	grown.Name = "cohen"
	ingestCollection(t, ts, grown)
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts).Blocking.Indexes[0].Docs < 30 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond) // wait for the warmer to index the batch
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := data.Close(); err != nil {
		t.Fatal(err)
	}

	data2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data2.Close()
	srv2 := New(Config{Store: data2.Store, Snapshots: data2.Snapshots, Indexes: data2.Indexes})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close(context.Background())

	var after IncrementalResolveResponse
	if code := postJSON(t, ts2, "/v1/resolve/incremental", IncrementalResolveRequest{}, &after); code != http.StatusOK {
		t.Fatalf("post-restart resolve = %d", code)
	}
	if after.Blocking.DeltaDocs != 0 || after.Blocking.IndexedDocs != 30 {
		t.Fatalf("post-restart blocking stats = %+v, want the warmer-built 30-doc index with no delta", after.Blocking)
	}
}

// TestIndexSurvivesRestart pins the persistence satellite at the service
// level: a second server over the same data directory serves its first
// incremental resolve without re-keying the corpus — the index loads with
// delta 0.
func TestIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	col := testCollection(t, 24)

	open := func() (*Server, *httptest.Server, *persist.Data) {
		data, err := persist.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{Store: data.Store, Snapshots: data.Snapshots, Indexes: data.Indexes})
		return srv, httptest.NewServer(srv.Handler()), data
	}
	shut := func(srv *Server, ts *httptest.Server, data *persist.Data) {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if err := data.Close(); err != nil {
			t.Fatal(err)
		}
	}

	srv1, ts1, data1 := open()
	ingestCollection(t, ts1, col)
	var before IncrementalResolveResponse
	if code := postJSON(t, ts1, "/v1/resolve/incremental", IncrementalResolveRequest{}, &before); code != http.StatusOK {
		t.Fatalf("pre-restart resolve = %d", code)
	}
	shut(srv1, ts1, data1)

	srv2, ts2, data2 := open()
	defer shut(srv2, ts2, data2)
	var after IncrementalResolveResponse
	if code := postJSON(t, ts2, "/v1/resolve/incremental", IncrementalResolveRequest{}, &after); code != http.StatusOK {
		t.Fatalf("post-restart resolve = %d", code)
	}
	if after.Blocking.Indexer != "index" || after.Blocking.DeltaDocs != 0 {
		t.Fatalf("post-restart blocking stats = %+v, want a loaded index with no delta", after.Blocking)
	}
	if after.Incremental.ReusedBlocks != after.Incremental.Blocks || after.Incremental.Blocks == 0 {
		t.Fatalf("post-restart incremental stats = %+v, want every block reused", after.Incremental)
	}
}
