package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/store"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return ts
}

func testCollection(t *testing.T, docs int) *corpus.Collection {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "rivera", NumDocs: docs, NumPersonas: 3,
		Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func postResolve(t *testing.T, ts *httptest.Server, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestResolveEndpoint(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 30)

	// An ergen dataset body with default knobs is a valid request.
	resp := postResolve(t, ts, corpus.Dataset{Label: "smoke", Collections: []*corpus.Collection{col}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ResolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Label != "smoke" || len(out.Blocks) != 1 {
		t.Fatalf("response = %+v", out)
	}
	b := out.Blocks[0]
	if b.Name != "rivera" || b.Docs != 30 || len(b.Labels) != 30 {
		t.Fatalf("block = %+v", b)
	}
	if b.NumEntities < 1 || b.NumEntities > 30 || len(b.Clusters) != b.NumEntities {
		t.Errorf("entities = %d with %d clusters", b.NumEntities, len(b.Clusters))
	}
	members := 0
	for _, c := range b.Clusters {
		members += len(c)
	}
	if members != 30 {
		t.Errorf("clusters cover %d docs, want 30", members)
	}
	if b.Score == nil || b.Score.Fp <= 0 {
		t.Errorf("score = %+v, want Fp > 0 by default", b.Score)
	}
}

func TestResolveRequestTimeout(t *testing.T) {
	ts := testServer(t, Config{DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	col := testCollection(t, 120)

	resp := postResolve(t, ts, ResolveRequest{
		Collections: []*corpus.Collection{col},
		// A 1ms budget fires inside the first block's preparation.
		resolveKnobs: resolveKnobs{TimeoutMillis: 1},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Error, "timeout") {
		t.Errorf("error = %q, want a timeout message", out.Error)
	}
}

func TestResolveValidation(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 10)

	cases := []struct {
		name string
		req  ResolveRequest
		want string
	}{
		{"no collections", ResolveRequest{}, "no collections"},
		{"bad strategy", ResolveRequest{Collections: []*corpus.Collection{col},
			resolveKnobs: resolveKnobs{Strategy: "bogus"}},
			"best, threshold, weighted, majority"},
		{"bad clustering", ResolveRequest{Collections: []*corpus.Collection{col},
			resolveKnobs: resolveKnobs{Clustering: "bogus"}},
			"closure, correlation"},
		{"bad blocking", ResolveRequest{Collections: []*corpus.Collection{col},
			resolveKnobs: resolveKnobs{Blocking: "bogus"}},
			"exact, token, sortedneighborhood, canopy"},
	}
	for _, tc := range cases {
		resp := postResolve(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		var out errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, out.Error, tc.want)
		}
	}

	for _, path := range []string{"/v1/resolve", "/v1/resolve/incremental", "/v1/collections"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s Allow = %q, want POST", path, allow)
		}
		var out errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Error == "" {
			t.Errorf("GET %s: 405 body is not a JSON error (%v, %+v)", path, err, out)
		}
		resp.Body.Close()
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz status = %d", resp.StatusCode)
		}
	}
}

func TestUnsupportedContentType(t *testing.T) {
	ts := testServer(t, Config{})
	for _, path := range []string{"/v1/resolve", "/v1/resolve/incremental", "/v1/collections"} {
		resp, err := http.Post(ts.URL+path, "application/x-www-form-urlencoded",
			strings.NewReader("a=b"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("POST %s status = %d, want 415", path, resp.StatusCode)
		}
		var out errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || !strings.Contains(out.Error, "application/json") {
			t.Errorf("POST %s: 415 body should be a JSON error naming application/json, got %v %+v", path, err, out)
		}
		resp.Body.Close()
	}

	// A JSON content type with parameters is accepted.
	col := testCollection(t, 10)
	body, _ := json.Marshal(CollectionsRequest{Collections: []*corpus.Collection{col}})
	resp, err := http.Post(ts.URL+"/v1/collections", "application/json; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("charset-parameterized JSON rejected with %d", resp.StatusCode)
	}
}

// postJSON posts v to path and decodes the response into out.
func postJSON(t *testing.T, ts *httptest.Server, path string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls the job endpoint until the job finishes.
func waitJob(t *testing.T, ts *httptest.Server, id string) store.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job store.Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.Status != store.JobPending && job.Status != store.JobRunning {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return store.Job{}
}

func TestIngestJobsAndIncrementalResolve(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 24)

	// Incremental resolution of an empty store is a 409.
	var errOut errorResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &errOut); code != http.StatusConflict {
		t.Fatalf("empty-store incremental = %d, want 409 (%+v)", code, errOut)
	}

	// Ingest the collection in two batches through the async job queue.
	half := len(col.Docs) / 2
	batches := []*corpus.Collection{
		{Name: col.Name, Docs: col.Docs[:half], NumPersonas: col.NumPersonas},
		{Name: col.Name, Docs: col.Docs[half:], NumPersonas: col.NumPersonas},
	}
	var lastIngest IngestResult
	for i, batch := range batches {
		var ack CollectionsResponse
		if code := postJSON(t, ts, "/v1/collections", CollectionsRequest{Collections: []*corpus.Collection{batch}}, &ack); code != http.StatusAccepted {
			t.Fatalf("batch %d: status %d", i, code)
		}
		if ack.JobID == "" || ack.StatusURL != "/v1/jobs/"+ack.JobID {
			t.Fatalf("batch %d: ack = %+v", i, ack)
		}
		job := waitJob(t, ts, ack.JobID)
		if job.Status != store.JobDone {
			t.Fatalf("batch %d: job = %+v", i, job)
		}
		raw, err := json.Marshal(job.Result)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &lastIngest); err != nil {
			t.Fatal(err)
		}
	}
	if lastIngest.Store.Docs != len(col.Docs) || lastIngest.Store.Collections != 1 {
		t.Fatalf("store after ingest = %+v", lastIngest.Store)
	}

	// First incremental run resolves everything from scratch.
	var first IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{Label: "run1"}, &first); code != http.StatusOK {
		t.Fatalf("incremental = %d", code)
	}
	if first.Docs != len(col.Docs) || first.Incremental.ReusedBlocks != 0 {
		t.Fatalf("first run = %+v", first)
	}
	if len(first.Blocks) == 0 || first.Blocks[0].Score == nil {
		t.Fatalf("first run blocks = %+v", first.Blocks)
	}

	// An unchanged store makes the second run pure reuse, with clusters
	// identical to a forced-fresh full resolution.
	var second, fresh IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &second); code != http.StatusOK {
		t.Fatalf("second incremental = %d", code)
	}
	if second.Incremental.ReusedBlocks != second.Incremental.Blocks || second.Incremental.PreparedBlocks != 0 {
		t.Fatalf("second run did not reuse everything: %+v", second.Incremental)
	}
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{Fresh: true}, &fresh); code != http.StatusOK {
		t.Fatalf("fresh incremental = %d", code)
	}
	if fresh.Incremental.ReusedBlocks != 0 {
		t.Fatalf("fresh run reused blocks: %+v", fresh.Incremental)
	}
	for i := range fresh.Blocks {
		if !equalInts(second.Blocks[i].Labels, fresh.Blocks[i].Labels) {
			t.Errorf("block %d: incremental clusters %v != fresh clusters %v",
				i, second.Blocks[i].Labels, fresh.Blocks[i].Labels)
		}
	}
}

func TestJobEndpointErrors(t *testing.T) {
	ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/j1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
		t.Errorf("POST job status = %d Allow = %q, want 405 with Allow: GET",
			resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestCollectionsValidation(t *testing.T) {
	ts := testServer(t, Config{})
	cases := []struct {
		name string
		req  CollectionsRequest
	}{
		{"no collections", CollectionsRequest{}},
		{"unnamed collection", CollectionsRequest{Collections: []*corpus.Collection{{}}}},
		{"negative persona", CollectionsRequest{Collections: []*corpus.Collection{
			{Name: "x", Docs: []corpus.Document{{PersonaID: -3}}}}}},
	}
	for _, tc := range cases {
		var out errorResponse
		if code := postJSON(t, ts, "/v1/collections", tc.req, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%+v)", tc.name, code, out)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ingestCollection ingests one collection and waits for the job.
func ingestCollection(t *testing.T, ts *httptest.Server, col *corpus.Collection) {
	t.Helper()
	var ack CollectionsResponse
	if code := postJSON(t, ts, "/v1/collections", CollectionsRequest{Collections: []*corpus.Collection{col}}, &ack); code != http.StatusAccepted {
		t.Fatalf("ingest status %d", code)
	}
	if job := waitJob(t, ts, ack.JobID); job.Status != store.JobDone {
		t.Fatalf("ingest job = %+v", job)
	}
}

// TestIncrementalStateKeying pins the snapshot-identity rules: requests
// with the same effective configuration share a snapshot (defaults
// resolved), and no explicit seed may alias the defaults.
func TestIncrementalStateKeying(t *testing.T) {
	ts := testServer(t, Config{})
	ingestCollection(t, ts, testCollection(t, 12))

	seed := func(v int64) IncrementalResolveRequest {
		return IncrementalResolveRequest{resolveKnobs: resolveKnobs{Seed: &v}}
	}
	var out IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &out); code != http.StatusOK {
		t.Fatalf("default run: %d", code)
	}
	// {"seed":1} is the default seed spelled out — same state, pure reuse.
	if code := postJSON(t, ts, "/v1/resolve/incremental", seed(1), &out); code != http.StatusOK {
		t.Fatalf("seed 1 run: %d", code)
	}
	if out.Incremental.ReusedBlocks != out.Incremental.Blocks {
		t.Errorf("explicit default seed did not share the default state: %+v", out.Incremental)
	}
	// {"seed":-1} is a different configuration — it must not see the
	// default state's snapshot (computed under seed 1).
	if code := postJSON(t, ts, "/v1/resolve/incremental", seed(-1), &out); code != http.StatusOK {
		t.Fatalf("seed -1 run: %d", code)
	}
	if out.Incremental.ReusedBlocks != 0 {
		t.Errorf("seed -1 aliased the default-seed snapshot: %+v", out.Incremental)
	}
}

// TestIncrementalSnapshotEviction pins the LRU cap on per-configuration
// snapshots: beyond MaxSnapshots, the least-recently-used state is
// dropped and its configuration resolves from scratch next time.
func TestIncrementalSnapshotEviction(t *testing.T) {
	ts := testServer(t, Config{MaxSnapshots: 1})
	ingestCollection(t, ts, testCollection(t, 12))

	var out IncrementalResolveResponse
	postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &out)
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &out); code != http.StatusOK || out.Incremental.ReusedBlocks == 0 {
		t.Fatalf("warm default state should reuse: %d %+v", code, out.Incremental)
	}
	// A second configuration evicts the only slot.
	s7 := int64(7)
	postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{resolveKnobs: resolveKnobs{Seed: &s7}}, &out)
	if code := postJSON(t, ts, "/v1/resolve/incremental", IncrementalResolveRequest{}, &out); code != http.StatusOK {
		t.Fatalf("post-eviction run: %d", code)
	}
	if out.Incremental.ReusedBlocks != 0 {
		t.Errorf("evicted state still reused blocks: %+v", out.Incremental)
	}
}
