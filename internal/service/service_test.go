package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func testCollection(t *testing.T, docs int) *corpus.Collection {
	t.Helper()
	col, err := corpus.GenerateCollection(corpus.CollectionConfig{
		Name: "rivera", NumDocs: docs, NumPersonas: 3,
		Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func postResolve(t *testing.T, ts *httptest.Server, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestResolveEndpoint(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 30)

	// An ergen dataset body with default knobs is a valid request.
	resp := postResolve(t, ts, corpus.Dataset{Label: "smoke", Collections: []*corpus.Collection{col}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ResolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Label != "smoke" || len(out.Blocks) != 1 {
		t.Fatalf("response = %+v", out)
	}
	b := out.Blocks[0]
	if b.Name != "rivera" || b.Docs != 30 || len(b.Labels) != 30 {
		t.Fatalf("block = %+v", b)
	}
	if b.NumEntities < 1 || b.NumEntities > 30 || len(b.Clusters) != b.NumEntities {
		t.Errorf("entities = %d with %d clusters", b.NumEntities, len(b.Clusters))
	}
	members := 0
	for _, c := range b.Clusters {
		members += len(c)
	}
	if members != 30 {
		t.Errorf("clusters cover %d docs, want 30", members)
	}
	if b.Score == nil || b.Score.Fp <= 0 {
		t.Errorf("score = %+v, want Fp > 0 by default", b.Score)
	}
}

func TestResolveRequestTimeout(t *testing.T) {
	ts := testServer(t, Config{DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	col := testCollection(t, 120)

	resp := postResolve(t, ts, ResolveRequest{
		Collections:   []*corpus.Collection{col},
		TimeoutMillis: 1, // fires inside the first block's preparation
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Error, "timeout") {
		t.Errorf("error = %q, want a timeout message", out.Error)
	}
}

func TestResolveValidation(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 10)

	cases := []struct {
		name string
		req  ResolveRequest
		want string
	}{
		{"no collections", ResolveRequest{}, "no collections"},
		{"bad strategy", ResolveRequest{Collections: []*corpus.Collection{col}, Strategy: "bogus"},
			"best, threshold, weighted, majority"},
		{"bad clustering", ResolveRequest{Collections: []*corpus.Collection{col}, Clustering: "bogus"},
			"closure, correlation"},
		{"bad blocking", ResolveRequest{Collections: []*corpus.Collection{col}, Blocking: "bogus"},
			"exact, token, sortedneighborhood, canopy"},
	}
	for _, tc := range cases {
		resp := postResolve(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		var out errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, out.Error, tc.want)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/resolve"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status = %d, want 405", resp.StatusCode)
		}
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz status = %d", resp.StatusCode)
		}
	}
}
