package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/serving"
)

// ServingStore persists the hot serving index (internal/persist.ServingDir
// is the disk implementation). SaveServing files the committed index under
// its resolution-configuration key; LoadLatestServing returns the most
// recently saved index of any configuration — what a restarted server
// publishes before any resolve has run — or (nil, nil) when none is stored.
type ServingStore interface {
	SaveServing(key string, x *serving.Index) error
	LoadLatestServing() (*serving.Index, error)
}

// stageHistograms are the per-stage latency histograms /v1/stats reports:
// the four pipeline stages plus the read-path lookup. All registry-backed
// (initObservability), so the same instruments feed the Prometheus
// exposition as the ersolve_stage_latency_seconds family.
type stageHistograms struct {
	block, prepare, analyze, cluster, lookup *metrics.Histogram
}

// publishServing materializes the committed run's serving index, swaps it
// in as the hot read-path index, and persists it. Called from the
// incremental endpoint after a successful run, before the response is
// written — so a client that saw the resolve acknowledged can immediately
// read the clusters it produced. The swap is skipped when the hot index
// already reflects a NEWER store version (a slow run for an older snapshot
// must not roll the read path back); the last committed resolution wins
// ties, so re-resolving one store version under new knobs re-points reads.
func (s *Server) publishServing(key string, cols []*corpus.Collection, version uint64, inc *pipeline.IncrementalResult) {
	if len(inc.Members) != len(inc.Results) || len(inc.Fingerprints) != len(inc.Results) {
		// A blocker that reports no membership cannot feed the serving
		// index; the incremental path always uses membership blockers, so
		// this is belt and braces.
		return
	}
	blocks := make([]serving.BlockResolution, len(inc.Results))
	for i, res := range inc.Results {
		blocks[i] = serving.BlockResolution{
			Fingerprint: inc.Fingerprints[i],
			Name:        res.Block.Name,
			Members:     inc.Members[i],
			Resolution:  res.Resolution,
			Score:       res.Score,
		}
	}

	s.servingMu.Lock()
	defer s.servingMu.Unlock()
	prev := s.serving.Load()
	if prev != nil && prev.StoreVersion() > version {
		return
	}
	epoch := s.servingEpoch + 1
	x := serving.Build(prev, epoch, version, key, cols, blocks)
	s.servingEpoch = epoch
	s.serving.Store(x)
	s.readCache.clear()

	if s.cfg.Serving != nil {
		// Persist before the resolve is acknowledged, mirroring snapshot
		// saves: a crash after the answer still restarts with this
		// resolution servable. A failure costs the restart head-start, not
		// correctness, and is counted as degradation.
		if err := s.cfg.Serving.SaveServing(key, x); err != nil {
			s.counters.servingSaveFailures.Add(1)
			s.cfg.ErrorLog("service: saving serving index for %q: %v", key, err)
		}
	}
}

// readCache is the read path's LRU response cache: rendered JSON bodies
// keyed by (endpoint, argument), tagged with the serving epoch they were
// rendered from. Entries from an older epoch are dead on arrival (the
// epoch advances with every publish), and the whole cache is cleared when
// an ingest batch commits — the append-subscription-driven invalidation —
// and on publish. A nil cache (disabled by configuration) answers every
// lookup with a miss.
type readCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key    string
	epoch  uint64
	status int
	body   []byte
}

func newReadCache(max int) *readCache {
	if max <= 0 {
		return nil
	}
	return &readCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *readCache) get(key string, epoch uint64) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		// Stale render from a previous serving index; drop it now rather
		// than waiting for eviction.
		c.order.Remove(el)
		delete(c.byKey, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e, true
}

func (c *readCache) put(e *cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *readCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byKey)
}

func (c *readCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// EntityResponse is the GET /v1/entities/{id} and GET /v1/docs/{ref}/entity
// reply. Epoch and StoreVersion identify the serving index that answered:
// reads serve the last committed resolution, so StoreVersion may trail the
// live store until the next incremental resolve commits.
type EntityResponse struct {
	Entity *serving.Cluster `json:"entity"`
	// Epoch is the serving index's publish counter.
	Epoch uint64 `json:"epoch"`
	// StoreVersion is the store version the serving index was built from.
	StoreVersion uint64 `json:"store_version"`
}

// SearchHit is one GET /v1/search candidate: a cluster whose block tokens
// matched the query, with how many query tokens matched.
type SearchHit struct {
	Matched int              `json:"matched"`
	Entity  *serving.Cluster `json:"entity"`
}

// SearchResponse is the GET /v1/search reply.
type SearchResponse struct {
	Query        string      `json:"query"`
	Hits         []SearchHit `json:"hits"`
	Epoch        uint64      `json:"epoch"`
	StoreVersion uint64      `json:"store_version"`
}

// hotIndex loads the serving index, answering 409 (and false) when no
// resolution has been committed yet — the read path serves committed
// resolutions only, so an empty server tells the client what to do first.
func (s *Server) hotIndex(w http.ResponseWriter) (*serving.Index, bool) {
	x := s.serving.Load()
	if x == nil {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: "no resolution has been committed yet; run POST /v1/resolve/incremental first"})
		return nil, false
	}
	return x, true
}

// serveCached answers from the response cache when it can; on a miss it
// renders v, caches the body under the current epoch, and writes it. The
// rendered bytes are identical either way, so clients cannot observe
// whether they hit the cache (except through /v1/stats).
func (s *Server) serveCached(w http.ResponseWriter, key string, epoch uint64, status int, v any) {
	if e, ok := s.readCache.get(key, epoch); ok {
		s.counters.cacheHits.Add(1)
		writeRawJSON(w, e.status, e.body)
		return
	}
	s.counters.cacheMisses.Add(1)
	body, err := renderJSON(v)
	if err != nil {
		// Unreachable for the response types; answer uncached.
		writeJSON(w, status, v)
		return
	}
	s.readCache.put(&cacheEntry{key: key, epoch: epoch, status: status, body: body})
	writeRawJSON(w, status, body)
}

// handleEntity answers GET /v1/entities/{id}: the cluster with that stable
// entity ID, or 404.
func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/entities/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "entity paths look like /v1/entities/{id}"})
		return
	}
	x, ok := s.hotIndex(w)
	if !ok {
		return
	}
	tr := s.traces.Start("read.entity")
	defer tr.End()
	tr.SetAttr("id", id)
	s.counters.readEntities.Add(1)
	start := time.Now()
	c := x.Entity(id)
	d := time.Since(start)
	s.latency.lookup.Observe(d)
	tr.Span("lookup", start, d)
	if c == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown entity %q", id)})
		return
	}
	s.serveCached(w, "entity\x00"+id, x.Epoch(), http.StatusOK,
		EntityResponse{Entity: c, Epoch: x.Epoch(), StoreVersion: x.StoreVersion()})
}

// maxLookupItems bounds how many entity IDs plus doc refs one batch
// lookup request may carry: enough for a UI page of rows, small enough
// that a single request cannot monopolize the read path or mint an
// unbounded response-cache entry.
const maxLookupItems = 256

// LookupRequest is the POST /v1/entities/lookup body: entity IDs and/or
// document refs ("collection:pos") to resolve in one serving-index pass.
type LookupRequest struct {
	IDs  []string `json:"ids,omitempty"`
	Refs []string `json:"refs,omitempty"`
}

// LookupResult is one batch-lookup answer, echoing the ID or ref it
// resolves; Entity is null when the serving index has no such entity —
// per-item misses do not fail the batch.
type LookupResult struct {
	ID     string           `json:"id,omitempty"`
	Ref    string           `json:"ref,omitempty"`
	Entity *serving.Cluster `json:"entity"`
}

// LookupResponse is the POST /v1/entities/lookup reply: one result per
// requested item, IDs first then refs, in request order.
type LookupResponse struct {
	Results []LookupResult `json:"results"`
	// Found is how many results carry a non-null entity.
	Found        int    `json:"found"`
	Epoch        uint64 `json:"epoch"`
	StoreVersion uint64 `json:"store_version"`
}

// handleEntityLookup answers POST /v1/entities/lookup: the batch form of
// GET /v1/entities/{id} and GET /v1/docs/{ref}/entity — many lookups,
// one serving-index pass, one cacheable response. Misses answer a null
// entity in place rather than failing the batch, so a client rendering a
// page of rows gets every resolvable row in one round trip.
func (s *Server) handleEntityLookup(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req LookupRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	total := len(req.IDs) + len(req.Refs)
	if total == 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "lookup needs at least one entry in \"ids\" or \"refs\""})
		return
	}
	if total > maxLookupItems {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("lookup carries %d items, cap is %d; split the request", total, maxLookupItems)})
		return
	}
	type docRef struct {
		collection string
		pos        int
	}
	refs := make([]docRef, len(req.Refs))
	for i, ref := range req.Refs {
		cut := strings.LastIndexByte(ref, ':')
		if cut < 0 {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("ref %q needs the form {collection}:{pos}", ref)})
			return
		}
		pos, okPos := parseCanonicalPos(ref[cut+1:])
		if !okPos {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("ref %q: position %q is not a canonical non-negative integer (digits only, no leading zeros)", ref, ref[cut+1:])})
			return
		}
		refs[i] = docRef{collection: ref[:cut], pos: pos}
	}
	x, ok := s.hotIndex(w)
	if !ok {
		return
	}
	tr := s.traces.Start("read.lookup")
	defer tr.End()
	tr.SetAttr("items", strconv.Itoa(total))
	s.counters.readLookup.Add(1)
	start := time.Now()
	resp := LookupResponse{
		Results:      make([]LookupResult, 0, total),
		Epoch:        x.Epoch(),
		StoreVersion: x.StoreVersion(),
	}
	for _, id := range req.IDs {
		c := x.Entity(id)
		if c != nil {
			resp.Found++
		}
		resp.Results = append(resp.Results, LookupResult{ID: id, Entity: c})
	}
	for i, ref := range refs {
		c := x.DocEntity(ref.collection, ref.pos)
		if c != nil {
			resp.Found++
		}
		resp.Results = append(resp.Results, LookupResult{Ref: req.Refs[i], Entity: c})
	}
	d := time.Since(start)
	s.latency.lookup.Observe(d)
	tr.Span("lookup", start, d)
	// The batch shares the read cache (and its epoch/ingest invalidation)
	// with the single-item endpoints: a repeated page render is served
	// from the rendered bytes. The key re-marshals the request so two
	// distinct batches can never alias one entry (items may contain any
	// separator a plain join would use).
	keyBytes, err := json.Marshal(req)
	if err != nil {
		// Unreachable for decoded string slices; answer uncached.
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.serveCached(w, "lookup\x00"+string(keyBytes), x.Epoch(), http.StatusOK, resp)
}

// handleDocEntity answers GET /v1/docs/{ref}/entity where ref is
// "collection:pos": the cluster containing that store document, or 404 —
// including for documents ingested after the served resolution committed
// (the staleness contract's honest answer).
func (s *Server) handleDocEntity(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/docs/")
	ref, okPath := strings.CutSuffix(rest, "/entity")
	if !okPath || ref == "" || strings.Contains(ref, "/") {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "doc lookups look like /v1/docs/{collection}:{pos}/entity"})
		return
	}
	// The collection name may itself contain colons (merged blocks use
	// "+", but nothing forbids a colon in an ingested name), so the
	// position is everything after the LAST colon.
	cut := strings.LastIndexByte(ref, ':')
	if cut < 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("doc ref %q needs the form {collection}:{pos}", ref)})
		return
	}
	collection, posStr := ref[:cut], ref[cut+1:]
	pos, okPos := parseCanonicalPos(posStr)
	if !okPos {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("doc position %q is not a canonical non-negative integer (digits only, no leading zeros)", posStr)})
		return
	}
	x, ok := s.hotIndex(w)
	if !ok {
		return
	}
	tr := s.traces.Start("read.doc")
	defer tr.End()
	tr.SetAttr("ref", ref)
	s.counters.readDocs.Add(1)
	start := time.Now()
	c := x.DocEntity(collection, pos)
	d := time.Since(start)
	s.latency.lookup.Observe(d)
	tr.Span("lookup", start, d)
	if c == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("document (%s, %d) is not in the served resolution (unknown, or ingested after store version %d)",
				collection, pos, x.StoreVersion())})
		return
	}
	s.serveCached(w, "doc\x00"+ref, x.Epoch(), http.StatusOK,
		EntityResponse{Entity: c, Epoch: x.Epoch(), StoreVersion: x.StoreVersion()})
}

// handleSearch answers GET /v1/search?name=…[&limit=N]: candidate clusters
// whose block tokens match the query's name tokens, most matches first.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	name := r.URL.Query().Get("name")
	// Token-free queries (empty, whitespace-only, pure punctuation, or
	// nothing but sub-minimum tokens) are rejected up front with one
	// consistent 400: the serving index tokenizes exactly this way, so
	// such a query could only ever run a zero-token search that matches
	// nothing while still consuming a cache slot keyed by the raw string.
	if name == "" || len(blocking.KeyTokens(name, 2)) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "search needs a ?name= query with at least one name token"})
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("limit %q is not a positive integer", ls)})
			return
		}
		limit = n
	}
	x, ok := s.hotIndex(w)
	if !ok {
		return
	}
	tr := s.traces.Start("read.search")
	defer tr.End()
	tr.SetAttr("name", name)
	s.counters.readSearch.Add(1)
	start := time.Now()
	hits := x.Search(name, limit)
	d := time.Since(start)
	s.latency.lookup.Observe(d)
	tr.Span("lookup", start, d)
	resp := SearchResponse{
		Query:        name,
		Hits:         make([]SearchHit, 0, len(hits)),
		Epoch:        x.Epoch(),
		StoreVersion: x.StoreVersion(),
	}
	for _, h := range hits {
		resp.Hits = append(resp.Hits, SearchHit{Matched: h.Matched, Entity: h.Cluster})
	}
	s.serveCached(w, "search\x00"+name+"\x00"+strconv.Itoa(limit), x.Epoch(), http.StatusOK, resp)
}

// parseCanonicalPos parses a document position in canonical decimal form:
// ASCII digits only, no sign, no leading zeros (except "0" itself).
// strconv.Atoi would also accept "+3" and "03" — spellings that name the
// same document but produce distinct response-cache keys, aliasing one
// document across several cache entries and letting a client mint
// unbounded keys for one resource.
func parseCanonicalPos(s string) (int, bool) {
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil { // overflow
		return 0, false
	}
	return n, true
}

// renderJSON produces exactly the bytes writeJSON would stream, so cached
// and uncached responses are byte-identical.
func renderJSON(v any) ([]byte, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// writeRawJSON writes a pre-rendered JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// ServingReport is the /v1/stats view of the hot serving index: which
// committed resolution reads are answered from and whether the store has
// moved past it (the staleness contract: reads always serve the last
// committed resolution, never a half-applied one).
type ServingReport struct {
	// Available reports whether a serving index has been published; when
	// false the read endpoints answer 409 and every other field is zero.
	Available bool `json:"available"`
	// Epoch increments on every published serving index (restart loads
	// resume from the persisted epoch).
	Epoch uint64 `json:"epoch"`
	// StoreVersion is the store snapshot the index was built from;
	// comparing it with the live store version (Stale below) quantifies
	// read-path staleness.
	StoreVersion uint64 `json:"store_version"`
	// Knobs is the resolution-configuration key the index was built under.
	Knobs string `json:"knobs"`
	// Clusters, Docs and Blocks describe the index's shape.
	Clusters int `json:"clusters"`
	Docs     int `json:"docs"`
	Blocks   int `json:"blocks"`
	// Stale is true when the live store has committed documents past the
	// snapshot the serving index was built from — reads still answer, from
	// the last committed resolution, until the next incremental resolve
	// publishes a fresher index.
	Stale bool `json:"stale"`
}

// ReadStats aggregates the read path's per-endpoint counters and the
// response cache's traffic.
type ReadStats struct {
	Entities    int64 `json:"entities"`
	Docs        int64 `json:"docs"`
	Search      int64 `json:"search"`
	Lookup      int64 `json:"lookup"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`
}

// LatencyReport exposes the per-stage latency histograms: the four
// pipeline stages plus the read-path lookup.
type LatencyReport struct {
	Block   metrics.Snapshot `json:"block"`
	Prepare metrics.Snapshot `json:"prepare"`
	Analyze metrics.Snapshot `json:"analyze"`
	Cluster metrics.Snapshot `json:"cluster"`
	Lookup  metrics.Snapshot `json:"lookup"`
}

// servingReport assembles the /v1/stats serving section from the hot
// index and the live store version.
func (s *Server) servingReport(liveVersion uint64) ServingReport {
	x := s.serving.Load()
	if x == nil {
		return ServingReport{}
	}
	return ServingReport{
		Available:    true,
		Epoch:        x.Epoch(),
		StoreVersion: x.StoreVersion(),
		Knobs:        x.Knobs(),
		Clusters:     x.Clusters(),
		Docs:         x.Docs(),
		Blocks:       x.Blocks(),
		Stale:        liveVersion > x.StoreVersion(),
	}
}

// readStats assembles the /v1/stats reads section.
func (s *Server) readStats() ReadStats {
	return ReadStats{
		Entities:    s.counters.readEntities.Load(),
		Docs:        s.counters.readDocs.Load(),
		Search:      s.counters.readSearch.Load(),
		Lookup:      s.counters.readLookup.Load(),
		CacheHits:   s.counters.cacheHits.Load(),
		CacheMisses: s.counters.cacheMisses.Load(),
		CacheSize:   s.readCache.size(),
	}
}

// latencyReport snapshots the per-stage histograms.
func (s *Server) latencyReport() LatencyReport {
	return LatencyReport{
		Block:   s.latency.block.Snapshot(),
		Prepare: s.latency.prepare.Snapshot(),
		Analyze: s.latency.analyze.Snapshot(),
		Cluster: s.latency.cluster.Snapshot(),
		Lookup:  s.latency.lookup.Snapshot(),
	}
}
