package service

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/ann"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/tracing"
)

// degradedHelp is shared by the static and callback-backed members of the
// ersolve_degraded_total family — the registry requires identical help
// text for every series joining one family.
const degradedHelp = "Events where the server kept serving by giving something up, by kind."

// initObservability wires the metrics registry and the trace ring buffer.
// Every lifetime counter the server owns is registered here, so /metrics
// and /v1/stats read the same instruments; values owned elsewhere (the
// job queue, the backing stores, the live indexes) are read at scrape
// time through callback-backed families. Called once from New, before any
// code path that can increment a counter.
func (s *Server) initObservability() {
	s.started = time.Now()
	s.registry = metrics.NewRegistry()
	if s.cfg.TraceBuffer >= 0 {
		size := s.cfg.TraceBuffer
		if size == 0 {
			size = 256
		}
		s.traces = tracing.NewBuffer(size)
	}

	r := s.registry
	c := &s.counters
	c.runs = r.Counter("ersolve_resolve_runs_total", "Completed incremental resolve runs.")
	c.blocks = r.Counter("ersolve_resolve_blocks_total", "Blocks seen by incremental resolve runs.")
	const outcomeHelp = "Per-block incremental resolve outcomes, by outcome."
	c.reused = r.Counter("ersolve_resolve_block_outcomes_total", outcomeHelp, "outcome", "reused")
	c.prepared = r.Counter("ersolve_resolve_block_outcomes_total", outcomeHelp, "outcome", "prepared")
	c.trivial = r.Counter("ersolve_resolve_block_outcomes_total", outcomeHelp, "outcome", "trivial")
	c.deltaDocs = r.Counter("ersolve_blocking_delta_docs_total", "Documents keyed incrementally by the blocking indexes.")
	c.dirtyBlocks = r.Counter("ersolve_blocking_dirty_blocks_total", "Blocks marked dirty by incremental index deltas.")
	c.ingestBatches = r.Counter("ersolve_ingest_batches_total", "Committed ingest batches observed by the server.")

	const readsHelp = "Read-path requests that reached the serving index, by endpoint."
	c.readEntities = r.Counter("ersolve_reads_total", readsHelp, "endpoint", "entities")
	c.readDocs = r.Counter("ersolve_reads_total", readsHelp, "endpoint", "docs")
	c.readSearch = r.Counter("ersolve_reads_total", readsHelp, "endpoint", "search")
	c.readLookup = r.Counter("ersolve_reads_total", readsHelp, "endpoint", "lookup")
	const cacheHelp = "Read-path response cache lookups, by result."
	c.cacheHits = r.Counter("ersolve_read_cache_total", cacheHelp, "result", "hit")
	c.cacheMisses = r.Counter("ersolve_read_cache_total", cacheHelp, "result", "miss")

	c.panics = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "panics")
	c.ingestThrottled = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "ingest_throttled")
	c.snapshotLoadFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "snapshot_load_failures")
	c.snapshotSaveFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "snapshot_save_failures")
	c.indexLoadFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "index_load_failures")
	c.indexSaveFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "index_save_failures")
	c.annLoadFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "ann_load_failures")
	c.annSaveFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "ann_save_failures")
	c.servingLoadFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "serving_load_failures")
	c.servingSaveFailures = r.Counter("ersolve_degraded_total", degradedHelp, "kind", "serving_save_failures")
	// The backing stores count their own recoveries and quarantines; join
	// them into the same family at scrape time.
	r.CounterFunc("ersolve_degraded_total", degradedHelp, s.storeDegradationSamples)

	const latencyHelp = "Stage wall-clock latency in seconds, by stage."
	s.latency.block = r.Histogram("ersolve_stage_latency_seconds", latencyHelp, "stage", "block")
	s.latency.prepare = r.Histogram("ersolve_stage_latency_seconds", latencyHelp, "stage", "prepare")
	s.latency.analyze = r.Histogram("ersolve_stage_latency_seconds", latencyHelp, "stage", "analyze")
	s.latency.cluster = r.Histogram("ersolve_stage_latency_seconds", latencyHelp, "stage", "cluster")
	s.latency.lookup = r.Histogram("ersolve_stage_latency_seconds", latencyHelp, "stage", "lookup")

	r.Gauge("ersolve_queue_depth", "Ingest jobs enqueued but not yet finished.",
		func() float64 { return float64(s.jobs.Depth()) })
	r.CounterFunc("ersolve_queue_jobs_total", "Lifetime ingest job totals, by event.", func() []metrics.Sample {
		qc := s.jobs.Counters()
		return []metrics.Sample{
			{Labels: []string{"event", "enqueued"}, Value: float64(qc.Enqueued)},
			{Labels: []string{"event", "done"}, Value: float64(qc.Done)},
			{Labels: []string{"event", "failed"}, Value: float64(qc.Failed)},
			{Labels: []string{"event", "canceled"}, Value: float64(qc.Canceled)},
			{Labels: []string{"event", "retried"}, Value: float64(qc.Retried)},
		}
	})

	r.Gauge("ersolve_store_docs", "Documents in the document store.",
		func() float64 { return float64(s.store.Stats().Docs) })
	r.Gauge("ersolve_store_collections", "Collections in the document store.",
		func() float64 { return float64(s.store.Stats().Collections) })
	r.Gauge("ersolve_store_version", "Committed ingest batches (the store version).",
		func() float64 { return float64(s.store.Stats().Version) })

	r.Gauge("ersolve_snapshot_states", "Resolution configurations holding an incremental snapshot.",
		func() float64 {
			s.statesMu.Lock()
			defer s.statesMu.Unlock()
			return float64(len(s.states))
		})
	r.Gauge("ersolve_read_cache_entries", "Entries in the read-path response cache.",
		func() float64 { return float64(s.readCache.size()) })

	r.Gauge("ersolve_serving_available", "Whether a serving index has been published (1) or reads answer 409 (0).",
		func() float64 {
			if s.serving.Load() != nil {
				return 1
			}
			return 0
		})
	r.Gauge("ersolve_serving_epoch", "Publish counter of the hot serving index.",
		func() float64 {
			if x := s.serving.Load(); x != nil {
				return float64(x.Epoch())
			}
			return 0
		})
	r.Gauge("ersolve_serving_store_version", "Store version the hot serving index was built from.",
		func() float64 {
			if x := s.serving.Load(); x != nil {
				return float64(x.StoreVersion())
			}
			return 0
		})
	r.Gauge("ersolve_serving_clusters", "Clusters in the hot serving index.",
		func() float64 {
			if x := s.serving.Load(); x != nil {
				return float64(x.Clusters())
			}
			return 0
		})

	r.GaugeFunc("ersolve_blocking_index_keys", "Distinct keys per blocking index shard.", func() []metrics.Sample {
		var out []metrics.Sample
		for _, e := range s.indexEntries() {
			ib := e.blocker.Load()
			if ib == nil {
				continue
			}
			st := ib.Index().Stats()
			for shard, keys := range st.ShardKeys {
				out = append(out, metrics.Sample{
					Labels: []string{"index", e.key, "shard", strconv.Itoa(shard)},
					Value:  float64(keys),
				})
			}
		}
		return out
	})
	r.GaugeFunc("ersolve_blocking_index_docs", "Documents indexed per blocking index.", func() []metrics.Sample {
		var out []metrics.Sample
		for _, e := range s.indexEntries() {
			if ib := e.blocker.Load(); ib != nil {
				out = append(out, metrics.Sample{
					Labels: []string{"index", e.key},
					Value:  float64(ib.Index().Stats().Docs),
				})
			}
		}
		return out
	})

	// ersolve_ann_* describe every live ANN candidate index (the "ann"
	// blocking mode): graph size, spanning-forest edges, and the component
	// count the next resolve will assemble blocks from.
	annSamples := func(value func(st ann.Stats) float64) func() []metrics.Sample {
		return func() []metrics.Sample {
			var out []metrics.Sample
			for _, e := range s.annEntries() {
				if ab := e.blocker.Load(); ab != nil {
					out = append(out, metrics.Sample{
						Labels: []string{"index", e.key},
						Value:  value(ab.Index().Stats()),
					})
				}
			}
			return out
		}
	}
	r.GaugeFunc("ersolve_ann_index_docs", "Documents inserted into each ANN candidate index.",
		annSamples(func(st ann.Stats) float64 { return float64(st.Docs) }))
	r.GaugeFunc("ersolve_ann_index_edges", "Component-merging candidate edges kept by each ANN index.",
		annSamples(func(st ann.Stats) float64 { return float64(st.Edges) }))
	r.GaugeFunc("ersolve_ann_index_blocks", "Candidate components (blocks) in each ANN index.",
		annSamples(func(st ann.Stats) float64 { return float64(st.Blocks) }))
	r.GaugeFunc("ersolve_ann_index_max_level", "Top populated graph layer of each ANN index.",
		annSamples(func(st ann.Stats) float64 { return float64(st.MaxLevel) }))

	r.Gauge("ersolve_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	r.Gauge("ersolve_build_info", "Build information; the value is always 1.",
		func() float64 { return 1 }, "go_version", runtime.Version())
}

// storeDegradationSamples reads the degradation totals owned by the
// backing stores — torn-tail journal recoveries and quarantined persisted
// files — for the callback-backed half of the degraded family.
func (s *Server) storeDegradationSamples() []metrics.Sample {
	var out []metrics.Sample
	if rep, ok := s.store.(tornTailReporter); ok {
		out = append(out, metrics.Sample{
			Labels: []string{"kind", "torn_tail_recoveries"},
			Value:  float64(rep.TornTailRecoveries()),
		})
	}
	for _, q := range []struct {
		kind string
		src  any
	}{
		{"quarantined_snapshots", s.cfg.Snapshots},
		{"quarantined_indexes", s.cfg.Indexes},
		{"quarantined_ann", s.cfg.ANNIndexes},
		{"quarantined_serving", s.cfg.Serving},
	} {
		if rep, ok := q.src.(quarantineReporter); ok {
			out = append(out, metrics.Sample{
				Labels: []string{"kind", q.kind},
				Value:  float64(rep.Quarantined()),
			})
		}
	}
	return out
}

// stageObserver builds the pipeline.Config.Observe hook for one request:
// every stage duration lands in the shared latency histograms and, when
// the request is traced, also becomes a child span under the request's
// root — annotated with the block it processed. The span's start time is
// reconstructed from the duration, since the seam reports stages after
// the fact.
func (s *Server) stageObserver(tr *tracing.Active) func(stage, block string, d time.Duration) {
	return func(stage, block string, d time.Duration) {
		s.observeStage(stage, block, d)
		if block != "" {
			tr.Span(stage, time.Now().Add(-d), d, "block", block)
		} else {
			tr.Span(stage, time.Now().Add(-d), d)
		}
	}
}

// handleMetrics answers GET /metrics with the Prometheus text exposition
// of every registered instrument.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry.WritePrometheus(w)
}

// TracesResponse is the GET /v1/traces reply: recent request traces,
// newest first.
type TracesResponse struct {
	Traces []tracing.Trace `json:"traces"`
}

// handleTraces answers GET /v1/traces[?limit=N]: the most recently
// finished request traces from the ring buffer, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	traces := s.traces.Traces(limit)
	if traces == nil {
		traces = []tracing.Trace{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}

// observeStage routes one pipeline stage duration into its latency
// histogram; the block name (empty for the block stage, which spans all
// blocks) is consumed by the tracing wrapper, not the histograms.
func (s *Server) observeStage(stage, _ string, d time.Duration) {
	switch stage {
	case pipeline.StageBlock:
		s.latency.block.Observe(d)
	case pipeline.StagePrepare:
		s.latency.prepare.Observe(d)
	case pipeline.StageAnalyze:
		s.latency.analyze.Observe(d)
	case pipeline.StageCluster:
		s.latency.cluster.Observe(d)
	}
}
