// Package service is the HTTP layer over the resolution pipeline: a JSON
// collection in, clusters and quality scores out, with per-request
// timeouts that cancel the in-flight pipeline (mid-extraction or
// mid-matrix) through the request context. Beyond the one-shot POST
// /v1/resolve, the server owns a document store and a job queue: POST
// /v1/collections enqueues documents asynchronously, GET /v1/jobs/{id}
// reports ingest progress, and POST /v1/resolve/incremental re-resolves
// only the blocks whose membership changed since the previous incremental
// run. `ersolve serve` mounts it; the handler is also usable inside any
// other mux.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/store"
	"repro/internal/tracing"
)

// Config bounds the server's per-request resources.
type Config struct {
	// DefaultTimeout caps requests that specify no timeout; zero selects
	// 30 seconds.
	DefaultTimeout time.Duration
	// MaxTimeout caps the timeout a request may ask for; zero selects
	// DefaultTimeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body; zero selects 32 MiB.
	MaxBodyBytes int64
	// QueueBuffer bounds the ingest job backlog; zero selects 64.
	QueueBuffer int
	// MaxSnapshots caps how many knob configurations keep an incremental
	// snapshot (each retains the prepared state of every block); the
	// least-recently-used is evicted beyond the cap, except states pinned
	// by an in-flight run. Zero selects 16.
	MaxSnapshots int
	// JobHistory bounds how many finished ingest-job records stay
	// queryable via GET /v1/jobs/{id}; older records answer 410 Gone.
	// Zero selects 1024.
	JobHistory int
	// Store is the document store behind the ingest endpoints; nil
	// selects a fresh in-memory store.
	Store store.DocumentStore
	// BlockShards is the hash-partition count of the sharded blocking
	// indexes the incremental endpoint maintains for key-based schemes;
	// zero selects the index default.
	BlockShards int
	// Indexes optionally persists each blocking configuration's sharded
	// index (internal/persist.IndexDir is the disk implementation). When
	// set, the index is saved after incremental runs that advanced it and
	// reloaded on the configuration's first use after a restart, so a
	// restarted server does not re-key and re-block the corpus. A damaged
	// or mismatched saved index degrades to a rebuild from the store
	// (results stay correct) and is reported through ErrorLog.
	Indexes IndexStore
	// ANNIndexes optionally persists each ANN blocking configuration's
	// candidate index (internal/persist.ANNDir is the disk
	// implementation, sharing DIR/indexes with the sharded key indexes).
	// When set, the graph is saved after incremental runs that advanced
	// it and reloaded on the configuration's first use after a restart,
	// so a restarted server does not re-insert the corpus into the
	// proximity graph. A damaged or knob-mismatched saved index degrades
	// to a rebuild from the store (results stay correct) and is reported
	// through ErrorLog.
	ANNIndexes ANNStore
	// Snapshots optionally persists each configuration's incremental
	// snapshot (internal/persist.SnapshotDir is the disk implementation).
	// When set, every successful incremental run saves its snapshot
	// through it, and a configuration's first run after a restart loads
	// the saved snapshot back — so the first POST /v1/resolve/incremental
	// after a restart reuses every unchanged block. A damaged or
	// version-skewed saved snapshot degrades that run to a full
	// resolution (results stay correct) and is reported through ErrorLog.
	Snapshots SnapshotStore
	// Serving optionally persists the hot serving index
	// (internal/persist.ServingDir is the disk implementation). When set,
	// every committed incremental run saves its serving index, and the
	// server publishes the most recently saved one at construction — so a
	// restarted server answers entity lookups immediately, with zero
	// recompute. A damaged saved index degrades to an empty read path
	// until the next commit (lookups answer 409, never wrong data) and is
	// reported through ErrorLog.
	Serving ServingStore
	// ReadCache bounds the read path's LRU response cache in entries; zero
	// selects 1024, negative disables the cache.
	ReadCache int
	// TraceBuffer bounds the ring of recently finished request traces
	// GET /v1/traces serves; zero selects 256, negative disables tracing
	// (the endpoint then always answers an empty list).
	TraceBuffer int
	// ErrorLog receives background persistence failures (snapshot
	// save/load); nil selects log.Printf.
	ErrorLog func(format string, args ...any)
}

// SnapshotStore persists per-configuration incremental snapshots. Load
// returns (nil, nil) when no snapshot is saved under the key; it decodes
// against the pipeline that will consume the snapshot, which must be
// configured identically to the one that saved it — the service keys
// snapshots by the effective-knobs string to guarantee exactly that.
// Touch marks the key's stored snapshot as recently used without
// rewriting it (backends may garbage-collect by recency); it fails when
// nothing is stored under the key, telling the service to Save in full.
type SnapshotStore interface {
	Load(key string, pl *pipeline.Pipeline) (*pipeline.Snapshot, error)
	Save(key string, snap *pipeline.Snapshot) error
	Touch(key string) error
}

// IndexStore persists per-blocking-configuration sharded indexes.
// LoadIndex returns (nil, nil) when nothing is saved under the key;
// SaveIndex returns the index version the stored form reflects, so the
// service can skip saves while the index is unchanged.
type IndexStore interface {
	LoadIndex(key string, cfg blockindex.Config) (*blockindex.Index, error)
	SaveIndex(key string, idx *blockindex.Index) (uint64, error)
}

// ANNStore persists per-configuration ANN candidate indexes.
// LoadANNIndex returns (nil, nil) when nothing is saved under the key;
// SaveANNIndex returns the index version the stored form reflects, so
// the service can skip saves while the graph is unchanged.
type ANNStore interface {
	LoadANNIndex(key string, cfg ann.Config) (*ann.CandidateIndex, error)
	SaveANNIndex(key string, idx *ann.CandidateIndex) (uint64, error)
}

// Server resolves posted collections through the streaming pipeline.
type Server struct {
	cfg   Config
	store store.DocumentStore
	jobs  *store.Queue

	// states holds one incremental snapshot per resolution configuration;
	// runs with the same configuration serialize on their state so each
	// sees the previous run's snapshot.
	statesMu sync.Mutex
	states   map[string]*incrementalState

	// indexes holds one sharded blocking index per blocking configuration
	// (scheme, key function, shard count) — shared by every resolution
	// configuration that blocks the same way, so ten seeds over one scheme
	// maintain one index. The index itself serializes access.
	indexesMu sync.Mutex
	indexes   map[string]*indexEntry

	// annIndexes holds one ANN candidate index per ANN blocking
	// configuration (scheme, key function, graph knobs) — shared by every
	// resolution configuration that blocks the same way, exactly like the
	// sharded indexes above. The index itself serializes access.
	annMu      sync.Mutex
	annIndexes map[string]*annEntry

	// counters are the /v1/stats per-stage counters.
	counters counters

	// serving is the hot read-path index: the last committed resolution,
	// inverted for lookups. Swapped atomically by publishServing so the
	// read handlers are lock-free; servingMu serializes publish (build +
	// swap + save) and guards servingEpoch, the monotonic publish counter.
	serving      atomic.Pointer[serving.Index]
	servingMu    sync.Mutex
	servingEpoch uint64

	// readCache is the read path's LRU response cache; nil when disabled.
	readCache *readCache

	// latency holds the per-stage latency histograms /v1/stats reports.
	latency stageHistograms

	// registry renders every instrument above on GET /metrics; traces is
	// the ring of recently finished request traces GET /v1/traces dumps
	// (nil when tracing is disabled); started anchors the uptime gauge.
	registry *metrics.Registry
	traces   *tracing.Buffer
	started  time.Time

	// warmCh coalesces ingest notifications for the background index
	// warmer; closeCh stops it, warmDone (nil when no warmer runs) is
	// closed when it has fully exited — Close joins on it so no index
	// write can race the data directory's close.
	warmCh    chan struct{}
	closeCh   chan struct{}
	warmDone  chan struct{}
	closeOnce sync.Once
}

// counters aggregates per-stage activity across the server's lifetime.
// Every field is a registry-backed counter (initObservability wires them),
// so the same instruments feed /v1/stats and the Prometheus /metrics
// exposition.
type counters struct {
	runs, blocks, reused, prepared, trivial *metrics.Counter
	deltaDocs, dirtyBlocks                  *metrics.Counter
	ingestBatches                           *metrics.Counter
	// Read-path counters: per-endpoint request counts and response-cache
	// traffic.
	readEntities, readDocs, readSearch, readLookup *metrics.Counter
	cacheHits, cacheMisses                         *metrics.Counter
	// Degradation counters: every event where the server kept serving by
	// giving something up — a panicking handler answered 500, ingest was
	// throttled, persisted state failed to load (rebuilt from the corpus)
	// or save (retried later). Surfaced by /v1/stats so operators see
	// silent degradation before it becomes an outage.
	panics, ingestThrottled                    *metrics.Counter
	snapshotLoadFailures, snapshotSaveFailures *metrics.Counter
	indexLoadFailures, indexSaveFailures       *metrics.Counter
	annLoadFailures, annSaveFailures           *metrics.Counter
	servingLoadFailures, servingSaveFailures   *metrics.Counter
}

// indexEntry is one shared blocking index plus its persistence
// bookkeeping. The blocker initializes lazily outside the registry lock
// (loading a persisted index reads and re-links the whole posting set, and
// stalling every other configuration's resolve on that would defeat the
// shared registry); readers that race initialization simply see nil and
// skip the entry.
type indexEntry struct {
	key     string
	init    sync.Once
	blocker atomic.Pointer[pipeline.IndexBlocker]
	// mu serializes saves; savedVersion is the index version the persisted
	// form reflects (0 when never saved). saveFailures and nextSave
	// implement capped exponential backoff on failing saves, so a broken
	// index store is retried occasionally instead of hammered by every
	// warm round. All guarded by mu.
	mu           sync.Mutex
	savedVersion uint64
	saveFailures int
	nextSave     time.Time
}

// annEntry is one shared ANN candidate index plus its persistence
// bookkeeping — the same shape as indexEntry, over the proximity graph
// the "ann" blocking mode serves candidates from. Initialization runs
// outside the registry lock for the same reason: decoding a persisted
// graph re-links every node, and only the configuration that needs it
// should wait.
type annEntry struct {
	key     string
	init    sync.Once
	blocker atomic.Pointer[pipeline.ANNBlocker]
	// mu serializes saves; savedVersion/saveFailures/nextSave implement
	// the same capped exponential backoff as indexEntry.
	mu           sync.Mutex
	savedVersion uint64
	saveFailures int
	nextSave     time.Time
}

// indexSaveBackoffBase is the delay before retrying a failed index save,
// doubled per consecutive failure up to indexSaveBackoffCap. Variables so
// tests can shrink them.
var (
	indexSaveBackoffBase = time.Second
	indexSaveBackoffCap  = time.Minute
)

type incrementalState struct {
	mu   sync.Mutex
	snap *pipeline.Snapshot
	// loadTried marks that the persisted snapshot (if any) was already
	// loaded or found unusable, so it is read at most once per state;
	// guarded by mu.
	loadTried bool
	// stored marks that the snapshot store holds this state's current
	// snapshot (last Save succeeded, or it was just loaded from there);
	// unchanged-run save skipping is only valid while this is true.
	// Guarded by mu.
	stored bool
	// key is the effective-knobs string this state (and its persisted
	// snapshot) is filed under.
	key string
	// lastUsed orders LRU eviction; guarded by Server.statesMu.
	lastUsed time.Time
	// refs counts in-flight runs using this state; eviction skips pinned
	// states so a long run can never have its snapshot dropped — or a
	// concurrent same-config request handed a second state object,
	// breaking the serialize-per-config invariant. Guarded by
	// Server.statesMu.
	refs int
}

// New applies the config defaults and returns a server. The server owns a
// background ingest worker; call Close when done with it.
//
// erlint:ignore the warm loop's lifetime is bound to the Server, ended by Close via closeCh, not by a request context
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 16
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.Printf
	}
	s := &Server{
		cfg:        cfg,
		store:      cfg.Store,
		jobs:       store.NewQueue(cfg.QueueBuffer, cfg.JobHistory),
		states:     make(map[string]*incrementalState),
		indexes:    make(map[string]*indexEntry),
		annIndexes: make(map[string]*annEntry),
		warmCh:     make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
	}
	if s.store == nil {
		s.store = store.NewMemStore()
	}
	// Instruments must exist before anything can tick one: the serving
	// load and ingest subscription below both touch counters.
	s.initObservability()
	if cfg.ReadCache >= 0 {
		size := cfg.ReadCache
		if size == 0 {
			size = 1024
		}
		s.readCache = newReadCache(size)
	}
	// Publish the most recently persisted serving index before taking any
	// traffic: a restarted -data server answers entity lookups for the
	// last committed resolution immediately, with zero recompute. A
	// damaged file degrades to an empty read path (409s) until the next
	// commit — never wrong data.
	if cfg.Serving != nil {
		if x, err := cfg.Serving.LoadLatestServing(); err != nil {
			s.counters.servingLoadFailures.Add(1)
			cfg.ErrorLog("service: loading persisted serving index: %v", err)
		} else if x != nil {
			s.servingEpoch = x.Epoch()
			s.serving.Store(x)
		}
	}
	// Ingest notifies the index maintainers: each committed batch kicks
	// the background warmer, which feeds the delta to every live blocking
	// index off the resolve path — so the next incremental resolve finds
	// the corpus already keyed and blocked. The same event invalidates the
	// read path's response cache: cached renders never outlive the store
	// state they were correct for.
	if obs, ok := s.store.(store.AppendObserver); ok {
		obs.SubscribeAppend(func(store.AppendEvent) {
			s.counters.ingestBatches.Add(1)
			s.readCache.clear()
			select {
			case s.warmCh <- struct{}{}:
			default: // a warm round is already pending; it will see this batch too
			}
		})
		s.warmDone = make(chan struct{})
		go s.warmLoop()
	}
	return s
}

// warmSaveDeltaDocs is how far an index may advance past its persisted
// version before the warmer saves it. Saving encodes the whole posting
// set, so persisting after every small batch would spend O(corpus) disk
// I/O per ingest — the very cost this index removes from the resolve
// path. The remainder is flushed unconditionally on Close (and by the
// resolve path, which saves on any advance).
const warmSaveDeltaDocs = 4096

// warmLoop drains coalesced ingest notifications and pre-indexes the new
// documents into every live blocking index. Warming is best effort: a
// failure (or a race with a concurrent resolve) costs nothing but the
// head-start, since BlockFingerprints re-runs the same delta update.
//
// erlint:ignore server-lifetime loop; its select exits on closeCh when Close runs, the cancellation seam for this goroutine
func (s *Server) warmLoop() {
	defer close(s.warmDone)
	for {
		select {
		case <-s.closeCh:
			return
		case <-s.warmCh:
			cols, _ := s.store.Snapshot()
			for _, e := range s.indexEntries() {
				ib := e.blocker.Load()
				if ib == nil {
					continue // still initializing; its first resolve will index
				}
				if _, err := ib.Warm(cols); err != nil {
					s.cfg.ErrorLog("service: warming blocking index %q: %v", e.key, err)
					continue
				}
				// Persist what the warmer built — batched: an ingest-heavy,
				// resolve-light server must not lose its keying work on
				// shutdown, but saving the whole index per small batch
				// would cost O(corpus) I/O per ingest. Close flushes the
				// tail.
				s.persistIndexIfGrown(e)
			}
			for _, e := range s.annEntries() {
				ab := e.blocker.Load()
				if ab == nil {
					continue // still initializing; its first resolve will index
				}
				if _, err := ab.Warm(cols); err != nil {
					s.cfg.ErrorLog("service: warming ann index %q: %v", e.key, err)
					continue
				}
				s.persistANNIndexIfGrown(e)
			}
		}
	}
}

// persistIndexIfGrown saves the entry's index only once the unsaved delta
// is large enough to amortize the whole-index encode.
func (s *Server) persistIndexIfGrown(e *indexEntry) {
	if s.cfg.Indexes == nil {
		return
	}
	ib := e.blocker.Load()
	if ib == nil {
		return
	}
	e.mu.Lock()
	grown := ib.Index().Version() >= e.savedVersion+warmSaveDeltaDocs
	e.mu.Unlock()
	if grown {
		s.persistIndex(e, false)
	}
}

// persistANNIndexIfGrown saves the entry's graph only once the unsaved
// delta is large enough to amortize the whole-graph encode — the same
// batching contract as persistIndexIfGrown.
func (s *Server) persistANNIndexIfGrown(e *annEntry) {
	if s.cfg.ANNIndexes == nil {
		return
	}
	ab := e.blocker.Load()
	if ab == nil {
		return
	}
	e.mu.Lock()
	grown := ab.Index().Version() >= e.savedVersion+warmSaveDeltaDocs
	e.mu.Unlock()
	if grown {
		s.persistANNIndex(e, false)
	}
}

// indexEntries snapshots the index registry under its lock.
func (s *Server) indexEntries() []*indexEntry {
	s.indexesMu.Lock()
	defer s.indexesMu.Unlock()
	entries := make([]*indexEntry, 0, len(s.indexes))
	for _, e := range s.indexes {
		entries = append(entries, e)
	}
	return entries
}

// annEntries snapshots the ANN index registry under its lock.
func (s *Server) annEntries() []*annEntry {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	entries := make([]*annEntry, 0, len(s.annIndexes))
	for _, e := range s.annIndexes {
		entries = append(entries, e)
	}
	return entries
}

// Close shuts the ingest worker down (draining queued jobs until ctx
// expires; after that the remaining jobs are canceled and ctx's error is
// returned), then stops AND JOINS the index warmer before flushing every
// advanced index to the IndexStore. After Close returns, no goroutine of
// this server writes the data directory — which is what lets the caller
// close it and release its single-writer lock.
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Shutdown(ctx)
	s.closeOnce.Do(func() { close(s.closeCh) })
	if s.warmDone != nil {
		<-s.warmDone
	}
	for _, e := range s.indexEntries() {
		s.persistIndex(e, true)
	}
	for _, e := range s.annEntries() {
		s.persistANNIndex(e, true)
	}
	return err
}

// Handler returns the service mux:
//
//	POST /v1/resolve              one-shot resolution of the posted body
//	POST /v1/collections          enqueue documents into the store
//	GET  /v1/jobs/{id}            ingest job status and result
//	POST /v1/resolve/incremental  resolve the store, reusing clean blocks
//	GET  /v1/entities/{id}        cluster members by stable entity ID
//	POST /v1/entities/lookup      batch entity/doc lookup, one index pass
//	GET  /v1/docs/{ref}/entity    which cluster a store document is in
//	GET  /v1/search?name=         name tokens → candidate clusters
//	GET  /v1/stats                per-stage counters and index shapes
//	GET  /v1/traces               recent request traces, newest first
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness plus store stats
//	GET  /readyz                  readiness (the server exists ⇒ replay done)
//
// Every route runs behind the panic-recovery middleware: a panicking
// handler answers a JSON 500 and increments the degraded.panics counter
// instead of killing the connection (and, under http.Serve semantics,
// losing the response entirely).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/resolve", s.handleResolve)
	mux.HandleFunc("/v1/resolve/incremental", s.handleResolveIncremental)
	mux.HandleFunc("/v1/collections", s.handleCollections)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/entities/", s.handleEntity)
	mux.HandleFunc("/v1/entities/lookup", s.handleEntityLookup)
	mux.HandleFunc("/v1/docs/", s.handleDocEntity)
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "store": s.store.Stats()})
	})
	// A Server is constructed only after its store is open — journal
	// replayed, snapshot/index directories swept — so readiness is the
	// handler's existence. The serve command keeps a bootstrap handler
	// answering 503 on this path until construction finishes.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panic in any handler is
// logged with its route, counted, and answered as a JSON 500 — unless the
// handler already wrote a header, in which case the response is beyond
// repair and the connection is left to die. http.ErrAbortHandler passes
// through untouched: it is the stdlib's own mechanism for abandoning a
// response on a gone client, not a server defect.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wrote := &headerTracker{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.counters.panics.Add(1)
			s.cfg.ErrorLog("service: panic handling %s %s: %v", r.Method, r.URL.Path, v)
			if !wrote.wroteHeader {
				writeJSON(wrote, http.StatusInternalServerError,
					errorResponse{Error: "internal error; the failure was logged server-side"})
			}
		}()
		next.ServeHTTP(wrote, r)
	})
}

// headerTracker records whether a handler committed its response header,
// which decides whether the panic middleware can still answer JSON.
type headerTracker struct {
	http.ResponseWriter
	wroteHeader bool
}

func (t *headerTracker) WriteHeader(code int) {
	t.wroteHeader = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *headerTracker) Write(p []byte) (int, error) {
	t.wroteHeader = true
	return t.ResponseWriter.Write(p)
}

// resolveKnobs are the resolution parameters shared by the one-shot and
// incremental endpoints.
type resolveKnobs struct {
	// Strategy is the combine stage: best | threshold | weighted |
	// majority (default best).
	Strategy string `json:"strategy,omitempty"`
	// Clustering is the final clustering step: closure | correlation
	// (default closure).
	Clustering string `json:"clustering,omitempty"`
	// Blocking re-partitions the documents: exact | token |
	// sortedneighborhood | canopy (default exact, the paper's scheme).
	Blocking string `json:"blocking,omitempty"`
	// Keys derives each document's blocking keys: collection | names |
	// urlhost | phonetic (default collection; names keys documents by
	// their extracted person-name mentions, merging cross-collection
	// spelling variants; phonetic additionally soundex-encodes them so
	// spelling variants share a key).
	Keys string `json:"keys,omitempty"`
	// BlockingMode selects the block-stage implementation: exact | ann
	// (default exact, bit-identical to previous releases). Mode "ann"
	// serves the global schemes (canopy, sortedneighborhood) from the
	// incremental approximate-nearest-neighbor candidate index — O(delta)
	// instead of O(corpus) per run, trading a bounded amount of candidate
	// recall tuned by AnnEf.
	BlockingMode string `json:"blocking_mode,omitempty"`
	// AnnM is the ANN graph's per-node degree bound (default 12); only
	// meaningful with BlockingMode "ann".
	AnnM int `json:"ann_m,omitempty"`
	// AnnEf is the ANN neighbor-query beam width — the recall knob
	// (default 64); only meaningful with BlockingMode "ann".
	AnnEf int `json:"ann_ef,omitempty"`
	// TrainFraction is the labeled fraction (default 0.10).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Regions is the accuracy-estimation region count (default 10).
	Regions int `json:"regions,omitempty"`
	// Seed drives training-sample selection (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// TimeoutMillis caps this request's resolution time; it is clamped to
	// the server's maximum.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Score controls evaluation against the embedded ground truth
	// (default true).
	Score *bool `json:"score,omitempty"`
}

// ResolveRequest is the /v1/resolve body. Because the resolution knobs are
// optional, a dataset file written by ergen (`{"label": …,
// "collections": […]}`) is itself a valid request.
type ResolveRequest struct {
	// Label optionally names the dataset; echoed in the response.
	Label string `json:"label,omitempty"`
	// Collections are the blocks to resolve, in ergen's JSON format.
	Collections []*corpus.Collection `json:"collections"`
	resolveKnobs
}

// IncrementalResolveRequest is the /v1/resolve/incremental body: the same
// knobs as /v1/resolve, but the documents come from the server's store
// rather than the request. Each distinct knob configuration keeps its own
// snapshot; a repeated request re-prepares only the blocks whose
// membership changed since that configuration's previous run.
type IncrementalResolveRequest struct {
	// Label optionally names the run; echoed in the response.
	Label string `json:"label,omitempty"`
	// Fresh discards the configuration's cached snapshot first, forcing a
	// full re-resolution of the store (the equivalence baseline).
	Fresh bool `json:"fresh,omitempty"`
	resolveKnobs
}

// CollectionsRequest is the /v1/collections body: documents to append to
// the store. Collections merge by name; document IDs are assigned by the
// store and persona labels are remapped densely per collection, so a
// client may deliver one collection across many batches.
type CollectionsRequest struct {
	Collections []*corpus.Collection `json:"collections"`
}

// IngestResult is the result payload of a finished ingest job.
type IngestResult struct {
	// DocsAdded is the number of documents this job appended.
	DocsAdded int `json:"docs_added"`
	// Store describes the store right after the append.
	Store store.Stats `json:"store"`
}

// CollectionsResponse acknowledges an enqueued ingest job.
type CollectionsResponse struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

// BlockScore is one block's evaluation against its ground truth.
type BlockScore struct {
	Fp   float64 `json:"fp"`
	F    float64 `json:"f"`
	Rand float64 `json:"rand"`
}

// BlockResult is one resolved block.
type BlockResult struct {
	// Name is the block's (possibly merged) collection name.
	Name string `json:"name"`
	// Docs is the number of documents in the block.
	Docs int `json:"docs"`
	// NumEntities is the number of predicted entities.
	NumEntities int `json:"num_entities"`
	// Source describes which combination produced the clustering.
	Source string `json:"source"`
	// Labels assigns each document its cluster index.
	Labels []int `json:"labels"`
	// Clusters lists the document indices of each entity.
	Clusters [][]int `json:"clusters"`
	// Score is present when scoring was requested.
	Score *BlockScore `json:"score,omitempty"`
}

// ResolveResponse is the /v1/resolve reply.
type ResolveResponse struct {
	Label  string        `json:"label,omitempty"`
	Blocks []BlockResult `json:"blocks"`
	// Average macro-averages the per-block scores when more than one
	// block was scored.
	Average *BlockScore `json:"average,omitempty"`
	// ElapsedMillis is the server-side resolution time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// IncrementalStats reports the dirty-block diff of one incremental run.
type IncrementalStats struct {
	// Blocks is the total number of blocks.
	Blocks int `json:"blocks"`
	// ReusedBlocks were unchanged and reused from the previous run.
	ReusedBlocks int `json:"reused_blocks"`
	// PreparedBlocks were dirty and fully re-prepared.
	PreparedBlocks int `json:"prepared_blocks"`
	// TrivialBlocks were dirty but below the training size.
	TrivialBlocks int `json:"trivial_blocks"`
}

// IncrementalResolveResponse is the /v1/resolve/incremental reply.
type IncrementalResolveResponse struct {
	Label string `json:"label,omitempty"`
	// StoreVersion is the store version this resolution reflects.
	StoreVersion uint64 `json:"store_version"`
	// Docs is the number of documents resolved.
	Docs   int           `json:"docs"`
	Blocks []BlockResult `json:"blocks"`
	// Average macro-averages the per-block scores when more than one
	// block was scored.
	Average *BlockScore `json:"average,omitempty"`
	// Incremental reports what the dirty-block diff skipped.
	Incremental IncrementalStats `json:"incremental"`
	// Blocking reports the block stage's own reuse: how many documents the
	// sharded index newly keyed for this run ("delta_docs": 0 means the
	// whole blocking pass was served from the index) and which
	// implementation ran ("index" or "scheme").
	Blocking pipeline.BlockingStats `json:"blocking"`
	// ElapsedMillis is the server-side resolution time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// allowOnly answers false and writes a 405 with an Allow header and a JSON
// error when the request's method is not the given one.
func allowOnly(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeJSON(w, http.StatusMethodNotAllowed,
		errorResponse{Error: fmt.Sprintf("method %s is not allowed; use %s", r.Method, method)})
	return false
}

// jsonBody answers false and writes a 415 JSON error when the request
// declares a non-JSON content type. An absent Content-Type is accepted as
// JSON for curl-friendliness.
func jsonBody(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		writeJSON(w, http.StatusUnsupportedMediaType,
			errorResponse{Error: fmt.Sprintf("unparseable content type %q: send application/json", ct)})
		return false
	}
	if mt == "application/json" || mt == "text/json" || strings.HasSuffix(mt, "+json") {
		return true
	}
	writeJSON(w, http.StatusUnsupportedMediaType,
		errorResponse{Error: fmt.Sprintf("unsupported content type %q: send application/json", mt)})
	return false
}

// decodeJSON decodes the bounded request body: 413 when the body exceeds
// the server's size cap, 400 on malformed input or trailing data after
// the JSON value (a request like `{...}garbage` is rejected, not silently
// half-read), false in every error case.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	tooLarge := func(err error) bool {
		var maxErr *http.MaxBytesError
		if !errors.As(err, &maxErr) {
			return false
		}
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", maxErr.Limit)})
		return true
	}
	if err := dec.Decode(v); err != nil {
		if !tooLarge(err) {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		}
		return false
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		if !tooLarge(err) {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "request body has trailing data after the JSON value"})
		}
		return false
	}
	return true
}

// timeoutFor clamps the request's timeout wish to the server's bounds.
func (s *Server) timeoutFor(millis int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if millis > 0 {
		timeout = time.Duration(millis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return timeout
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req ResolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Collections) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request has no collections"})
		return
	}
	for _, col := range req.Collections {
		if err := col.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	}
	tr := s.traces.Start("resolve")
	defer tr.End()
	tr.SetAttr("collections", strconv.Itoa(len(req.Collections)))
	pl, score, err := buildPipeline(req.resolveKnobs, nil, s.stageObserver(tr))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	results, err := pl.Run(ctx, req.Collections)
	if !writeRunError(w, err, timeout) {
		return
	}

	resp := ResolveResponse{Label: req.Label, ElapsedMillis: time.Since(start).Milliseconds()}
	resp.Blocks, resp.Average = blockResults(results, score)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req CollectionsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Collections) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request has no collections"})
		return
	}
	// Fail fast in the request, not the job: the store's validation is
	// cheap enough to run twice, and sharing ValidateBatch keeps this
	// fast path from ever drifting out of sync with what Append accepts.
	if err := store.ValidateBatch(req.Collections); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	job, err := s.jobs.Enqueue("ingest", func(context.Context) (any, error) {
		added, err := s.store.Append(req.Collections)
		if err != nil {
			// Append failures are deterministic — the batch was validated
			// up front, so what remains is a store gone read-only after a
			// journal fault. Retrying the same append cannot help; mark it
			// permanent so the job fails once with the real error.
			return nil, store.Permanent(err)
		}
		return IngestResult{DocsAdded: added, Store: s.store.Stats()}, nil
	})
	switch {
	case errors.Is(err, store.ErrQueueFull):
		// Backpressure, not failure: the backlog drains at ingest speed, so
		// tell the client when to come back instead of making it guess.
		s.counters.ingestThrottled.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, CollectionsResponse{
		JobID:     job.ID,
		StatusURL: "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job paths look like /v1/jobs/{id}"})
		return
	}
	job, outcome := s.jobs.Get(id)
	switch outcome {
	case store.GetFound:
		writeJSON(w, http.StatusOK, job)
	case store.GetEvicted:
		writeJSON(w, http.StatusGone, errorResponse{
			Error: fmt.Sprintf("job %q finished and its record aged out of the bounded history; poll jobs sooner or raise the history limit", id)})
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
	}
}

func (s *Server) handleResolveIncremental(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req IncrementalResolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	// The block stage is shared per blocking configuration: key-based
	// schemes resolve through the sharded incremental index bound to the
	// server's store, so repeated resolves pay only for the ingest delta.
	blocker, indexEntry, annIndex, err := s.blockerFor(req.resolveKnobs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	tr := s.traces.Start("resolve.incremental")
	defer tr.End()
	pl, score, err := buildPipeline(req.resolveKnobs, blocker, s.stageObserver(tr))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// One snapshot per knob configuration; same-config runs serialize so
	// each sees its predecessor's snapshot. The state is pinned (refs)
	// for the duration of the run, so the LRU can never evict it — and
	// hand a concurrent same-config request a second state object —
	// while the run holds its lock. The store snapshot is taken under
	// the state lock, so a run can never overwrite the state with
	// results for an older store version than its predecessor saw.
	state := s.acquireState(req.resolveKnobs)
	defer s.releaseState(state)
	state.mu.Lock()
	defer state.mu.Unlock()

	cols, version := s.store.Snapshot()
	tr.SetAttr("knobs", state.key)
	tr.SetAttr("store_version", strconv.FormatUint(version, 10))
	docs := 0
	for _, col := range cols {
		docs += len(col.Docs)
	}
	if docs == 0 {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: "the store is empty; ingest documents via POST /v1/collections first"})
		return
	}
	prev := state.snap
	if prev == nil && !state.loadTried && s.cfg.Snapshots != nil && !req.Fresh {
		// First non-fresh use of this configuration since the server
		// started: pick up where the previous process left off. A
		// missing snapshot is normal; a damaged or version-skewed one
		// degrades this run to a full resolution and is logged, never
		// served. A fresh request does not consume the one load attempt:
		// if it fails mid-run, the persisted snapshot still serves the
		// next non-fresh request.
		state.loadTried = true
		loaded, err := s.cfg.Snapshots.Load(state.key, pl)
		if err != nil {
			s.counters.snapshotLoadFailures.Add(1)
			s.cfg.ErrorLog("service: loading snapshot for %q: %v", state.key, err)
		} else {
			prev = loaded
			// Cache the loaded snapshot immediately: if this run dies
			// (timeout, cancellation) before producing its own, the next
			// request still starts from the persisted state instead of
			// forfeiting the restart head-start.
			state.snap = loaded
			state.stored = loaded != nil
		}
	}
	if req.Fresh {
		prev = nil
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	inc, err := pl.RunIncremental(ctx, cols, prev)
	if !writeRunError(w, err, timeout) {
		return
	}
	state.snap = inc.Snapshot
	// Commit hook: invert this run into the hot serving index (reusing the
	// clean blocks' materializations), swap it in for lock-free reads, and
	// persist it — all before the resolve is acknowledged, so a client that
	// saw the response can immediately GET the clusters it describes.
	s.publishServing(state.key, cols, version, inc)
	s.persistIndex(indexEntry, false)
	s.persistANNIndex(annIndex, false)
	tr.SetAttr("blocks", strconv.Itoa(inc.Stats.Blocks))
	tr.SetAttr("reused", strconv.Itoa(inc.Stats.Reused))
	s.counters.runs.Add(1)
	s.counters.blocks.Add(int64(inc.Stats.Blocks))
	s.counters.reused.Add(int64(inc.Stats.Reused))
	s.counters.prepared.Add(int64(inc.Stats.Prepared))
	s.counters.trivial.Add(int64(inc.Stats.Trivial))
	if inc.Stats.Blocking != nil {
		s.counters.deltaDocs.Add(int64(inc.Stats.Blocking.DeltaDocs))
		s.counters.dirtyBlocks.Add(int64(inc.Stats.Blocking.DirtyBlocks))
	}
	if s.cfg.Snapshots != nil {
		// Persist before answering, so an acknowledged run's snapshot
		// survives a crash. A save failure loses only the restart
		// head-start, not correctness. When the run changed nothing —
		// every block reused and the block set identical to prev's — the
		// stored snapshot is already semantically equal; Touch it (so
		// recency-based backend GC keeps the busiest configurations)
		// instead of rewriting megabytes per steady-state poll. The skip
		// requires the previous store write to have succeeded
		// (state.stored) and the Touch to find the entry; either failing
		// falls back to a full Save, so a transient store error or a
		// GC'd entry never disables durability for the rest of the
		// process lifetime.
		unchanged := prev != nil && state.stored &&
			inc.Stats.Reused == inc.Stats.Blocks &&
			inc.Snapshot.Blocks() == prev.Blocks() &&
			s.cfg.Snapshots.Touch(state.key) == nil
		if !unchanged {
			err := s.cfg.Snapshots.Save(state.key, inc.Snapshot)
			state.stored = err == nil
			if err != nil {
				s.counters.snapshotSaveFailures.Add(1)
				s.cfg.ErrorLog("service: saving snapshot for %q: %v", state.key, err)
			}
		}
	}

	blockingStats := pipeline.BlockingStats{Indexer: "scheme"}
	if inc.Stats.Blocking != nil {
		blockingStats = *inc.Stats.Blocking
	}
	resp := IncrementalResolveResponse{
		Label:         req.Label,
		StoreVersion:  version,
		Docs:          docs,
		ElapsedMillis: time.Since(start).Milliseconds(),
		Incremental: IncrementalStats{
			Blocks:         inc.Stats.Blocks,
			ReusedBlocks:   inc.Stats.Reused,
			PreparedBlocks: inc.Stats.Prepared,
			TrivialBlocks:  inc.Stats.Trivial,
		},
		Blocking: blockingStats,
	}
	resp.Blocks, resp.Average = blockResults(inc.Results, score)
	writeJSON(w, http.StatusOK, resp)
}

// knobsKey builds the effective-knobs string identifying one resolution
// configuration — the key incremental states and persisted snapshots are
// filed under. It is built from the EFFECTIVE values (defaults resolved),
// so `{}` and `{"seed":1}` share one state and an explicit "seed":-1 can
// never alias the defaults.
func knobsKey(k resolveKnobs) string {
	def := core.DefaultOptions()
	strategy, clustering, scheme, keys := k.Strategy, k.Clustering, k.Blocking, k.Keys
	if strategy == "" {
		strategy = "best"
	}
	if clustering == "" {
		clustering = "closure"
	}
	if scheme == "" {
		scheme = "exact"
	}
	if keys == "" {
		keys = "collection"
	}
	train, regions, seed := k.TrainFraction, k.Regions, def.Seed
	if train == 0 {
		train = def.TrainFraction
	}
	if regions == 0 {
		regions = def.RegionK
	}
	if k.Seed != nil {
		seed = *k.Seed
	}
	base := fmt.Sprintf("%s|%s|%s|%s|%g|%d|%d", strategy, clustering, scheme, keys, train, regions, seed)
	// The ann section joins the key ONLY in ann mode: exact-mode keys are
	// byte-identical to previous releases, so existing persisted snapshots
	// keep resolving under the same key after an upgrade.
	if k.BlockingMode == "ann" {
		m, ef := annKnobs(k)
		base += fmt.Sprintf("|ann|%d|%d", m, ef)
	}
	return base
}

// annKnobs resolves the effective ANN graph knobs (defaults applied), so
// `{"blocking_mode":"ann"}` and `{"blocking_mode":"ann","ann_m":12}` share
// one state, one graph, and one persisted file.
func annKnobs(k resolveKnobs) (m, ef int) {
	m, ef = k.AnnM, k.AnnEf
	if m == 0 {
		m = ann.DefaultM
	}
	if ef == 0 {
		ef = ann.DefaultEfSearch
	}
	return m, ef
}

// indexKey builds the blocking-configuration key one sharded index (and
// its persisted form) is filed under: only the knobs that shape the index
// — scheme, key function, shard count — so every resolution configuration
// blocking the same way shares one index.
func (s *Server) indexKey(schemeName, keysName string) string {
	shards := s.cfg.BlockShards
	if shards < 1 {
		shards = blockindex.DefaultShards
	}
	if schemeName == "" {
		schemeName = "exact"
	}
	if keysName == "" {
		keysName = "collection"
	}
	return fmt.Sprintf("%s|%s|%d", schemeName, keysName, shards)
}

// annIndexKey builds the ANN blocking-configuration key one candidate
// index (and its persisted form) is filed under: only the knobs that
// shape the graph — scheme, key function, degree bound, search beam — so
// every resolution configuration blocking the same way shares one graph.
func annIndexKey(schemeName, keysName string, k resolveKnobs) string {
	if schemeName == "" {
		schemeName = "exact"
	}
	if keysName == "" {
		keysName = "collection"
	}
	m, ef := annKnobs(k)
	return fmt.Sprintf("ann|%s|%s|%d|%d", schemeName, keysName, m, ef)
}

// validateBlockingMode rejects malformed blocking-mode knobs up front,
// before any registry entry is created for them — a bad request must
// never poison a shared index entry's one-shot initializer.
func validateBlockingMode(k resolveKnobs) error {
	switch k.BlockingMode {
	case "", "exact":
		if k.AnnM != 0 || k.AnnEf != 0 {
			return fmt.Errorf("service: ann_m/ann_ef apply only when blocking_mode is \"ann\" (mode is %q)", k.BlockingMode)
		}
		return nil
	case "ann":
		if k.AnnM < 0 || k.AnnM == 1 {
			return fmt.Errorf("service: ann_m %d is not a usable graph degree (0 selects the default %d; otherwise at least 2)", k.AnnM, ann.DefaultM)
		}
		if k.AnnEf < 0 {
			return fmt.Errorf("service: ann_ef %d is negative (0 selects the default %d)", k.AnnEf, ann.DefaultEfSearch)
		}
		return nil
	default:
		return fmt.Errorf("service: unknown blocking_mode %q (valid: %s)", k.BlockingMode, strings.Join(pipeline.BlockingModes, ", "))
	}
}

// blockerFor resolves the knobs' block stage. Key-based schemes get the
// per-blocking-configuration shared index (created on first use, loaded
// from the IndexStore if a restart left one behind); global schemes get a
// stateless SchemeBlocker in exact mode and the shared incremental ANN
// candidate index in "ann" mode. At most one of the returned entries is
// non-nil; both are nil for stateless blockers.
func (s *Server) blockerFor(k resolveKnobs) (pipeline.Blocker, *indexEntry, *annEntry, error) {
	if err := validateBlockingMode(k); err != nil {
		return nil, nil, nil, err
	}
	schemeName := k.Blocking
	if schemeName == "" {
		schemeName = "exact"
	}
	scheme, err := blocking.ParseScheme(schemeName)
	if err != nil {
		return nil, nil, nil, err
	}
	keyFn, err := pipeline.ParseKeys(k.Keys)
	if err != nil {
		return nil, nil, nil, err
	}
	if k.BlockingMode == "ann" {
		blocker, e, err := s.annBlockerFor(schemeName, scheme, keyFn, k)
		return blocker, nil, e, err
	}
	keyed, ok := scheme.(blocking.KeyedScheme)
	if !ok {
		return pipeline.SchemeBlocker{Scheme: scheme, Keys: keyFn}, nil, nil, nil
	}

	key := s.indexKey(schemeName, k.Keys)
	s.indexesMu.Lock()
	e, ok := s.indexes[key]
	if !ok {
		e = &indexEntry{key: key}
		s.indexes[key] = e
	}
	s.indexesMu.Unlock()

	// Initialize outside the registry lock: loading a persisted index
	// reads and re-links the whole posting set, and only this blocking
	// configuration should wait for it. The Once publishes savedVersion
	// before the atomic blocker store, so every later reader is synced.
	e.init.Do(func() {
		if s.cfg.Indexes != nil {
			// First use of this blocking configuration since the server
			// started: resume from the persisted index if one survives. A
			// missing index is normal; a damaged or mismatched one
			// degrades to a rebuild from the store and is logged, never
			// trusted.
			cfg := blockindex.Config{Scheme: keyed, Keys: blockindex.KeyFunc(keyFn), Shards: s.cfg.BlockShards}
			idx, err := s.cfg.Indexes.LoadIndex(key, cfg)
			if err != nil {
				s.counters.indexLoadFailures.Add(1)
				s.cfg.ErrorLog("service: loading blocking index for %q: %v", key, err)
			} else if idx != nil {
				e.savedVersion = idx.Version()
				e.blocker.Store(pipeline.NewIndexBlockerWith(idx))
				return
			}
		}
		ib, err := pipeline.NewIndexBlocker(keyed, keyFn, s.cfg.BlockShards)
		if err != nil {
			// Unreachable with a parsed scheme; surface it to the caller
			// below rather than caching a half-made entry.
			s.cfg.ErrorLog("service: building blocking index for %q: %v", key, err)
			return
		}
		e.blocker.Store(ib)
	})
	ib := e.blocker.Load()
	if ib == nil {
		return nil, nil, nil, fmt.Errorf("service: blocking index %q failed to initialize", key)
	}
	return ib, e, nil, nil
}

// annBlockerFor resolves the "ann" blocking mode: the per-configuration
// shared ANN candidate index, created on first use and loaded from the
// ANNStore if a restart left one behind — the graph half of blockerFor.
func (s *Server) annBlockerFor(schemeName string, scheme blocking.Scheme, keyFn pipeline.KeyFunc, k resolveKnobs) (pipeline.Blocker, *annEntry, error) {
	approx, ok := scheme.(blocking.ApproxScheme)
	if !ok {
		return nil, nil, fmt.Errorf("service: blocking_mode \"ann\" needs a global scheme with an approximation policy (canopy, sortedneighborhood), not %q — the key-based schemes already have an exact O(delta) index", schemeName)
	}
	m, ef := annKnobs(k)
	key := annIndexKey(schemeName, k.Keys, k)
	s.annMu.Lock()
	e, found := s.annIndexes[key]
	if !found {
		e = &annEntry{key: key}
		s.annIndexes[key] = e
	}
	s.annMu.Unlock()

	// Initialize outside the registry lock, like the sharded indexes:
	// decoding a persisted graph re-links every node, and only this
	// blocking configuration should wait for it.
	e.init.Do(func() {
		if s.cfg.ANNIndexes != nil {
			// First use of this ANN configuration since the server started:
			// resume from the persisted graph if one survives. A missing
			// file is normal; a damaged or knob-mismatched one degrades to a
			// rebuild from the store and is logged, never trusted.
			cfg := ann.Config{Scheme: approx, Keys: ann.KeyFunc(keyFn), M: m, EfSearch: ef}
			idx, err := s.cfg.ANNIndexes.LoadANNIndex(key, cfg)
			if err != nil {
				s.counters.annLoadFailures.Add(1)
				s.cfg.ErrorLog("service: loading ann index for %q: %v", key, err)
			} else if idx != nil {
				e.savedVersion = idx.Version()
				e.blocker.Store(pipeline.NewANNBlockerWith(idx))
				return
			}
		}
		ab, err := pipeline.NewANNBlocker(approx, keyFn, pipeline.ANNOptions{M: m, EfSearch: ef})
		if err != nil {
			// Unreachable with validated knobs and a parsed scheme; surface
			// it to the caller below rather than caching a half-made entry.
			s.cfg.ErrorLog("service: building ann index for %q: %v", key, err)
			return
		}
		e.blocker.Store(ab)
	})
	ab := e.blocker.Load()
	if ab == nil {
		return nil, nil, fmt.Errorf("service: ann index %q failed to initialize", key)
	}
	return ab, e, nil
}

// persistANNIndex saves the entry's graph if it advanced past the
// persisted version — persistIndex's contract, applied to the ANN store.
func (s *Server) persistANNIndex(e *annEntry, force bool) {
	if e == nil || s.cfg.ANNIndexes == nil {
		return
	}
	ab := e.blocker.Load()
	if ab == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ab.Index().Version() == e.savedVersion {
		return
	}
	if !force && e.saveFailures > 0 && time.Now().Before(e.nextSave) {
		return
	}
	version, err := s.cfg.ANNIndexes.SaveANNIndex(e.key, ab.Index())
	if err != nil {
		s.counters.annSaveFailures.Add(1)
		e.saveFailures++
		delay := indexSaveBackoffBase << (e.saveFailures - 1)
		if delay > indexSaveBackoffCap || delay <= 0 {
			delay = indexSaveBackoffCap
		}
		e.nextSave = time.Now().Add(delay)
		s.cfg.ErrorLog("service: saving ann index for %q (failure %d, next retry in %v): %v",
			e.key, e.saveFailures, delay, err)
		return
	}
	e.saveFailures = 0
	e.savedVersion = version
}

// persistIndex saves the entry's index if it advanced past the persisted
// version. Serialized per entry; a failure costs only the restart
// head-start and is logged. Consecutive failures back off exponentially
// (capped), so a broken index store is probed occasionally rather than
// hammered by every warm round; force — used by Close, the last chance
// before the process exits — attempts the save regardless of backoff.
func (s *Server) persistIndex(e *indexEntry, force bool) {
	if e == nil || s.cfg.Indexes == nil {
		return
	}
	ib := e.blocker.Load()
	if ib == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ib.Index().Version() == e.savedVersion {
		return
	}
	if !force && e.saveFailures > 0 && time.Now().Before(e.nextSave) {
		return
	}
	version, err := s.cfg.Indexes.SaveIndex(e.key, ib.Index())
	if err != nil {
		s.counters.indexSaveFailures.Add(1)
		e.saveFailures++
		delay := indexSaveBackoffBase << (e.saveFailures - 1)
		if delay > indexSaveBackoffCap || delay <= 0 {
			delay = indexSaveBackoffCap
		}
		e.nextSave = time.Now().Add(delay)
		s.cfg.ErrorLog("service: saving blocking index for %q (failure %d, next retry in %v): %v",
			e.key, e.saveFailures, delay, err)
		return
	}
	e.saveFailures = 0
	e.savedVersion = version
}

// acquireState returns the incremental state of one knob configuration,
// creating it on first use, and pins it against eviction until the
// matching releaseState. Eviction removes only unpinned states (a state
// whose run is in flight never had lastUsed refreshed, so without the pin
// a long run was the LRU's favorite victim); when every state is pinned
// the map temporarily exceeds the cap rather than dropping live state.
func (s *Server) acquireState(k resolveKnobs) *incrementalState {
	key := knobsKey(k)

	s.statesMu.Lock()
	defer s.statesMu.Unlock()
	state, ok := s.states[key]
	if !ok {
		for len(s.states) >= s.cfg.MaxSnapshots {
			oldestKey := ""
			var oldest time.Time
			for sk, st := range s.states {
				if st.refs > 0 {
					continue
				}
				if oldestKey == "" || st.lastUsed.Before(oldest) {
					oldestKey, oldest = sk, st.lastUsed
				}
			}
			if oldestKey == "" {
				break // every state is pinned by an in-flight run
			}
			delete(s.states, oldestKey)
		}
		state = &incrementalState{key: key}
		s.states[key] = state
	}
	state.refs++
	state.lastUsed = time.Now()
	return state
}

// releaseState unpins a state acquired by acquireState and refreshes its
// LRU stamp to the run's end, so recency reflects when the state was last
// busy, not when its run began.
func (s *Server) releaseState(state *incrementalState) {
	s.statesMu.Lock()
	defer s.statesMu.Unlock()
	state.refs--
	state.lastUsed = time.Now()
}

// StatsResponse is the /v1/stats reply: expvar-style per-stage counters
// plus the live shape of the store, queue and blocking indexes.
type StatsResponse struct {
	// Store is the document store's current size and version.
	Store store.Stats `json:"store"`
	// Queue reports the ingest backlog.
	Queue QueueStats `json:"queue"`
	// Ingest counts committed ingest batches observed by the server.
	Ingest IngestStats `json:"ingest"`
	// Resolve aggregates the incremental endpoint's per-stage counters
	// across the server's lifetime.
	Resolve ResolveStats `json:"resolve"`
	// Blocking aggregates block-stage reuse and lists every live sharded
	// index with its shard balance.
	Blocking BlockingStatsReport `json:"blocking"`
	// ANN lists every live approximate-nearest-neighbor candidate index
	// (the "ann" blocking mode) with its graph shape.
	ANN ANNStatsReport `json:"ann"`
	// Serving describes the hot read-path index: which committed
	// resolution reads are served from, and how stale it is relative to
	// the live store.
	Serving ServingReport `json:"serving"`
	// Reads aggregates the read path's per-endpoint counters and its
	// response-cache traffic.
	Reads ReadStats `json:"reads"`
	// Latency holds the per-stage latency histograms: the four pipeline
	// stages plus the read-path lookup.
	Latency LatencyReport `json:"latency"`
	// SnapshotStates is the number of resolution configurations holding an
	// incremental snapshot.
	SnapshotStates int `json:"snapshot_states"`
	// Degraded aggregates every event where the server kept serving by
	// giving something up — recovered torn journal tails, quarantined
	// snapshot/index files, failed loads and saves, recovered panics,
	// throttled ingest. All-zero is the healthy steady state.
	Degraded DegradedStats `json:"degraded"`
}

// DegradedStats counts degradation events across the server's lifetime,
// except TornTailRecoveries and the Quarantined pair, which report the
// backing store's own counters (recovery happens at open; quarantine at
// load).
type DegradedStats struct {
	// TornTailRecoveries is how many journal segments were healed by
	// truncating a torn final record when the store was opened.
	TornTailRecoveries int `json:"torn_tail_recoveries"`
	// QuarantinedSnapshots / QuarantinedIndexes count damaged persisted
	// files renamed aside (*.corrupt) and rebuilt from the corpus.
	QuarantinedSnapshots int64 `json:"quarantined_snapshots"`
	QuarantinedIndexes   int64 `json:"quarantined_indexes"`
	// Load failures degrade a run to a full rebuild; save failures cost
	// the restart head-start and are retried (index saves with capped
	// exponential backoff).
	SnapshotLoadFailures int64 `json:"snapshot_load_failures"`
	SnapshotSaveFailures int64 `json:"snapshot_save_failures"`
	IndexLoadFailures    int64 `json:"index_load_failures"`
	IndexSaveFailures    int64 `json:"index_save_failures"`
	// QuarantinedANN counts damaged persisted ANN graphs renamed aside;
	// ANNLoadFailures/ANNSaveFailures degrade only the restart
	// head-start of the "ann" blocking mode — the graph rebuilds from
	// the corpus.
	QuarantinedANN  int64 `json:"quarantined_ann"`
	ANNLoadFailures int64 `json:"ann_load_failures"`
	ANNSaveFailures int64 `json:"ann_save_failures"`
	// QuarantinedServing counts damaged persisted serving indexes renamed
	// aside; ServingLoadFailures/ServingSaveFailures degrade only the
	// restart head-start of the read path.
	QuarantinedServing  int64 `json:"quarantined_serving"`
	ServingLoadFailures int64 `json:"serving_load_failures"`
	ServingSaveFailures int64 `json:"serving_save_failures"`
	// Panics is how many handler panics the recovery middleware answered
	// as JSON 500s.
	Panics int64 `json:"panics"`
	// IngestThrottled is how many POST /v1/collections requests were
	// answered 429 because the job backlog was full.
	IngestThrottled int64 `json:"ingest_throttled"`
}

// tornTailReporter is implemented by stores that recover torn journal
// tails (persist.Store); quarantineReporter by snapshot/index stores that
// rename damaged files aside (persist.SnapshotDir, persist.IndexDir).
// Both are optional: in-memory backends report zero.
type tornTailReporter interface{ TornTailRecoveries() int }
type quarantineReporter interface{ Quarantined() int64 }

// degradedStats assembles the degradation report from the server's own
// counters plus whatever the backing stores expose.
func (s *Server) degradedStats() DegradedStats {
	d := DegradedStats{
		SnapshotLoadFailures: s.counters.snapshotLoadFailures.Load(),
		SnapshotSaveFailures: s.counters.snapshotSaveFailures.Load(),
		IndexLoadFailures:    s.counters.indexLoadFailures.Load(),
		IndexSaveFailures:    s.counters.indexSaveFailures.Load(),
		ANNLoadFailures:      s.counters.annLoadFailures.Load(),
		ANNSaveFailures:      s.counters.annSaveFailures.Load(),
		ServingLoadFailures:  s.counters.servingLoadFailures.Load(),
		ServingSaveFailures:  s.counters.servingSaveFailures.Load(),
		Panics:               s.counters.panics.Load(),
		IngestThrottled:      s.counters.ingestThrottled.Load(),
	}
	if r, ok := s.store.(tornTailReporter); ok {
		d.TornTailRecoveries = r.TornTailRecoveries()
	}
	if r, ok := s.cfg.Snapshots.(quarantineReporter); ok {
		d.QuarantinedSnapshots = r.Quarantined()
	}
	if r, ok := s.cfg.Indexes.(quarantineReporter); ok {
		d.QuarantinedIndexes = r.Quarantined()
	}
	if r, ok := s.cfg.ANNIndexes.(quarantineReporter); ok {
		d.QuarantinedANN = r.Quarantined()
	}
	if r, ok := s.cfg.Serving.(quarantineReporter); ok {
		d.QuarantinedServing = r.Quarantined()
	}
	return d
}

// QueueStats reports the ingest queue's backpressure signal and its
// lifetime job totals.
type QueueStats struct {
	// Depth is the number of enqueued-but-unfinished jobs.
	Depth int `json:"depth"`
	// Jobs are the queue's lifetime totals since the server started.
	Jobs store.QueueCounters `json:"jobs"`
}

// IngestStats counts observed ingest activity.
type IngestStats struct {
	// Batches is the number of committed ingest batches.
	Batches int64 `json:"batches"`
}

// ResolveStats aggregates the incremental diff across all runs.
type ResolveStats struct {
	Runs           int64 `json:"runs"`
	Blocks         int64 `json:"blocks"`
	ReusedBlocks   int64 `json:"reused_blocks"`
	PreparedBlocks int64 `json:"prepared_blocks"`
	TrivialBlocks  int64 `json:"trivial_blocks"`
}

// BlockingStatsReport aggregates block-stage reuse across all runs and
// describes each live index.
type BlockingStatsReport struct {
	// DeltaDocs is the total number of documents the indexes keyed
	// incrementally; DirtyBlocks the total blocks those deltas touched.
	DeltaDocs   int64 `json:"delta_docs"`
	DirtyBlocks int64 `json:"dirty_blocks"`
	// Indexes lists every live sharded index.
	Indexes []IndexReport `json:"indexes"`
}

// IndexReport is one live sharded index: its blocking-configuration key
// and the index's shape, including per-shard key counts.
type IndexReport struct {
	Key string `json:"key"`
	blockindex.Stats
}

// ANNStatsReport lists every live ANN candidate index.
type ANNStatsReport struct {
	Indexes []ANNIndexReport `json:"indexes"`
}

// ANNIndexReport is one live ANN candidate index: its blocking-
// configuration key and the graph's shape.
type ANNIndexReport struct {
	Key string `json:"key"`
	ann.Stats
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	// Copy the entries under the registry lock, then query each index
	// without it: Stats() waits on the index's own mutex, which an
	// in-flight update can hold for a while, and stalling blockerFor (and
	// with it every incremental resolve) on a stats scrape is not worth it.
	entries := s.indexEntries()
	reports := make([]IndexReport, 0, len(entries))
	for _, e := range entries {
		if ib := e.blocker.Load(); ib != nil {
			reports = append(reports, IndexReport{Key: e.key, Stats: ib.Index().Stats()})
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Key < reports[j].Key })
	annEntriesNow := s.annEntries()
	annReports := make([]ANNIndexReport, 0, len(annEntriesNow))
	for _, e := range annEntriesNow {
		if ab := e.blocker.Load(); ab != nil {
			annReports = append(annReports, ANNIndexReport{Key: e.key, Stats: ab.Index().Stats()})
		}
	}
	sort.Slice(annReports, func(i, j int) bool { return annReports[i].Key < annReports[j].Key })
	s.statesMu.Lock()
	states := len(s.states)
	s.statesMu.Unlock()

	storeStats := s.store.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Store:  storeStats,
		Queue:  QueueStats{Depth: s.jobs.Depth(), Jobs: s.jobs.Counters()},
		Ingest: IngestStats{Batches: s.counters.ingestBatches.Load()},
		Resolve: ResolveStats{
			Runs:           s.counters.runs.Load(),
			Blocks:         s.counters.blocks.Load(),
			ReusedBlocks:   s.counters.reused.Load(),
			PreparedBlocks: s.counters.prepared.Load(),
			TrivialBlocks:  s.counters.trivial.Load(),
		},
		Blocking: BlockingStatsReport{
			DeltaDocs:   s.counters.deltaDocs.Load(),
			DirtyBlocks: s.counters.dirtyBlocks.Load(),
			Indexes:     reports,
		},
		ANN:            ANNStatsReport{Indexes: annReports},
		Serving:        s.servingReport(storeStats.Version),
		Reads:          s.readStats(),
		Latency:        s.latencyReport(),
		SnapshotStates: states,
		Degraded:       s.degradedStats(),
	})
}

// writeRunError maps a pipeline error to its HTTP reply; it answers true
// when the run succeeded and the caller should write the response.
func writeRunError(w http.ResponseWriter, err error, timeout time.Duration) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			errorResponse{Error: fmt.Sprintf("resolution exceeded the %v request timeout", timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to answer.
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
	return false
}

// buildPipeline validates the knobs and assembles their pipeline. A
// non-nil blocker overrides the knob-derived block stage — the incremental
// endpoint passes its store-bound shared index; the one-shot endpoint
// passes nil and gets a stateless per-request blocker, since arbitrary
// posted corpora must never feed a store-bound index.
func buildPipeline(req resolveKnobs, blocker pipeline.Blocker,
	observe func(stage, block string, d time.Duration)) (*pipeline.Pipeline, bool, error) {
	opts := core.DefaultOptions()
	if req.TrainFraction != 0 {
		opts.TrainFraction = req.TrainFraction
	}
	if req.Regions != 0 {
		opts.RegionK = req.Regions
	}
	if req.Seed != nil {
		opts.Seed = *req.Seed
	}
	if req.Clustering != "" {
		m, err := core.ParseClusteringMethod(req.Clustering)
		if err != nil {
			return nil, false, err
		}
		opts.Clustering = m
	}

	cfg := pipeline.Config{Options: opts, Observe: observe}
	if req.Strategy != "" {
		strat, err := pipeline.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, false, err
		}
		cfg.Strategy = strat
	}
	cfg.Blocker = blocker
	if cfg.Blocker == nil && (req.Blocking != "" || req.Keys != "" || req.BlockingMode != "") {
		if err := validateBlockingMode(req); err != nil {
			return nil, false, err
		}
		var scheme blocking.Scheme = blocking.ExactKey{}
		if req.Blocking != "" {
			var err error
			scheme, err = blocking.ParseScheme(req.Blocking)
			if err != nil {
				return nil, false, err
			}
		}
		keyFn, err := pipeline.ParseKeys(req.Keys)
		if err != nil {
			return nil, false, err
		}
		if req.BlockingMode == "ann" {
			// A fresh per-request graph: one-shot bodies are arbitrary
			// posted corpora and must never feed a store-bound index. Exact
			// mode keeps the stateless SchemeBlocker below, bit-identical
			// to previous releases.
			approx, ok := scheme.(blocking.ApproxScheme)
			if !ok {
				return nil, false, fmt.Errorf("service: blocking_mode \"ann\" needs a global scheme with an approximation policy (canopy, sortedneighborhood), not %q", req.Blocking)
			}
			m, ef := annKnobs(req)
			ab, err := pipeline.NewANNBlocker(approx, keyFn, pipeline.ANNOptions{M: m, EfSearch: ef})
			if err != nil {
				return nil, false, err
			}
			cfg.Blocker = ab
		} else {
			cfg.Blocker = pipeline.SchemeBlocker{Scheme: scheme, Keys: keyFn}
		}
	}

	score := req.Score == nil || *req.Score
	cfg.Score = score
	pl, err := pipeline.New(cfg)
	if err != nil {
		return nil, false, err
	}
	return pl, score, nil
}

// blockResults converts pipeline results to their response form, macro-
// averaging the per-block scores when more than one block was scored.
func blockResults(results []pipeline.Result, score bool) ([]BlockResult, *BlockScore) {
	// Always non-nil so the response marshals "blocks": [] rather than
	// "blocks": null when nothing was resolved.
	blocks := make([]BlockResult, 0, len(results))
	var scores []eval.Result
	for _, res := range results {
		br := BlockResult{
			Name:        res.Block.Name,
			Docs:        len(res.Block.Docs),
			NumEntities: res.Resolution.NumEntities(),
			Source:      res.Resolution.Source,
			Labels:      res.Resolution.Labels,
			Clusters:    clustersOf(res.Resolution.Labels, res.Resolution.NumEntities()),
		}
		if score && res.Score != nil {
			br.Score = &BlockScore{Fp: res.Score.Fp, F: res.Score.F, Rand: res.Score.Rand}
			scores = append(scores, *res.Score)
		}
		blocks = append(blocks, br)
	}
	var avg *BlockScore
	if len(scores) > 1 {
		a := eval.Aggregate(scores)
		avg = &BlockScore{Fp: a.Fp, F: a.F, Rand: a.Rand}
	}
	return blocks, avg
}

// clustersOf inverts a label slice into per-entity member lists.
func clustersOf(labels []int, numEntities int) [][]int {
	clusters := make([][]int, numEntities)
	for doc, label := range labels {
		if label >= 0 && label < numEntities {
			clusters[label] = append(clusters[label], doc)
		}
	}
	return clusters
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
