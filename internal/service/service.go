// Package service is the HTTP layer over the resolution pipeline: a JSON
// collection in, clusters and quality scores out, with per-request
// timeouts that cancel the in-flight pipeline (mid-extraction or
// mid-matrix) through the request context. Beyond the one-shot POST
// /v1/resolve, the server owns a document store and a job queue: POST
// /v1/collections enqueues documents asynchronously, GET /v1/jobs/{id}
// reports ingest progress, and POST /v1/resolve/incremental re-resolves
// only the blocks whose membership changed since the previous incremental
// run. `ersolve serve` mounts it; the handler is also usable inside any
// other mux.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// Config bounds the server's per-request resources.
type Config struct {
	// DefaultTimeout caps requests that specify no timeout; zero selects
	// 30 seconds.
	DefaultTimeout time.Duration
	// MaxTimeout caps the timeout a request may ask for; zero selects
	// DefaultTimeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body; zero selects 32 MiB.
	MaxBodyBytes int64
	// QueueBuffer bounds the ingest job backlog; zero selects 64.
	QueueBuffer int
	// MaxSnapshots caps how many knob configurations keep an incremental
	// snapshot (each retains the prepared state of every block); the
	// least-recently-used is evicted beyond the cap, except states pinned
	// by an in-flight run. Zero selects 16.
	MaxSnapshots int
	// JobHistory bounds how many finished ingest-job records stay
	// queryable via GET /v1/jobs/{id}; older records answer 410 Gone.
	// Zero selects 1024.
	JobHistory int
	// Store is the document store behind the ingest endpoints; nil
	// selects a fresh in-memory store.
	Store store.DocumentStore
	// Snapshots optionally persists each configuration's incremental
	// snapshot (internal/persist.SnapshotDir is the disk implementation).
	// When set, every successful incremental run saves its snapshot
	// through it, and a configuration's first run after a restart loads
	// the saved snapshot back — so the first POST /v1/resolve/incremental
	// after a restart reuses every unchanged block. A damaged or
	// version-skewed saved snapshot degrades that run to a full
	// resolution (results stay correct) and is reported through ErrorLog.
	Snapshots SnapshotStore
	// ErrorLog receives background persistence failures (snapshot
	// save/load); nil selects log.Printf.
	ErrorLog func(format string, args ...any)
}

// SnapshotStore persists per-configuration incremental snapshots. Load
// returns (nil, nil) when no snapshot is saved under the key; it decodes
// against the pipeline that will consume the snapshot, which must be
// configured identically to the one that saved it — the service keys
// snapshots by the effective-knobs string to guarantee exactly that.
// Touch marks the key's stored snapshot as recently used without
// rewriting it (backends may garbage-collect by recency); it fails when
// nothing is stored under the key, telling the service to Save in full.
type SnapshotStore interface {
	Load(key string, pl *pipeline.Pipeline) (*pipeline.Snapshot, error)
	Save(key string, snap *pipeline.Snapshot) error
	Touch(key string) error
}

// Server resolves posted collections through the streaming pipeline.
type Server struct {
	cfg   Config
	store store.DocumentStore
	jobs  *store.Queue

	// states holds one incremental snapshot per resolution configuration;
	// runs with the same configuration serialize on their state so each
	// sees the previous run's snapshot.
	statesMu sync.Mutex
	states   map[string]*incrementalState
}

type incrementalState struct {
	mu   sync.Mutex
	snap *pipeline.Snapshot
	// loadTried marks that the persisted snapshot (if any) was already
	// loaded or found unusable, so it is read at most once per state;
	// guarded by mu.
	loadTried bool
	// stored marks that the snapshot store holds this state's current
	// snapshot (last Save succeeded, or it was just loaded from there);
	// unchanged-run save skipping is only valid while this is true.
	// Guarded by mu.
	stored bool
	// key is the effective-knobs string this state (and its persisted
	// snapshot) is filed under.
	key string
	// lastUsed orders LRU eviction; guarded by Server.statesMu.
	lastUsed time.Time
	// refs counts in-flight runs using this state; eviction skips pinned
	// states so a long run can never have its snapshot dropped — or a
	// concurrent same-config request handed a second state object,
	// breaking the serialize-per-config invariant. Guarded by
	// Server.statesMu.
	refs int
}

// New applies the config defaults and returns a server. The server owns a
// background ingest worker; call Close when done with it.
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 16
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.Printf
	}
	s := &Server{
		cfg:    cfg,
		store:  cfg.Store,
		jobs:   store.NewQueue(cfg.QueueBuffer, cfg.JobHistory),
		states: make(map[string]*incrementalState),
	}
	if s.store == nil {
		s.store = store.NewMemStore()
	}
	return s
}

// Close shuts the ingest worker down, draining queued jobs until ctx
// expires; after that the remaining jobs are canceled and ctx's error is
// returned.
func (s *Server) Close(ctx context.Context) error {
	return s.jobs.Shutdown(ctx)
}

// Handler returns the service mux:
//
//	POST /v1/resolve              one-shot resolution of the posted body
//	POST /v1/collections          enqueue documents into the store
//	GET  /v1/jobs/{id}            ingest job status and result
//	POST /v1/resolve/incremental  resolve the store, reusing clean blocks
//	GET  /healthz                 liveness plus store stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/resolve", s.handleResolve)
	mux.HandleFunc("/v1/resolve/incremental", s.handleResolveIncremental)
	mux.HandleFunc("/v1/collections", s.handleCollections)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "store": s.store.Stats()})
	})
	return mux
}

// resolveKnobs are the resolution parameters shared by the one-shot and
// incremental endpoints.
type resolveKnobs struct {
	// Strategy is the combine stage: best | threshold | weighted |
	// majority (default best).
	Strategy string `json:"strategy,omitempty"`
	// Clustering is the final clustering step: closure | correlation
	// (default closure).
	Clustering string `json:"clustering,omitempty"`
	// Blocking re-partitions the documents: exact | token |
	// sortedneighborhood | canopy (default exact, the paper's scheme).
	Blocking string `json:"blocking,omitempty"`
	// TrainFraction is the labeled fraction (default 0.10).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Regions is the accuracy-estimation region count (default 10).
	Regions int `json:"regions,omitempty"`
	// Seed drives training-sample selection (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// TimeoutMillis caps this request's resolution time; it is clamped to
	// the server's maximum.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Score controls evaluation against the embedded ground truth
	// (default true).
	Score *bool `json:"score,omitempty"`
}

// ResolveRequest is the /v1/resolve body. Because the resolution knobs are
// optional, a dataset file written by ergen (`{"label": …,
// "collections": […]}`) is itself a valid request.
type ResolveRequest struct {
	// Label optionally names the dataset; echoed in the response.
	Label string `json:"label,omitempty"`
	// Collections are the blocks to resolve, in ergen's JSON format.
	Collections []*corpus.Collection `json:"collections"`
	resolveKnobs
}

// IncrementalResolveRequest is the /v1/resolve/incremental body: the same
// knobs as /v1/resolve, but the documents come from the server's store
// rather than the request. Each distinct knob configuration keeps its own
// snapshot; a repeated request re-prepares only the blocks whose
// membership changed since that configuration's previous run.
type IncrementalResolveRequest struct {
	// Label optionally names the run; echoed in the response.
	Label string `json:"label,omitempty"`
	// Fresh discards the configuration's cached snapshot first, forcing a
	// full re-resolution of the store (the equivalence baseline).
	Fresh bool `json:"fresh,omitempty"`
	resolveKnobs
}

// CollectionsRequest is the /v1/collections body: documents to append to
// the store. Collections merge by name; document IDs are assigned by the
// store and persona labels are remapped densely per collection, so a
// client may deliver one collection across many batches.
type CollectionsRequest struct {
	Collections []*corpus.Collection `json:"collections"`
}

// IngestResult is the result payload of a finished ingest job.
type IngestResult struct {
	// DocsAdded is the number of documents this job appended.
	DocsAdded int `json:"docs_added"`
	// Store describes the store right after the append.
	Store store.Stats `json:"store"`
}

// CollectionsResponse acknowledges an enqueued ingest job.
type CollectionsResponse struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

// BlockScore is one block's evaluation against its ground truth.
type BlockScore struct {
	Fp   float64 `json:"fp"`
	F    float64 `json:"f"`
	Rand float64 `json:"rand"`
}

// BlockResult is one resolved block.
type BlockResult struct {
	// Name is the block's (possibly merged) collection name.
	Name string `json:"name"`
	// Docs is the number of documents in the block.
	Docs int `json:"docs"`
	// NumEntities is the number of predicted entities.
	NumEntities int `json:"num_entities"`
	// Source describes which combination produced the clustering.
	Source string `json:"source"`
	// Labels assigns each document its cluster index.
	Labels []int `json:"labels"`
	// Clusters lists the document indices of each entity.
	Clusters [][]int `json:"clusters"`
	// Score is present when scoring was requested.
	Score *BlockScore `json:"score,omitempty"`
}

// ResolveResponse is the /v1/resolve reply.
type ResolveResponse struct {
	Label  string        `json:"label,omitempty"`
	Blocks []BlockResult `json:"blocks"`
	// Average macro-averages the per-block scores when more than one
	// block was scored.
	Average *BlockScore `json:"average,omitempty"`
	// ElapsedMillis is the server-side resolution time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// IncrementalStats reports the dirty-block diff of one incremental run.
type IncrementalStats struct {
	// Blocks is the total number of blocks.
	Blocks int `json:"blocks"`
	// ReusedBlocks were unchanged and reused from the previous run.
	ReusedBlocks int `json:"reused_blocks"`
	// PreparedBlocks were dirty and fully re-prepared.
	PreparedBlocks int `json:"prepared_blocks"`
	// TrivialBlocks were dirty but below the training size.
	TrivialBlocks int `json:"trivial_blocks"`
}

// IncrementalResolveResponse is the /v1/resolve/incremental reply.
type IncrementalResolveResponse struct {
	Label string `json:"label,omitempty"`
	// StoreVersion is the store version this resolution reflects.
	StoreVersion uint64 `json:"store_version"`
	// Docs is the number of documents resolved.
	Docs   int           `json:"docs"`
	Blocks []BlockResult `json:"blocks"`
	// Average macro-averages the per-block scores when more than one
	// block was scored.
	Average *BlockScore `json:"average,omitempty"`
	// Incremental reports what the dirty-block diff skipped.
	Incremental IncrementalStats `json:"incremental"`
	// ElapsedMillis is the server-side resolution time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// allowOnly answers false and writes a 405 with an Allow header and a JSON
// error when the request's method is not the given one.
func allowOnly(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeJSON(w, http.StatusMethodNotAllowed,
		errorResponse{Error: fmt.Sprintf("method %s is not allowed; use %s", r.Method, method)})
	return false
}

// jsonBody answers false and writes a 415 JSON error when the request
// declares a non-JSON content type. An absent Content-Type is accepted as
// JSON for curl-friendliness.
func jsonBody(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		writeJSON(w, http.StatusUnsupportedMediaType,
			errorResponse{Error: fmt.Sprintf("unparseable content type %q: send application/json", ct)})
		return false
	}
	if mt == "application/json" || mt == "text/json" || strings.HasSuffix(mt, "+json") {
		return true
	}
	writeJSON(w, http.StatusUnsupportedMediaType,
		errorResponse{Error: fmt.Sprintf("unsupported content type %q: send application/json", mt)})
	return false
}

// decodeJSON decodes the bounded request body: 413 when the body exceeds
// the server's size cap, 400 on malformed input or trailing data after
// the JSON value (a request like `{...}garbage` is rejected, not silently
// half-read), false in every error case.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	tooLarge := func(err error) bool {
		var maxErr *http.MaxBytesError
		if !errors.As(err, &maxErr) {
			return false
		}
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", maxErr.Limit)})
		return true
	}
	if err := dec.Decode(v); err != nil {
		if !tooLarge(err) {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		}
		return false
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		if !tooLarge(err) {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "request body has trailing data after the JSON value"})
		}
		return false
	}
	return true
}

// timeoutFor clamps the request's timeout wish to the server's bounds.
func (s *Server) timeoutFor(millis int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if millis > 0 {
		timeout = time.Duration(millis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return timeout
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req ResolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Collections) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request has no collections"})
		return
	}
	for _, col := range req.Collections {
		if err := col.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	}
	pl, score, err := buildPipeline(req.resolveKnobs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	results, err := pl.Run(ctx, req.Collections)
	if !writeRunError(w, err, timeout) {
		return
	}

	resp := ResolveResponse{Label: req.Label, ElapsedMillis: time.Since(start).Milliseconds()}
	resp.Blocks, resp.Average = blockResults(results, score)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req CollectionsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Collections) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request has no collections"})
		return
	}
	// Fail fast in the request, not the job: the store's validation is
	// cheap enough to run twice, and sharing ValidateBatch keeps this
	// fast path from ever drifting out of sync with what Append accepts.
	if err := store.ValidateBatch(req.Collections); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	job, err := s.jobs.Enqueue("ingest", func(context.Context) (any, error) {
		added, err := s.store.Append(req.Collections)
		if err != nil {
			return nil, err
		}
		return IngestResult{DocsAdded: added, Store: s.store.Stats()}, nil
	})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, CollectionsResponse{
		JobID:     job.ID,
		StatusURL: "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job paths look like /v1/jobs/{id}"})
		return
	}
	job, outcome := s.jobs.Get(id)
	switch outcome {
	case store.GetFound:
		writeJSON(w, http.StatusOK, job)
	case store.GetEvicted:
		writeJSON(w, http.StatusGone, errorResponse{
			Error: fmt.Sprintf("job %q finished and its record aged out of the bounded history; poll jobs sooner or raise the history limit", id)})
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
	}
}

func (s *Server) handleResolveIncremental(w http.ResponseWriter, r *http.Request) {
	if !allowOnly(w, r, http.MethodPost) || !jsonBody(w, r) {
		return
	}
	var req IncrementalResolveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	pl, score, err := buildPipeline(req.resolveKnobs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// One snapshot per knob configuration; same-config runs serialize so
	// each sees its predecessor's snapshot. The state is pinned (refs)
	// for the duration of the run, so the LRU can never evict it — and
	// hand a concurrent same-config request a second state object —
	// while the run holds its lock. The store snapshot is taken under
	// the state lock, so a run can never overwrite the state with
	// results for an older store version than its predecessor saw.
	state := s.acquireState(req.resolveKnobs)
	defer s.releaseState(state)
	state.mu.Lock()
	defer state.mu.Unlock()

	cols, version := s.store.Snapshot()
	docs := 0
	for _, col := range cols {
		docs += len(col.Docs)
	}
	if docs == 0 {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: "the store is empty; ingest documents via POST /v1/collections first"})
		return
	}
	prev := state.snap
	if prev == nil && !state.loadTried && s.cfg.Snapshots != nil && !req.Fresh {
		// First non-fresh use of this configuration since the server
		// started: pick up where the previous process left off. A
		// missing snapshot is normal; a damaged or version-skewed one
		// degrades this run to a full resolution and is logged, never
		// served. A fresh request does not consume the one load attempt:
		// if it fails mid-run, the persisted snapshot still serves the
		// next non-fresh request.
		state.loadTried = true
		loaded, err := s.cfg.Snapshots.Load(state.key, pl)
		if err != nil {
			s.cfg.ErrorLog("service: loading snapshot for %q: %v", state.key, err)
		} else {
			prev = loaded
			// Cache the loaded snapshot immediately: if this run dies
			// (timeout, cancellation) before producing its own, the next
			// request still starts from the persisted state instead of
			// forfeiting the restart head-start.
			state.snap = loaded
			state.stored = loaded != nil
		}
	}
	if req.Fresh {
		prev = nil
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	inc, err := pl.RunIncremental(ctx, cols, prev)
	if !writeRunError(w, err, timeout) {
		return
	}
	state.snap = inc.Snapshot
	if s.cfg.Snapshots != nil {
		// Persist before answering, so an acknowledged run's snapshot
		// survives a crash. A save failure loses only the restart
		// head-start, not correctness. When the run changed nothing —
		// every block reused and the block set identical to prev's — the
		// stored snapshot is already semantically equal; Touch it (so
		// recency-based backend GC keeps the busiest configurations)
		// instead of rewriting megabytes per steady-state poll. The skip
		// requires the previous store write to have succeeded
		// (state.stored) and the Touch to find the entry; either failing
		// falls back to a full Save, so a transient store error or a
		// GC'd entry never disables durability for the rest of the
		// process lifetime.
		unchanged := prev != nil && state.stored &&
			inc.Stats.Reused == inc.Stats.Blocks &&
			inc.Snapshot.Blocks() == prev.Blocks() &&
			s.cfg.Snapshots.Touch(state.key) == nil
		if !unchanged {
			err := s.cfg.Snapshots.Save(state.key, inc.Snapshot)
			state.stored = err == nil
			if err != nil {
				s.cfg.ErrorLog("service: saving snapshot for %q: %v", state.key, err)
			}
		}
	}

	resp := IncrementalResolveResponse{
		Label:         req.Label,
		StoreVersion:  version,
		Docs:          docs,
		ElapsedMillis: time.Since(start).Milliseconds(),
		Incremental: IncrementalStats{
			Blocks:         inc.Stats.Blocks,
			ReusedBlocks:   inc.Stats.Reused,
			PreparedBlocks: inc.Stats.Prepared,
			TrivialBlocks:  inc.Stats.Trivial,
		},
	}
	resp.Blocks, resp.Average = blockResults(inc.Results, score)
	writeJSON(w, http.StatusOK, resp)
}

// knobsKey builds the effective-knobs string identifying one resolution
// configuration — the key incremental states and persisted snapshots are
// filed under. It is built from the EFFECTIVE values (defaults resolved),
// so `{}` and `{"seed":1}` share one state and an explicit "seed":-1 can
// never alias the defaults.
func knobsKey(k resolveKnobs) string {
	def := core.DefaultOptions()
	strategy, clustering, blocking := k.Strategy, k.Clustering, k.Blocking
	if strategy == "" {
		strategy = "best"
	}
	if clustering == "" {
		clustering = "closure"
	}
	if blocking == "" {
		blocking = "exact"
	}
	train, regions, seed := k.TrainFraction, k.Regions, def.Seed
	if train == 0 {
		train = def.TrainFraction
	}
	if regions == 0 {
		regions = def.RegionK
	}
	if k.Seed != nil {
		seed = *k.Seed
	}
	return fmt.Sprintf("%s|%s|%s|%g|%d|%d", strategy, clustering, blocking, train, regions, seed)
}

// acquireState returns the incremental state of one knob configuration,
// creating it on first use, and pins it against eviction until the
// matching releaseState. Eviction removes only unpinned states (a state
// whose run is in flight never had lastUsed refreshed, so without the pin
// a long run was the LRU's favorite victim); when every state is pinned
// the map temporarily exceeds the cap rather than dropping live state.
func (s *Server) acquireState(k resolveKnobs) *incrementalState {
	key := knobsKey(k)

	s.statesMu.Lock()
	defer s.statesMu.Unlock()
	state, ok := s.states[key]
	if !ok {
		for len(s.states) >= s.cfg.MaxSnapshots {
			oldestKey := ""
			var oldest time.Time
			for sk, st := range s.states {
				if st.refs > 0 {
					continue
				}
				if oldestKey == "" || st.lastUsed.Before(oldest) {
					oldestKey, oldest = sk, st.lastUsed
				}
			}
			if oldestKey == "" {
				break // every state is pinned by an in-flight run
			}
			delete(s.states, oldestKey)
		}
		state = &incrementalState{key: key}
		s.states[key] = state
	}
	state.refs++
	state.lastUsed = time.Now()
	return state
}

// releaseState unpins a state acquired by acquireState and refreshes its
// LRU stamp to the run's end, so recency reflects when the state was last
// busy, not when its run began.
func (s *Server) releaseState(state *incrementalState) {
	s.statesMu.Lock()
	defer s.statesMu.Unlock()
	state.refs--
	state.lastUsed = time.Now()
}

// writeRunError maps a pipeline error to its HTTP reply; it answers true
// when the run succeeded and the caller should write the response.
func writeRunError(w http.ResponseWriter, err error, timeout time.Duration) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			errorResponse{Error: fmt.Sprintf("resolution exceeded the %v request timeout", timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to answer.
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
	return false
}

// buildPipeline validates the knobs and assembles their pipeline.
func buildPipeline(req resolveKnobs) (*pipeline.Pipeline, bool, error) {
	opts := core.DefaultOptions()
	if req.TrainFraction != 0 {
		opts.TrainFraction = req.TrainFraction
	}
	if req.Regions != 0 {
		opts.RegionK = req.Regions
	}
	if req.Seed != nil {
		opts.Seed = *req.Seed
	}
	if req.Clustering != "" {
		m, err := core.ParseClusteringMethod(req.Clustering)
		if err != nil {
			return nil, false, err
		}
		opts.Clustering = m
	}

	cfg := pipeline.Config{Options: opts}
	if req.Strategy != "" {
		strat, err := pipeline.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, false, err
		}
		cfg.Strategy = strat
	}
	if req.Blocking != "" {
		blocker, err := pipeline.ParseBlocker(req.Blocking)
		if err != nil {
			return nil, false, err
		}
		cfg.Blocker = blocker
	}

	score := req.Score == nil || *req.Score
	cfg.Score = score
	pl, err := pipeline.New(cfg)
	if err != nil {
		return nil, false, err
	}
	return pl, score, nil
}

// blockResults converts pipeline results to their response form, macro-
// averaging the per-block scores when more than one block was scored.
func blockResults(results []pipeline.Result, score bool) ([]BlockResult, *BlockScore) {
	// Always non-nil so the response marshals "blocks": [] rather than
	// "blocks": null when nothing was resolved.
	blocks := make([]BlockResult, 0, len(results))
	var scores []eval.Result
	for _, res := range results {
		br := BlockResult{
			Name:        res.Block.Name,
			Docs:        len(res.Block.Docs),
			NumEntities: res.Resolution.NumEntities(),
			Source:      res.Resolution.Source,
			Labels:      res.Resolution.Labels,
			Clusters:    clustersOf(res.Resolution.Labels, res.Resolution.NumEntities()),
		}
		if score && res.Score != nil {
			br.Score = &BlockScore{Fp: res.Score.Fp, F: res.Score.F, Rand: res.Score.Rand}
			scores = append(scores, *res.Score)
		}
		blocks = append(blocks, br)
	}
	var avg *BlockScore
	if len(scores) > 1 {
		a := eval.Aggregate(scores)
		avg = &BlockScore{Fp: a.Fp, F: a.F, Rand: a.Rand}
	}
	return blocks, avg
}

// clustersOf inverts a label slice into per-entity member lists.
func clustersOf(labels []int, numEntities int) [][]int {
	clusters := make([][]int, numEntities)
	for doc, label := range labels {
		if label >= 0 && label < numEntities {
			clusters[label] = append(clusters[label], doc)
		}
	}
	return clusters
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
