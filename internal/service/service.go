// Package service is the HTTP layer over the resolution pipeline: a JSON
// collection in, clusters and quality scores out, with per-request
// timeouts that cancel the in-flight pipeline (mid-extraction or
// mid-matrix) through the request context. `ersolve serve` mounts it; the
// handler is also usable inside any other mux.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/pipeline"
)

// Config bounds the server's per-request resources.
type Config struct {
	// DefaultTimeout caps requests that specify no timeout; zero selects
	// 30 seconds.
	DefaultTimeout time.Duration
	// MaxTimeout caps the timeout a request may ask for; zero selects
	// DefaultTimeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body; zero selects 32 MiB.
	MaxBodyBytes int64
}

// Server resolves posted collections through the streaming pipeline.
type Server struct {
	cfg Config
}

// New applies the config defaults and returns a server.
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	return &Server{cfg: cfg}
}

// Handler returns the service mux: POST /v1/resolve and GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/resolve", s.handleResolve)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ResolveRequest is the /v1/resolve body. Because the resolution knobs are
// optional, a dataset file written by ergen (`{"label": …,
// "collections": […]}`) is itself a valid request.
type ResolveRequest struct {
	// Label optionally names the dataset; echoed in the response.
	Label string `json:"label,omitempty"`
	// Collections are the blocks to resolve, in ergen's JSON format.
	Collections []*corpus.Collection `json:"collections"`
	// Strategy is the combine stage: best | threshold | weighted |
	// majority (default best).
	Strategy string `json:"strategy,omitempty"`
	// Clustering is the final clustering step: closure | correlation
	// (default closure).
	Clustering string `json:"clustering,omitempty"`
	// Blocking re-partitions the posted documents: exact | token |
	// sortedneighborhood | canopy (default exact, the paper's scheme).
	Blocking string `json:"blocking,omitempty"`
	// TrainFraction is the labeled fraction (default 0.10).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Regions is the accuracy-estimation region count (default 10).
	Regions int `json:"regions,omitempty"`
	// Seed drives training-sample selection (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// TimeoutMillis caps this request's resolution time; it is clamped to
	// the server's maximum.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Score controls evaluation against the embedded ground truth
	// (default true).
	Score *bool `json:"score,omitempty"`
}

// BlockScore is one block's evaluation against its ground truth.
type BlockScore struct {
	Fp   float64 `json:"fp"`
	F    float64 `json:"f"`
	Rand float64 `json:"rand"`
}

// BlockResult is one resolved block.
type BlockResult struct {
	// Name is the block's (possibly merged) collection name.
	Name string `json:"name"`
	// Docs is the number of documents in the block.
	Docs int `json:"docs"`
	// NumEntities is the number of predicted entities.
	NumEntities int `json:"num_entities"`
	// Source describes which combination produced the clustering.
	Source string `json:"source"`
	// Labels assigns each document its cluster index.
	Labels []int `json:"labels"`
	// Clusters lists the document indices of each entity.
	Clusters [][]int `json:"clusters"`
	// Score is present when scoring was requested.
	Score *BlockScore `json:"score,omitempty"`
}

// ResolveResponse is the /v1/resolve reply.
type ResolveResponse struct {
	Label  string        `json:"label,omitempty"`
	Blocks []BlockResult `json:"blocks"`
	// Average macro-averages the per-block scores when more than one
	// block was scored.
	Average *BlockScore `json:"average,omitempty"`
	// ElapsedMillis is the server-side resolution time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a dataset JSON to /v1/resolve"})
		return
	}
	var req ResolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	pl, score, err := s.build(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	results, err := pl.Run(ctx, req.Collections)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			errorResponse{Error: fmt.Sprintf("resolution exceeded the %v request timeout", timeout)})
		return
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to answer.
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	resp := ResolveResponse{Label: req.Label, ElapsedMillis: time.Since(start).Milliseconds()}
	var scores []eval.Result
	for _, res := range results {
		br := BlockResult{
			Name:        res.Block.Name,
			Docs:        len(res.Block.Docs),
			NumEntities: res.Resolution.NumEntities(),
			Source:      res.Resolution.Source,
			Labels:      res.Resolution.Labels,
			Clusters:    clustersOf(res.Resolution.Labels, res.Resolution.NumEntities()),
		}
		if score && res.Score != nil {
			br.Score = &BlockScore{Fp: res.Score.Fp, F: res.Score.F, Rand: res.Score.Rand}
			scores = append(scores, *res.Score)
		}
		resp.Blocks = append(resp.Blocks, br)
	}
	if len(scores) > 1 {
		avg := eval.Aggregate(scores)
		resp.Average = &BlockScore{Fp: avg.Fp, F: avg.F, Rand: avg.Rand}
	}
	writeJSON(w, http.StatusOK, resp)
}

// build validates the request and assembles its pipeline.
func (s *Server) build(req *ResolveRequest) (*pipeline.Pipeline, bool, error) {
	if len(req.Collections) == 0 {
		return nil, false, fmt.Errorf("request has no collections")
	}
	for _, col := range req.Collections {
		if err := col.Validate(); err != nil {
			return nil, false, err
		}
	}

	opts := core.DefaultOptions()
	if req.TrainFraction != 0 {
		opts.TrainFraction = req.TrainFraction
	}
	if req.Regions != 0 {
		opts.RegionK = req.Regions
	}
	if req.Seed != nil {
		opts.Seed = *req.Seed
	}
	if req.Clustering != "" {
		m, err := core.ParseClusteringMethod(req.Clustering)
		if err != nil {
			return nil, false, err
		}
		opts.Clustering = m
	}

	cfg := pipeline.Config{Options: opts, Score: true}
	if req.Strategy != "" {
		strat, err := pipeline.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, false, err
		}
		cfg.Strategy = strat
	}
	if req.Blocking != "" {
		blocker, err := pipeline.ParseBlocker(req.Blocking)
		if err != nil {
			return nil, false, err
		}
		cfg.Blocker = blocker
	}

	score := req.Score == nil || *req.Score
	cfg.Score = score
	pl, err := pipeline.New(cfg)
	if err != nil {
		return nil, false, err
	}
	return pl, score, nil
}

// clustersOf inverts a label slice into per-entity member lists.
func clustersOf(labels []int, numEntities int) [][]int {
	clusters := make([][]int, numEntities)
	for doc, label := range labels {
		if label >= 0 && label < numEntities {
			clusters[label] = append(clusters[label], doc)
		}
	}
	return clusters
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
