package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/corpus"
	"repro/internal/persist"
)

// TestANNModeIncrementalResolve pins the happy path of blocking_mode
// "ann": the incremental endpoint serves canopy from the shared ANN
// candidate index, reports indexer "ann" with the effective graph knobs,
// pays only the ingest delta on repeat runs, and surfaces the graph in
// the /v1/stats "ann" section.
func TestANNModeIncrementalResolve(t *testing.T) {
	ts := testServer(t, Config{})
	ingestCollection(t, ts, testCollection(t, 30))

	req := IncrementalResolveRequest{
		resolveKnobs: resolveKnobs{Blocking: "canopy", BlockingMode: "ann"},
	}
	first := resolveOK(t, ts, req)
	if first.Blocking.Indexer != "ann" {
		t.Fatalf("indexer = %q, want \"ann\"", first.Blocking.Indexer)
	}
	if first.Blocking.IndexedDocs != 30 || first.Blocking.DeltaDocs != 30 {
		t.Fatalf("first run indexed %d docs with delta %d, want 30/30",
			first.Blocking.IndexedDocs, first.Blocking.DeltaDocs)
	}
	if first.Blocking.AnnM != ann.DefaultM || first.Blocking.AnnEf != ann.DefaultEfSearch {
		t.Fatalf("ann knobs = M %d / ef %d, want the defaults %d / %d",
			first.Blocking.AnnM, first.Blocking.AnnEf, ann.DefaultM, ann.DefaultEfSearch)
	}

	// Steady state: nothing ingested since, so the graph serves the whole
	// blocking pass with zero insertions.
	again := resolveOK(t, ts, req)
	if again.Blocking.Indexer != "ann" || again.Blocking.DeltaDocs != 0 {
		t.Fatalf("repeat run = %+v, want indexer \"ann\" with zero delta", again.Blocking)
	}
	if len(again.Blocks) != len(first.Blocks) {
		t.Fatalf("repeat run found %d blocks, first found %d", len(again.Blocks), len(first.Blocks))
	}

	var stats StatsResponse
	if code := getJSON(t, ts, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if len(stats.ANN.Indexes) != 1 {
		t.Fatalf("stats lists %d ann indexes, want 1", len(stats.ANN.Indexes))
	}
	rep := stats.ANN.Indexes[0]
	if rep.Key != "ann|canopy|collection|12|64" {
		t.Errorf("ann index key = %q", rep.Key)
	}
	if rep.Docs != 30 || rep.Blocks < 1 || rep.M != ann.DefaultM {
		t.Errorf("ann index stats = %+v", rep)
	}
}

// TestANNModeValidation pins the 400 surface of the new knobs on both
// resolve endpoints: unknown modes, non-approximable schemes, unusable
// graph knobs, and ann knobs sent without ann mode are all rejected
// before any shared index entry is created for them.
func TestANNModeValidation(t *testing.T) {
	ts := testServer(t, Config{})

	cases := []struct {
		name  string
		knobs resolveKnobs
	}{
		{"unknown mode", resolveKnobs{BlockingMode: "fuzzy"}},
		{"exact scheme not approximable", resolveKnobs{BlockingMode: "ann"}},
		{"keyed scheme not approximable", resolveKnobs{BlockingMode: "ann", Blocking: "token"}},
		{"degree one graph", resolveKnobs{BlockingMode: "ann", Blocking: "canopy", AnnM: 1}},
		{"negative degree", resolveKnobs{BlockingMode: "ann", Blocking: "canopy", AnnM: -4}},
		{"negative beam", resolveKnobs{BlockingMode: "ann", Blocking: "canopy", AnnEf: -1}},
		{"ann knobs without ann mode", resolveKnobs{Blocking: "canopy", AnnEf: 32}},
	}
	for _, c := range cases {
		// The incremental endpoint validates before touching the store, so
		// an empty store still answers 400, not 409.
		var errOut errorResponse
		code := postJSON(t, ts, "/v1/resolve/incremental",
			IncrementalResolveRequest{resolveKnobs: c.knobs}, &errOut)
		if code != http.StatusBadRequest || errOut.Error == "" {
			t.Errorf("%s: incremental = %d %q, want 400 with a message", c.name, code, errOut.Error)
		}
		// The one-shot endpoint shares the validation.
		resp := postResolve(t, ts, ResolveRequest{
			Collections:  []*corpus.Collection{testCollection(t, 4)},
			resolveKnobs: c.knobs,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: one-shot = %d, want 400", c.name, resp.StatusCode)
		}
	}

	// A valid ann one-shot still resolves: fresh per-request graph.
	resp := postResolve(t, ts, ResolveRequest{
		Collections:  []*corpus.Collection{testCollection(t, 12)},
		resolveKnobs: resolveKnobs{Blocking: "canopy", BlockingMode: "ann"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid ann one-shot = %d, want 200", resp.StatusCode)
	}
}

// TestANNIndexRestartZeroReinsertion is the kill-9 test: the resolve
// path persists the ANN graph before answering, so a server that dies
// without Close still leaves a loadable index behind, and its successor
// serves the same corpus with zero re-insertion (delta_docs 0, no
// fallback).
func TestANNIndexRestartZeroReinsertion(t *testing.T) {
	tmp := t.TempDir()
	annDir, err := persist.NewANNDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	col := testCollection(t, 40)
	req := IncrementalResolveRequest{
		resolveKnobs: resolveKnobs{Blocking: "canopy", BlockingMode: "ann"},
	}

	srv1 := New(Config{ANNIndexes: annDir})
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()
	ingestCollection(t, ts1, col)
	first := resolveOK(t, ts1, req)
	if first.Blocking.Indexer != "ann" || first.Blocking.IndexedDocs != 40 {
		t.Fatalf("first run blocking = %+v", first.Blocking)
	}
	// The resolve already persisted the graph; srv1 is now abandoned
	// without Close — the kill-9.
	files, err := filepath.Glob(filepath.Join(tmp, "*.ann"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted ann files after resolve: %v, %v (want exactly 1)", files, err)
	}

	srv2 := New(Config{ANNIndexes: annDir})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Close(ctx); err != nil {
			t.Errorf("closing restarted server: %v", err)
		}
	})
	ingestCollection(t, ts2, col) // the same corpus, replayed into a fresh store
	second := resolveOK(t, ts2, req)
	if second.Blocking.Indexer != "ann" || second.Blocking.Fallback {
		t.Fatalf("restarted run blocking = %+v, want indexer \"ann\" without fallback", second.Blocking)
	}
	if second.Blocking.DeltaDocs != 0 {
		t.Fatalf("restarted run re-inserted %d docs, want 0 (graph loaded from disk)", second.Blocking.DeltaDocs)
	}
	if second.Blocking.IndexedDocs != 40 {
		t.Fatalf("restarted run serves %d indexed docs, want 40", second.Blocking.IndexedDocs)
	}
	if len(second.Blocks) != len(first.Blocks) {
		t.Fatalf("restarted run found %d blocks, first found %d", len(second.Blocks), len(first.Blocks))
	}
}
