package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tracing"
)

// serverPair builds a server plus its test listener, keeping the *Server
// reachable for instrument-level assertions.
func serverPair(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return srv, ts
}

// scrapeMetrics GETs /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition v0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue extracts one sample's value from the exposition by its
// exact name-plus-labels prefix.
func sampleValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + " (.*)$")
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("sample %q not found in exposition", sample)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %q value %q: %v", sample, m[1], err)
	}
	return v
}

// TestMetricsExpositionConformance is the endpoint half of the /metrics
// contract: after real traffic (ingest, incremental resolve, reads), the
// scrape must parse under the shared exposition grammar, carry every
// family /v1/stats reports, and agree with the JSON stats on the shared
// instruments.
func TestMetricsExpositionConformance(t *testing.T) {
	srv, ts := serverPair(t, Config{})
	ingestCollection(t, ts, testCollection(t, 24))
	resolveOK(t, ts, IncrementalResolveRequest{})
	var search SearchResponse
	if code := getJSON(t, ts, "/v1/search?name=rivera", &search); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}
	if code := getJSON(t, ts, "/v1/docs/rivera:0/entity", &struct{}{}); code != http.StatusOK {
		t.Fatalf("doc lookup = %d", code)
	}

	text := scrapeMetrics(t, ts)
	for _, p := range metrics.LintExposition(text) {
		t.Error(p)
	}

	// Every stats section surfaces as a family.
	for _, family := range []string{
		"# TYPE ersolve_resolve_runs_total counter",
		"# TYPE ersolve_resolve_block_outcomes_total counter",
		"# TYPE ersolve_blocking_delta_docs_total counter",
		"# TYPE ersolve_ingest_batches_total counter",
		"# TYPE ersolve_reads_total counter",
		"# TYPE ersolve_read_cache_total counter",
		"# TYPE ersolve_degraded_total counter",
		"# TYPE ersolve_stage_latency_seconds histogram",
		"# TYPE ersolve_queue_depth gauge",
		"# TYPE ersolve_queue_jobs_total counter",
		"# TYPE ersolve_store_docs gauge",
		"# TYPE ersolve_serving_available gauge",
		"# TYPE ersolve_blocking_index_keys gauge",
		"# TYPE ersolve_uptime_seconds gauge",
		"# TYPE ersolve_build_info gauge",
	} {
		if !strings.Contains(text, family+"\n") {
			t.Errorf("exposition missing %q", family)
		}
	}

	if v := sampleValue(t, text, "ersolve_resolve_runs_total"); v != 1 {
		t.Errorf("resolve runs = %g, want 1", v)
	}
	if v := sampleValue(t, text, `ersolve_reads_total{endpoint="search"}`); v != 1 {
		t.Errorf("search reads = %g, want 1", v)
	}
	if v := sampleValue(t, text, `ersolve_queue_jobs_total{event="done"}`); v != 1 {
		t.Errorf("done jobs = %g, want 1", v)
	}
	if v := sampleValue(t, text, "ersolve_serving_available"); v != 1 {
		t.Errorf("serving available = %g, want 1", v)
	}
	if v := sampleValue(t, text, "ersolve_store_docs"); v != 24 {
		t.Errorf("store docs = %g, want 24", v)
	}
	// The histogram count must agree with the /v1/stats snapshot of the
	// same instrument: one registry, one truth.
	want := srv.latency.lookup.Snapshot().Count
	if got := sampleValue(t, text, `ersolve_stage_latency_seconds_count{stage="lookup"}`); int64(got) != want {
		t.Errorf("lookup _count = %g, want %d (Snapshot().Count)", got, want)
	}
	if got := sampleValue(t, text, `ersolve_stage_latency_seconds_count{stage="cluster"}`); got < 1 {
		t.Errorf("cluster _count = %g, want >= 1", got)
	}
}

// TestResolveTraceSpans is the acceptance path for the tracing layer: one
// incremental resolve must yield a trace in GET /v1/traces whose root is
// the resolve and whose children include every pipeline stage, each
// parented to the root span.
func TestResolveTraceSpans(t *testing.T) {
	_, ts := serverPair(t, Config{})
	ingestCollection(t, ts, testCollection(t, 24))
	resolveOK(t, ts, IncrementalResolveRequest{})

	var out TracesResponse
	if code := getJSON(t, ts, "/v1/traces", &out); code != http.StatusOK {
		t.Fatalf("GET /v1/traces = %d", code)
	}
	var trace *tracing.Trace
	for i := range out.Traces {
		if out.Traces[i].Name == "resolve.incremental" {
			trace = &out.Traces[i]
			break
		}
	}
	if trace == nil {
		t.Fatalf("no resolve.incremental trace among %d traces", len(out.Traces))
	}
	if trace.ID == "" || trace.DurationMicros <= 0 {
		t.Fatalf("trace header = %+v", trace)
	}
	root := trace.Spans[0]
	if root.ID != tracing.RootSpanID || root.Parent != 0 {
		t.Fatalf("root span = %+v", root)
	}
	attrs := map[string]string{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["store_version"] == "" || attrs["blocks"] == "" {
		t.Errorf("root attrs missing store_version/blocks: %+v", root.Attrs)
	}
	stages := map[string]int{}
	for _, s := range trace.Spans[1:] {
		if s.Parent != tracing.RootSpanID {
			t.Errorf("span %q parent = %d, want root", s.Name, s.Parent)
		}
		stages[s.Name]++
	}
	for _, stage := range []string{"block", "prepare", "analyze", "cluster"} {
		if stages[stage] == 0 {
			t.Errorf("trace has no %q child span (got %v)", stage, stages)
		}
	}

	// limit caps the dump; bad limits answer 400.
	if code := getJSON(t, ts, "/v1/traces?limit=1", &out); code != http.StatusOK || len(out.Traces) != 1 {
		t.Fatalf("limit=1: code %d, %d traces", code, len(out.Traces))
	}
	if code := getJSON(t, ts, "/v1/traces?limit=0", &struct{}{}); code != http.StatusBadRequest {
		t.Fatalf("limit=0 = %d, want 400", code)
	}
}

// TestTracingDisabled pins the negative-TraceBuffer contract: requests
// still work and the dump is empty, not an error.
func TestTracingDisabled(t *testing.T) {
	_, ts := serverPair(t, Config{TraceBuffer: -1})
	ingestCollection(t, ts, testCollection(t, 12))
	resolveOK(t, ts, IncrementalResolveRequest{})
	var out TracesResponse
	if code := getJSON(t, ts, "/v1/traces", &out); code != http.StatusOK {
		t.Fatalf("GET /v1/traces = %d", code)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("disabled tracing returned %d traces", len(out.Traces))
	}
}
