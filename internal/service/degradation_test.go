package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/blockindex"
	"repro/internal/corpus"
	"repro/internal/store"
)

// TestReadyzEndpoint pins readiness: a constructed server (store open,
// replay done by definition) answers 200 on /readyz.
func TestReadyzEndpoint(t *testing.T) {
	ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status = %d, want 200", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ready" {
		t.Fatalf("/readyz body = %v", body)
	}
}

// TestPanicRecoveryMiddleware pins the outermost middleware: a panicking
// handler answers a JSON 500, the panic is counted, and /v1/stats
// surfaces it. The panicking route is injected behind the same middleware
// the real mux uses.
func TestPanicRecoveryMiddleware(t *testing.T) {
	var logged []string
	srv := New(Config{ErrorLog: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	boom := srv.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(boom)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/explode")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var envelope errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %v", err)
	}
	if got := srv.counters.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "kaboom") {
		t.Errorf("panic log = %q, want the panic value", logged)
	}
	if d := srv.degradedStats(); d.Panics != 1 {
		t.Errorf("degraded stats panics = %d, want 1", d.Panics)
	}
}

// TestIngestBackpressure429 pins the backpressure contract: when the job
// backlog is full, POST /v1/collections answers 429 with a Retry-After
// hint (not 503 — the condition clears by itself), and the throttle is
// counted in the degradation stats.
func TestIngestBackpressure429(t *testing.T) {
	srv := New(Config{QueueBuffer: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wedge the single worker on a job we control, then fill the one
	// buffered slot, so the next enqueue is rejected as backlog-full.
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if _, err := srv.jobs.Enqueue("block", func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := srv.jobs.Enqueue("fill", func(context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	col := testCollection(t, 4)
	buf, err := json.Marshal(CollectionsRequest{Collections: []*corpus.Collection{col}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 reply carries no Retry-After header")
	}
	var envelope errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("429 body is not the JSON error envelope: %v", err)
	}
	if d := srv.degradedStats(); d.IngestThrottled != 1 {
		t.Errorf("ingest_throttled = %d, want 1", d.IngestThrottled)
	}
}

// failingIndexStore fails every save until healed, loading nothing.
type failingIndexStore struct {
	saves int
	fail  bool
}

func (f *failingIndexStore) LoadIndex(string, blockindex.Config) (*blockindex.Index, error) {
	return nil, nil
}

func (f *failingIndexStore) SaveIndex(string, *blockindex.Index) (uint64, error) {
	f.saves++
	if f.fail {
		return 0, errors.New("disk on fire")
	}
	return 1, nil
}

// TestIndexSaveBackoff pins the capped-backoff retry: while a save is
// failing and the backoff window is open, persistIndex does not re-hit
// the store; once the window passes it retries; Close forces a final
// attempt regardless.
func TestIndexSaveBackoff(t *testing.T) {
	oldBase, oldCap := indexSaveBackoffBase, indexSaveBackoffCap
	indexSaveBackoffBase, indexSaveBackoffCap = 50*time.Millisecond, 200*time.Millisecond
	defer func() { indexSaveBackoffBase, indexSaveBackoffCap = oldBase, oldCap }()

	idxStore := &failingIndexStore{fail: true}
	srv := New(Config{Indexes: idxStore, Store: store.NewMemStore()})
	closed := false
	t.Cleanup(func() {
		if !closed {
			srv.Close(context.Background())
		}
	})
	if _, err := srv.store.Append([]*corpus.Collection{testCollection(t, 6)}); err != nil {
		t.Fatal(err)
	}
	// Materialize a real index entry through the public path.
	_, entry, _, err := srv.blockerFor(resolveKnobs{})
	if err != nil {
		t.Fatal(err)
	}
	ib := entry.blocker.Load()
	cols, _ := srv.store.Snapshot()
	if _, err := ib.Warm(cols); err != nil {
		t.Fatal(err)
	}

	srv.persistIndex(entry, false) // fails, opens the backoff window
	srv.persistIndex(entry, false) // suppressed: window still open
	if idxStore.saves != 1 {
		t.Fatalf("saves during backoff window = %d, want 1", idxStore.saves)
	}
	if got := srv.counters.indexSaveFailures.Load(); got != 1 {
		t.Errorf("index_save_failures = %d, want 1", got)
	}
	time.Sleep(60 * time.Millisecond) // past the first 50ms window
	srv.persistIndex(entry, false)    // retried: window expired
	if idxStore.saves != 2 {
		t.Fatalf("saves after window expiry = %d, want 2", idxStore.saves)
	}

	// Heal the store; Close must force a save straight through the (now
	// doubled) backoff window and succeed.
	idxStore.fail = false
	closed = true
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if idxStore.saves != 3 {
		t.Fatalf("saves after forced Close = %d, want 3", idxStore.saves)
	}
	entry.mu.Lock()
	saved := entry.savedVersion
	entry.mu.Unlock()
	if saved == 0 {
		t.Error("successful forced save did not record the saved version")
	}
}

// TestIngestJobFailureIsStructured pins the job-failure surface: an
// ingest job that hits a read-only (journal-poisoned) store fails with
// kind "permanent", one attempt, and the structured message in GET
// /v1/jobs/{id}.
func TestIngestJobFailureIsStructured(t *testing.T) {
	srv := New(Config{Store: readOnlyStore{store.NewMemStore()}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	col := testCollection(t, 4)
	buf, err := json.Marshal(CollectionsRequest{Collections: []*corpus.Collection{col}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
	}
	var ack CollectionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jr, err := http.Get(ts.URL + ack.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var job store.Job
		if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if job.Status == store.JobFailed {
			if job.Failure == nil || job.Failure.Kind != "permanent" {
				t.Fatalf("failure = %+v, want kind permanent", job.Failure)
			}
			if job.Attempts != 1 {
				t.Errorf("attempts = %d, want 1 (permanent failures must not retry)", job.Attempts)
			}
			if !strings.Contains(job.Failure.Message, "read-only") || !strings.Contains(job.Error, "read-only") {
				t.Errorf("failure message %q / error %q do not carry the cause", job.Failure.Message, job.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest job never failed; last state %+v", job)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readOnlyStore models a store whose journal has faulted: every append is
// rejected deterministically.
type readOnlyStore struct {
	store.DocumentStore
}

func (readOnlyStore) Append([]*corpus.Collection) (int, error) {
	return 0, errors.New("store: store is read-only after a journal failure")
}
