package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fuzzSeeds are shared request-shaped seeds; testdata/fuzz/ holds the
// committed corpus extending them.
var fuzzSeeds = [][]byte{
	[]byte(`{}`),
	[]byte(`not json at all`),
	[]byte(`{"collections":[]}`),
	[]byte(`{"collections":[{"name":"smith","num_personas":1,"docs":[` +
		`{"id":0,"url":"http://a/0","text":"alpha beta","persona_id":0},` +
		`{"id":1,"url":"http://a/1","text":"beta gamma","persona_id":0}]}]}`),
	[]byte(`{"collections":[{"name":"smith","num_personas":2,"docs":[{"id":7,"persona_id":-1}]}],"strategy":"bogus"}`),
	[]byte(`{"label":"x","strategy":"weighted","clustering":"correlation","blocking":"token",` +
		`"train_fraction":1e308,"regions":-5,"seed":9223372036854775807,"timeout_ms":-1,"score":false}`),
	[]byte("{\"collections\":[{\"name\":\"\u0000\",\"docs\":[{\"text\":\"\\ud800\"}]}]}"),
	[]byte(`{"fresh":true,"seed":1}`),
}

// fuzzServe posts the fuzzed body to path on a tiny-bounded server and
// checks the service invariants that must hold for ANY input: no panic,
// a known status code, and a JSON body (error or result) on every reply.
func fuzzServe(t *testing.T, h http.Handler, path string, data []byte, okStatus ...int) {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	known := append([]int{
		http.StatusBadRequest,
		http.StatusConflict,
		http.StatusRequestEntityTooLarge,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout,
		http.StatusInternalServerError,
	}, okStatus...)
	legal := false
	for _, s := range known {
		if rec.Code == s {
			legal = true
			break
		}
	}
	if !legal {
		t.Fatalf("%s returned unexpected status %d for %q", path, rec.Code, data)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("%s returned a non-JSON body %q for %q", path, rec.Body.Bytes(), data)
	}
}

func FuzzResolveRequestDecode(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	// Small body and time bounds keep pathological-but-valid requests from
	// stalling the fuzzing loop.
	srv := New(Config{DefaultTimeout: 5 * time.Second, MaxBodyBytes: 16 << 10})
	h := srv.Handler()
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzServe(t, h, "/v1/resolve", data, http.StatusOK)
	})
}

func FuzzCollectionsDecode(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	srv := New(Config{DefaultTimeout: 5 * time.Second, MaxBodyBytes: 16 << 10, QueueBuffer: 1 << 14})
	h := srv.Handler()
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzServe(t, h, "/v1/collections", data, http.StatusAccepted)
	})
}
