package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// TestOversizedBodyIs413 is the regression test for oversized request
// bodies answering 400: exceeding MaxBodyBytes must map
// *http.MaxBytesError to 413 with the JSON error envelope.
func TestOversizedBodyIs413(t *testing.T) {
	ts := testServer(t, Config{MaxBodyBytes: 256})
	big := fmt.Sprintf(`{"label": %q, "collections": []}`, strings.Repeat("x", 1024))
	resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var envelope errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("413 body is not the JSON error envelope: %v", err)
	}
	if !strings.Contains(envelope.Error, "256") {
		t.Errorf("413 error %q does not name the limit", envelope.Error)
	}
}

// TestTrailingGarbageRejected is the regression test for decodeJSON
// accepting `{...}junk`: the same body that resolves cleanly must be
// rejected with 400 once trailing bytes follow the JSON value.
func TestTrailingGarbageRejected(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 6)
	clean, err := json.Marshal(ResolveRequest{Collections: []*corpus.Collection{col}})
	if err != nil {
		t.Fatal(err)
	}

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(clean); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean body status = %d, want 200", resp.StatusCode)
	}
	for _, junk := range []string{"junk", "{}", "[1]", `"x"`} {
		resp := post(append(append([]byte(nil), clean...), junk...))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body with trailing %q: status = %d, want 400", junk, resp.StatusCode)
			continue
		}
		var envelope errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("400 body is not the JSON error envelope: %v", err)
		}
		if !strings.Contains(envelope.Error, "trailing") {
			t.Errorf("error %q does not mention trailing data", envelope.Error)
		}
	}
	// Trailing whitespace and newlines remain fine (curl pipelines add
	// them routinely).
	if resp := post(append(append([]byte(nil), clean...), " \n\t"...)); resp.StatusCode != http.StatusOK {
		t.Errorf("trailing whitespace status = %d, want 200", resp.StatusCode)
	}
}

// TestBlocksNeverNull is the regression test for `"blocks": null`: an
// empty result set must marshal as an empty array.
func TestBlocksNeverNull(t *testing.T) {
	blocks, avg := blockResults(nil, true)
	if avg != nil {
		t.Fatalf("average over no blocks = %+v", avg)
	}
	buf, err := json.Marshal(ResolveResponse{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"blocks": []`) && !strings.Contains(string(buf), `"blocks":[]`) {
		t.Fatalf("empty result marshals as %s, want \"blocks\": []", buf)
	}
}

// TestJobRecordEvictedIs410 is the regression test for unbounded job
// retention at the HTTP layer: with a 1-record history, the older of two
// finished ingest jobs answers 410 Gone (not 404), while truly unknown
// IDs stay 404.
func TestJobRecordEvictedIs410(t *testing.T) {
	ts := testServer(t, Config{JobHistory: 1})
	col := testCollection(t, 8)

	postBatch := func(from, to int) string {
		t.Helper()
		body, err := json.Marshal(CollectionsRequest{Collections: []*corpus.Collection{{
			Name: col.Name, Docs: col.Docs[from:to], NumPersonas: col.NumPersonas,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/collections", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		var ack CollectionsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return ack.JobID
	}
	jobStatus := func(id string) (int, store.JobStatus) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var job store.Job
		_ = json.NewDecoder(resp.Body).Decode(&job)
		return resp.StatusCode, job.Status
	}

	first := postBatch(0, 4)
	second := postBatch(4, 8)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, status := jobStatus(second); code == http.StatusOK && status == store.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second ingest job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if code, _ := jobStatus(first); code != http.StatusGone {
		t.Errorf("evicted job %s status = %d, want 410", first, code)
	}
	if code, _ := jobStatus("j999"); code != http.StatusNotFound {
		t.Errorf("never-issued job status = %d, want 404", code)
	}
}

// TestStatePinnedDuringSlowRun is the regression test for the snapshot
// LRU evicting a state whose run is still in flight. A slow run holds
// the state's lock (exactly as a slow blocker would mid-request) while
// other configurations churn the LRU past its cap; the pinned state must
// survive, and a concurrent same-config acquire must get the same state
// object — the serialize-per-config invariant.
func TestStatePinnedDuringSlowRun(t *testing.T) {
	srv := New(Config{MaxSnapshots: 1})
	t.Cleanup(func() { srv.Close(context.Background()) })
	knobs := func(seed int64) resolveKnobs { return resolveKnobs{Seed: &seed} }

	// The slow run: acquired and mid-flight (lock held).
	slow := srv.acquireState(knobs(1))
	slow.mu.Lock()

	// Meanwhile other configurations hammer the 1-entry LRU.
	for i := int64(2); i <= 6; i++ {
		st := srv.acquireState(knobs(i))
		srv.releaseState(st)
	}

	// A same-config request during the slow run must serialize on the
	// SAME state object, not conjure a second one.
	sameCh := make(chan *incrementalState)
	go func() {
		st := srv.acquireState(knobs(1))
		st.mu.Lock() // blocks until the slow run finishes
		st.mu.Unlock()
		sameCh <- st
	}()

	select {
	case st := <-sameCh:
		t.Fatalf("same-config acquire finished while the slow run held the lock (got %p, slow %p)", st, slow)
	case <-time.After(20 * time.Millisecond):
		// Correct: it is blocked on the pinned state's lock.
	}

	slow.mu.Unlock()
	srv.releaseState(slow)
	st := <-sameCh
	if st != slow {
		t.Fatalf("concurrent same-config run got state %p, want the pinned %p", st, slow)
	}
	srv.releaseState(st)

	// Once unpinned, the LRU may evict it again: churn, then re-acquire.
	churn := srv.acquireState(knobs(7))
	srv.releaseState(churn)
	if again := srv.acquireState(knobs(1)); again == slow {
		t.Error("unpinned state survived LRU eviction past the cap")
	} else {
		srv.releaseState(again)
	}
}

// memSnapStore is an in-memory SnapshotStore for testing the service's
// save/load wiring without a disk.
type memSnapStore struct {
	mu    sync.Mutex
	files map[string][]byte
	saves int
	loads int
}

func newMemSnapStore() *memSnapStore {
	return &memSnapStore{files: make(map[string][]byte)}
}

func (m *memSnapStore) Save(key string, snap *pipeline.Snapshot) error {
	var buf bytes.Buffer
	if err := pipeline.EncodeSnapshot(&buf, snap); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[key] = buf.Bytes()
	m.saves++
	return nil
}

func (m *memSnapStore) Touch(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[key]; !ok {
		return fmt.Errorf("no snapshot stored for %q", key)
	}
	return nil
}

func (m *memSnapStore) Load(key string, pl *pipeline.Pipeline) (*pipeline.Snapshot, error) {
	m.mu.Lock()
	buf, ok := m.files[key]
	if ok {
		m.loads++
	}
	m.mu.Unlock()
	if !ok {
		return nil, nil
	}
	return pl.DecodeSnapshot(bytes.NewReader(buf))
}

// TestSnapshotReloadAcrossServers exercises the restart wiring end to
// end at the service layer: a second Server sharing the first one's
// store and snapshot store (a restart, minus the process boundary) must
// answer its first incremental request with every block reused and
// clusters identical to the pre-restart run.
func TestSnapshotReloadAcrossServers(t *testing.T) {
	shared := store.NewMemStore()
	snaps := newMemSnapStore()
	col := testCollection(t, 20)
	if _, err := shared.Append([]*corpus.Collection{col}); err != nil {
		t.Fatal(err)
	}

	incremental := func(ts *httptest.Server, body string) IncrementalResolveResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/resolve/incremental", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("incremental status = %d", resp.StatusCode)
		}
		var out IncrementalResolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	ts1 := testServer(t, Config{Store: shared, Snapshots: snaps})
	before := incremental(ts1, `{"seed": 9}`)
	if before.Incremental.ReusedBlocks != 0 {
		t.Fatalf("first-ever run reused %d blocks", before.Incremental.ReusedBlocks)
	}
	if snaps.saves == 0 {
		t.Fatal("no snapshot was saved after a successful incremental run")
	}

	savesAfterFirstRun := snaps.saves
	ts2 := testServer(t, Config{Store: shared, Snapshots: snaps})
	after := incremental(ts2, `{"seed": 9}`)
	if after.Incremental.ReusedBlocks != after.Incremental.Blocks || after.Incremental.Blocks == 0 {
		t.Fatalf("post-restart stats = %+v, want every block reused", after.Incremental)
	}
	if snaps.loads == 0 {
		t.Fatal("restarted server never loaded the persisted snapshot")
	}
	if snaps.saves != savesAfterFirstRun {
		t.Errorf("an all-reused run re-saved the unchanged snapshot (%d saves, want %d)",
			snaps.saves, savesAfterFirstRun)
	}
	if len(after.Blocks) != len(before.Blocks) {
		t.Fatalf("block count changed across restart: %d vs %d", len(after.Blocks), len(before.Blocks))
	}
	for i := range before.Blocks {
		a, b := before.Blocks[i], after.Blocks[i]
		if a.Name != b.Name || !jsonEqual(t, a.Labels, b.Labels) {
			t.Errorf("block %q: clusters changed across restart", a.Name)
		}
	}

	// "fresh": true ignores the persisted snapshot but still saves a new
	// one, and its clusters agree with the reused ones (the equivalence
	// guarantee).
	ts3 := testServer(t, Config{Store: shared, Snapshots: snaps})
	fresh := incremental(ts3, `{"seed": 9, "fresh": true}`)
	if fresh.Incremental.ReusedBlocks != 0 {
		t.Fatalf("fresh run reused %d blocks", fresh.Incremental.ReusedBlocks)
	}
	for i := range before.Blocks {
		if !jsonEqual(t, before.Blocks[i].Labels, fresh.Blocks[i].Labels) {
			t.Errorf("block %q: fresh clusters diverge from persisted-incremental ones", before.Blocks[i].Name)
		}
	}
}

// TestFreshRunDoesNotForfeitPersistedSnapshot pins the load-once logic:
// a "fresh" request skips the persisted-snapshot load but must not
// consume the single load attempt. The regression scenario: the first
// post-restart request for a configuration is fresh and FAILS (times
// out), leaving no in-memory snapshot — the next non-fresh request must
// still load the persisted snapshot and reuse every block, not
// re-prepare the corpus for the rest of the process lifetime.
func TestFreshRunDoesNotForfeitPersistedSnapshot(t *testing.T) {
	shared := store.NewMemStore()
	snaps := newMemSnapStore()
	if _, err := shared.Append([]*corpus.Collection{testCollection(t, 60)}); err != nil {
		t.Fatal(err)
	}

	post := func(ts *httptest.Server, body string) (int, IncrementalResolveResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/resolve/incremental", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out IncrementalResolveResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	// Seed the persisted snapshot, then "restart".
	ts1 := testServer(t, Config{Store: shared, Snapshots: snaps})
	if code, _ := post(ts1, `{"seed": 3}`); code != http.StatusOK {
		t.Fatalf("seeding run status = %d", code)
	}

	ts2 := testServer(t, Config{Store: shared, Snapshots: snaps})
	// First post-restart request: fresh with a 1ms budget — preparing a
	// 60-document block (1770 pairs × 10 functions) cannot finish, so
	// the run dies with 504 and no snapshot in memory.
	if code, _ := post(ts2, `{"seed": 3, "fresh": true, "timeout_ms": 1}`); code != http.StatusGatewayTimeout {
		t.Fatalf("sabotaged fresh run status = %d, want 504", code)
	}
	// The persisted snapshot must still be loadable now.
	code, got := post(ts2, `{"seed": 3}`)
	if code != http.StatusOK {
		t.Fatalf("post-fresh run status = %d", code)
	}
	if got.Incremental.ReusedBlocks != got.Incremental.Blocks || got.Incremental.Blocks == 0 {
		t.Fatalf("post-fresh stats = %+v, want full reuse from the persisted snapshot", got.Incremental)
	}
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}
