package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/persist"
	"repro/internal/serving"
	"repro/internal/store"
)

// getJSON GETs path and decodes the body into out, returning the status.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

// resolveOK posts an incremental resolve and requires 200.
func resolveOK(t *testing.T, ts *httptest.Server, req IncrementalResolveRequest) IncrementalResolveResponse {
	t.Helper()
	var out IncrementalResolveResponse
	if code := postJSON(t, ts, "/v1/resolve/incremental", req, &out); code != http.StatusOK {
		t.Fatalf("incremental resolve = %d", code)
	}
	return out
}

func TestReadEndpointsServeCommittedResolution(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 24)

	// Before any committed resolution the read path answers 409, not
	// empty results.
	var errOut errorResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:0/entity", &errOut); code != http.StatusConflict {
		t.Fatalf("pre-commit doc lookup = %d, want 409 (%+v)", code, errOut)
	}
	if code := getJSON(t, ts, "/v1/search?name=rivera", &errOut); code != http.StatusConflict {
		t.Fatalf("pre-commit search = %d, want 409", code)
	}

	ingestCollection(t, ts, col)
	resolveOK(t, ts, IncrementalResolveRequest{})

	// Every ingested document answers with the cluster that contains it.
	var byDoc EntityResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:0/entity", &byDoc); code != http.StatusOK {
		t.Fatalf("doc lookup = %d", code)
	}
	if byDoc.Entity == nil || byDoc.Entity.ID == "" {
		t.Fatalf("doc lookup returned no entity: %+v", byDoc)
	}
	found := false
	for _, m := range byDoc.Entity.Members {
		if m.Collection == "rivera" && m.Pos == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cluster %q does not contain (rivera, 0): %+v", byDoc.Entity.ID, byDoc.Entity.Members)
	}

	// The stable ID round-trips through /v1/entities/{id}.
	var byID EntityResponse
	if code := getJSON(t, ts, "/v1/entities/"+byDoc.Entity.ID, &byID); code != http.StatusOK {
		t.Fatalf("entity lookup = %d", code)
	}
	if byID.Entity.ID != byDoc.Entity.ID || len(byID.Entity.Members) != len(byDoc.Entity.Members) {
		t.Fatalf("entity lookup disagrees with doc lookup: %+v vs %+v", byID.Entity, byDoc.Entity)
	}
	if byID.Epoch != byDoc.Epoch || byID.StoreVersion != byDoc.StoreVersion {
		t.Errorf("epoch/version mismatch: %+v vs %+v", byID, byDoc)
	}

	// Search by the collection name finds the block's clusters.
	var search SearchResponse
	if code := getJSON(t, ts, "/v1/search?name=rivera", &search); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}
	if len(search.Hits) == 0 {
		t.Fatal("search for the ingested name found nothing")
	}
	for _, h := range search.Hits {
		if h.Matched < 1 || h.Entity == nil {
			t.Fatalf("bad hit: %+v", h)
		}
	}

	// Misses and malformed requests.
	if code := getJSON(t, ts, "/v1/entities/no-such-id", &errOut); code != http.StatusNotFound {
		t.Errorf("unknown entity = %d, want 404", code)
	}
	if code := getJSON(t, ts, "/v1/docs/rivera:9999/entity", &errOut); code != http.StatusNotFound {
		t.Errorf("out-of-range doc = %d, want 404", code)
	}
	if code := getJSON(t, ts, "/v1/docs/rivera:abc/entity", &errOut); code != http.StatusBadRequest {
		t.Errorf("non-numeric pos = %d, want 400", code)
	}
	if code := getJSON(t, ts, "/v1/docs/rivera/entity", &errOut); code != http.StatusBadRequest {
		t.Errorf("ref without colon = %d, want 400", code)
	}
	if code := getJSON(t, ts, "/v1/search", &errOut); code != http.StatusBadRequest {
		t.Errorf("search without name = %d, want 400", code)
	}
	if code := getJSON(t, ts, "/v1/search?name=rivera&limit=-2", &errOut); code != http.StatusBadRequest {
		t.Errorf("negative limit = %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/entities/"+byDoc.Entity.ID, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST entity = %d, want 405", resp.StatusCode)
	}

	// /v1/stats reports the serving index, read counters and lookup
	// latency observations.
	var stats StatsResponse
	if code := getJSON(t, ts, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if !stats.Serving.Available || stats.Serving.Epoch == 0 {
		t.Errorf("serving report = %+v, want an available index", stats.Serving)
	}
	if stats.Serving.Docs != 24 || stats.Serving.Stale {
		t.Errorf("serving report = %+v, want 24 docs, not stale", stats.Serving)
	}
	if stats.Reads.Entities < 1 || stats.Reads.Docs < 2 || stats.Reads.Search < 1 {
		t.Errorf("read counters = %+v", stats.Reads)
	}
	if stats.Latency.Lookup.Count < 3 {
		t.Errorf("lookup latency count = %d, want >= 3", stats.Latency.Lookup.Count)
	}
	if stats.Latency.Cluster.Count == 0 || stats.Latency.Block.Count == 0 {
		t.Errorf("pipeline stage histograms empty: %+v", stats.Latency)
	}
}

func TestReadCacheHitsAndInvalidation(t *testing.T) {
	ts := testServer(t, Config{})
	col := testCollection(t, 20)
	ingestCollection(t, ts, col)
	resolveOK(t, ts, IncrementalResolveRequest{})

	readStats := func() ReadStats {
		t.Helper()
		var stats StatsResponse
		if code := getJSON(t, ts, "/v1/stats", &stats); code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		return stats.Reads
	}

	var first, second EntityResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:3/entity", &first); code != http.StatusOK {
		t.Fatalf("doc lookup = %d", code)
	}
	before := readStats()
	if before.CacheMisses < 1 || before.CacheSize < 1 {
		t.Fatalf("first lookup did not populate the cache: %+v", before)
	}
	if code := getJSON(t, ts, "/v1/docs/rivera:3/entity", &second); code != http.StatusOK {
		t.Fatalf("repeat doc lookup = %d", code)
	}
	after := readStats()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("repeat lookup was not a cache hit: %+v -> %+v", before, after)
	}
	if first.Epoch != second.Epoch || first.Entity.ID != second.Entity.ID {
		t.Fatalf("cached answer diverges: %+v vs %+v", first, second)
	}

	// A committed ingest batch clears the cache through the append
	// subscription, even before any re-resolve.
	ingestCollection(t, ts, &corpus.Collection{
		Name: "rivera", NumPersonas: col.NumPersonas,
		Docs: []corpus.Document{{ID: 0, URL: "http://example.com/late", Text: "late doc", PersonaID: 0}},
	})
	if n := readStats().CacheSize; n != 0 {
		t.Fatalf("cache size after ingest commit = %d, want 0", n)
	}

	// Re-resolving publishes a new epoch; the same lookup re-renders
	// against it rather than serving the old epoch's body.
	resolveOK(t, ts, IncrementalResolveRequest{})
	var third EntityResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:3/entity", &third); code != http.StatusOK {
		t.Fatalf("post-resolve lookup = %d", code)
	}
	if third.Epoch <= first.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", first.Epoch, third.Epoch)
	}
}

// TestServingRestartServesWithZeroRecompute is the restart half of the
// serving contract: a new server over the same data directory publishes
// the persisted serving index at construction and answers entity lookups
// immediately — no resolve, no pipeline run, zero recompute.
func TestServingRestartServesWithZeroRecompute(t *testing.T) {
	dir := t.TempDir()
	data1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: data1.Store, Serving: data1.Serving})
	ts1 := httptest.NewServer(srv1.Handler())
	ingestCollection(t, ts1, testCollection(t, 20))
	resolveOK(t, ts1, IncrementalResolveRequest{})

	var before EntityResponse
	if code := getJSON(t, ts1, "/v1/docs/rivera:5/entity", &before); code != http.StatusOK {
		t.Fatalf("pre-restart lookup = %d", code)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := data1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory as a "restarted" process.
	data2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer data2.Close()
	srv2 := New(Config{Store: data2.Store, Serving: data2.Serving})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Close(ctx); err != nil {
			t.Errorf("closing restarted server: %v", err)
		}
	}()

	var stats StatsResponse
	if code := getJSON(t, ts2, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if !stats.Serving.Available {
		t.Fatal("restarted server has no serving index before any resolve")
	}
	if stats.Resolve.Runs != 0 || stats.Latency.Cluster.Count != 0 {
		t.Fatalf("restarted server recomputed: %+v", stats.Resolve)
	}
	var after EntityResponse
	if code := getJSON(t, ts2, "/v1/docs/rivera:5/entity", &after); code != http.StatusOK {
		t.Fatalf("post-restart lookup = %d", code)
	}
	if after.Entity.ID != before.Entity.ID || len(after.Entity.Members) != len(before.Entity.Members) {
		t.Fatalf("restart changed the answer: %+v vs %+v", after.Entity, before.Entity)
	}
	if code := getJSON(t, ts2, "/v1/entities/"+before.Entity.ID, &after); code != http.StatusOK {
		t.Fatalf("post-restart entity lookup = %d", code)
	}
}

// TestReadAfterCommitConsistency interleaves ingest batches, incremental
// resolves and concurrent entity lookups (run it with -race). The pinned
// invariant is the staleness contract: a lookup must never observe a
// cluster referencing a document position beyond the store snapshot the
// serving index was built from — the response's store_version bounds every
// member position it may mention.
func TestReadAfterCommitConsistency(t *testing.T) {
	shared := store.NewMemStore()
	// docsAt maps store version -> total docs committed at that version;
	// the subscription fires after each commit, in order.
	var docsMu sync.Mutex
	docsAt := map[uint64]int{0: 0}
	shared.SubscribeAppend(func(ev store.AppendEvent) {
		docsMu.Lock()
		docsAt[ev.Stats.Version] = ev.Stats.Docs
		docsMu.Unlock()
	})

	ts := testServer(t, Config{Store: shared})
	col := testCollection(t, 40)

	const batches = 8
	per := len(col.Docs) / batches
	ingestCollection(t, ts, &corpus.Collection{
		Name: col.Name, Docs: col.Docs[:per], NumPersonas: col.NumPersonas,
	})
	resolveOK(t, ts, IncrementalResolveRequest{})

	checkEntity := func(e *serving.Cluster, version uint64) error {
		docsMu.Lock()
		limit, known := docsAt[version]
		docsMu.Unlock()
		if !known {
			return fmt.Errorf("response claims unknown store version %d", version)
		}
		for _, m := range e.Members {
			if m.Pos >= limit {
				return fmt.Errorf("cluster %s references (%s, %d) but store version %d had only %d docs",
					e.ID, m.Collection, m.Pos, version, limit)
			}
		}
		return nil
	}

	done := make(chan struct{})
	errCh := make(chan error, 8)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				pos := (w*13 + i) % len(col.Docs)
				resp, err := client.Get(fmt.Sprintf("%s/v1/docs/rivera:%d/entity", ts.URL, pos))
				if err != nil {
					report(err)
					return
				}
				var out EntityResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						report(decErr)
						return
					}
					if err := checkEntity(out.Entity, out.StoreVersion); err != nil {
						report(err)
						return
					}
				case http.StatusNotFound:
					// The document is beyond the served resolution — the
					// contract's honest answer while ingest runs ahead.
				default:
					report(fmt.Errorf("doc lookup = %d", resp.StatusCode))
					return
				}
			}
		}(w)
	}

	// Writer: alternate ingest batches and incremental resolves while the
	// readers hammer the hot index.
	for b := 1; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = len(col.Docs)
		}
		ingestCollection(t, ts, &corpus.Collection{
			Name: col.Name, Docs: col.Docs[lo:hi], NumPersonas: col.NumPersonas,
		})
		resolveOK(t, ts, IncrementalResolveRequest{})
	}
	close(done)
	readers.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// After the dust settles the last document is served.
	var out EntityResponse
	if code := getJSON(t, ts, fmt.Sprintf("/v1/docs/rivera:%d/entity", len(col.Docs)-1), &out); code != http.StatusOK {
		t.Fatalf("final doc lookup = %d", code)
	}
	if err := checkEntity(out.Entity, out.StoreVersion); err != nil {
		t.Fatal(err)
	}
}

// TestSearchRejectsTokenFreeQueries pins the whitespace-query fix: a
// ?name= value that tokenizes to nothing (whitespace, punctuation, or
// only sub-minimum tokens) must be rejected with the same 400 as a
// missing query — before this, "%20" slipped past the empty-string check
// and ran a zero-token search that could never match anything.
func TestSearchRejectsTokenFreeQueries(t *testing.T) {
	srv, ts := serverPair(t, Config{})
	ingestCollection(t, ts, testCollection(t, 12))
	resolveOK(t, ts, IncrementalResolveRequest{})

	for _, q := range []string{
		"name=",          // empty
		"name=%20",       // single space
		"name=%20%09%20", // whitespace only
		"name=...",       // punctuation only
		"name=a",         // below the minimum token length
	} {
		var errOut errorResponse
		if code := getJSON(t, ts, "/v1/search?"+q, &errOut); code != http.StatusBadRequest {
			t.Errorf("search ?%s = %d, want 400", q, code)
		}
	}
	// Token-free queries never reach the serving index or the cache.
	if got := srv.counters.readSearch.Load(); got != 0 {
		t.Errorf("readSearch = %d after rejected queries, want 0", got)
	}
	// A real query still works.
	var search SearchResponse
	if code := getJSON(t, ts, "/v1/search?name=rivera", &search); code != http.StatusOK {
		t.Fatalf("search = %d, want 200", code)
	}
}

// TestDocEntityRequiresCanonicalPosition pins the cache-aliasing fix:
// strconv.Atoi accepted "+3" and "03" for /v1/docs/{ref}/entity, so one
// document could occupy many response-cache entries (and a client could
// mint unbounded keys for one resource). Only the canonical digit-only
// spelling may answer 200.
func TestDocEntityRequiresCanonicalPosition(t *testing.T) {
	srv, ts := serverPair(t, Config{})
	ingestCollection(t, ts, testCollection(t, 12))
	resolveOK(t, ts, IncrementalResolveRequest{})

	var canonical EntityResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:3/entity", &canonical); code != http.StatusOK {
		t.Fatalf("canonical lookup = %d", code)
	}
	cached := srv.readCache.size()

	for _, ref := range []string{
		"rivera:+3", "rivera:03", "rivera:003", "rivera:%203", "rivera:3%20", "rivera:-0",
	} {
		var errOut errorResponse
		if code := getJSON(t, ts, "/v1/docs/"+ref+"/entity", &errOut); code != http.StatusBadRequest {
			t.Errorf("lookup %q = %d, want 400", ref, code)
		}
	}
	// None of the aliases minted a cache entry for the same document.
	if got := srv.readCache.size(); got != cached {
		t.Errorf("cache grew from %d to %d entries on aliased refs", cached, got)
	}
	// "0" itself stays canonical.
	if code := getJSON(t, ts, "/v1/docs/rivera:0/entity", &struct{}{}); code != http.StatusOK {
		t.Errorf("pos 0 lookup rejected")
	}
}

// TestEntityLookupBatch pins POST /v1/entities/lookup: many IDs and doc
// refs answered in one serving-index pass, per-item misses as null
// entities, the shared read cache serving repeats, and the request
// bounds (emptiness, item cap, ref syntax) as 400s.
func TestEntityLookupBatch(t *testing.T) {
	ts := testServer(t, Config{})
	ingestCollection(t, ts, testCollection(t, 30))
	resolveOK(t, ts, IncrementalResolveRequest{})

	var byDoc EntityResponse
	if code := getJSON(t, ts, "/v1/docs/rivera:0/entity", &byDoc); code != http.StatusOK {
		t.Fatalf("seed lookup = %d", code)
	}
	id := byDoc.Entity.ID

	req := LookupRequest{
		IDs:  []string{id, "no-such-id"},
		Refs: []string{"rivera:0", "rivera:9999"},
	}
	var out LookupResponse
	if code := postJSON(t, ts, "/v1/entities/lookup", req, &out); code != http.StatusOK {
		t.Fatalf("lookup = %d", code)
	}
	if len(out.Results) != 4 || out.Found != 2 {
		t.Fatalf("lookup answered %d results with %d found, want 4/2", len(out.Results), out.Found)
	}
	if out.Results[0].ID != id || out.Results[0].Entity == nil || out.Results[0].Entity.ID != id {
		t.Errorf("results[0] = %+v, want the seed entity by ID", out.Results[0])
	}
	if out.Results[1].ID != "no-such-id" || out.Results[1].Entity != nil {
		t.Errorf("results[1] = %+v, want a null-entity miss", out.Results[1])
	}
	if out.Results[2].Ref != "rivera:0" || out.Results[2].Entity == nil || out.Results[2].Entity.ID != id {
		t.Errorf("results[2] = %+v, want the same entity by ref", out.Results[2])
	}
	if out.Results[3].Ref != "rivera:9999" || out.Results[3].Entity != nil {
		t.Errorf("results[3] = %+v, want a null-entity miss", out.Results[3])
	}
	if out.Epoch == 0 {
		t.Errorf("lookup response carries no serving epoch")
	}

	// The batch shares the read cache: an identical repeat is a hit.
	var before, after StatsResponse
	getJSON(t, ts, "/v1/stats", &before)
	var repeat LookupResponse
	if code := postJSON(t, ts, "/v1/entities/lookup", req, &repeat); code != http.StatusOK {
		t.Fatalf("repeat lookup = %d", code)
	}
	if repeat.Found != out.Found || len(repeat.Results) != len(out.Results) {
		t.Fatalf("cached repeat diverges: %+v", repeat)
	}
	getJSON(t, ts, "/v1/stats", &after)
	if after.Reads.Lookup != 2 {
		t.Errorf("reads.lookup = %d, want 2", after.Reads.Lookup)
	}
	if after.Reads.CacheHits <= before.Reads.CacheHits {
		t.Errorf("repeat batch missed the read cache (hits %d -> %d)",
			before.Reads.CacheHits, after.Reads.CacheHits)
	}

	// Bounds and syntax.
	var errOut errorResponse
	if code := postJSON(t, ts, "/v1/entities/lookup", LookupRequest{}, &errOut); code != http.StatusBadRequest {
		t.Errorf("empty lookup = %d, want 400", code)
	}
	over := LookupRequest{IDs: make([]string, maxLookupItems+1)}
	for i := range over.IDs {
		over.IDs[i] = "x"
	}
	if code := postJSON(t, ts, "/v1/entities/lookup", over, &errOut); code != http.StatusBadRequest {
		t.Errorf("oversized lookup = %d, want 400", code)
	}
	for _, ref := range []string{"rivera", "rivera:+3", "rivera:03", "rivera:x"} {
		if code := postJSON(t, ts, "/v1/entities/lookup", LookupRequest{Refs: []string{ref}}, &errOut); code != http.StatusBadRequest {
			t.Errorf("ref %q = %d, want 400", ref, code)
		}
	}

	// GET is not the batch verb.
	if code := getJSON(t, ts, "/v1/entities/lookup", &errOut); code != http.StatusMethodNotAllowed {
		t.Errorf("GET lookup = %d, want 405", code)
	}
}

// TestEntityLookupBeforeCommit pins the 409 contract: the batch endpoint
// serves committed resolutions only, like its single-item siblings.
func TestEntityLookupBeforeCommit(t *testing.T) {
	ts := testServer(t, Config{})
	var errOut errorResponse
	if code := postJSON(t, ts, "/v1/entities/lookup", LookupRequest{IDs: []string{"x"}}, &errOut); code != http.StatusConflict {
		t.Fatalf("lookup on empty server = %d, want 409", code)
	}
}
