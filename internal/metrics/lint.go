package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
	leRe     = regexp.MustCompile(`,?le="[^"]*"`)
)

// LintExposition validates text in the Prometheus exposition format
// (version 0.0.4) and returns every violation found: malformed HELP, TYPE
// or sample lines, samples preceding their family's TYPE line, duplicate
// TYPE lines, histogram buckets that are not cumulative, and histogram
// families whose +Inf bucket disagrees with _count. It exists for the
// conformance tests — the registry's own renderer and any future emitter
// are checked against one shared grammar.
func LintExposition(text string) []string {
	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	types := map[string]string{}
	lastBucket := map[string]int64{} // family+labels (le stripped) -> last cumulative count
	infSeen := map[string]int64{}
	counts := map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				badf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				badf("malformed TYPE line: %q", line)
				continue
			}
			if _, dup := types[m[1]]; dup {
				badf("duplicate TYPE for %s", m[1])
			}
			types[m[1]] = m[2]
		case line == "":
			badf("blank line in exposition")
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				badf("malformed sample line: %q", line)
				continue
			}
			name, labels := m[1], m[2]
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if fam := strings.TrimSuffix(name, suffix); fam != name && types[fam] == "histogram" {
					base = fam
				}
			}
			if _, ok := types[base]; !ok {
				badf("sample %q precedes its TYPE line", line)
				continue
			}
			if base != name { // histogram sample
				if strings.HasSuffix(name, "_sum") {
					continue
				}
				val, err := strconv.ParseInt(m[3], 10, 64)
				if err != nil {
					badf("non-integer histogram count %q", line)
					continue
				}
				key := base + leRe.ReplaceAllString(labels, "")
				switch {
				case strings.HasSuffix(name, "_bucket"):
					if val < lastBucket[key] {
						badf("bucket counts not cumulative at %q", line)
					}
					lastBucket[key] = val
					if strings.Contains(labels, `le="+Inf"`) {
						infSeen[key] = val
					}
				case strings.HasSuffix(name, "_count"):
					counts[key] = val
				}
			}
		}
	}
	for k, c := range counts {
		inf, ok := infSeen[k]
		if !ok {
			badf("histogram %s has no +Inf bucket", k)
		} else if inf != c {
			badf("histogram %s: +Inf bucket %d != _count %d", k, inf, c)
		}
	}
	return problems
}
