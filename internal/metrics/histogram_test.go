package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // <= 1µs bucket
	h.Observe(time.Microsecond)      // still the 1µs bucket (inclusive bound)
	h.Observe(3 * time.Microsecond)  // 4µs bucket
	h.Observe(time.Hour)             // beyond the last bound: overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets reported")
	}
	if s.Buckets[0].LeMicros != 1 || s.Buckets[0].Count != 2 {
		t.Fatalf("first bucket = %+v, want le_us=1 count=2", s.Buckets[0])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeMicros != 0 || last.Count != 4 {
		t.Fatalf("overflow bucket = %+v, want le_us=0 (inf) cumulative count=4", last)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d count %d < previous %d", i, s.Buckets[i].Count, s.Buckets[i-1].Count)
		}
	}
	if s.SumMillis <= 0 {
		t.Fatalf("sum_ms = %g, want > 0", s.SumMillis)
	}
}

// bucketIndexRef is the pre-optimization reference: a linear scan over the
// inclusive upper bounds. -1 means overflow.
func bucketIndexRef(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	for i := range bucketBounds {
		if d <= bucketBounds[i] {
			return i
		}
	}
	return -1
}

// bucketOf observes d into a fresh histogram and reports which bucket the
// O(1) index computation chose (-1 = overflow).
func bucketOf(t *testing.T, d time.Duration) int {
	t.Helper()
	var h Histogram
	h.Observe(d)
	if h.overflow.Load() == 1 {
		return -1
	}
	for i := range h.counts {
		if h.counts[i].Load() == 1 {
			return i
		}
	}
	t.Fatalf("Observe(%v) landed in no bucket", d)
	return 0
}

// TestHistogramBucketBoundaries pins the O(1) bits.Len64 bucket index to
// the linear-scan reference at every boundary: zero, each exact bucket
// bound, one nanosecond past each bound, and overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []time.Duration{0, 1, 999, 1000, 1001}
	for i := range bucketBounds {
		cases = append(cases, bucketBounds[i], bucketBounds[i]+1)
	}
	cases = append(cases, bucketBounds[histogramBuckets-1]*2, time.Hour, -time.Second)
	for _, d := range cases {
		want := bucketIndexRef(d)
		if got := bucketOf(t, d); got != want {
			t.Errorf("Observe(%v): bucket %d, want %d", d, got, want)
		}
	}
	// Spot-check the exact-bound contract independently of the reference:
	// a bound is inclusive, one nanosecond more spills into the next bucket.
	if got := bucketOf(t, bucketBounds[7]); got != 7 {
		t.Errorf("exact bound %v: bucket %d, want 7", bucketBounds[7], got)
	}
	if got := bucketOf(t, bucketBounds[7]+1); got != 8 {
		t.Errorf("bound+1ns %v: bucket %d, want 8", bucketBounds[7]+1, got)
	}
	if got := bucketOf(t, bucketBounds[histogramBuckets-1]+1); got != -1 {
		t.Errorf("past the last bound: bucket %d, want overflow", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zero", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}
