package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // <= 1µs bucket
	h.Observe(time.Microsecond)      // still the 1µs bucket (inclusive bound)
	h.Observe(3 * time.Microsecond)  // 4µs bucket
	h.Observe(time.Hour)             // beyond the last bound: overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets reported")
	}
	if s.Buckets[0].LeMicros != 1 || s.Buckets[0].Count != 2 {
		t.Fatalf("first bucket = %+v, want le_us=1 count=2", s.Buckets[0])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeMicros != 0 || last.Count != 4 {
		t.Fatalf("overflow bucket = %+v, want le_us=0 (inf) cumulative count=4", last)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d count %d < previous %d", i, s.Buckets[i].Count, s.Buckets[i-1].Count)
		}
	}
	if s.SumMillis <= 0 {
		t.Fatalf("sum_ms = %g, want > 0", s.SumMillis)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zero", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}
