package metrics

import (
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryRendersCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", "endpoint", "reads")
	c.Add(3)
	r.Gauge("test_depth", "Queue depth.", func() float64 { return 7 })
	r.GaugeFunc("test_shard_keys", "Keys per shard.", func() []Sample {
		return []Sample{
			{Labels: []string{"shard", "0"}, Value: 2},
			{Labels: []string{"shard", "1"}, Value: 5},
		}
	})
	r.CounterFunc("test_recoveries_total", "Recoveries.", func() []Sample {
		return []Sample{{Value: 1}}
	})
	h := r.Histogram("test_latency_seconds", "Latency.", "stage", "block")
	h.Observe(3 * time.Microsecond)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n# TYPE test_requests_total counter\ntest_requests_total{endpoint=\"reads\"} 3\n",
		"# TYPE test_depth gauge\ntest_depth 7\n",
		"test_shard_keys{shard=\"0\"} 2\ntest_shard_keys{shard=\"1\"} 5\n",
		"test_recoveries_total 1\n",
		"# TYPE test_latency_seconds histogram\n",
		"test_latency_seconds_bucket{stage=\"block\",le=\"1e-06\"} 0\n",
		"test_latency_seconds_bucket{stage=\"block\",le=\"4e-06\"} 1\n",
		"test_latency_seconds_bucket{stage=\"block\",le=\"+Inf\"} 1\n",
		"test_latency_seconds_sum{stage=\"block\"} 3e-06\n",
		"test_latency_seconds_count{stage=\"block\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families are sorted by name.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_latency_seconds") {
		t.Error("families are not sorted by name")
	}
}

func TestRegistrySharedFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_outcomes_total", "Outcomes.", "outcome", "reused")
	b := r.Counter("test_outcomes_total", "Outcomes.", "outcome", "prepared")
	a.Inc()
	b.Add(2)
	out := render(t, r)
	// One HELP/TYPE pair, two series.
	if strings.Count(out, "# TYPE test_outcomes_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "test_outcomes_total{outcome=\"reused\"} 1\n") ||
		!strings.Contains(out, "test_outcomes_total{outcome=\"prepared\"} 2\n") {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestRegistryPanicsOnConflictsAndBadNames(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_total", "A counter.")
	mustPanic("type conflict", func() { r.Gauge("test_total", "A counter.", func() float64 { return 0 }) })
	mustPanic("help conflict", func() { r.Counter("test_total", "Different help.") })
	mustPanic("bad metric name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label name", func() { r.Counter("test_ok_total", "x", "bad-label", "v") })
	mustPanic("odd labels", func() { r.Counter("test_odd_total", "x", "only_key") })
}

func TestRegistryEscapesLabelValuesAndHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_escape_total", "line1\nline2 \\ backslash", "k", "quote\"back\\slash\nnl")
	out := render(t, r)
	if !strings.Contains(out, `# HELP test_escape_total line1\nline2 \\ backslash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_escape_total{k="quote\"back\\slash\nnl"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestRegistryExpositionSyntax lint-checks the rendered output against the
// shared exposition grammar — the package-level half of the /metrics
// conformance contract (the service test covers the full endpoint).
func TestRegistryExpositionSyntax(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "A.", "k", "v").Add(5)
	r.Gauge("test_b", "B.", func() float64 { return 1.5 })
	h := r.Histogram("test_c_seconds", "C.", "stage", "x")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	out := render(t, r)
	for _, p := range LintExposition(out) {
		t.Error(p)
	}
	if !strings.Contains(out, "test_c_seconds_count") {
		t.Error("histogram family missing from exposition")
	}
}

// TestLintCatchesViolations makes sure the linter is not vacuously green.
func TestLintCatchesViolations(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"sample before TYPE", "test_x 1\n"},
		{"malformed sample", "# TYPE test_x gauge\ntest_x{bad-label=\"v\"} 1\n"},
		{"non-cumulative buckets", "# TYPE test_h histogram\ntest_h_bucket{le=\"1\"} 5\ntest_h_bucket{le=\"2\"} 3\ntest_h_bucket{le=\"+Inf\"} 5\ntest_h_sum 1\ntest_h_count 5\n"},
		{"inf vs count mismatch", "# TYPE test_h histogram\ntest_h_bucket{le=\"+Inf\"} 4\ntest_h_sum 1\ntest_h_count 5\n"},
	} {
		if len(LintExposition(tc.text)) == 0 {
			t.Errorf("%s: lint found no problems", tc.name)
		}
	}
}
