package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument type strings, as they appear on Prometheus # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; counters obtained from a Registry additionally render themselves
// on the /metrics exposition.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Counters are monotonic: callers must
// pass n >= 0.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the counter's current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Sample is one rendered metric sample of a callback-backed family:
// alternating label name/value pairs plus the value at collection time.
type Sample struct {
	// Labels holds alternating label name, label value pairs.
	Labels []string
	// Value is the sample's value.
	Value float64
}

// series is one labeled member of a family. Exactly one of the four
// sources is set.
type series struct {
	labels  []string // alternating name, value
	counter *Counter
	hist    *Histogram
	gauge   func() float64  // single gauge callback
	samples func() []Sample // dynamic multi-sample callback
}

// family groups every series registered under one metric name: one # HELP
// and # TYPE line, then each series' samples.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry is a set of self-registering instruments renderable in the
// Prometheus text exposition format. Instruments registered under the same
// name with identical help and type but different labels join one family
// (the stage-latency histograms, the per-kind degradation counters);
// re-registering a name with a different type or help is a programming
// error and panics. A Registry is safe for concurrent registration,
// observation and rendering.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers and returns a counter. labels are alternating label
// name, label value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a callback-backed counter family: fn is invoked at
// render time and every returned sample is emitted under name. It is the
// shape for counters owned elsewhere (a backing store's lifetime totals)
// that the registry can read but not own.
func (r *Registry) CounterFunc(name, help string, fn func() []Sample) {
	r.register(name, help, typeCounter, &series{samples: fn})
}

// Gauge registers a single-sample gauge whose value is read at render time.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, typeGauge, &series{labels: labels, gauge: fn})
}

// GaugeFunc registers a callback-backed gauge family: fn is invoked at
// render time and every returned sample is emitted under name — the shape
// for dynamic label sets like per-shard index balance.
func (r *Registry) GaugeFunc(name, help string, fn func() []Sample) {
	r.register(name, help, typeGauge, &series{samples: fn})
}

// Histogram registers and returns a latency histogram. Its buckets render
// as a Prometheus _bucket/_sum/_count family with le bounds in seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := &Histogram{}
	r.register(name, help, typeHistogram, &series{labels: labels, hist: h})
	return h
}

func (r *Registry) register(name, help, typ string, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if len(s.labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: labels must be name/value pairs, got %d strings", name, len(s.labels)))
	}
	for i := 0; i < len(s.labels); i += 2 {
		if !validLabel(s.labels[i]) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, s.labels[i]))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (%q), was %s (%q)", name, typ, help, f.typ, f.help))
	}
	f.series = append(f.series, s)
}

// validName reports whether name is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel reports whether name is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): families sorted by name, each with its # HELP
// and # TYPE line followed by its samples; histograms expand into
// cumulative _bucket series (le in seconds), _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				writeLine(&b, f.name, s.labels, strconv.FormatInt(s.counter.Load(), 10))
			case s.gauge != nil:
				writeLine(&b, f.name, s.labels, formatFloat(s.gauge()))
			case s.samples != nil:
				for _, smp := range s.samples() {
					writeLine(&b, f.name, smp.Labels, formatFloat(smp.Value))
				}
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram series into its cumulative buckets,
// sum and count. The +Inf bucket and _count are both the cumulative total
// read from the buckets, so the two can never disagree mid-scrape even
// while observations land concurrently.
func writeHistogram(b *strings.Builder, name string, labels []string, h *Histogram) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := formatFloat(bucketBounds[i].Seconds())
		writeLine(b, name+"_bucket", append(append([]string{}, labels...), "le", le),
			strconv.FormatInt(cum, 10))
	}
	cum += h.overflow.Load()
	writeLine(b, name+"_bucket", append(append([]string{}, labels...), "le", "+Inf"),
		strconv.FormatInt(cum, 10))
	writeLine(b, name+"_sum", labels, formatFloat(float64(h.sumNanos.Load())/1e9))
	writeLine(b, name+"_count", labels, strconv.FormatInt(cum, 10))
}

// writeLine emits one sample: name{labels} value.
func writeLine(b *strings.Builder, name string, labels []string, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[i+1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
