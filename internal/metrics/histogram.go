// Package metrics holds the service's in-process observability
// primitives: a fixed-bucket log-scale latency histogram cheap enough to
// sit on the hot read path (one atomic add per observation) and a small
// self-registering instrument Registry that renders every counter, gauge
// and histogram in the Prometheus text exposition format — all
// dependency-free. Histograms stay JSON-shaped for GET /v1/stats through
// Snapshot.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histogramBuckets is the number of finite buckets. Bucket i covers
// durations up to 1µs·2^i, so the 26 buckets span 1µs to ~33.5s — wide
// enough for a microsecond index lookup and a multi-second full resolve on
// one scale. Observations beyond the last bound land in the overflow
// bucket.
const histogramBuckets = 26

// bucketBounds are the inclusive upper bounds, precomputed once.
var bucketBounds = func() [histogramBuckets]time.Duration {
	var b [histogramBuckets]time.Duration
	d := time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Histogram is a concurrency-safe latency histogram over fixed log-scale
// buckets (powers of two from 1µs). The zero value is ready to use.
type Histogram struct {
	counts   [histogramBuckets]atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	// Bucket i is the smallest with d <= 1µs·2^i. With u the duration in
	// microseconds rounded up, that is the bit length of u-1 — O(1) where
	// the old linear scan walked up to 26 bounds per observation on the
	// hot read path.
	u := (uint64(d) + 999) / 1000
	if u <= 1 {
		h.counts[0].Add(1)
		return
	}
	i := bits.Len64(u - 1)
	if i >= histogramBuckets {
		h.overflow.Add(1)
		return
	}
	h.counts[i].Add(1)
}

// Bucket is one histogram bar in the JSON report: the cumulative count of
// observations at or below the bound, Prometheus-style, so downstream
// tooling can compute quantiles without knowing the bucket layout.
type Bucket struct {
	// LeMicros is the bucket's inclusive upper bound in microseconds; the
	// final bucket reports 0, meaning +Inf.
	LeMicros int64 `json:"le_us"`
	// Count is the cumulative number of observations <= the bound.
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram, JSON-shaped for
// /v1/stats.
type Snapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// SumMillis is the total observed time in milliseconds (fractional).
	SumMillis float64 `json:"sum_ms"`
	// Buckets are the cumulative log-scale buckets; empty buckets with no
	// observations at or below them are elided from the front, trailing
	// saturated buckets collapse into the last entry.
	Buckets []Bucket `json:"buckets"`
}

// Snapshot copies the current counts. Concurrent Observe calls may land
// between bucket reads — the snapshot is advisory monitoring output, not a
// consistent cut.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Count: h.count.Load(), SumMillis: float64(h.sumNanos.Load()) / 1e6}
	cum := int64(0)
	first, last := -1, -1
	var raw [histogramBuckets + 1]int64
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
		if raw[i] > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	raw[histogramBuckets] = h.overflow.Load()
	if raw[histogramBuckets] > 0 {
		if first < 0 {
			first = histogramBuckets
		}
		last = histogramBuckets
	}
	if first < 0 {
		return s
	}
	for i := 0; i <= last; i++ {
		cum += raw[i]
		if i < first {
			continue
		}
		le := int64(0) // +Inf for the overflow bucket
		if i < histogramBuckets {
			le = int64(bucketBounds[i] / time.Microsecond)
		}
		s.Buckets = append(s.Buckets, Bucket{LeMicros: le, Count: cum})
	}
	return s
}
