package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/stats"
)

func www05Subset(t *testing.T, n int) []*corpus.Collection {
	t.Helper()
	d, err := corpus.WWW05Profile().Generate(2010)
	if err != nil {
		t.Fatal(err)
	}
	if n > len(d.Collections) {
		n = len(d.Collections)
	}
	return d.Collections[:n]
}

// TestRunMatchesLegacyResolverPath pins the acceptance criterion: with the
// default exact-key scheme the pipeline's output (cluster labels, sources
// and scores) is identical to the pre-refactor per-collection
// Prepare → Run → BestAnyCriterion path on the same seed.
func TestRunMatchesLegacyResolverPath(t *testing.T) {
	cols := www05Subset(t, 3)
	const seed = 7

	opts := core.DefaultOptions()
	opts.Seed = seed
	pl, err := New(Config{Options: opts, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := pl.Run(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cols) {
		t.Fatalf("results = %d blocks, want %d", len(results), len(cols))
	}

	r, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, col := range cols {
		prep, err := r.Prepare(col)
		if err != nil {
			t.Fatal(err)
		}
		a, err := prep.Run(stats.SplitSeedN(seed, i))
		if err != nil {
			t.Fatal(err)
		}
		want, err := a.BestAnyCriterion()
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got.Block != col {
			t.Errorf("block %d: exact blocking did not reuse the ingested collection", i)
		}
		if got.Resolution.Source != want.Source {
			t.Errorf("block %d: source %q, want %q", i, got.Resolution.Source, want.Source)
		}
		for j := range want.Labels {
			if got.Resolution.Labels[j] != want.Labels[j] {
				t.Fatalf("block %d: label[%d] = %d, want %d", i, j, got.Resolution.Labels[j], want.Labels[j])
			}
		}
		wantScore, err := eval.Evaluate(want.Labels, col.GroundTruth())
		if err != nil {
			t.Fatal(err)
		}
		if got.Score == nil || *got.Score != wantScore {
			t.Errorf("block %d: score %v, want %v", i, got.Score, wantScore)
		}
	}
}

// TestRunMatchesResolverResolve checks the single-block identity against
// core.Resolver.Resolve itself, using a SeedFn that reproduces Resolve's
// direct use of the resolver seed.
func TestRunMatchesResolverResolve(t *testing.T) {
	cols := www05Subset(t, 1)
	opts := core.DefaultOptions()
	opts.Seed = 42

	pl, err := New(Config{Options: opts, SeedFn: func(int) int64 { return opts.Seed }})
	if err != nil {
		t.Fatal(err)
	}
	results, err := pl.Run(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}

	r, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Resolve(cols[0])
	if err != nil {
		t.Fatal(err)
	}
	got := results[0].Resolution
	if got.Source != want.Source {
		t.Errorf("source %q, want %q", got.Source, want.Source)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}

func TestRunCanceledPromptly(t *testing.T) {
	cols := www05Subset(t, 12)
	pl, err := New(Config{Score: true})
	if err != nil {
		t.Fatal(err)
	}

	// A 1ms deadline fires inside the first block's preparation (feature
	// extraction + ten 100-doc matrices take far longer); the abort must
	// propagate out of the in-flight stages promptly with ctx.Err().
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := pl.Run(ctx, cols)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if results != nil {
		t.Errorf("partial results returned alongside error")
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}

	// Pre-canceled context: no work at all.
	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := pl.Run(canceled, cols); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v, want context.Canceled", err)
	}
}

func TestSchemeBlockerMergesAcrossCollections(t *testing.T) {
	// Two collections whose names share a token; token blocking must merge
	// them into one valid block with densely remapped personas.
	colA := &corpus.Collection{
		Name: "john smith", NumPersonas: 2,
		Docs: []corpus.Document{
			{ID: 0, Text: "a", PersonaID: 1},
			{ID: 1, Text: "b", PersonaID: 0},
		},
	}
	colB := &corpus.Collection{
		Name: "smith, jane", NumPersonas: 1,
		Docs: []corpus.Document{
			{ID: 0, Text: "c", PersonaID: 0},
		},
	}
	blocker := NewSchemeBlocker(blocking.TokenBlocking{})
	blocks, err := blocker.Block(context.Background(), []*corpus.Collection{colA, colB})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 merged block", len(blocks))
	}
	b := blocks[0]
	if err := b.Validate(); err != nil {
		t.Fatalf("merged block invalid: %v", err)
	}
	if b.NumPersonas != 3 {
		t.Errorf("merged personas = %d, want 3", b.NumPersonas)
	}
	if !strings.Contains(b.Name, "john smith") || !strings.Contains(b.Name, "smith, jane") {
		t.Errorf("merged name %q does not carry both sources", b.Name)
	}
	// Persona labels remap in first-seen order: doc0(A/1)→0, doc1(A/0)→1,
	// doc2(B/0)→2.
	wantLabels := []int{0, 1, 2}
	for i, d := range b.Docs {
		if d.ID != i || d.PersonaID != wantLabels[i] {
			t.Errorf("doc %d: ID=%d persona=%d, want ID=%d persona=%d",
				i, d.ID, d.PersonaID, i, wantLabels[i])
		}
	}
}

func TestSchemeBlockerSplitsWithinCollection(t *testing.T) {
	// A key function that splits one collection into per-document keys:
	// disconnected docs become singleton blocks that still validate, and
	// Run resolves them trivially.
	col := &corpus.Collection{
		Name: "solo", NumPersonas: 2,
		Docs: []corpus.Document{
			{ID: 0, Text: "a", PersonaID: 1},
			{ID: 1, Text: "b", PersonaID: 0},
		},
	}
	blocker := SchemeBlocker{
		Scheme: blocking.ExactKey{},
		Keys: func(c *corpus.Collection, d corpus.Document) []string {
			return []string{fmt.Sprintf("%s-%d", c.Name, d.ID)}
		},
	}
	pl, err := New(Config{Blocker: blocker, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := pl.Run(context.Background(), []*corpus.Collection{col})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 singleton blocks", len(results))
	}
	for i, res := range results {
		if err := res.Block.Validate(); err != nil {
			t.Errorf("block %d invalid: %v", i, err)
		}
		if got := res.Resolution.NumEntities(); got != 1 {
			t.Errorf("block %d entities = %d, want 1", i, got)
		}
		if res.Score == nil {
			t.Errorf("block %d missing score", i)
		}
	}
}

func TestParseStrategyAndBlockerErrors(t *testing.T) {
	if _, err := ParseStrategy("bogus"); err == nil || !strings.Contains(err.Error(), "best, threshold, weighted, majority") {
		t.Errorf("ParseStrategy error %v does not list valid options", err)
	}
	if _, err := ParseBlocker("bogus"); err == nil || !strings.Contains(err.Error(), "exact, token, sortedneighborhood, canopy") {
		t.Errorf("ParseBlocker error %v does not list valid options", err)
	}
	if _, err := core.ParseClusteringMethod("bogus"); err == nil || !strings.Contains(err.Error(), "closure, correlation") {
		t.Errorf("ParseClusteringMethod error %v does not list valid options", err)
	}
	for _, name := range StrategyNames {
		if _, err := ParseStrategy(name); err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
		}
	}
	for _, name := range blocking.SchemeNames {
		if _, err := ParseBlocker(name); err != nil {
			t.Errorf("ParseBlocker(%q): %v", name, err)
		}
	}
}

func TestNewDefaultsOptionsFieldWise(t *testing.T) {
	// Partially-set Options keep their explicit fields; only zero fields
	// take defaults.
	pl, err := New(Config{Options: core.Options{Seed: 42, Clustering: core.CorrelationClustering}})
	if err != nil {
		t.Fatal(err)
	}
	got := pl.Options()
	if got.Seed != 42 {
		t.Errorf("Seed = %d, want explicit 42", got.Seed)
	}
	if got.Clustering != core.CorrelationClustering {
		t.Errorf("Clustering = %v, want explicit correlation", got.Clustering)
	}
	def := core.DefaultOptions()
	if got.TrainFraction != def.TrainFraction || got.RegionK != def.RegionK ||
		len(got.FunctionIDs) != len(def.FunctionIDs) {
		t.Errorf("zero fields not defaulted: %+v", got)
	}
}

func TestAverageRunsCanceled(t *testing.T) {
	cols := www05Subset(t, 1)
	pl, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	blocks, prepared, err := pl.Prepare(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}
	truths := [][]int{blocks[0].GroundTruth()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = AverageRuns(ctx, prepared, truths, 2,
		func(run, block int) int64 { return stats.SplitSeedN(1, run*1000+block) },
		core.DefaultOptions(), BestAnyCriterion())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
