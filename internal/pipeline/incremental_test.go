package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// incrementalCollections generates the growing corpus the incremental
// tests ingest: three person-name collections with different sizes and
// persona structure.
func incrementalCollections(t *testing.T) []*corpus.Collection {
	t.Helper()
	cfgs := []corpus.CollectionConfig{
		{Name: "rivera", NumDocs: 16, NumPersonas: 3, Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: 21},
		{Name: "cohen", NumDocs: 12, NumPersonas: 2, Noise: 0.3, MissingInfo: 0.3, Spurious: 0.1, Seed: 33},
		{Name: "smith", NumDocs: 14, NumPersonas: 4, Noise: 0.5, MissingInfo: 0.1, Spurious: 0.3, Seed: 45},
	}
	cols := make([]*corpus.Collection, len(cfgs))
	for i, cfg := range cfgs {
		col, err := corpus.GenerateCollection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = col
	}
	return cols
}

// batchPrefix simulates append-only ingestion: batch k of total holds the
// first ceil(len·(k+1)/total) documents of every collection, so each batch
// extends the previous one and the last batch is the full union.
func batchPrefix(cols []*corpus.Collection, k, total int) []*corpus.Collection {
	out := make([]*corpus.Collection, 0, len(cols))
	for _, col := range cols {
		n := (len(col.Docs)*(k+1) + total - 1) / total
		if n > len(col.Docs) {
			n = len(col.Docs)
		}
		docs := append([]corpus.Document(nil), col.Docs[:n]...)
		personas := 0
		for _, d := range docs {
			if d.PersonaID >= personas {
				personas = d.PersonaID + 1
			}
		}
		out = append(out, &corpus.Collection{Name: col.Name, Docs: docs, NumPersonas: personas})
	}
	return out
}

func incrementalPipeline(t *testing.T, scheme, strategy, clustering string) *Pipeline {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Seed = 42
	m, err := core.ParseClusteringMethod(clustering)
	if err != nil {
		t.Fatal(err)
	}
	opts.Clustering = m
	strat, err := ParseStrategy(strategy)
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := ParseBlocker(scheme)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(Config{Options: opts, Strategy: strat, Blocker: blocker, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestIncrementalEqualsFull is the equivalence harness pinning the
// headline guarantee: for every blocking scheme × strategy × clustering
// method, ingesting the documents in K batches and resolving incrementally
// after each batch yields, after the last batch, clusters identical to one
// full resolution of the union.
func TestIncrementalEqualsFull(t *testing.T) {
	cols := incrementalCollections(t)
	const batches = 3

	schemes := []string{"exact", "token", "sortedneighborhood", "canopy"}
	strategies := []string{"best", "threshold", "weighted", "majority"}
	clusterings := []string{"closure", "correlation"}
	if testing.Short() {
		schemes = []string{"exact", "sortedneighborhood"}
		strategies = []string{"best", "weighted"}
		clusterings = []string{"closure"}
	}

	for _, scheme := range schemes {
		for _, strategy := range strategies {
			for _, clustering := range clusterings {
				name := fmt.Sprintf("%s/%s/%s", scheme, strategy, clustering)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					pl := incrementalPipeline(t, scheme, strategy, clustering)
					ctx := context.Background()

					var snap *Snapshot
					var last *IncrementalResult
					for k := 0; k < batches; k++ {
						inc, err := pl.RunIncremental(ctx, batchPrefix(cols, k, batches), snap)
						if err != nil {
							t.Fatalf("batch %d: %v", k, err)
						}
						st := inc.Stats
						if st.Blocks != st.Reused+st.Prepared+st.Trivial {
							t.Fatalf("batch %d: inconsistent stats %+v", k, st)
						}
						if st.Blocks != len(inc.Results) {
							t.Fatalf("batch %d: %d blocks, %d results", k, st.Blocks, len(inc.Results))
						}
						snap = inc.Snapshot
						last = inc
					}

					full, err := pl.RunIncremental(ctx, batchPrefix(cols, batches-1, batches), nil)
					if err != nil {
						t.Fatalf("full: %v", err)
					}
					if full.Stats.Reused != 0 {
						t.Errorf("full run reused %d blocks from a nil snapshot", full.Stats.Reused)
					}

					if len(last.Results) != len(full.Results) {
						t.Fatalf("incremental ended with %d blocks, full run has %d",
							len(last.Results), len(full.Results))
					}
					docs := 0
					for i := range full.Results {
						in, fu := last.Results[i], full.Results[i]
						if in.Block.Name != fu.Block.Name {
							t.Fatalf("block %d: name %q vs %q", i, in.Block.Name, fu.Block.Name)
						}
						if !reflect.DeepEqual(in.Resolution.Labels, fu.Resolution.Labels) {
							t.Errorf("block %d (%s): incremental clusters %v != full clusters %v",
								i, in.Block.Name, in.Resolution.Labels, fu.Resolution.Labels)
						}
						docs += len(fu.Block.Docs)
					}
					want := 0
					for _, col := range cols {
						want += len(col.Docs)
					}
					if docs != want {
						t.Errorf("blocks cover %d documents, union has %d", docs, want)
					}
				})
			}
		}
	}
}

// TestIncrementalSkipsCleanBlocks is the prepare-count probe: after a
// batch that touches only one collection, exact-key blocking must
// re-prepare exactly that one block and reuse the others — provably, via
// the stream stage's PrepareCtx counter and pointer identity of the reused
// resolutions.
func TestIncrementalSkipsCleanBlocks(t *testing.T) {
	cols := incrementalCollections(t)
	pl := incrementalPipeline(t, "exact", "best", "closure")
	ctx := context.Background()

	// First ingest: everything except the last 4 documents of "smith".
	first := batchPrefix(cols, 2, 3)
	smith := first[2]
	smith.Docs = smith.Docs[:len(smith.Docs)-4]
	run1, err := pl.RunIncremental(ctx, first, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run1.Stats.Prepared != 3 || run1.Stats.Reused != 0 {
		t.Fatalf("first run stats = %+v, want 3 prepared, 0 reused", run1.Stats)
	}

	// Second ingest: only "smith" grew.
	run2, err := pl.RunIncremental(ctx, batchPrefix(cols, 2, 3), run1.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Stats.Prepared != 1 || run2.Stats.Reused != 2 {
		t.Fatalf("second run stats = %+v, want exactly 1 prepared, 2 reused", run2.Stats)
	}
	byName := func(results []Result, name string) Result {
		for _, r := range results {
			if r.Block.Name == name {
				return r
			}
		}
		t.Fatalf("no block named %q", name)
		return Result{}
	}
	for _, name := range []string{"rivera", "cohen"} {
		r1, r2 := byName(run1.Results, name), byName(run2.Results, name)
		if r1.Resolution != r2.Resolution {
			t.Errorf("block %q was re-resolved: clean blocks must reuse the cached resolution", name)
		}
	}
	if r1, r2 := byName(run1.Results, "smith"), byName(run2.Results, "smith"); r1.Resolution == r2.Resolution {
		t.Error("dirty block \"smith\" reused a stale resolution")
	}
}

// noMembership is a Blocker without membership reporting.
type noMembership struct{}

func (noMembership) Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error) {
	return cols, nil
}

func TestRunIncrementalRequiresMembership(t *testing.T) {
	pl, err := New(Config{Blocker: noMembership{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.RunIncremental(context.Background(), nil, nil); err == nil {
		t.Fatal("RunIncremental accepted a blocker without membership reporting")
	}
}

// TestIncrementalUnscoredThenScored checks that a snapshot written by an
// unscored pipeline can serve a scored one: reused blocks are scored on
// reuse without re-preparation.
func TestIncrementalUnscoredThenScored(t *testing.T) {
	cols := incrementalCollections(t)
	ctx := context.Background()

	opts := core.DefaultOptions()
	opts.Seed = 42
	unscored, err := New(Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	run1, err := unscored.RunIncremental(ctx, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	scored := incrementalPipeline(t, "exact", "best", "closure")
	run2, err := scored.RunIncremental(ctx, cols, run1.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Stats.Prepared != 0 || run2.Stats.Reused != len(run2.Results) {
		t.Fatalf("stats = %+v, want all blocks reused", run2.Stats)
	}
	for _, r := range run2.Results {
		if r.Score == nil {
			t.Errorf("block %q reused without a score", r.Block.Name)
		}
	}
}
