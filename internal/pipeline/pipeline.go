// Package pipeline composes entity resolution as a staged, streaming
// pipeline:
//
//	Ingest → Block → Prepare → Analyze → Combine → Cluster → Report
//
// Ingest hands raw collections to a pluggable Blocker (any candidate-pair
// scheme from internal/blocking), which re-partitions the documents into
// resolution blocks. Blocks then flow through bounded channels: a worker
// pool prepares each block (feature extraction, TF-IDF, all pairwise
// similarity matrices) and streams the prepared blocks straight into the
// analysis stage (training draw, decision graphs), where a Strategy runs
// the combine and cluster steps and the report stage scores the result —
// no all-then-all barrier between preparation and analysis, so analysis of
// early blocks overlaps preparation of late ones.
//
// Every stage takes a context.Context threaded down through core.Resolver,
// simfn.ComputeAllCtx and extract.ExtractAll, so cancellation or a timeout
// aborts an in-flight run mid-extraction or mid-matrix and Run returns
// ctx.Err().
//
// With the default configuration (exact-key blocking over collection
// names, best-any-criterion strategy) the pipeline reproduces the classic
// per-collection Resolver path bit for bit.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/stats"
)

// Stage names passed to Config.Observe, one per instrumented pipeline
// stage. StageBlock is observed once per run (the block stage is one
// pass); the others are observed once per non-trivial block, possibly from
// several workers at once.
const (
	StageBlock   = "block"
	StagePrepare = "prepare"
	StageAnalyze = "analyze"
	StageCluster = "cluster"
)

// Config assembles a Pipeline from its pluggable stages. Zero fields
// select defaults that reproduce the paper's setup.
type Config struct {
	// Options configures the resolver core. Zero-valued fields default
	// individually: empty FunctionIDs, TrainFraction 0 and RegionK 0 take
	// the corresponding core.DefaultOptions values; the zero Clustering
	// already is the default transitive closure, and a zero Seed is kept
	// (it is a valid seed).
	Options core.Options
	// Blocker re-partitions ingested collections into resolution blocks;
	// nil selects exact-key blocking over collection names, the paper's
	// scheme, which keeps each collection as one block.
	Blocker Blocker
	// Strategy runs the combine and cluster stages on each analysis; nil
	// selects BestAnyCriterion, the paper's best-performing combination.
	Strategy Strategy
	// SeedFn derives the per-block training seed from the block index;
	// nil selects stats.SplitSeedN(Options.Seed, index), giving every
	// block an independent deterministic draw.
	SeedFn func(blockIndex int) int64
	// Workers bounds each stage's worker pool; values < 1 select
	// GOMAXPROCS.
	Workers int
	// Buffer bounds the inter-stage channels; values < 1 select Workers.
	Buffer int
	// Score evaluates every resolution against the block's embedded
	// ground truth and fills Result.Score.
	Score bool
	// Observe, when non-nil, receives the wall-clock duration of each
	// instrumented stage execution (see the Stage constants) together with
	// the block being processed — empty for StageBlock, which spans all
	// blocks. It is called concurrently from worker goroutines and must be
	// fast and concurrency-safe — an atomic histogram or a trace-span
	// recorder, not a mutex-heavy sink.
	Observe func(stage, block string, d time.Duration)
}

// Pipeline is an assembled, reusable resolution pipeline. It is safe for
// concurrent Run calls.
type Pipeline struct {
	resolver *core.Resolver
	blocker  Blocker
	strategy Strategy
	seedFn   func(int) int64
	workers  int
	buffer   int
	score    bool
	observeF func(stage, block string, d time.Duration)
}

// now returns the stage clock's reading, or the zero time when nothing
// observes — keeping the uninstrumented hot path free of clock calls.
func (p *Pipeline) now() time.Time {
	if p.observeF == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe reports one stage execution over block that began at start.
func (p *Pipeline) observe(stage, block string, start time.Time) {
	if p.observeF == nil || start.IsZero() {
		return
	}
	p.observeF(stage, block, time.Since(start))
}

// New validates the configuration and assembles the pipeline.
func New(cfg Config) (*Pipeline, error) {
	def := core.DefaultOptions()
	if len(cfg.Options.FunctionIDs) == 0 {
		cfg.Options.FunctionIDs = def.FunctionIDs
	}
	if cfg.Options.TrainFraction == 0 {
		cfg.Options.TrainFraction = def.TrainFraction
	}
	if cfg.Options.RegionK == 0 {
		cfg.Options.RegionK = def.RegionK
	}
	resolver, err := core.New(cfg.Options)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		resolver: resolver,
		blocker:  cfg.Blocker,
		strategy: cfg.Strategy,
		seedFn:   cfg.SeedFn,
		workers:  cfg.Workers,
		buffer:   cfg.Buffer,
		score:    cfg.Score,
		observeF: cfg.Observe,
	}
	if p.blocker == nil {
		p.blocker = DefaultBlocker()
	}
	// Blockers with tunable parameters validate at assembly, so a
	// degenerate configuration (a window that can pair nothing, inverted
	// canopy thresholds) fails here instead of silently producing a
	// useless candidate set mid-run.
	if v, ok := p.blocker.(blocking.Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	if p.strategy == nil {
		p.strategy = BestAnyCriterion()
	}
	if p.seedFn == nil {
		seed := cfg.Options.Seed
		p.seedFn = func(i int) int64 { return stats.SplitSeedN(seed, i) }
	}
	if p.workers < 1 {
		p.workers = runtime.GOMAXPROCS(0)
	}
	if p.buffer < 1 {
		p.buffer = p.workers
	}
	return p, nil
}

// Options returns a copy of the resolver options the pipeline runs with.
func (p *Pipeline) Options() core.Options { return p.resolver.Options() }

// Result is the report-stage output for one block, in block order.
type Result struct {
	// Index is the block's position in the Blocker's output.
	Index int
	// Block is the resolved block (documents re-grouped by the Blocker).
	Block *corpus.Collection
	// Resolution carries the cluster labels and their provenance.
	Resolution *core.Resolution
	// Score is the evaluation against the block's ground truth; nil
	// unless Config.Score is set.
	Score *eval.Result
}

// prepped carries one prepared block from the prepare stage to analysis.
type prepped struct {
	idx  int
	prep *core.Prepared
}

// Run ingests the collections, blocks them, and streams every block
// through prepare → analyze → combine → cluster → report. Results are in
// block order and deterministic for a fixed configuration: each block's
// training seed depends only on its index. A canceled or timed-out context
// aborts the in-flight stages promptly and Run returns ctx.Err().
func (p *Pipeline) Run(ctx context.Context, cols []*corpus.Collection) ([]Result, error) {
	blockStart := p.now()
	blocks, err := p.blocker.Block(ctx, cols)
	if err != nil {
		return nil, err
	}
	p.observe(StageBlock, "", blockStart)
	results := make([]Result, len(blocks))
	todo := make([]int, len(blocks))
	for i := range todo {
		todo[i] = i
	}
	if err := p.stream(ctx, blocks, todo, p.seedFn, results, nil, nil); err != nil {
		return nil, err
	}
	return results, nil
}

// stream is the shared prepare → analyze → combine → cluster → report core
// of Run and RunIncremental: it pushes the blocks named by todo through the
// bounded-channel worker stages and writes each block's Result into
// results[idx]. seedOf derives a block's training seed from its index.
// When preps is non-nil, each non-trivial block's Prepared is retained in
// preps[idx]; when prepares is non-nil it counts the PrepareCtx calls made
// (the prepare-count probe the incremental tests assert against).
func (p *Pipeline) stream(ctx context.Context, blocks []*corpus.Collection, todo []int,
	seedOf func(blockIndex int) int64, results []Result, preps []*core.Prepared, prepares *atomic.Int64) error {

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	workers := p.workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers < 1 {
		workers = 1
	}
	blockCh := make(chan int, p.buffer)
	prepCh := make(chan prepped, p.buffer)

	// Ingest: feed block indices; backpressure comes from the bounded
	// channel, cancellation from the run context.
	go func() {
		defer close(blockCh)
		for _, i := range todo {
			select {
			case blockCh <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Prepare: extract features and compute all pairwise matrices, then
	// stream the prepared block into analysis. Blocks too small to train
	// on resolve trivially and skip the downstream stages.
	var prepWG sync.WaitGroup
	prepWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer prepWG.Done()
			for i := range blockCh {
				if runCtx.Err() != nil {
					return
				}
				col := blocks[i]
				if len(col.Docs) < 2 {
					res, err := p.trivial(i, col)
					if err != nil {
						fail(fmt.Errorf("pipeline: block %q: %w", col.Name, err))
						return
					}
					results[i] = res
					continue
				}
				if prepares != nil {
					prepares.Add(1)
				}
				prepStart := p.now()
				prep, err := p.resolver.PrepareCtx(runCtx, col)
				if err != nil {
					fail(fmt.Errorf("pipeline: preparing block %q: %w", col.Name, err))
					return
				}
				p.observe(StagePrepare, col.Name, prepStart)
				if preps != nil {
					preps[i] = prep
				}
				select {
				case prepCh <- prepped{idx: i, prep: prep}:
				case <-runCtx.Done():
					return
				}
			}
		}()
	}
	go func() {
		prepWG.Wait()
		close(prepCh)
	}()

	// Analyze → Combine → Cluster → Report: draw the block's training
	// sample, build decision graphs, apply the strategy and score.
	var anWG sync.WaitGroup
	anWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer anWG.Done()
			for item := range prepCh {
				if runCtx.Err() != nil {
					return
				}
				res, err := p.resolveBlock(item.idx, blocks[item.idx], item.prep, seedOf(item.idx))
				if err != nil {
					fail(fmt.Errorf("pipeline: resolving block %q: %w", blocks[item.idx].Name, err))
					return
				}
				results[item.idx] = res
			}
		}()
	}
	anWG.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// resolveBlock runs analysis, combination, clustering and scoring for one
// prepared block.
func (p *Pipeline) resolveBlock(idx int, col *corpus.Collection, prep *core.Prepared, seed int64) (Result, error) {
	analyzeStart := p.now()
	a, err := prep.Run(seed)
	if err != nil {
		return Result{}, err
	}
	p.observe(StageAnalyze, col.Name, analyzeStart)
	clusterStart := p.now()
	res, err := p.strategy(a)
	if err != nil {
		return Result{}, err
	}
	p.observe(StageCluster, col.Name, clusterStart)
	out := Result{Index: idx, Block: col, Resolution: res}
	if p.score {
		s, err := eval.Evaluate(res.Labels, col.GroundTruth())
		if err != nil {
			return Result{}, err
		}
		out.Score = &s
	}
	return out, nil
}

// trivial resolves a block too small for training: zero or one documents
// form at most one entity.
func (p *Pipeline) trivial(idx int, col *corpus.Collection) (Result, error) {
	res := &core.Resolution{Labels: make([]int, len(col.Docs)), Source: "trivial(<2 docs)"}
	out := Result{Index: idx, Block: col, Resolution: res}
	if p.score && len(col.Docs) > 0 {
		s, err := eval.Evaluate(res.Labels, col.GroundTruth())
		if err != nil {
			return Result{}, err
		}
		out.Score = &s
	}
	return out, nil
}

// Prepare runs only the ingest, block and prepare stages, returning the
// blocks and their prepared state in block order. Callers that redraw many
// training samples over one expensive preparation (the experiment drivers)
// use this entry point and then AverageRuns.
func (p *Pipeline) Prepare(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, []*core.Prepared, error) {
	blocks, err := p.blocker.Block(ctx, cols)
	if err != nil {
		return nil, nil, err
	}
	prepared, err := p.resolver.PrepareAllCtx(ctx, blocks)
	if err != nil {
		return nil, nil, err
	}
	return blocks, prepared, nil
}

// AverageRuns runs a strategy over every prepared block for several
// independent training draws and macro-averages the scores — the shared
// report-stage loop of the experiment drivers. truths[i] is block i's
// ground truth, seeds derives the training seed for (run, block), and opts
// are the per-run analysis options (region count, clustering, training
// fraction). The context is checked between blocks so cancellation aborts
// a long sweep promptly with ctx.Err().
func AverageRuns(ctx context.Context, prepared []*core.Prepared, truths [][]int, runs int,
	seeds func(run, block int) int64, opts core.Options, strat Strategy) (eval.Result, error) {

	var perRun []eval.Result
	for run := 0; run < runs; run++ {
		var perCol []eval.Result
		for i, prep := range prepared {
			if err := ctx.Err(); err != nil {
				return eval.Result{}, err
			}
			a, err := prep.RunWith(seeds(run, i), opts)
			if err != nil {
				return eval.Result{}, err
			}
			res, err := strat(a)
			if err != nil {
				return eval.Result{}, err
			}
			score, err := eval.Evaluate(res.Labels, truths[i])
			if err != nil {
				return eval.Result{}, err
			}
			perCol = append(perCol, score)
		}
		perRun = append(perRun, eval.Aggregate(perCol))
	}
	return eval.Aggregate(perRun), nil
}
