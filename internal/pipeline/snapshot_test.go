package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/simfn"
)

// snapshotCorpus is the incremental corpus plus a one-document collection,
// so snapshots carry a trivial cached block (nil prepared state) alongside
// full ones.
func snapshotCorpus(t *testing.T) []*corpus.Collection {
	t.Helper()
	cols := incrementalCollections(t)
	cols = append(cols, &corpus.Collection{
		Name:        "solo",
		Docs:        []corpus.Document{{ID: 0, URL: "http://solo.example/p", Text: "solo page", PersonaID: 0}},
		NumPersonas: 1,
	})
	return cols
}

func encodeToBytes(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip pins the persistence guarantee: a decoded snapshot
// behaves exactly like the in-memory one it was encoded from — every block
// reuses, clusters are identical, and the cached prepared state still
// drives identical analyses.
func TestSnapshotRoundTrip(t *testing.T) {
	cols := snapshotCorpus(t)
	pl := incrementalPipeline(t, "exact", "best", "closure")
	ctx := context.Background()

	run1, err := pl.RunIncremental(ctx, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := pl.DecodeSnapshot(bytes.NewReader(encodeToBytes(t, run1.Snapshot)))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Blocks() != run1.Snapshot.Blocks() {
		t.Fatalf("decoded %d blocks, encoded %d", decoded.Blocks(), run1.Snapshot.Blocks())
	}

	// Resolving the same corpus from the decoded snapshot must reuse every
	// block and reproduce the clusters bit for bit.
	reRun, err := pl.RunIncremental(ctx, cols, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if reRun.Stats.Reused != reRun.Stats.Blocks || reRun.Stats.Prepared != 0 {
		t.Fatalf("post-decode stats = %+v, want all %d blocks reused", reRun.Stats, reRun.Stats.Blocks)
	}
	for i := range run1.Results {
		a, b := run1.Results[i], reRun.Results[i]
		if !reflect.DeepEqual(a.Resolution.Labels, b.Resolution.Labels) {
			t.Errorf("block %q: decoded labels %v != original %v", a.Block.Name, b.Resolution.Labels, a.Resolution.Labels)
		}
		if (a.Score == nil) != (b.Score == nil) || (a.Score != nil && *a.Score != *b.Score) {
			t.Errorf("block %q: decoded score %v != original %v", a.Block.Name, b.Score, a.Score)
		}
	}

	// The decoded prepared state must still be runnable: a fresh analysis
	// from it resolves identically to one from the original.
	for fp, cb := range run1.Snapshot.entries {
		dcb := decoded.entries[fp]
		if dcb == nil {
			t.Fatalf("fingerprint %016x missing after decode", fp)
		}
		if (cb.prep == nil) != (dcb.prep == nil) {
			t.Fatalf("fingerprint %016x: prep nil-ness changed across decode", fp)
		}
		if cb.prep == nil {
			continue
		}
		for id, m := range cb.prep.Matrices {
			dm := dcb.prep.Matrices[id]
			if dm == nil || !reflect.DeepEqual(m.Values(), dm.Values()) {
				t.Fatalf("fingerprint %016x: matrix %s changed across decode", fp, id)
			}
		}
		a1, err := cb.prep.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := dcb.prep.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := a1.BestAnyCriterion()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a2.BestAnyCriterion()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Labels, r2.Labels) || r1.Source != r2.Source {
			t.Errorf("fingerprint %016x: decoded prep resolves to %v (%s), original %v (%s)",
				fp, r2.Labels, r2.Source, r1.Labels, r1.Source)
		}
	}

	// Growing the corpus after a decode must behave like growing it from
	// the live snapshot: only the dirty blocks re-prepare.
	grown := append(append([]*corpus.Collection(nil), cols...), &corpus.Collection{
		Name: "nowak",
		Docs: []corpus.Document{
			{ID: 0, URL: "http://a.example/x", Text: "nowak the first page", PersonaID: 0},
			{ID: 1, URL: "http://b.example/y", Text: "nowak the second page", PersonaID: 1},
		},
		NumPersonas: 2,
	})
	fromDecoded, err := pl.RunIncremental(ctx, grown, decoded)
	if err != nil {
		t.Fatal(err)
	}
	fromLive, err := pl.RunIncremental(ctx, grown, run1.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the diff stats only: the Blocking pointer reports the block
	// stage's own delta, which is legitimately different between the two
	// calls (the first one indexed the grown corpus, the second saw no
	// delta).
	sd, sl := fromDecoded.Stats, fromLive.Stats
	sd.Blocking, sl.Blocking = nil, nil
	if sd != sl {
		t.Errorf("grown-corpus stats from decoded snapshot %+v != from live snapshot %+v", sd, sl)
	}
	for i := range fromLive.Results {
		if !reflect.DeepEqual(fromDecoded.Results[i].Resolution.Labels, fromLive.Results[i].Resolution.Labels) {
			t.Errorf("block %q: grown-corpus labels diverge after decode", fromLive.Results[i].Block.Name)
		}
	}
}

// TestSnapshotEncodeSeekableMatchesBuffered pins the streaming encode
// path: writing to a seekable file (with a nonzero start offset, as the
// persistence envelope does) must produce a record that decodes to the
// same snapshot as the buffered path, with the patched header passing
// length and checksum validation.
func TestSnapshotEncodeSeekableMatchesBuffered(t *testing.T) {
	cols := snapshotCorpus(t)
	pl := incrementalPipeline(t, "exact", "best", "closure")
	run, err := pl.RunIncremental(context.Background(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.CreateTemp(t.TempDir(), "snap-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const prefix = "envelope-bytes"
	if _, err := f.WriteString(prefix); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(f, run.Snapshot); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(int64(len(prefix)), io.SeekStart); err != nil {
		t.Fatal(err)
	}
	decoded, err := pl.DecodeSnapshot(f)
	if err != nil {
		t.Fatalf("decoding the seek-encoded stream: %v", err)
	}
	if decoded.Blocks() != run.Snapshot.Blocks() {
		t.Fatalf("seek path decoded %d blocks, want %d", decoded.Blocks(), run.Snapshot.Blocks())
	}
	again, err := pl.RunIncremental(context.Background(), cols, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Reused != again.Stats.Blocks {
		t.Errorf("stats after seek-encoded decode = %+v, want full reuse", again.Stats)
	}
}

// TestSnapshotEncodeEmpty checks nil and empty snapshots round-trip to an
// empty snapshot rather than erroring.
func TestSnapshotEncodeEmpty(t *testing.T) {
	pl := incrementalPipeline(t, "exact", "best", "closure")
	for _, snap := range []*Snapshot{nil, {entries: map[uint64]*cachedBlock{}}} {
		decoded, err := pl.DecodeSnapshot(bytes.NewReader(encodeToBytes(t, snap)))
		if err != nil {
			t.Fatal(err)
		}
		if decoded.Blocks() != 0 {
			t.Errorf("empty snapshot decoded to %d blocks", decoded.Blocks())
		}
	}
}

// TestSnapshotDecodeRejectsCorruption pins the crash-path behavior: a
// truncated stream, a flipped payload bit, trailing garbage, a foreign
// file, and a future format version must all fail with a clear, typed
// error instead of yielding a partially decoded snapshot.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	cols := snapshotCorpus(t)
	pl := incrementalPipeline(t, "exact", "best", "closure")
	run, err := pl.RunIncremental(context.Background(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := encodeToBytes(t, run.Snapshot)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrSnapshotCorrupt},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-11] }, ErrSnapshotCorrupt},
		{"flipped payload bit", func(b []byte) []byte {
			b[len(b)-5] ^= 0x40
			return b
		}, ErrSnapshotCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(b, "junk"...) }, ErrSnapshotCorrupt},
		{"foreign magic", func(b []byte) []byte {
			copy(b, "NOTASNAP")
			return b
		}, ErrSnapshotCorrupt},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], SnapshotFormatVersion+1)
			return b
		}, ErrSnapshotVersion},
		{"empty stream", func(b []byte) []byte { return nil }, ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), good...))
			snap, err := pl.DecodeSnapshot(bytes.NewReader(mutated))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if snap != nil {
				t.Fatal("corrupt stream yielded a snapshot")
			}
		})
	}
}

// TestSnapshotDecodeRejectsForeignFunctionSet checks that a snapshot
// written by a pipeline scoring a smaller similarity-function subset is
// refused by a reader wanting matrices the writer never computed, rather
// than silently misresolving with missing evidence.
func TestSnapshotDecodeRejectsForeignFunctionSet(t *testing.T) {
	cols := snapshotCorpus(t)
	wopts := core.DefaultOptions()
	wopts.Seed = 42
	wopts.FunctionIDs = simfn.SubsetI4
	writer, err := New(Config{Options: wopts, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	run, err := writer.RunIncremental(context.Background(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := encodeToBytes(t, run.Snapshot)

	reader := incrementalPipeline(t, "exact", "best", "closure") // all ten functions
	if _, err := reader.DecodeSnapshot(bytes.NewReader(buf)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt for a missing matrix", err)
	}
	// The writer itself must still be able to read its own snapshot.
	if _, err := writer.DecodeSnapshot(bytes.NewReader(buf)); err != nil {
		t.Fatalf("writer re-reading its own snapshot: %v", err)
	}
}
