package pipeline

import (
	"context"
	"errors"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
)

// BlockingStats reports what the block stage did for one run — how much of
// the work the sharded index reused.
type BlockingStats struct {
	// Indexer names the block stage implementation: "index" for the
	// sharded incremental index, "ann" for the approximate candidate
	// index, "scheme" for the per-run SchemeBlocker.
	Indexer string `json:"indexer"`
	// Shards is the index's hash-partition count.
	Shards int `json:"shards,omitempty"`
	// IndexedDocs is the total number of documents in the index after the
	// run.
	IndexedDocs int `json:"indexed_docs,omitempty"`
	// DeltaDocs is the number of documents this run newly indexed — 0 when
	// the corpus was unchanged since the index last saw it.
	DeltaDocs int `json:"delta_docs"`
	// DirtyBlocks is the number of blocks whose membership the delta
	// changed; everything else was served from the index's cache.
	DirtyBlocks int `json:"dirty_blocks"`
	// Keys is the number of distinct index keys.
	Keys int `json:"keys,omitempty"`
	// AnnM and AnnEf echo the approximate index's graph knobs when the
	// indexer is "ann".
	AnnM  int `json:"ann_m,omitempty"`
	AnnEf int `json:"ann_ef,omitempty"`
	// Fallback marks a call the incremental state could not serve — a
	// corpus older than what the index has already seen (two
	// configurations sharing one index can observe the store in different
	// orders) — answered by a one-off full pass instead. Results are
	// identical; only the O(delta) saving is lost for that call.
	Fallback bool `json:"fallback,omitempty"`
}

// IndexedBlocks is a FingerprintBlocker's output: the assembled blocks,
// their member refs, the membership fingerprints the incremental diff keys
// on, and the reuse stats.
type IndexedBlocks struct {
	Blocks       []*corpus.Collection
	Members      [][]DocRef
	Fingerprints []uint64
	Stats        BlockingStats
}

// FingerprintBlocker is an optional Blocker extension for block stages
// that maintain membership fingerprints themselves. RunIncremental uses it
// to skip re-hashing the whole corpus per run: the fingerprints must equal
// blocking.CombineIDs over the members' blocking.DocHash values in member
// order — the exact formula the fallback diff computes — so a snapshot
// written through either path keys the same blocks the same way.
type FingerprintBlocker interface {
	MembershipBlocker
	BlockFingerprints(ctx context.Context, cols []*corpus.Collection) (IndexedBlocks, error)
}

// IndexBlocker is the Block stage over the sharded incremental index: it
// keys and hashes only the documents that arrived since the previous call,
// merges them into the key-connected components, and assembles the block
// collections in parallel. It serves the key-based schemes (exact, token);
// the global schemes keep SchemeBlocker.
//
// An IndexBlocker is bound to one append-only corpus (a document store):
// every call must present a superset of the previous call's collections,
// or the index reports blockindex.ErrOutOfSync. It is safe for concurrent
// use; calls serialize on the index.
type IndexBlocker struct {
	idx *blockindex.Index
}

// NewIndexBlocker builds an IndexBlocker for a key-based scheme. A nil
// keys selects the collection-name KeyFunc; shards < 1 selects the index
// default.
func NewIndexBlocker(scheme blocking.KeyedScheme, keys KeyFunc, shards int) (*IndexBlocker, error) {
	idx, err := blockindex.New(blockindex.Config{
		Scheme: scheme,
		Keys:   blockindex.KeyFunc(keys),
		Shards: shards,
	})
	if err != nil {
		return nil, err
	}
	return &IndexBlocker{idx: idx}, nil
}

// NewIndexBlockerWith wraps an existing index — typically one decoded from
// its persisted form, so a restarted process resumes with the corpus
// already blocked.
func NewIndexBlockerWith(idx *blockindex.Index) *IndexBlocker {
	return &IndexBlocker{idx: idx}
}

// Index exposes the underlying index for persistence and stats.
func (ib *IndexBlocker) Index() *blockindex.Index { return ib.idx }

// Warm indexes any documents of cols the index has not seen, without
// assembling blocks — the ingest-notification hook that moves delta
// indexing off the resolve path. A snapshot the index has already been
// advanced past (a resolve got there first) is a no-op, not an error:
// warming has nothing left to add.
func (ib *IndexBlocker) Warm(cols []*corpus.Collection) (blockindex.UpdateStats, error) {
	stats, err := ib.idx.Update(cols)
	if errors.Is(err, blockindex.ErrOutOfSync) {
		return blockindex.UpdateStats{}, nil
	}
	return stats, err
}

// Block implements Blocker.
func (ib *IndexBlocker) Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error) {
	out, err := ib.BlockFingerprints(ctx, cols)
	return out.Blocks, err
}

// BlockMembership implements MembershipBlocker.
func (ib *IndexBlocker) BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error) {
	out, err := ib.BlockFingerprints(ctx, cols)
	return out.Blocks, out.Members, err
}

// BlockFingerprints implements FingerprintBlocker: update the index with
// the delta, pull every block's cached membership and fingerprint, and
// assemble the block collections in parallel.
func (ib *IndexBlocker) BlockFingerprints(ctx context.Context, cols []*corpus.Collection) (IndexedBlocks, error) {
	if err := ctx.Err(); err != nil {
		return IndexedBlocks{}, err
	}
	// Update and membership must be one atomic index operation: with the
	// index shared (other configurations, the service's background
	// warmer), a separate Membership call could observe a state advanced
	// past cols and hand back refs pointing beyond the caller's snapshot.
	stats, members, fps, err := ib.idx.UpdateMembership(cols)
	var blockingStats BlockingStats
	switch {
	case errors.Is(err, blockindex.ErrOutOfSync):
		// The corpus is older than the index state (a concurrent user
		// advanced it). Serve this call with a one-off full pass; the
		// index keeps its newer state for everyone else.
		members, fps, err = ib.idx.MembershipOf(cols)
		if err != nil {
			return IndexedBlocks{}, err
		}
		blockingStats = BlockingStats{Indexer: "index", Fallback: true}
	case err != nil:
		return IndexedBlocks{}, err
	default:
		blockingStats = BlockingStats{
			Indexer:     "index",
			Shards:      stats.Shards,
			IndexedDocs: stats.IndexedDocs,
			DeltaDocs:   stats.DeltaDocs,
			DirtyBlocks: stats.DirtyBlocks,
			Keys:        stats.Keys,
		}
	}
	if err := ctx.Err(); err != nil {
		return IndexedBlocks{}, err
	}

	blocks := make([]*corpus.Collection, len(members))
	blockindex.Parallel(ib.idx.Workers(), len(members), func(i int) {
		blocks[i] = assembleRefs(cols, members[i])
	})

	return IndexedBlocks{
		Blocks:       blocks,
		Members:      members,
		Fingerprints: fps,
		Stats:        blockingStats,
	}, nil
}
