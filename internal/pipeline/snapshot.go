package pipeline

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simfn"
)

// SnapshotFormatVersion is the on-disk snapshot format this build writes
// and reads. Bump it whenever the wire form of any cached type (prepared
// blocks, matrices, packed vectors, resolutions) changes incompatibly; a
// reader refuses other versions with ErrSnapshotVersion instead of
// silently misdecoding old state into wrong clusters.
const SnapshotFormatVersion = 1

// snapshotMagic identifies a snapshot stream. The trailing NUL guards
// against text files that happen to start with the same letters.
var snapshotMagic = [8]byte{'E', 'R', 'S', 'N', 'A', 'P', '1', 0}

var (
	// ErrSnapshotVersion reports a snapshot written by a different format
	// version; the caller should fall back to a full resolution.
	ErrSnapshotVersion = errors.New("pipeline: snapshot format version mismatch")
	// ErrSnapshotCorrupt reports a snapshot that failed structural or
	// checksum validation — a truncated write, bit rot, or a foreign file.
	ErrSnapshotCorrupt = errors.New("pipeline: snapshot corrupt")
)

// snapshotCRC is the Castagnoli table used for payload checksums.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// snapshotPrepared is the wire form of a core.Prepared: the exported state
// only. The resolver binding is re-established at decode time by the
// pipeline doing the reading.
type snapshotPrepared struct {
	Block    *simfn.Block
	Matrices map[string]*simfn.Matrix
}

// snapshotEntry is the wire form of one cached block. Prep is nil for
// trivial blocks (below the training size) and Score is nil for unscored
// runs, mirroring cachedBlock.
type snapshotEntry struct {
	Prep  *snapshotPrepared
	Res   *core.Resolution
	Score *eval.Result
}

// EncodeSnapshot serializes a Snapshot — every cached block's prepared
// state (packed vectors, similarity matrices), resolution and score, keyed
// by membership fingerprint — to w as one self-describing record:
//
//	magic[8] | version u32 | payload length u64 | payload crc32c u32 | payload
//
// The payload is a gob stream. A nil snapshot encodes as an empty one.
// When w is seekable (a file), the payload streams straight to it and the
// length/checksum header is patched in afterwards, so encoding costs no
// second in-memory copy of the snapshot; other writers get the payload
// buffered first. Snapshots are only meaningful to a pipeline with the
// same configuration (options, blocker, strategy) that produced them;
// persistence layers should key stored snapshots by configuration.
func EncodeSnapshot(w io.Writer, snap *Snapshot) error {
	entries := make(map[uint64]snapshotEntry, snap.Blocks())
	if snap != nil {
		for fp, cb := range snap.entries {
			e := snapshotEntry{Res: cb.res, Score: cb.score}
			if cb.prep != nil {
				e.Prep = &snapshotPrepared{Block: cb.prep.Block, Matrices: cb.prep.Matrices}
			}
			entries[fp] = e
		}
	}
	if ws, ok := w.(io.WriteSeeker); ok {
		return encodeSnapshotSeek(ws, entries)
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(entries); err != nil {
		return fmt.Errorf("pipeline: encoding snapshot: %w", err)
	}
	header := snapshotHeader(uint64(payload.Len()), crc32.Checksum(payload.Bytes(), snapshotCRC))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("pipeline: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("pipeline: writing snapshot payload: %w", err)
	}
	return nil
}

// snapshotHeader renders the 24-byte record header.
func snapshotHeader(length uint64, sum uint32) []byte {
	header := make([]byte, 0, 8+4+8+4)
	header = append(header, snapshotMagic[:]...)
	header = binary.LittleEndian.AppendUint32(header, SnapshotFormatVersion)
	header = binary.LittleEndian.AppendUint64(header, length)
	header = binary.LittleEndian.AppendUint32(header, sum)
	return header
}

// encodeSnapshotSeek writes a placeholder header, streams the gob payload
// through a checksumming counter directly into ws, then seeks back and
// patches the real length and checksum — one pass over the data, no
// full-payload buffer.
func encodeSnapshotSeek(ws io.WriteSeeker, entries map[uint64]snapshotEntry) error {
	start, err := ws.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("pipeline: locating snapshot start: %w", err)
	}
	if _, err := ws.Write(snapshotHeader(0, 0)); err != nil {
		return fmt.Errorf("pipeline: writing snapshot header: %w", err)
	}
	sum := crc32.New(snapshotCRC)
	count := &countingWriter{}
	if err := gob.NewEncoder(io.MultiWriter(ws, sum, count)).Encode(entries); err != nil {
		return fmt.Errorf("pipeline: encoding snapshot: %w", err)
	}
	if _, err := ws.Seek(start, io.SeekStart); err != nil {
		return fmt.Errorf("pipeline: seeking to snapshot header: %w", err)
	}
	if _, err := ws.Write(snapshotHeader(uint64(count.n), sum.Sum32())); err != nil {
		return fmt.Errorf("pipeline: patching snapshot header: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("pipeline: seeking past snapshot payload: %w", err)
	}
	return nil
}

// countingWriter counts bytes written through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// DecodeSnapshot reads a snapshot encoded by EncodeSnapshot and rebinds
// every cached prepared block to this pipeline's resolver. It consumes r
// to EOF and fails with ErrSnapshotVersion on a format-version mismatch
// and ErrSnapshotCorrupt on truncation, checksum failure, trailing
// garbage, or structurally invalid cached state — a failed decode never
// yields a partially filled snapshot.
//
// Feeding a snapshot to a pipeline configured differently from its writer
// is detected only as far as the function set goes (missing or misshapen
// matrices fail); callers are responsible for keying persisted snapshots
// by the full configuration.
func (p *Pipeline) DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrSnapshotCorrupt, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: not a snapshot stream (magic %q)", ErrSnapshotCorrupt, magic[:])
	}
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrSnapshotCorrupt, err)
	}
	version := binary.LittleEndian.Uint32(fixed[0:4])
	if version != SnapshotFormatVersion {
		return nil, fmt.Errorf("%w: stream has version %d, this build reads %d",
			ErrSnapshotVersion, version, SnapshotFormatVersion)
	}
	length := binary.LittleEndian.Uint64(fixed[4:12])
	sum := binary.LittleEndian.Uint32(fixed[12:16])

	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrSnapshotCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload is %d bytes, header declares %d (truncated or trailing data)",
			ErrSnapshotCorrupt, len(payload), length)
	}
	if got := crc32.Checksum(payload, snapshotCRC); got != sum {
		return nil, fmt.Errorf("%w: payload checksum %08x, header declares %08x",
			ErrSnapshotCorrupt, got, sum)
	}

	var entries map[uint64]snapshotEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrSnapshotCorrupt, err)
	}

	snap := &Snapshot{entries: make(map[uint64]*cachedBlock, len(entries))}
	for fp, e := range entries {
		if e.Res == nil {
			return nil, fmt.Errorf("%w: cached block %016x has no resolution", ErrSnapshotCorrupt, fp)
		}
		cb := &cachedBlock{res: e.Res, score: e.Score}
		if e.Prep != nil {
			prep, err := p.resolver.AdoptPrepared(e.Prep.Block, e.Prep.Matrices)
			if err != nil {
				return nil, fmt.Errorf("%w: cached block %016x: %v", ErrSnapshotCorrupt, fp, err)
			}
			cb.prep = prep
		}
		snap.entries[fp] = cb
	}
	return snap, nil
}
