package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/stats"
)

// Snapshot is the carry-over state of one incremental resolution: every
// block of that run keyed by its stable membership fingerprint, together
// with the prepared state and clustering it produced. A Snapshot is
// immutable — RunIncremental reads one and builds a fresh one — so an old
// snapshot can keep serving concurrent readers while a new run is in
// flight. Snapshots are only meaningful to a pipeline with the same
// configuration (same options, blocker and strategy) that produced them;
// feeding one to a differently-configured pipeline silently reuses results
// the new configuration would not have computed.
//
// erlint:immutable — published snapshots are shared by concurrent readers;
// build a fresh Snapshot instead of mutating one in place.
type Snapshot struct {
	entries map[uint64]*cachedBlock
}

// Blocks returns the number of cached blocks.
func (s *Snapshot) Blocks() int {
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// cachedBlock is one block's reusable output: the expensive prepared state
// (nil for trivial blocks below the training size) plus the final
// clustering and optional score.
type cachedBlock struct {
	prep  *core.Prepared
	res   *core.Resolution
	score *eval.Result
}

// IncrementalStats reports what the dirty-block diff did in one
// incremental run. Blocks == Reused + Prepared + Trivial.
type IncrementalStats struct {
	// Blocks is the total number of blocks in this run.
	Blocks int
	// Reused is the number of blocks whose membership fingerprint matched
	// the previous snapshot: their prepared state and clustering were
	// reused and no re-preparation happened.
	Reused int
	// Prepared is the number of dirty blocks that went through the full
	// prepare → analyze → cluster stages (the prepare-count probe).
	Prepared int
	// Trivial is the number of dirty blocks below the training size,
	// resolved trivially without preparation.
	Trivial int
	// Blocking reports the block stage's own reuse when the blocker
	// maintains an incremental index (FingerprintBlocker); nil when the
	// blocks were computed by a full per-run pass.
	Blocking *BlockingStats
}

// IncrementalResult is RunIncremental's output: the per-block results in
// block order, the snapshot to carry into the next run, and the diff
// stats. Members and Fingerprints describe each block's identity in the
// same order as Results — Members[i] lists block i's documents as refs
// into the resolved snapshot, Fingerprints[i] is its membership
// fingerprint — which is exactly what a serving index needs to
// re-materialize only the dirty blocks after a commit.
type IncrementalResult struct {
	Results      []Result
	Snapshot     *Snapshot
	Stats        IncrementalStats
	Members      [][]DocRef
	Fingerprints []uint64
}

// RunIncremental resolves the collections like Run, but diffs the block
// membership against prev (the snapshot of the previous run over an
// earlier version of the same growing corpus) and re-prepares and
// re-analyzes only the dirty blocks — blocks whose member documents
// changed. Untouched blocks reuse the previous run's core.Prepared and
// clustering verbatim. A nil prev makes this a full resolution.
//
// Unlike Run, which seeds each block's training draw by block index,
// RunIncremental derives the seed from the block's membership fingerprint,
// so a block keeps the same training draw no matter how many new blocks
// appear around it. That is what makes incremental resolution equivalent
// to a full one: ingesting documents in K batches (append-only — existing
// documents keep their collection and position) and resolving after each
// batch yields, after the last batch, exactly the clusters of a single
// RunIncremental over the union with prev == nil.
//
// The pipeline's Blocker must implement MembershipBlocker (every
// SchemeBlocker does).
func (p *Pipeline) RunIncremental(ctx context.Context, cols []*corpus.Collection, prev *Snapshot) (*IncrementalResult, error) {
	var blocks []*corpus.Collection
	var members [][]DocRef
	var fps []uint64
	var blockingStats *BlockingStats
	blockStart := p.now()
	switch b := p.blocker.(type) {
	case FingerprintBlocker:
		// The block stage maintains membership fingerprints itself (the
		// sharded index): only the ingest delta was hashed, the rest comes
		// from the index's per-component cache.
		indexed, err := b.BlockFingerprints(ctx, cols)
		if err != nil {
			return nil, err
		}
		blocks, members, fps = indexed.Blocks, indexed.Members, indexed.Fingerprints
		stats := indexed.Stats
		blockingStats = &stats
	case MembershipBlocker:
		var err error
		blocks, members, err = b.BlockMembership(ctx, cols)
		if err != nil {
			return nil, err
		}
		keys := docKeys(cols)
		fps = make([]uint64, len(blocks))
		hashes := make([]uint64, 0, 64)
		for i, mem := range members {
			hashes = hashes[:0]
			for _, ref := range mem {
				hashes = append(hashes, keys[ref.Col][ref.Doc])
			}
			fps[i] = blocking.CombineIDs(hashes)
		}
	default:
		return nil, fmt.Errorf("pipeline: incremental resolution requires a membership-reporting blocker, %T does not report membership", p.blocker)
	}
	p.observe(StageBlock, "", blockStart)

	results := make([]Result, len(blocks))
	preps := make([]*core.Prepared, len(blocks))
	next := &Snapshot{entries: make(map[uint64]*cachedBlock, len(blocks))}
	st := IncrementalStats{Blocks: len(blocks), Blocking: blockingStats}

	// Diff: a block whose fingerprint is in the previous snapshot is
	// clean — reuse its cached output; everything else is dirty.
	var todo []int
	for i := range blocks {
		if prev != nil {
			if cb, hit := prev.entries[fps[i]]; hit {
				cb = p.rescored(cb, blocks[i])
				results[i] = Result{Index: i, Block: blocks[i], Resolution: cb.res, Score: cb.score}
				next.entries[fps[i]] = cb
				st.Reused++
				continue
			}
		}
		todo = append(todo, i)
	}

	var prepares atomic.Int64
	baseSeed := p.resolver.Options().Seed
	seedOf := func(i int) int64 {
		return stats.SplitSeed(baseSeed, strconv.FormatUint(fps[i], 16))
	}
	if err := p.stream(ctx, blocks, todo, seedOf, results, preps, &prepares); err != nil {
		return nil, err
	}

	for _, i := range todo {
		next.entries[fps[i]] = &cachedBlock{
			prep:  preps[i],
			res:   results[i].Resolution,
			score: results[i].Score,
		}
	}
	st.Prepared = int(prepares.Load())
	st.Trivial = len(todo) - st.Prepared
	return &IncrementalResult{
		Results:      results,
		Snapshot:     next,
		Stats:        st,
		Members:      members,
		Fingerprints: fps,
	}, nil
}

// rescored returns cb with a score if the pipeline wants one and the cache
// has none (the previous run was unscored); the cached entry itself is
// never mutated.
func (p *Pipeline) rescored(cb *cachedBlock, block *corpus.Collection) *cachedBlock {
	if !p.score || cb.score != nil || len(block.Docs) == 0 {
		return cb
	}
	s, err := eval.Evaluate(cb.res.Labels, block.GroundTruth())
	if err != nil {
		// An unscoreable cached block keeps its nil score rather than
		// failing the whole run; scoring is advisory output.
		return cb
	}
	out := *cb
	out.score = &s
	return &out
}

// docKeys fingerprints every ingested document with blocking.DocHash — the
// shared identity formula of the incremental diff and the sharded index. A
// document's key covers its collection name, position, URL, text and
// persona label, so a block's membership fingerprint changes exactly when
// any member document's content or position changes — the dirty condition
// of the incremental diff. Positions are stable under append-only
// ingestion, which is what the store guarantees.
func docKeys(cols []*corpus.Collection) [][]uint64 {
	keys := make([][]uint64, len(cols))
	for ci, col := range cols {
		keys[ci] = make([]uint64, len(col.Docs))
		for di := range col.Docs {
			doc := &col.Docs[di]
			keys[ci][di] = blocking.DocHash(col.Name, di, doc.URL, doc.Text, doc.PersonaID)
		}
	}
	return keys
}
