package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/ann"
	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
)

// BenchmarkPipelineResolve runs the full streaming pipeline (block →
// prepare → analyze → combine → cluster → score) end to end over a small
// multi-collection dataset and reports document throughput.
func BenchmarkPipelineResolve(b *testing.B) {
	var cols []*corpus.Collection
	totalDocs := 0
	for i := 0; i < 4; i++ {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: fmt.Sprintf("name%d", i), NumDocs: 40, NumPersonas: 4,
			Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: int64(100 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		cols = append(cols, col)
		totalDocs += len(col.Docs)
	}
	pl, err := New(Config{Score: true})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Run(ctx, cols); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// benchBlockCorpus builds the delta-ingest scenario the Block-stage
// benchmarks share: a corpus of 8 collections, a "base" prefix holding all
// but the last 5 documents of each, and the full union one small ingest
// batch later.
func benchBlockCorpus(b *testing.B) (base, full []*corpus.Collection, docs int) {
	b.Helper()
	for i := 0; i < 8; i++ {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: fmt.Sprintf("name%d", i), NumDocs: 60, NumPersonas: 5,
			Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: int64(300 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		full = append(full, col)
		base = append(base, &corpus.Collection{
			Name: col.Name, Docs: col.Docs[:len(col.Docs)-5], NumPersonas: col.NumPersonas,
		})
		docs += len(col.Docs)
	}
	return base, full, docs
}

// BenchmarkSchemeBlock is the full-rebuild baseline: every iteration pays
// a complete candidate-generation and union-find pass over the corpus,
// which is what the Block stage cost per run before the sharded index.
func BenchmarkSchemeBlock(b *testing.B) {
	_, full, docs := benchBlockCorpus(b)
	sb := NewSchemeBlocker(blocking.TokenBlocking{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sb.BlockMembership(ctx, full); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkIndexBlock measures the same Block stage served by the sharded
// index in the delta-ingest case: the base corpus is already indexed (the
// untimed decode restores that state each iteration), so the timed work is
// keying the 40-document delta, merging it into the components, and
// assembling the blocks.
func BenchmarkIndexBlock(b *testing.B) {
	base, full, docs := benchBlockCorpus(b)
	cfg := blockindex.Config{Scheme: blocking.TokenBlocking{}}
	seed, err := blockindex.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Update(base); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := seed.EncodeTo(&buf); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx, err := blockindex.Decode(bytes.NewReader(encoded), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ib := NewIndexBlockerWith(idx)
		b.StartTimer()
		if _, err := ib.BlockFingerprints(ctx, full); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// benchANNCorpus builds the 10k-document delta-ingest scenario of the
// ANN benchmarks: 100 name collections of 100 documents with token
// overlap across names, a "base" prefix holding all but the last 5
// documents of each, and the full union one ingest batch later.
func benchANNCorpus(b *testing.B) (base, full []*corpus.Collection, docs int) {
	b.Helper()
	full = recallCorpus(b, 100, 100)
	for _, col := range full {
		base = append(base, &corpus.Collection{
			Name: col.Name, Docs: col.Docs[:len(col.Docs)-5], NumPersonas: col.NumPersonas,
		})
		docs += len(col.Docs)
	}
	return base, full, docs
}

// BenchmarkCanopySchemeBlock is the exact baseline the ANN index
// replaces: every iteration pays the full canopy pass — every record
// against every seed — over the 10k-document corpus.
func BenchmarkCanopySchemeBlock(b *testing.B) {
	_, full, docs := benchANNCorpus(b)
	sb := NewSchemeBlocker(blocking.Canopy{Loose: 0.4, Tight: 0.8})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sb.BlockMembership(ctx, full); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkANNBlock measures the same Block stage served by the ANN
// candidate index in the delta-ingest case: the base corpus is already
// in the graph (the untimed decode restores that state each iteration),
// so the timed work is embedding the 500-document delta, inserting it
// into the proximity graph, and assembling the blocks.
func BenchmarkANNBlock(b *testing.B) {
	base, full, docs := benchANNCorpus(b)
	scheme := blocking.Canopy{Loose: 0.4, Tight: 0.8}
	cfg := ann.Config{Scheme: scheme}
	seed, err := ann.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Update(base); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := seed.EncodeTo(&buf); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx, err := ann.Decode(bytes.NewReader(encoded), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ab := NewANNBlockerWith(idx)
		b.StartTimer()
		if _, err := ab.BlockFingerprints(ctx, full); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}
