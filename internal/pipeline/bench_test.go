package pipeline

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/corpus"
)

// BenchmarkPipelineResolve runs the full streaming pipeline (block →
// prepare → analyze → combine → cluster → score) end to end over a small
// multi-collection dataset and reports document throughput.
func BenchmarkPipelineResolve(b *testing.B) {
	var cols []*corpus.Collection
	totalDocs := 0
	for i := 0; i < 4; i++ {
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: fmt.Sprintf("name%d", i), NumDocs: 40, NumPersonas: 4,
			Noise: 0.5, MissingInfo: 0.25, Spurious: 0.3, Seed: int64(100 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		cols = append(cols, col)
		totalDocs += len(col.Docs)
	}
	pl, err := New(Config{Score: true})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Run(ctx, cols); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}
