package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Strategy is the pipeline's combine + cluster stage: it selects or fuses
// the per-function decision graphs of one analysis and returns the final
// clustering. Custom strategies compose core's combination primitives
// (BestOver, WeightedAverageOver, …).
type Strategy func(a *core.Analysis) (*core.Resolution, error)

// BestAnyCriterion selects the best decision graph over all criteria —
// the paper's best-performing combination (the C columns).
func BestAnyCriterion() Strategy {
	return func(a *core.Analysis) (*core.Resolution, error) { return a.BestAnyCriterion() }
}

// BestThresholdOnly selects the best threshold-criterion graph (the
// paper's I columns).
func BestThresholdOnly() Strategy {
	return func(a *core.Analysis) (*core.Resolution, error) { return a.BestThresholdOnly() }
}

// WeightedAverage fuses the per-function graphs by accuracy-weighted
// averaging (the paper's W column).
func WeightedAverage() Strategy {
	return func(a *core.Analysis) (*core.Resolution, error) { return a.WeightedAverage() }
}

// MajorityVote fuses the per-function graphs by simple majority vote (the
// ablation baseline).
func MajorityVote() Strategy {
	return func(a *core.Analysis) (*core.Resolution, error) { return a.MajorityVote() }
}

// StrategyNames are the accepted ParseStrategy spellings, in display order
// for CLI/API usage messages.
var StrategyNames = []string{"best", "threshold", "weighted", "majority"}

// ParseStrategy maps a CLI/API name to a strategy. Unknown names return an
// error listing every valid spelling.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "best":
		return BestAnyCriterion(), nil
	case "threshold":
		return BestThresholdOnly(), nil
	case "weighted":
		return WeightedAverage(), nil
	case "majority":
		return MajorityVote(), nil
	default:
		return nil, fmt.Errorf("pipeline: unknown strategy %q (valid: %s)",
			name, strings.Join(StrategyNames, ", "))
	}
}
