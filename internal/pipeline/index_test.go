package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
)

// randomBatches cuts the collections into k append-only batches at
// rng-chosen points: batch i holds a random (non-decreasing) prefix of
// every collection, and the last batch is the full union. Collections
// enter in order, so later batches may introduce collections earlier ones
// lacked.
func randomBatches(rng *rand.Rand, cols []*corpus.Collection, k int) [][]*corpus.Collection {
	cuts := make([][]int, len(cols))
	for ci, col := range cols {
		cuts[ci] = make([]int, k)
		for b := 0; b < k-1; b++ {
			lo := 0
			if b > 0 {
				lo = cuts[ci][b-1]
			}
			cuts[ci][b] = lo + rng.Intn(len(col.Docs)-lo+1)
		}
		cuts[ci][k-1] = len(col.Docs)
	}
	batches := make([][]*corpus.Collection, k)
	for b := 0; b < k; b++ {
		var batch []*corpus.Collection
		for ci, col := range cols {
			n := cuts[ci][b]
			if n == 0 && ci >= len(batch) && b < k-1 && rng.Intn(2) == 0 {
				continue // this collection has not arrived yet
			}
			docs := append([]corpus.Document(nil), col.Docs[:n]...)
			personas := 0
			for _, d := range docs {
				if d.PersonaID >= personas {
					personas = d.PersonaID + 1
				}
			}
			batch = append(batch, &corpus.Collection{Name: col.Name, Docs: docs, NumPersonas: personas})
		}
		batches[b] = batch
	}
	return batches
}

// TestIndexBlockerMatchesSchemeBlocker is the property harness: for the
// key-based schemes, the sharded index fed K randomized append-only
// batches must report, after every batch, blocks, members and
// fingerprints identical to a full SchemeBlocker pass (plus the
// diff-side fingerprint formula) over that batch.
func TestIndexBlockerMatchesSchemeBlocker(t *testing.T) {
	cols := incrementalCollections(t)
	ctx := context.Background()

	for _, scheme := range []string{"exact", "token"} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", scheme, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				batches := randomBatches(rng, cols, 4)

				parsed, err := blocking.ParseScheme(scheme)
				if err != nil {
					t.Fatal(err)
				}
				keyed := parsed.(blocking.KeyedScheme)
				ib, err := NewIndexBlocker(keyed, nil, 1+int(seed))
				if err != nil {
					t.Fatal(err)
				}
				sb := NewSchemeBlocker(parsed)

				for bi, batch := range batches {
					got, err := ib.BlockFingerprints(ctx, batch)
					if err != nil {
						t.Fatalf("batch %d: %v", bi, err)
					}
					wantBlocks, wantMembers, err := sb.BlockMembership(ctx, batch)
					if err != nil {
						t.Fatalf("batch %d: %v", bi, err)
					}
					if !reflect.DeepEqual(got.Members, wantMembers) {
						t.Fatalf("batch %d: members %v, want %v", bi, got.Members, wantMembers)
					}
					if !reflect.DeepEqual(got.Blocks, wantBlocks) {
						t.Fatalf("batch %d: index blocks differ from scheme blocks", bi)
					}
					keys := docKeys(batch)
					for i, mem := range wantMembers {
						hashes := make([]uint64, len(mem))
						for j, ref := range mem {
							hashes[j] = keys[ref.Col][ref.Doc]
						}
						if want := blocking.CombineIDs(hashes); got.Fingerprints[i] != want {
							t.Fatalf("batch %d block %d: fingerprint %x, want %x", bi, i, got.Fingerprints[i], want)
						}
					}
				}
			})
		}
	}
}

// TestIndexIncrementalEqualsFull extends the headline guarantee to the
// index path: for exact × token schemes × all strategies × both
// clusterings, K-batch ingest resolved incrementally through the sharded
// index yields, after the last batch, clusters identical to one full
// SchemeBlocker resolution of the union.
func TestIndexIncrementalEqualsFull(t *testing.T) {
	cols := incrementalCollections(t)
	const batches = 3
	ctx := context.Background()

	schemes := []string{"exact", "token"}
	strategies := []string{"best", "threshold", "weighted", "majority"}
	clusterings := []string{"closure", "correlation"}
	if testing.Short() {
		strategies = []string{"best", "weighted"}
		clusterings = []string{"closure"}
	}

	for _, scheme := range schemes {
		for _, strategy := range strategies {
			for _, clustering := range clusterings {
				name := fmt.Sprintf("%s/%s/%s", scheme, strategy, clustering)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					parsed, err := blocking.ParseScheme(scheme)
					if err != nil {
						t.Fatal(err)
					}
					ib, err := NewIndexBlocker(parsed.(blocking.KeyedScheme), nil, 0)
					if err != nil {
						t.Fatal(err)
					}
					indexed := incrementalPipelineWith(t, ib, strategy, clustering)

					var snap *Snapshot
					var last *IncrementalResult
					for k := 0; k < batches; k++ {
						inc, err := indexed.RunIncremental(ctx, batchPrefix(cols, k, batches), snap)
						if err != nil {
							t.Fatalf("batch %d: %v", k, err)
						}
						if inc.Stats.Blocking == nil || inc.Stats.Blocking.Indexer != "index" {
							t.Fatalf("batch %d: blocking stats %+v, want the index path", k, inc.Stats.Blocking)
						}
						snap = inc.Snapshot
						last = inc
					}
					if last.Stats.Blocking.DeltaDocs == 0 {
						t.Fatal("last batch indexed no documents")
					}

					full := incrementalPipeline(t, scheme, strategy, clustering)
					want, err := full.RunIncremental(ctx, batchPrefix(cols, batches-1, batches), nil)
					if err != nil {
						t.Fatalf("full: %v", err)
					}
					if len(last.Results) != len(want.Results) {
						t.Fatalf("index path ended with %d blocks, full scheme run has %d",
							len(last.Results), len(want.Results))
					}
					for i := range want.Results {
						in, fu := last.Results[i], want.Results[i]
						if in.Block.Name != fu.Block.Name {
							t.Fatalf("block %d: name %q vs %q", i, in.Block.Name, fu.Block.Name)
						}
						if !reflect.DeepEqual(in.Resolution.Labels, fu.Resolution.Labels) {
							t.Errorf("block %d (%s): index clusters %v != scheme clusters %v",
								i, in.Block.Name, in.Resolution.Labels, fu.Resolution.Labels)
						}
					}
				})
			}
		}
	}
}

// incrementalPipelineWith assembles a scored pipeline over an explicit
// blocker.
func incrementalPipelineWith(t *testing.T, blocker Blocker, strategy, clustering string) *Pipeline {
	t.Helper()
	ref := incrementalPipeline(t, "exact", strategy, clustering)
	opts := ref.Options()
	strat, err := ParseStrategy(strategy)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(Config{Options: opts, Strategy: strat, Blocker: blocker, Score: true})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestIndexBlockerRestartEqualsFresh pins the restart path: an index
// encoded mid-stream and decoded into a new blocker reports exactly the
// blocks of a freshly built one, and keeps indexing incrementally.
func TestIndexBlockerRestartEqualsFresh(t *testing.T) {
	cols := incrementalCollections(t)
	ctx := context.Background()
	first := batchPrefix(cols, 1, 3)
	union := batchPrefix(cols, 2, 3)

	ib, err := NewIndexBlocker(blocking.TokenBlocking{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ib.BlockFingerprints(ctx, first); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := ib.Index().EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := blockindex.Decode(&buf, blockindex.Config{Scheme: blocking.TokenBlocking{}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	reopened := NewIndexBlockerWith(decoded)

	fresh, err := NewIndexBlocker(blocking.TokenBlocking{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.BlockFingerprints(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.BlockFingerprints(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Blocks, want.Blocks) ||
		!reflect.DeepEqual(got.Members, want.Members) ||
		!reflect.DeepEqual(got.Fingerprints, want.Fingerprints) {
		t.Fatal("reopened index reports different blocks than a freshly built one")
	}
	if got.Stats.DeltaDocs >= want.Stats.DeltaDocs {
		t.Fatalf("reopened index re-indexed %d docs, fresh one %d — the restart head-start is gone",
			got.Stats.DeltaDocs, want.Stats.DeltaDocs)
	}
}

// TestIndexBlockerConcurrentWarm is the regression harness for the
// update/membership atomicity race: a warmer advancing the shared index
// with ever-newer snapshots must never make a resolve over an older
// snapshot hand out member refs beyond that snapshot (which used to panic
// in block assembly). Stale snapshots either resolve via the full-pass
// fallback or atomically within their own corpus.
func TestIndexBlockerConcurrentWarm(t *testing.T) {
	cols := incrementalCollections(t)
	ctx := context.Background()
	const steps = 12

	ib, err := NewIndexBlocker(blocking.TokenBlocking{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < steps; k++ {
			if _, err := ib.Warm(batchPrefix(cols, k, steps)); err != nil {
				t.Errorf("warm batch %d: %v", k, err)
				return
			}
		}
	}()

	snapshot := batchPrefix(cols, steps/2, steps)
	for i := 0; i < 50; i++ {
		got, err := ib.BlockFingerprints(ctx, snapshot)
		if err != nil && !errors.Is(err, blockindex.ErrOutOfSync) {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if err != nil {
			continue
		}
		for _, mem := range got.Members {
			for _, ref := range mem {
				if ref.Col >= len(snapshot) || ref.Doc >= len(snapshot[ref.Col].Docs) {
					t.Fatalf("resolve %d handed out ref %+v beyond the caller's snapshot", i, ref)
				}
			}
		}
	}
	<-done
}

// TestNamesKeyMergesVariants pins the richer-keys satellite: with
// person-name keys, pages about one person retrieved under different
// query spellings land in one block.
func TestNamesKeyMergesVariants(t *testing.T) {
	cols := []*corpus.Collection{
		{Name: "smith, j", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://a.example/1", Text: "John Smith wrote the database survey", PersonaID: 0},
			{ID: 1, URL: "http://a.example/2", Text: "a report by John Smith on indexing", PersonaID: 0},
		}},
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://b.example/1", Text: "John Smith presented the keynote", PersonaID: 0},
		}},
		{Name: "jones", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://c.example/1", Text: "Mary Jones founded the lab", PersonaID: 0},
		}},
	}
	ctx := context.Background()

	// Collection-name keys keep the spellings apart…
	byCollection, err := NewBlocker(blocking.ExactKey{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := byCollection.Block(ctx, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("collection keys produced %d blocks, want 3", len(blocks))
	}

	// …person-name keys merge them.
	keys, err := ParseKeys("names")
	if err != nil {
		t.Fatal(err)
	}
	byNames, err := NewBlocker(blocking.ExactKey{}, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err = byNames.Block(ctx, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("name keys produced %d blocks, want 2 (smith variants merged, jones apart)", len(blocks))
	}
	if blocks[0].Name != "smith, j+john smith" || len(blocks[0].Docs) != 3 {
		t.Fatalf("merged block is %q with %d docs, want the 3 smith pages in one block",
			blocks[0].Name, len(blocks[0].Docs))
	}
}

// TestNewBlockerPicksIndexForKeyedSchemes pins the dispatch: key-based
// schemes get the incremental index, global schemes the per-run blocker,
// and invalid parameters fail at construction.
func TestNewBlockerPicksIndexForKeyedSchemes(t *testing.T) {
	for _, scheme := range []blocking.Scheme{blocking.ExactKey{}, blocking.TokenBlocking{}} {
		b, err := NewBlocker(scheme, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.(*IndexBlocker); !ok {
			t.Errorf("%T: got %T, want *IndexBlocker", scheme, b)
		}
	}
	for _, scheme := range []blocking.Scheme{blocking.SortedNeighborhood{Window: 7}, blocking.Canopy{Loose: 0.3, Tight: 0.8}} {
		b, err := NewBlocker(scheme, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.(SchemeBlocker); !ok {
			t.Errorf("%T: got %T, want SchemeBlocker", scheme, b)
		}
	}
	if _, err := NewBlocker(blocking.SortedNeighborhood{Window: 1}, nil, 0); err == nil {
		t.Error("NewBlocker accepted a degenerate sorted-neighborhood window")
	}
	if _, err := New(Config{Blocker: SchemeBlocker{Scheme: blocking.Canopy{Loose: 0.9, Tight: 0.2}}}); err == nil {
		t.Error("pipeline.New accepted inverted canopy thresholds")
	}
}

// TestURLHostKeyBlocksByHost pins the urlhost key function: pages hosted
// together block together regardless of which query retrieved them, and a
// page with no parseable host falls back to its collection name.
func TestURLHostKeyBlocksByHost(t *testing.T) {
	cols := []*corpus.Collection{
		{Name: "smith", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://lab.example/people/smith", Text: "bio", PersonaID: 0},
			{ID: 1, URL: "http://other.example/smith", Text: "talk", PersonaID: 0},
		}},
		{Name: "jones", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://lab.example/people/jones", Text: "bio", PersonaID: 0},
		}},
	}

	keys, err := ParseKeys("urlhost")
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(cols[0], cols[0].Docs[0]); len(got) != 1 || got[0] != "lab.example" {
		t.Fatalf("urlhost keys = %v, want [lab.example]", got)
	}
	noURL := corpus.Document{ID: 2, Text: "no url", PersonaID: 0}
	if got := keys(cols[0], noURL); len(got) != 1 || got[0] != "smith" {
		t.Fatalf("fallback keys = %v, want the collection name", got)
	}

	b, err := NewBlocker(blocking.ExactKey{}, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := b.Block(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}
	// lab.example merges smith/0 with jones/0; other.example keeps smith/1
	// apart: two blocks.
	if len(blocks) != 2 {
		t.Fatalf("urlhost keys produced %d blocks, want 2", len(blocks))
	}
	sizes := []int{len(blocks[0].Docs), len(blocks[1].Docs)}
	if sizes[0]+sizes[1] != 3 || (sizes[0] != 2 && sizes[1] != 2) {
		t.Fatalf("block sizes = %v, want one merged pair and one singleton", sizes)
	}

	// ParseKeys rejects unknown names and lists urlhost among the valid
	// spellings.
	if _, err := ParseKeys("nope"); err == nil || !strings.Contains(err.Error(), "urlhost") {
		t.Fatalf("unknown key error = %v, want mention of urlhost", err)
	}
}
