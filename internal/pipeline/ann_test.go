package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ann"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/eval"
)

// flatPrefix simulates append-only ingestion in flattened (collection,
// position) order: batch k of total holds the first ceil(T·(k+1)/total)
// documents of the concatenated corpus, filling collections in order.
// Unlike batchPrefix (which grows every collection at once), these are
// the splits the ann package promises reproduce a one-shot build bit for
// bit — insertion order is what a deterministic proximity graph hinges
// on.
func flatPrefix(cols []*corpus.Collection, k, total int) []*corpus.Collection {
	t := 0
	for _, col := range cols {
		t += len(col.Docs)
	}
	n := (t*(k+1) + total - 1) / total
	out := make([]*corpus.Collection, 0, len(cols))
	for _, col := range cols {
		if n <= 0 {
			break
		}
		take := len(col.Docs)
		if take > n {
			take = n
		}
		n -= take
		docs := append([]corpus.Document(nil), col.Docs[:take]...)
		personas := 0
		for _, d := range docs {
			if d.PersonaID >= personas {
				personas = d.PersonaID + 1
			}
		}
		out = append(out, &corpus.Collection{Name: col.Name, Docs: docs, NumPersonas: personas})
	}
	return out
}

// annScheme parses one of the approximable global schemes.
func annScheme(t testing.TB, name string) blocking.ApproxScheme {
	t.Helper()
	parsed, err := blocking.ParseScheme(name)
	if err != nil {
		t.Fatal(err)
	}
	approx, ok := parsed.(blocking.ApproxScheme)
	if !ok {
		t.Fatalf("scheme %q is %T, not approximable", name, parsed)
	}
	return approx
}

// TestANNIncrementalEqualsFull extends the equivalence harness to the
// ANN path: for canopy and sorted neighborhood × all strategies × both
// clusterings, K-batch ingest resolved incrementally through the ANN
// index yields, after the last batch, clusters identical to one full ANN
// resolution of the union by a fresh index.
func TestANNIncrementalEqualsFull(t *testing.T) {
	cols := incrementalCollections(t)
	const batches = 3
	ctx := context.Background()

	schemes := []string{"canopy", "sortedneighborhood"}
	strategies := []string{"best", "threshold", "weighted", "majority"}
	clusterings := []string{"closure", "correlation"}
	if testing.Short() {
		strategies = []string{"best", "weighted"}
		clusterings = []string{"closure"}
	}

	for _, scheme := range schemes {
		for _, strategy := range strategies {
			for _, clustering := range clusterings {
				name := fmt.Sprintf("%s/%s/%s", scheme, strategy, clustering)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					ab, err := NewANNBlocker(annScheme(t, scheme), nil, ANNOptions{})
					if err != nil {
						t.Fatal(err)
					}
					incremental := incrementalPipelineWith(t, ab, strategy, clustering)

					var snap *Snapshot
					var last *IncrementalResult
					for k := 0; k < batches; k++ {
						inc, err := incremental.RunIncremental(ctx, flatPrefix(cols, k, batches), snap)
						if err != nil {
							t.Fatalf("batch %d: %v", k, err)
						}
						if inc.Stats.Blocking == nil || inc.Stats.Blocking.Indexer != "ann" {
							t.Fatalf("batch %d: blocking stats %+v, want the ann path", k, inc.Stats.Blocking)
						}
						snap = inc.Snapshot
						last = inc
					}
					if last.Stats.Blocking.DeltaDocs == 0 {
						t.Fatal("last batch indexed no documents")
					}

					fresh, err := NewANNBlocker(annScheme(t, scheme), nil, ANNOptions{})
					if err != nil {
						t.Fatal(err)
					}
					full := incrementalPipelineWith(t, fresh, strategy, clustering)
					want, err := full.RunIncremental(ctx, flatPrefix(cols, batches-1, batches), nil)
					if err != nil {
						t.Fatalf("full: %v", err)
					}
					if len(last.Results) != len(want.Results) {
						t.Fatalf("ANN incremental ended with %d blocks, full ANN run has %d",
							len(last.Results), len(want.Results))
					}
					for i := range want.Results {
						in, fu := last.Results[i], want.Results[i]
						if in.Block.Name != fu.Block.Name {
							t.Fatalf("block %d: name %q vs %q", i, in.Block.Name, fu.Block.Name)
						}
						if !reflect.DeepEqual(in.Resolution.Labels, fu.Resolution.Labels) {
							t.Errorf("block %d (%s): incremental clusters %v != full clusters %v",
								i, in.Block.Name, in.Resolution.Labels, fu.Resolution.Labels)
						}
					}
				})
			}
		}
	}
}

// TestANNBlockerRestartEqualsFresh pins the ANN restart path: an index
// encoded mid-stream and decoded into a new blocker reports exactly the
// blocks of one that kept running, and re-inserts only the delta.
func TestANNBlockerRestartEqualsFresh(t *testing.T) {
	cols := incrementalCollections(t)
	ctx := context.Background()
	first := flatPrefix(cols, 1, 3)
	union := flatPrefix(cols, 2, 3)

	cfg := ANNOptions{M: 8, EfConstruction: 60, EfSearch: 32}
	ab, err := NewANNBlocker(annScheme(t, "canopy"), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ab.BlockFingerprints(ctx, first); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := ab.Index().EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ann.Decode(&buf, ann.Config{
		Scheme: annScheme(t, "canopy"),
		M:      cfg.M, EfConstruction: cfg.EfConstruction, EfSearch: cfg.EfSearch,
	})
	if err != nil {
		t.Fatal(err)
	}
	reopened := NewANNBlockerWith(decoded)

	got, err := reopened.BlockFingerprints(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ab.BlockFingerprints(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Blocks, want.Blocks) ||
		!reflect.DeepEqual(got.Members, want.Members) ||
		!reflect.DeepEqual(got.Fingerprints, want.Fingerprints) {
		t.Fatal("reopened ANN index reports different blocks than the one that kept running")
	}
	if got.Stats.DeltaDocs != want.Stats.DeltaDocs {
		t.Fatalf("reopened index inserted %d docs, the running one %d — the restart head-start is gone",
			got.Stats.DeltaDocs, want.Stats.DeltaDocs)
	}
	firstDocs, unionDocs := 0, 0
	for _, col := range first {
		firstDocs += len(col.Docs)
	}
	for _, col := range union {
		unionDocs += len(col.Docs)
	}
	if got.Stats.DeltaDocs != unionDocs-firstDocs {
		t.Fatalf("reopened index inserted %d docs, want only the %d-doc delta",
			got.Stats.DeltaDocs, unionDocs-firstDocs)
	}
}

// recallCorpus generates the seeded corpus the recall harness and the
// benchmark share: collections whose names overlap token-wise, so exact
// canopy builds cross-collection blocks the ANN index must rediscover.
func recallCorpus(tb testing.TB, nCols, nDocs int) []*corpus.Collection {
	tb.Helper()
	surnames := []string{"smith", "rivera", "cohen", "tanaka", "okafor", "larsen"}
	given := []string{"john", "maria", "wei", "amara", "erik", "fatima", "david", "yuki"}
	cols := make([]*corpus.Collection, nCols)
	for i := range cols {
		name := fmt.Sprintf("%s %s", given[i%len(given)], surnames[i%len(surnames)])
		if i%3 == 0 {
			name = fmt.Sprintf("%s %c %s", given[i%len(given)], 'a'+rune(i%26), surnames[i%len(surnames)])
		}
		col, err := corpus.GenerateCollection(corpus.CollectionConfig{
			Name: name, NumDocs: nDocs, NumPersonas: 3,
			Noise: 0.4, MissingInfo: 0.2, Spurious: 0.2, Seed: int64(7000 + i),
		})
		if err != nil {
			tb.Fatal(err)
		}
		cols[i] = col
	}
	return cols
}

// flatten maps member refs to flattened document indices for the recall
// metric.
func flatten(cols []*corpus.Collection, members [][]DocRef) [][]int {
	base := make([]int, len(cols))
	off := 0
	for ci, col := range cols {
		base[ci] = off
		off += len(col.Docs)
	}
	out := make([][]int, len(members))
	for i, mem := range members {
		out[i] = make([]int, len(mem))
		for j, ref := range mem {
			out[i][j] = base[ref.Col] + ref.Doc
		}
	}
	return out
}

// TestANNCanopyRecall pins the recall harness: against the exact canopy
// blocks on the seeded corpus, the ANN index must keep candidate recall
// at or above 0.95 across three efSearch settings.
func TestANNCanopyRecall(t *testing.T) {
	cols := recallCorpus(t, 18, 12)
	ctx := context.Background()
	scheme := annScheme(t, "canopy")

	_, exact, err := NewSchemeBlocker(scheme).BlockMembership(ctx, cols)
	if err != nil {
		t.Fatal(err)
	}
	ref := flatten(cols, exact)

	for _, ef := range []int{24, 64, 128} {
		t.Run(fmt.Sprintf("ef%d", ef), func(t *testing.T) {
			ab, err := NewANNBlocker(scheme, nil, ANNOptions{EfSearch: ef})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ab.BlockFingerprints(ctx, cols)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats.AnnEf != ef {
				t.Fatalf("stats %+v do not echo efSearch %d", got.Stats, ef)
			}
			recall := eval.CandidateRecall(ref, flatten(cols, got.Members))
			t.Logf("efSearch=%d: candidate recall %.4f over %d exact blocks", ef, recall, len(ref))
			if recall < 0.95 {
				t.Fatalf("efSearch=%d: candidate recall %.4f below the 0.95 floor", ef, recall)
			}
		})
	}
}

// TestNewModeBlockerDispatch pins the mode switch: exact mode keeps
// today's dispatch bit for bit, ann mode serves global schemes from the
// candidate index and rejects key-based schemes and junk modes.
func TestNewModeBlockerDispatch(t *testing.T) {
	b, err := NewModeBlocker("", blocking.ExactKey{}, nil, 0, ANNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*IndexBlocker); !ok {
		t.Errorf("default mode: got %T, want *IndexBlocker", b)
	}
	b, err = NewModeBlocker("exact", blocking.Canopy{Loose: 0.3, Tight: 0.8}, nil, 0, ANNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(SchemeBlocker); !ok {
		t.Errorf("exact mode, canopy: got %T, want SchemeBlocker", b)
	}
	b, err = NewModeBlocker("ann", blocking.Canopy{Loose: 0.3, Tight: 0.8}, nil, 0, ANNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*ANNBlocker); !ok {
		t.Errorf("ann mode, canopy: got %T, want *ANNBlocker", b)
	}
	if _, err := NewModeBlocker("ann", blocking.ExactKey{}, nil, 0, ANNOptions{}); err == nil {
		t.Error("ann mode accepted a key-based scheme")
	}
	if _, err := NewModeBlocker("ann", blocking.Canopy{Loose: 0.3, Tight: 0.8}, nil, 0, ANNOptions{M: 1}); err == nil {
		t.Error("ann mode accepted a degenerate graph degree")
	}
	if _, err := NewModeBlocker("fuzzy", blocking.ExactKey{}, nil, 0, ANNOptions{}); err == nil {
		t.Error("unknown mode was accepted")
	}
}

// TestPhoneticKeyMergesSpellings pins the phonetic key function: name
// spellings that sound alike land in one block under exact-key blocking.
func TestPhoneticKeyMergesSpellings(t *testing.T) {
	cols := []*corpus.Collection{
		{Name: "jon smyth", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://a.example/1", Text: "Jon Smyth wrote the parser", PersonaID: 0},
		}},
		{Name: "john smith", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://b.example/1", Text: "John Smith presented the keynote", PersonaID: 0},
		}},
		{Name: "mary jones", NumPersonas: 1, Docs: []corpus.Document{
			{ID: 0, URL: "http://c.example/1", Text: "Mary Jones founded the lab", PersonaID: 0},
		}},
	}
	keys, err := ParseKeys("phonetic")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlocker(blocking.ExactKey{}, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := b.Block(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("phonetic keys produced %d blocks, want 2 (smyth/smith merged, jones apart)", len(blocks))
	}
	if blocks[0].Name != "jon smyth+john smith" || len(blocks[0].Docs) != 2 {
		t.Fatalf("merged block is %q with %d docs, want the two smith spellings together",
			blocks[0].Name, len(blocks[0].Docs))
	}
}
