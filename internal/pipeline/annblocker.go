package pipeline

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ann"
	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
)

// ANNOptions carries the graph knobs of the approximate candidate index;
// zero values select the ann package defaults.
type ANNOptions struct {
	// M is the per-node degree bound of the proximity graph.
	M int
	// EfConstruction sizes the link-selection beam at insertion time.
	EfConstruction int
	// EfSearch sizes the neighbor query candidate edges come from; the
	// recall knob.
	EfSearch int
}

// ANNBlocker is the Block stage over the incremental approximate-
// nearest-neighbor index: each new document is inserted into the
// proximity graph once and linked to candidates by a near-logarithmic
// neighbor query, replacing the O(N²) per-run pass the global schemes
// (canopy, sorted neighborhood) otherwise need. It fills the same
// FingerprintBlocker contract as IndexBlocker, so RunIncremental and the
// service treat the two identically.
//
// Like IndexBlocker, an ANNBlocker is bound to one append-only corpus:
// every call must present a superset of the previous call's collections,
// or the index reports ann.ErrOutOfSync. It is safe for concurrent use;
// calls serialize on the index.
type ANNBlocker struct {
	idx *ann.CandidateIndex
}

// NewANNBlocker builds an ANNBlocker for an approximable global scheme.
// A nil keys selects the collection-name KeyFunc; zero knobs select the
// ann defaults.
func NewANNBlocker(scheme blocking.ApproxScheme, keys KeyFunc, opts ANNOptions) (*ANNBlocker, error) {
	idx, err := ann.New(ann.Config{
		Scheme:         scheme,
		Keys:           ann.KeyFunc(keys),
		M:              opts.M,
		EfConstruction: opts.EfConstruction,
		EfSearch:       opts.EfSearch,
	})
	if err != nil {
		return nil, err
	}
	return &ANNBlocker{idx: idx}, nil
}

// NewANNBlockerWith wraps an existing candidate index — typically one
// decoded from its persisted form, so a restarted process resumes with
// the corpus already inserted into the graph.
func NewANNBlockerWith(idx *ann.CandidateIndex) *ANNBlocker {
	return &ANNBlocker{idx: idx}
}

// Index exposes the underlying index for persistence and stats.
func (ab *ANNBlocker) Index() *ann.CandidateIndex { return ab.idx }

// Warm inserts any documents of cols the index has not seen, without
// assembling blocks — same contract as IndexBlocker.Warm: a snapshot the
// index has already been advanced past is a no-op, not an error.
func (ab *ANNBlocker) Warm(cols []*corpus.Collection) (ann.UpdateStats, error) {
	stats, err := ab.idx.Update(cols)
	if errors.Is(err, ann.ErrOutOfSync) {
		return ann.UpdateStats{}, nil
	}
	return stats, err
}

// Block implements Blocker.
func (ab *ANNBlocker) Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error) {
	out, err := ab.BlockFingerprints(ctx, cols)
	return out.Blocks, err
}

// BlockMembership implements MembershipBlocker.
func (ab *ANNBlocker) BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error) {
	out, err := ab.BlockFingerprints(ctx, cols)
	return out.Blocks, out.Members, err
}

// BlockFingerprints implements FingerprintBlocker: insert the delta into
// the graph, pull every component's cached membership and fingerprint,
// and assemble the block collections in parallel.
func (ab *ANNBlocker) BlockFingerprints(ctx context.Context, cols []*corpus.Collection) (IndexedBlocks, error) {
	if err := ctx.Err(); err != nil {
		return IndexedBlocks{}, err
	}
	// One atomic index operation, for the same reason as IndexBlocker: a
	// shared index advanced by a concurrent user must not hand back refs
	// pointing beyond the caller's snapshot.
	stats, members, fps, err := ab.idx.UpdateMembership(cols)
	var blockingStats BlockingStats
	switch {
	case errors.Is(err, ann.ErrOutOfSync):
		members, fps, err = ab.idx.MembershipOf(cols)
		if err != nil {
			return IndexedBlocks{}, err
		}
		blockingStats = BlockingStats{Indexer: "ann", Fallback: true}
	case err != nil:
		return IndexedBlocks{}, err
	default:
		blockingStats = BlockingStats{
			Indexer:     "ann",
			IndexedDocs: stats.IndexedDocs,
			DeltaDocs:   stats.DeltaDocs,
			DirtyBlocks: stats.DirtyBlocks,
			AnnM:        stats.M,
			AnnEf:       stats.EfSearch,
		}
	}
	if err := ctx.Err(); err != nil {
		return IndexedBlocks{}, err
	}

	blocks := make([]*corpus.Collection, len(members))
	blockindex.Parallel(ab.idx.Workers(), len(members), func(i int) {
		blocks[i] = assembleRefs(cols, members[i])
	})

	return IndexedBlocks{
		Blocks:       blocks,
		Members:      members,
		Fingerprints: fps,
		Stats:        blockingStats,
	}, nil
}

// BlockingModes are the accepted blocking-mode spellings, in display
// order for CLI/API usage messages.
var BlockingModes = []string{"exact", "ann"}

// NewModeBlocker picks a Blocker for a scheme under an explicit blocking
// mode. Mode "" or "exact" is today's behavior — NewBlocker's dispatch,
// bit-identical results. Mode "ann" serves a global scheme from the
// incremental approximate candidate index; it requires a scheme with an
// approximation policy (canopy, sorted neighborhood) and rejects
// anything else, because the key-based schemes already have an exact
// O(delta) index and approximating them would only lose recall.
func NewModeBlocker(mode string, scheme blocking.Scheme, keys KeyFunc, shards int, opts ANNOptions) (Blocker, error) {
	switch mode {
	case "", "exact":
		return NewBlocker(scheme, keys, shards)
	case "ann":
		approx, ok := scheme.(blocking.ApproxScheme)
		if !ok {
			return nil, fmt.Errorf("pipeline: blocking mode %q needs a global scheme with an approximation policy (canopy, sortedneighborhood), not %T", mode, scheme)
		}
		return NewANNBlocker(approx, keys, opts)
	default:
		return nil, fmt.Errorf("pipeline: unknown blocking mode %q (valid: exact, ann)", mode)
	}
}
