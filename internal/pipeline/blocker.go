package pipeline

import (
	"context"
	"strings"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
)

// Blocker is the pipeline's block stage: it re-partitions ingested
// collections into the resolution blocks the pairwise stages run over. The
// paper blocks by exact person name; a Blocker generalizes that to any
// candidate-pair scheme.
type Blocker interface {
	// Block returns the resolution blocks in deterministic order. Every
	// returned collection must validate (dense doc IDs, in-range persona
	// labels).
	Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error)
}

// KeyFunc derives the blocking keys of one document. The default keys a
// document by the name its collection was retrieved for — the paper's "all
// pages retrieved for one name" scheme. Richer key functions (extracted
// person names, URL hosts, …) trade reduction for recall.
type KeyFunc func(col *corpus.Collection, doc corpus.Document) []string

// collectionNameKey is the default KeyFunc.
func collectionNameKey(col *corpus.Collection, _ corpus.Document) []string {
	return []string{col.Name}
}

// SchemeBlocker adapts any blocking.Scheme into the pipeline's block
// stage: all ingested documents become records, the scheme generates
// candidate pairs, and the connected components of the candidate graph
// become resolution blocks (documents in no pair resolve as singleton
// blocks). Blocks are ordered by their first document in ingest order, and
// a block that reassembles an entire ingested collection reuses it
// verbatim — so exact-key blocking over collection names reproduces the
// ingested collections bit for bit.
type SchemeBlocker struct {
	// Scheme generates the candidate pairs; nil selects ExactKey.
	Scheme blocking.Scheme
	// Keys derives each document's blocking keys; nil selects the
	// collection name.
	Keys KeyFunc
}

// NewSchemeBlocker wraps a candidate-pair scheme with the default keys.
func NewSchemeBlocker(s blocking.Scheme) SchemeBlocker {
	return SchemeBlocker{Scheme: s}
}

// DefaultBlocker is the paper's scheme: exact-key blocking over collection
// names.
func DefaultBlocker() Blocker { return NewSchemeBlocker(blocking.ExactKey{}) }

// ParseBlocker maps a CLI/API scheme name ("exact", "token", …) to a
// blocker over the default document keys.
func ParseBlocker(name string) (Blocker, error) {
	scheme, err := blocking.ParseScheme(name)
	if err != nil {
		return nil, err
	}
	return NewSchemeBlocker(scheme), nil
}

// DocRef locates one ingested document by its position in the ingest: the
// collection's index and the document's index within it.
type DocRef struct {
	Col, Doc int
}

// MembershipBlocker is an optional Blocker extension that additionally
// reports which ingested documents each block contains. Incremental
// resolution requires it: block membership is what gets diffed against the
// previous run to decide which blocks are dirty.
type MembershipBlocker interface {
	Blocker
	// BlockMembership returns the blocks plus, for each block, the refs of
	// its member documents in block order (the order the block's Docs were
	// assembled in).
	BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error)
}

// Block implements Blocker.
func (sb SchemeBlocker) Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error) {
	blocks, _, err := sb.BlockMembership(ctx, cols)
	return blocks, err
}

// BlockMembership implements MembershipBlocker.
func (sb SchemeBlocker) BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error) {
	scheme := sb.Scheme
	if scheme == nil {
		scheme = blocking.ExactKey{}
	}
	keys := sb.Keys
	if keys == nil {
		keys = collectionNameKey
	}

	var refs []DocRef
	var records []blocking.Record
	for ci, col := range cols {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for di := range col.Docs {
			records = append(records, blocking.Record{ID: len(refs), Keys: keys(col, col.Docs[di])})
			refs = append(refs, DocRef{Col: ci, Doc: di})
		}
	}

	pairs := scheme.Candidates(records)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	uf := ergraph.NewUnionFind(len(refs))
	for _, p := range pairs {
		uf.Union(p.A, p.B)
	}

	// Components in order of their smallest member; members ascend because
	// the flattened indices are scanned in order.
	comp := make(map[int]int)
	var members [][]int
	for i := range refs {
		root := uf.Find(i)
		slot, ok := comp[root]
		if !ok {
			slot = len(members)
			comp[root] = slot
			members = append(members, nil)
		}
		members[slot] = append(members[slot], i)
	}

	blocks := make([]*corpus.Collection, 0, len(members))
	memberRefs := make([][]DocRef, 0, len(members))
	for _, m := range members {
		blocks = append(blocks, sb.assemble(cols, refs, m))
		mr := make([]DocRef, len(m))
		for j, idx := range m {
			mr[j] = refs[idx]
		}
		memberRefs = append(memberRefs, mr)
	}
	return blocks, memberRefs, nil
}

// assemble builds one block collection from flattened member indices. A
// component that covers exactly one whole ingested collection reuses it
// verbatim; anything else (a split, or a cross-collection merge) gets
// re-indexed documents and densely remapped persona labels.
func (sb SchemeBlocker) assemble(cols []*corpus.Collection, refs []DocRef, members []int) *corpus.Collection {
	first := refs[members[0]]
	src := cols[first.Col]
	if len(members) == len(src.Docs) {
		whole := true
		for off, m := range members {
			if refs[m].Col != first.Col || refs[m].Doc != off {
				whole = false
				break
			}
		}
		if whole {
			return src
		}
	}

	// Persona labels from different source collections are unrelated;
	// remap (source collection, persona) densely in first-seen order.
	type personaKey struct {
		col, persona int
	}
	personas := make(map[personaKey]int)
	var names []string
	seenName := make(map[string]bool)
	out := &corpus.Collection{}
	for i, m := range members {
		ref := refs[m]
		col := cols[ref.Col]
		if !seenName[col.Name] {
			seenName[col.Name] = true
			names = append(names, col.Name)
		}
		doc := col.Docs[ref.Doc]
		pk := personaKey{col: ref.Col, persona: doc.PersonaID}
		label, ok := personas[pk]
		if !ok {
			label = len(personas)
			personas[pk] = label
		}
		doc.ID = i
		doc.PersonaID = label
		out.Docs = append(out.Docs, doc)
	}
	out.Name = strings.Join(names, "+")
	out.NumPersonas = len(personas)
	return out
}
