package pipeline

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/ergraph"
	"repro/internal/extract"
)

// Blocker is the pipeline's block stage: it re-partitions ingested
// collections into the resolution blocks the pairwise stages run over. The
// paper blocks by exact person name; a Blocker generalizes that to any
// candidate-pair scheme.
type Blocker interface {
	// Block returns the resolution blocks in deterministic order. Every
	// returned collection must validate (dense doc IDs, in-range persona
	// labels).
	Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error)
}

// KeyFunc derives the blocking keys of one document. The default keys a
// document by the name its collection was retrieved for — the paper's "all
// pages retrieved for one name" scheme. Richer key functions (extracted
// person names, URL hosts, …) trade reduction for recall. A KeyFunc must
// be pure: the sharded index calls it once per document at indexing time
// and caches the derived keys forever.
type KeyFunc func(col *corpus.Collection, doc corpus.Document) []string

// collectionNameKey is the default KeyFunc — one definition, shared with
// the index layer, so the two defaults can never drift and silently break
// the index-equals-scheme block equivalence.
func collectionNameKey(col *corpus.Collection, doc corpus.Document) []string {
	return blockindex.CollectionNameKey(col, doc)
}

// namesExtractor is the shared feature extractor behind NamesKey, built
// once: the extractor is stateless after construction and safe for
// concurrent use.
var namesExtractor = sync.OnceValue(func() *extract.FeatureExtractor {
	return extract.NewFeatureExtractor(nil, nil)
})

// NamesKey keys a document by its extracted person-name mentions: the most
// frequent person name on the page (feature F3) and the mention closest to
// the query name (F7). Unlike the collection-name default, it lets pages
// about one person retrieved under different query spellings ("j smith",
// "john smith") land in one block — the cross-collection variant merging
// raw crawls need. A page mentioning no person keeps its collection name
// as a fallback key so it still blocks with its siblings.
func NamesKey(col *corpus.Collection, doc corpus.Document) []string {
	f := namesExtractor().Extract(doc.Text, doc.URL, col.Name)
	var keys []string
	if f.MostFrequentName != "" {
		keys = append(keys, f.MostFrequentName)
	}
	if f.ClosestName != "" && f.ClosestName != f.MostFrequentName {
		keys = append(keys, f.ClosestName)
	}
	if len(keys) == 0 {
		keys = append(keys, col.Name)
	}
	return keys
}

// URLHostKey keys a document by the host of its page URL — pages hosted
// together (a personal site, a lab directory, a company's staff pages)
// usually describe one person, so the host carries identity signal (the
// paper's feature F2) that cross-collection blocking can exploit. A page
// with no parseable host keeps its collection name as a fallback key so it
// still blocks with its retrieval siblings.
func URLHostKey(col *corpus.Collection, doc corpus.Document) []string {
	if host := extract.ParseURL(doc.URL).Host; host != "" {
		return []string{host}
	}
	return []string{col.Name}
}

// PhoneticKey keys a document by the Soundex codes of its extracted
// person-name mentions: the NamesKey names, each token folded to its
// phonetic class, so spelling variants that sound alike ("smith" and
// "smyth", "jon" and "john") land on one key without any pairwise
// comparison. A document whose names code to nothing (no letters) keeps
// its collection name so it still blocks with its retrieval siblings.
func PhoneticKey(col *corpus.Collection, doc corpus.Document) []string {
	var keys []string
	seen := make(map[string]bool)
	for _, k := range NamesKey(col, doc) {
		code := blocking.SoundexKey(k)
		if code == "" || seen[code] {
			continue
		}
		seen[code] = true
		keys = append(keys, code)
	}
	if len(keys) == 0 {
		keys = append(keys, col.Name)
	}
	return keys
}

// KeyNames are the accepted ParseKeys spellings, in display order for
// CLI/API usage messages.
var KeyNames = []string{"collection", "names", "urlhost", "phonetic"}

// ParseKeys maps a CLI/API key-function name to its KeyFunc: "collection"
// is the paper's retrieved-for-one-name scheme, "names" keys documents by
// their extracted person-name mentions (F3/F7), "urlhost" by the page
// URL's host (F2), "phonetic" by the Soundex codes of the extracted
// names.
func ParseKeys(name string) (KeyFunc, error) {
	switch name {
	case "", "collection":
		return collectionNameKey, nil
	case "names":
		return NamesKey, nil
	case "urlhost":
		return URLHostKey, nil
	case "phonetic":
		return PhoneticKey, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown key function %q (valid: %s)",
			name, strings.Join(KeyNames, ", "))
	}
}

// SchemeBlocker adapts any blocking.Scheme into the pipeline's block
// stage: all ingested documents become records, the scheme generates
// candidate pairs, and the connected components of the candidate graph
// become resolution blocks (documents in no pair resolve as singleton
// blocks). Blocks are ordered by their first document in ingest order, and
// a block that reassembles an entire ingested collection reuses it
// verbatim — so exact-key blocking over collection names reproduces the
// ingested collections bit for bit.
type SchemeBlocker struct {
	// Scheme generates the candidate pairs; nil selects ExactKey.
	Scheme blocking.Scheme
	// Keys derives each document's blocking keys; nil selects the
	// collection name.
	Keys KeyFunc
}

// NewSchemeBlocker wraps a candidate-pair scheme with the default keys.
func NewSchemeBlocker(s blocking.Scheme) SchemeBlocker {
	return SchemeBlocker{Scheme: s}
}

// Validate surfaces degenerate scheme parameters (a sorted-neighborhood
// window that can pair nothing, inverted canopy thresholds) when the
// pipeline is assembled instead of silently producing a useless candidate
// set at run time.
func (sb SchemeBlocker) Validate() error {
	if v, ok := sb.Scheme.(blocking.Validator); ok {
		return v.Validate()
	}
	return nil
}

// DefaultBlocker is the paper's scheme: exact-key blocking over collection
// names.
func DefaultBlocker() Blocker { return NewSchemeBlocker(blocking.ExactKey{}) }

// ParseBlocker maps a CLI/API scheme name ("exact", "token", …) to a
// blocker over the default document keys. Key-based schemes get the
// sharded incremental index; global schemes fall back to the per-run
// SchemeBlocker.
func ParseBlocker(name string) (Blocker, error) {
	scheme, err := blocking.ParseScheme(name)
	if err != nil {
		return nil, err
	}
	return NewBlocker(scheme, nil, 0)
}

// NewBlocker picks the right Blocker for a scheme: schemes whose candidate
// pairs come purely from shared keys (blocking.KeyedScheme — exact, token)
// get an IndexBlocker over the sharded incremental index, so repeated
// blocking of a growing corpus costs O(delta); global schemes
// (sortedneighborhood, canopy) keep the full per-run SchemeBlocker. A nil
// keys selects the collection-name KeyFunc, and shards < 1 the index
// default.
func NewBlocker(scheme blocking.Scheme, keys KeyFunc, shards int) (Blocker, error) {
	if keyed, ok := scheme.(blocking.KeyedScheme); ok {
		return NewIndexBlocker(keyed, keys, shards)
	}
	if v, ok := scheme.(blocking.Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return SchemeBlocker{Scheme: scheme, Keys: keys}, nil
}

// DocRef locates one ingested document by its position in the ingest: the
// collection's index and the document's index within it. It is an alias of
// the block index's ref type so membership flows between the layers
// without conversion.
type DocRef = blockindex.DocRef

// MembershipBlocker is an optional Blocker extension that additionally
// reports which ingested documents each block contains. Incremental
// resolution requires it: block membership is what gets diffed against the
// previous run to decide which blocks are dirty.
type MembershipBlocker interface {
	Blocker
	// BlockMembership returns the blocks plus, for each block, the refs of
	// its member documents in block order (the order the block's Docs were
	// assembled in).
	BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error)
}

// Block implements Blocker.
func (sb SchemeBlocker) Block(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, error) {
	blocks, _, err := sb.BlockMembership(ctx, cols)
	return blocks, err
}

// BlockMembership implements MembershipBlocker.
func (sb SchemeBlocker) BlockMembership(ctx context.Context, cols []*corpus.Collection) ([]*corpus.Collection, [][]DocRef, error) {
	scheme := sb.Scheme
	if scheme == nil {
		scheme = blocking.ExactKey{}
	}
	keys := sb.Keys
	if keys == nil {
		keys = collectionNameKey
	}

	var refs []DocRef
	var records []blocking.Record
	for ci, col := range cols {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for di := range col.Docs {
			records = append(records, blocking.Record{ID: len(refs), Keys: keys(col, col.Docs[di])})
			refs = append(refs, DocRef{Col: ci, Doc: di})
		}
	}

	pairs := scheme.Candidates(records)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	uf := ergraph.NewUnionFind(len(refs))
	for _, p := range pairs {
		uf.Union(p.A, p.B)
	}

	// Components in order of their smallest member; members ascend because
	// the flattened indices are scanned in order.
	comp := make(map[int]int)
	var members [][]int
	for i := range refs {
		root := uf.Find(i)
		slot, ok := comp[root]
		if !ok {
			slot = len(members)
			comp[root] = slot
			members = append(members, nil)
		}
		members[slot] = append(members[slot], i)
	}

	blocks := make([]*corpus.Collection, 0, len(members))
	memberRefs := make([][]DocRef, 0, len(members))
	for _, m := range members {
		mr := make([]DocRef, len(m))
		for j, idx := range m {
			mr[j] = refs[idx]
		}
		blocks = append(blocks, assembleRefs(cols, mr))
		memberRefs = append(memberRefs, mr)
	}
	return blocks, memberRefs, nil
}

// assembleRefs builds one block collection from its member refs, the
// shared assembly step of SchemeBlocker and IndexBlocker. A component that
// covers exactly one whole ingested collection reuses it verbatim;
// anything else (a split, or a cross-collection merge) gets re-indexed
// documents and densely remapped persona labels.
func assembleRefs(cols []*corpus.Collection, refs []DocRef) *corpus.Collection {
	first := refs[0]
	src := cols[first.Col]
	if len(refs) == len(src.Docs) {
		whole := true
		for off, ref := range refs {
			if ref.Col != first.Col || ref.Doc != off {
				whole = false
				break
			}
		}
		if whole {
			return src
		}
	}

	// Persona labels from different source collections are unrelated;
	// remap (source collection, persona) densely in first-seen order.
	type personaKey struct {
		col, persona int
	}
	personas := make(map[personaKey]int)
	var names []string
	seenName := make(map[string]bool)
	out := &corpus.Collection{}
	for i, ref := range refs {
		col := cols[ref.Col]
		if !seenName[col.Name] {
			seenName[col.Name] = true
			names = append(names, col.Name)
		}
		doc := col.Docs[ref.Doc]
		pk := personaKey{col: ref.Col, persona: doc.PersonaID}
		label, ok := personas[pk]
		if !ok {
			label = len(personas)
			personas[pk] = label
		}
		doc.ID = i
		doc.PersonaID = label
		out.Docs = append(out.Docs, doc)
	}
	out.Name = strings.Join(names, "+")
	out.NumPersonas = len(personas)
	return out
}
