package textsim

import "math"

// Sequence-alignment similarities complete the text-matching substrate:
// Needleman-Wunsch (global alignment), Smith-Waterman (local alignment) and
// SoftTFIDF (Cohen, Ravikumar, Fienberg's hybrid token/character measure).
// None of Table I's functions require them, but a string-matching library
// for entity resolution is expected to provide them and the custom-function
// extension point accepts any of these.

// AlignmentParams scores an alignment: Match > 0, Mismatch and Gap <= 0.
type AlignmentParams struct {
	Match, Mismatch, Gap float64
}

// DefaultAlignment is the standard +1/−1/−1 scoring.
var DefaultAlignment = AlignmentParams{Match: 1, Mismatch: -1, Gap: -1}

// NeedlemanWunsch returns the global alignment score of a and b under the
// given parameters (rune-level).
func NeedlemanWunsch(a, b string, p AlignmentParams) float64 {
	ra, rb := []rune(a), []rune(b)
	prev := make([]float64, len(rb)+1)
	curr := make([]float64, len(rb)+1)
	for j := 1; j <= len(rb); j++ {
		prev[j] = prev[j-1] + p.Gap
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = prev[0] + p.Gap
		for j := 1; j <= len(rb); j++ {
			sub := p.Mismatch
			if ra[i-1] == rb[j-1] {
				sub = p.Match
			}
			curr[j] = math.Max(prev[j-1]+sub, math.Max(prev[j]+p.Gap, curr[j-1]+p.Gap))
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// NeedlemanWunschSimilarity normalizes the global alignment score into
// [0, 1] by dividing by the best attainable score (all-match on the longer
// string) and clamping negatives to 0. Two empty strings score 1.
func NeedlemanWunschSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	score := NeedlemanWunsch(a, b, DefaultAlignment)
	norm := score / (DefaultAlignment.Match * float64(maxLen))
	if norm < 0 {
		return 0
	}
	return norm
}

// SmithWaterman returns the best local alignment score of a and b under the
// given parameters (rune-level); the score is never negative.
func SmithWaterman(a, b string, p AlignmentParams) float64 {
	ra, rb := []rune(a), []rune(b)
	prev := make([]float64, len(rb)+1)
	curr := make([]float64, len(rb)+1)
	best := 0.0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := p.Mismatch
			if ra[i-1] == rb[j-1] {
				sub = p.Match
			}
			v := math.Max(0, math.Max(prev[j-1]+sub, math.Max(prev[j]+p.Gap, curr[j-1]+p.Gap)))
			curr[j] = v
			if v > best {
				best = v
			}
		}
		prev, curr = curr, prev
		for j := range curr {
			curr[j] = 0
		}
	}
	return best
}

// SmithWatermanSimilarity normalizes the local alignment score into [0, 1]
// by the best attainable score on the shorter string: a string fully
// contained in the other scores 1. Two empty strings score 1; one empty
// string scores 0.
func SmithWatermanSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	minLen := la
	if lb < minLen {
		minLen = lb
	}
	return SmithWaterman(a, b, DefaultAlignment) / (DefaultAlignment.Match * float64(minLen))
}

// SoftTFIDF compares two token sequences with TF-IDF-style weights, where
// tokens "match" when their secondary character-level similarity reaches
// theta (Cohen, Ravikumar, Fienberg 2003). weights maps tokens to their
// corpus weight; unknown tokens weigh 1. The result is in [0, 1].
func SoftTFIDF(a, b []string, weights map[string]float64, sim StringSim, theta float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	w := func(t string) float64 {
		if weights != nil {
			if v, ok := weights[t]; ok {
				return v
			}
		}
		return 1
	}
	var na, nb float64
	for _, t := range a {
		na += w(t) * w(t)
	}
	for _, t := range b {
		nb += w(t) * w(t)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for _, ta := range a {
		bestSim, bestTok := 0.0, ""
		for _, tb := range b {
			if s := sim(ta, tb); s > bestSim {
				bestSim, bestTok = s, tb
			}
		}
		if bestSim >= theta {
			dot += w(ta) * w(bestTok) * bestSim
		}
	}
	v := dot / math.Sqrt(na*nb)
	if v > 1 {
		v = 1
	}
	return v
}
