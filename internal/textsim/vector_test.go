package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func vec(pairs ...interface{}) SparseVector {
	v := NewSparseVector()
	for i := 0; i < len(pairs); i += 2 {
		v[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return v
}

func TestSparseVectorAdd(t *testing.T) {
	v := NewSparseVector()
	v.Add("a", 1)
	v.Add("a", 2)
	if v["a"] != 3 {
		t.Errorf("a = %v, want 3", v["a"])
	}
	v.Add("a", -3)
	if _, ok := v["a"]; ok {
		t.Error("entry reaching zero must be deleted")
	}
}

func TestNormDot(t *testing.T) {
	a := vec("x", 3.0, "y", 4.0)
	if got := a.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	b := vec("y", 2.0, "z", 7.0)
	if got := a.Dot(b); math.Abs(got-8) > 1e-12 {
		t.Errorf("Dot = %v, want 8", got)
	}
	if got := b.Dot(a); math.Abs(got-8) > 1e-12 {
		t.Errorf("Dot not symmetric: %v", got)
	}
	if got := NewSparseVector().Norm(); got != 0 {
		t.Errorf("empty Norm = %v", got)
	}
}

func TestScaleClone(t *testing.T) {
	a := vec("x", 2.0)
	c := a.Clone()
	a.Scale(3)
	if a["x"] != 6 {
		t.Errorf("Scale: %v", a["x"])
	}
	if c["x"] != 2 {
		t.Errorf("Clone must be independent: %v", c["x"])
	}
	a.Scale(0)
	if len(a) != 0 {
		t.Error("Scale(0) must empty the vector")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(NewSparseVector(), NewSparseVector()); got != 1 {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	if got := Cosine(vec("a", 1.0), NewSparseVector()); got != 0 {
		t.Errorf("nonempty/empty = %v, want 0", got)
	}
	a := vec("a", 1.0, "b", 1.0)
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v, want 1", got)
	}
	// Orthogonal supports.
	if got := Cosine(vec("a", 1.0), vec("b", 1.0)); got != 0 {
		t.Errorf("orthogonal = %v, want 0", got)
	}
	// 45 degrees.
	got := Cosine(vec("a", 1.0), vec("a", 1.0, "b", 1.0))
	if math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Errorf("45° = %v, want %v", got, 1/math.Sqrt2)
	}
	// Scale invariance.
	b := vec("a", 10.0, "b", 10.0)
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("scale invariance = %v, want 1", got)
	}
}

func TestExtendedJaccard(t *testing.T) {
	if got := ExtendedJaccard(NewSparseVector(), NewSparseVector()); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	a := vec("a", 1.0, "b", 1.0)
	if got := ExtendedJaccard(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := ExtendedJaccard(vec("a", 1.0), vec("b", 1.0)); got != 0 {
		t.Errorf("orthogonal = %v, want 0", got)
	}
	// For binary vectors extended Jaccard equals set Jaccard.
	x := vec("a", 1.0, "b", 1.0, "c", 1.0)
	y := vec("b", 1.0, "c", 1.0, "d", 1.0)
	if got := ExtendedJaccard(x, y); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("binary vectors = %v, want 0.5 (set Jaccard)", got)
	}
	// Extended Jaccard is NOT scale invariant (unlike cosine).
	if got := ExtendedJaccard(a, a.Clone().Scale(10)); got >= 1 {
		t.Errorf("scaled copy should not be 1: %v", got)
	}
}

func TestPearsonSim(t *testing.T) {
	if got := PearsonSim(NewSparseVector(), NewSparseVector()); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	a := vec("a", 1.0, "b", 2.0, "c", 3.0)
	if got := PearsonSim(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v, want 1", got)
	}
	// Anti-correlated over the union support maps to 0.
	b := vec("a", 3.0, "b", 2.0, "c", 1.0)
	if got := PearsonSim(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("anti-correlated = %v, want 0", got)
	}
	// Constant vector over union support: no variance → 0.5.
	c := vec("a", 2.0, "b", 2.0, "c", 2.0)
	if got := PearsonSim(a, c); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("constant = %v, want 0.5", got)
	}
}

func TestWeightedJaccard(t *testing.T) {
	if got := WeightedJaccard(NewSparseVector(), NewSparseVector()); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	a := vec("a", 2.0, "b", 1.0)
	if got := WeightedJaccard(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v, want 1", got)
	}
	b := vec("a", 1.0, "c", 1.0)
	// min: a→1; max: a→2, b→1, c→1 → 1/4.
	if got := WeightedJaccard(a, b); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("= %v, want 0.25", got)
	}
}

func randomVec(keys []string, weights []float64) SparseVector {
	v := NewSparseVector()
	for i, k := range keys {
		if i < len(weights) {
			w := math.Abs(weights[i])
			if !math.IsNaN(w) && !math.IsInf(w, 0) && w > 0 && w < 1e50 {
				v[k] = w
			}
		}
	}
	return v
}

func TestVectorSimsBoundsAndSymmetryProperty(t *testing.T) {
	sims := map[string]func(a, b SparseVector) float64{
		"cosine":   Cosine,
		"extjacc":  ExtendedJaccard,
		"pearson":  PearsonSim,
		"weighted": WeightedJaccard,
	}
	keyset := []string{"a", "b", "c", "d", "e"}
	for name, sim := range sims {
		f := func(w1, w2 []float64) bool {
			a := randomVec(keyset, w1)
			b := randomVec(keyset, w2)
			s := sim(a, b)
			if s < -1e-12 || s > 1+1e-12 {
				return false
			}
			return math.Abs(s-sim(b, a)) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestIdenticalVectorsScoreOneProperty(t *testing.T) {
	keyset := []string{"a", "b", "c", "d"}
	f := func(w []float64) bool {
		v := randomVec(keyset, w)
		if len(v) == 0 {
			return true
		}
		return math.Abs(Cosine(v, v)-1) < 1e-9 &&
			math.Abs(ExtendedJaccard(v, v)-1) < 1e-9 &&
			math.Abs(WeightedJaccard(v, v)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
