package textsim

import (
	"fmt"
	"math"
	"sort"
)

// Vocab interns strings (terms, entity names) into dense int32 IDs for one
// block. IDs are assigned in first-intern order, so building a vocabulary
// by walking documents in a fixed order yields the same IDs on every run —
// the foundation of the pipeline's run-to-run determinism. A Vocab is not
// safe for concurrent mutation; concurrent lookups after the last ID call
// are safe.
type Vocab struct {
	ids   map[string]int32
	terms []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int32)}
}

// ID returns the ID of term, interning it if unseen.
func (v *Vocab) ID(term string) int32 {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := int32(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	return id
}

// Lookup returns the ID of term without interning.
func (v *Vocab) Lookup(term string) (int32, bool) {
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the string interned as id.
func (v *Vocab) Term(id int32) string { return v.terms[id] }

// Len returns the number of interned strings.
func (v *Vocab) Len() int { return len(v.terms) }

// PackedVector is the allocation-lean form of a SparseVector: term IDs
// interned through a block Vocab, sorted ascending, with weights in a
// parallel slice. The L2 norm and the Pearson sufficient statistics
// (Σw, Σw²) are computed once at pack time, so the pairwise similarity
// loop touches only the two ID/weight arrays with a branch-predictable
// merge join — no hashing, no allocation. A PackedVector is immutable
// after Pack and safe for concurrent reads.
//
// erlint:immutable — packed vectors are shared across scorer goroutines;
// mutating one corrupts every similarity computed from it.
type PackedVector struct {
	// IDs are the interned term IDs in ascending order.
	IDs []int32
	// Weights are the term weights, parallel to IDs.
	Weights []float64

	norm  float64 // L2 norm
	sum   float64 // Σw
	sumSq float64 // Σw²
}

// Pack converts v into its packed form, interning every term through vocab.
// Terms are interned in lexicographic order so vocabularies built from the
// same documents in the same order are identical across runs, making the
// merge-join summation order (and therefore every downstream similarity
// value) deterministic — unlike map iteration, which reorders float
// additions on every run.
func (v SparseVector) Pack(vocab *Vocab) *PackedVector {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	p := &PackedVector{
		IDs:     make([]int32, len(terms)),
		Weights: make([]float64, len(terms)),
	}
	for i, t := range terms {
		w := v[t]
		p.IDs[i] = vocab.ID(t)
		p.Weights[i] = w
		p.sum += w
		p.sumSq += w * w
	}
	sort.Sort(byID{p})
	p.norm = math.Sqrt(p.sumSq)
	return p
}

// PackedFromParts assembles a PackedVector from already-interned term IDs
// (ascending, deduplicated) and parallel weights, recomputing the
// pack-time statistics — the decoder-side counterpart of Pack for
// persisted indexes that store vectors in wire form. Inputs that are not
// a valid packed support (length mismatch, unsorted or duplicate IDs,
// negative IDs) are rejected rather than repaired: the caller is decoding
// untrusted bytes and must treat them as corruption.
func PackedFromParts(ids []int32, weights []float64) (*PackedVector, error) {
	if len(ids) != len(weights) {
		return nil, fmt.Errorf("textsim: packed vector has %d ids but %d weights", len(ids), len(weights))
	}
	p := &PackedVector{IDs: ids, Weights: weights}
	for i, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("textsim: packed vector id %d is negative", id)
		}
		if i > 0 && id <= ids[i-1] {
			return nil, fmt.Errorf("textsim: packed vector ids not strictly ascending at %d (%d after %d)", i, id, ids[i-1])
		}
		w := weights[i]
		p.sum += w
		p.sumSq += w * w
	}
	p.norm = math.Sqrt(p.sumSq)
	return p, nil
}

// byID sorts a PackedVector's parallel slices by term ID.
type byID struct{ p *PackedVector }

func (s byID) Len() int           { return len(s.p.IDs) }
func (s byID) Less(i, j int) bool { return s.p.IDs[i] < s.p.IDs[j] }
func (s byID) Swap(i, j int) {
	// erlint:ignore Pack sorts its still-private vector through byID before returning it
	s.p.IDs[i], s.p.IDs[j] = s.p.IDs[j], s.p.IDs[i]
	// erlint:ignore Pack sorts its still-private vector through byID before returning it
	s.p.Weights[i], s.p.Weights[j] = s.p.Weights[j], s.p.Weights[i]
}

// Len returns the support size (number of non-zero entries).
func (p *PackedVector) Len() int { return len(p.IDs) }

// Norm returns the precomputed Euclidean norm.
func (p *PackedVector) Norm() float64 { return p.norm }

// Sum returns the precomputed Σw over the support.
func (p *PackedVector) Sum() float64 { return p.sum }

// SumSquares returns the precomputed Σw² over the support.
func (p *PackedVector) SumSquares() float64 { return p.sumSq }

// Dot returns the inner product of p and o via a merge join over the two
// sorted ID slices. It performs no allocation and no hashing.
func (p *PackedVector) Dot(o *PackedVector) float64 {
	dot, _ := p.dotIntersect(o)
	return dot
}

// dotIntersect returns the inner product and the intersection size in one
// merge-join pass.
func (p *PackedVector) dotIntersect(o *PackedVector) (float64, int) {
	var dot float64
	inter := 0
	i, j := 0, 0
	for i < len(p.IDs) && j < len(o.IDs) {
		a, b := p.IDs[i], o.IDs[j]
		switch {
		case a == b:
			dot += p.Weights[i] * o.Weights[j]
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return dot, inter
}

// PackedCosine is Cosine on packed vectors: the cosine similarity with the
// same edge-case conventions (two empty vectors are identical; a zero-norm
// vector against anything else scores 0).
func PackedCosine(a, b *PackedVector) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	return a.Dot(b) / (a.norm * b.norm)
}

// PackedExtendedJaccard is ExtendedJaccard on packed vectors.
func PackedExtendedJaccard(a, b *PackedVector) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	dot := a.Dot(b)
	den := a.sumSq + b.sumSq - dot
	if den <= 0 {
		return 0
	}
	return dot / den
}

// PackedPearsonSim is PearsonSim on packed vectors. The per-vector sums and
// squared sums are read from the pack-time statistics instead of being
// recomputed per pair, turning the map version's O(|a|+|b|) tail work into
// O(1) on top of the shared merge join.
func PackedPearsonSim(a, b *PackedVector) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	dot, inter := a.dotIntersect(b)
	n := float64(a.Len() + b.Len() - inter)
	if n == 0 {
		return 1
	}
	// Over the union support U: Σ(x−mx)(y−my) = x·y − SxSy/|U|, etc.
	sxy := dot - a.sum*b.sum/n
	sxx := a.sumSq - a.sum*a.sum/n
	syy := b.sumSq - b.sum*b.sum/n
	if sxx <= 1e-15 || syy <= 1e-15 {
		return 0.5
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return (r + 1) / 2
}

// InternSet interns a string slice as a deduplicated, ascending-sorted ID
// set — the packed form of the entity sets the overlap-count functions
// (F4-F6) compare. The result is never nil, so a nil set can signal "not
// packed" to callers with a construction-time fallback.
func InternSet(vocab *Vocab, items []string) []int32 {
	out := make([]int32, 0, len(items))
	for _, s := range items {
		out = append(out, vocab.ID(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedupe in place; SetOverlapCount semantics treat the slices as sets.
	n := 0
	for i, id := range out {
		if i == 0 || id != out[n-1] {
			out[n] = id
			n++
		}
	}
	return out[:n]
}

// IntersectSortedCount returns |A∩B| of two ascending, deduplicated ID
// sets via a merge join — the packed counterpart of SetOverlapCount.
func IntersectSortedCount(a, b []int32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}
