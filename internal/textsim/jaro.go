package textsim

// Jaro returns the Jaro similarity of a and b in [0, 1]. Characters match
// when equal and within half the longer length (minus one) of each other;
// the score combines the match counts and the number of transpositions.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	matchDist := la
	if lb > matchDist {
		matchDist = lb
	}
	matchDist = matchDist/2 - 1
	if matchDist < 0 {
		matchDist = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - matchDist
		if lo < 0 {
			lo = 0
		}
		hi := i + matchDist + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || ra[i] != rb[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions: matched characters out of order.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity: Jaro boosted by a prefix
// bonus of up to four common leading characters with scaling factor 0.1,
// the standard parameters from the record-linkage literature.
func JaroWinkler(a, b string) float64 {
	return JaroWinklerParams(a, b, 0.1, 4)
}

// JaroWinklerParams is JaroWinkler with an explicit prefix scaling factor p
// (commonly 0.1, must not exceed 0.25 to keep the result within [0, 1]) and
// maximum prefix length maxPrefix.
func JaroWinklerParams(a, b string, p float64, maxPrefix int) float64 {
	if p < 0 {
		p = 0
	}
	if p > 0.25 {
		p = 0.25
	}
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < maxPrefix && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*p*(1-j)
}
