package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNeedlemanWunsch(t *testing.T) {
	p := DefaultAlignment
	if got := NeedlemanWunsch("abc", "abc", p); got != 3 {
		t.Errorf("identical = %v, want 3", got)
	}
	if got := NeedlemanWunsch("", "abc", p); got != -3 {
		t.Errorf("empty vs abc = %v, want -3 (three gaps)", got)
	}
	// One substitution: 2 matches + 1 mismatch = 1.
	if got := NeedlemanWunsch("abc", "axc", p); got != 1 {
		t.Errorf("one substitution = %v, want 1", got)
	}
	// GATTACA-style classic.
	if got := NeedlemanWunsch("GATTACA", "GCATGCU", p); got != 0 {
		t.Errorf("GATTACA/GCATGCU = %v, want 0", got)
	}
}

func TestNeedlemanWunschSimilarity(t *testing.T) {
	if got := NeedlemanWunschSimilarity("", ""); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := NeedlemanWunschSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := NeedlemanWunschSimilarity("aaa", "zzz"); got != 0 {
		t.Errorf("disjoint = %v, want 0 (clamped)", got)
	}
}

func TestSmithWaterman(t *testing.T) {
	p := DefaultAlignment
	// Common substring "issi" scores 4.
	if got := SmithWaterman("mississippi", "kissing", p); got < 3 {
		t.Errorf("local align = %v, want >= 3", got)
	}
	if got := SmithWaterman("abc", "xyz", p); got != 0 {
		t.Errorf("no common = %v, want 0", got)
	}
	if got := SmithWaterman("", "abc", p); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestSmithWatermanSimilarity(t *testing.T) {
	if got := SmithWatermanSimilarity("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := SmithWatermanSimilarity("", "abc"); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	// Substring containment scores 1.
	if got := SmithWatermanSimilarity("smith", "john smith jr"); math.Abs(got-1) > 1e-12 {
		t.Errorf("containment = %v, want 1", got)
	}
}

func TestAlignmentSymmetryAndBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		nw := NeedlemanWunschSimilarity(a, b)
		sw := SmithWatermanSimilarity(a, b)
		if nw < 0 || nw > 1 || sw < 0 || sw > 1 {
			return false
		}
		return math.Abs(nw-NeedlemanWunschSimilarity(b, a)) < 1e-9 &&
			math.Abs(sw-SmithWatermanSimilarity(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSmithWatermanAtLeastNeedlemanProperty(t *testing.T) {
	// Local alignment can only drop penalized prefixes/suffixes, so the
	// raw SW score is never below the NW score.
	f := func(a, b string) bool {
		return SmithWaterman(a, b, DefaultAlignment) >= NeedlemanWunsch(a, b, DefaultAlignment)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSoftTFIDF(t *testing.T) {
	sim := JaroWinkler
	// Identical sequences score 1.
	a := []string{"john", "smith"}
	if got := SoftTFIDF(a, a, nil, sim, 0.9); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical = %v, want 1", got)
	}
	// Near-identical tokens still match above theta.
	b := []string{"jon", "smith"}
	got := SoftTFIDF(a, b, nil, sim, 0.8)
	if got <= 0.8 || got > 1 {
		t.Errorf("near tokens = %v, want in (0.8, 1]", got)
	}
	// With a high theta the fuzzy token no longer matches.
	strict := SoftTFIDF(a, b, nil, sim, 0.99)
	if strict >= got {
		t.Errorf("stricter theta should lower the score: %v >= %v", strict, got)
	}
	// Weights bias towards informative tokens.
	weights := map[string]float64{"smith": 3, "john": 0.1, "jon": 0.1}
	weighted := SoftTFIDF(a, b, weights, sim, 0.8)
	if weighted <= got {
		t.Errorf("up-weighting the shared rare token should raise the score: %v <= %v", weighted, got)
	}
	// Degenerate cases.
	if got := SoftTFIDF(nil, nil, nil, sim, 0.9); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := SoftTFIDF(a, nil, nil, sim, 0.9); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	zero := map[string]float64{"john": 0, "smith": 0}
	if got := SoftTFIDF(a, a, zero, sim, 0.9); got != 0 {
		t.Errorf("all-zero weights = %v", got)
	}
}

func TestSoftTFIDFBoundedProperty(t *testing.T) {
	f := func(rawA, rawB []string) bool {
		v := SoftTFIDF(rawA, rawB, nil, JaroWinkler, 0.85)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
