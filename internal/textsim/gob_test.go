package textsim

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestVocabGobRoundTrip checks the intern map is rebuilt exactly: IDs,
// lookups and length all survive a round trip.
func TestVocabGobRoundTrip(t *testing.T) {
	v := NewVocab()
	for _, term := range []string{"smith", "works", "at", "acme", "smith"} {
		v.ID(term)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	got := NewVocab()
	if err := gob.NewDecoder(&buf).Decode(got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != v.Len() {
		t.Fatalf("decoded %d terms, want %d", got.Len(), v.Len())
	}
	for _, term := range []string{"smith", "works", "at", "acme"} {
		want, _ := v.Lookup(term)
		if id, ok := got.Lookup(term); !ok || id != want {
			t.Errorf("Lookup(%q) = (%d, %v), want (%d, true)", term, id, ok, want)
		}
	}
	// Interning continues from where the original left off.
	if id := got.ID("new-term"); id != int32(v.Len()) {
		t.Errorf("post-decode intern gave ID %d, want %d", id, v.Len())
	}
}

// TestPackedVectorGobRoundTrip checks the pack-time statistics travel
// bit-exactly, so decoded vectors score identically without recomputing
// sums in a different order.
func TestPackedVectorGobRoundTrip(t *testing.T) {
	vocab := NewVocab()
	a := SparseVector{"alpha": 0.3, "beta": 1.7, "gamma": 0.25}.Pack(vocab)
	b := SparseVector{"beta": 0.9, "delta": 2.2}.Pack(vocab)

	roundTrip := func(p *PackedVector) *PackedVector {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatal(err)
		}
		out := new(PackedVector)
		if err := gob.NewDecoder(&buf).Decode(out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ga, gb := roundTrip(a), roundTrip(b)
	if ga.Norm() != a.Norm() || ga.Sum() != a.Sum() || ga.SumSquares() != a.SumSquares() {
		t.Errorf("statistics changed: %v/%v/%v vs %v/%v/%v",
			ga.Norm(), ga.Sum(), ga.SumSquares(), a.Norm(), a.Sum(), a.SumSquares())
	}
	if PackedCosine(ga, gb) != PackedCosine(a, b) ||
		PackedPearsonSim(ga, gb) != PackedPearsonSim(a, b) ||
		PackedExtendedJaccard(ga, gb) != PackedExtendedJaccard(a, b) {
		t.Error("similarities changed across the gob round trip")
	}
}

// TestPackedVectorGobRejectsMismatch checks structural validation on
// decode.
func TestPackedVectorGobRejectsMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(packedVectorWire{
		IDs: []int32{1, 2}, Weights: []float64{0.5},
	}); err != nil {
		t.Fatal(err)
	}
	p := new(PackedVector)
	if err := p.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoded a packed vector with mismatched slice lengths")
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(packedVectorWire{
		IDs: []int32{2, 1}, Weights: []float64{0.5, 0.6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoded a packed vector with unsorted IDs")
	}
}
