package textsim

import "math"

// SparseVector is a sparse real-valued feature vector keyed by term. Zero
// entries are simply absent; callers must not store explicit zeros if they
// want Dimensions to reflect the support size.
type SparseVector map[string]float64

// NewSparseVector returns an empty sparse vector.
func NewSparseVector() SparseVector { return make(SparseVector) }

// Add accumulates weight w onto term t, deleting the entry if the result
// becomes exactly zero.
func (v SparseVector) Add(t string, w float64) {
	nw := v[t] + w
	if nw == 0 {
		delete(v, t)
		return
	}
	v[t] = nw
}

// Norm returns the Euclidean (L2) norm of v.
func (v SparseVector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of v and o.
func (v SparseVector) Dot(o SparseVector) float64 {
	if len(o) < len(v) {
		v, o = o, v
	}
	var s float64
	for t, wv := range v {
		if wo, ok := o[t]; ok {
			s += wv * wo
		}
	}
	return s
}

// Scale multiplies every entry of v by c in place and returns v.
func (v SparseVector) Scale(c float64) SparseVector {
	if c == 0 {
		for t := range v {
			delete(v, t)
		}
		return v
	}
	for t := range v {
		v[t] *= c
	}
	return v
}

// Clone returns an independent copy of v.
func (v SparseVector) Clone() SparseVector {
	out := make(SparseVector, len(v))
	for t, w := range v {
		out[t] = w
	}
	return out
}

// Cosine returns the cosine similarity of a and b in [-1, 1]; for the
// non-negative weight vectors produced by TF-IDF and concept extraction the
// result is in [0, 1]. Two empty vectors are defined to have similarity 1,
// and an empty vector against a non-empty one has similarity 0.
func Cosine(a, b SparseVector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// ExtendedJaccard returns the extended Jaccard (Tanimoto) similarity
// a·b / (|a|² + |b|² − a·b), the continuous generalization of the Jaccard
// coefficient used by similarity function F10. Two empty vectors have
// similarity 1.
func ExtendedJaccard(a, b SparseVector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	dot := a.Dot(b)
	na, nb := a.Norm(), b.Norm()
	den := na*na + nb*nb - dot
	if den <= 0 {
		return 0
	}
	return dot / den
}

// PearsonSim returns the Pearson correlation of a and b over the union of
// their supports, linearly rescaled from [-1, 1] to [0, 1] so that it fits
// the framework's similarity value space (used by F9). Vectors with zero
// variance over the union support yield 0.5 (no evidence either way),
// except two identical empty vectors which yield 1.
//
// The correlation is computed from sufficient statistics (sums, squared
// sums, dot product and intersection size) rather than materializing the
// union support, since this runs on every document pair of a block.
func PearsonSim(a, b SparseVector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, big := a, b
	if len(big) < len(small) {
		small, big = big, small
	}
	var dot float64
	inter := 0
	for t, ws := range small {
		if wb, ok := big[t]; ok {
			dot += ws * wb
			inter++
		}
	}
	var sa, sqa, sb, sqb float64
	for _, w := range a {
		sa += w
		sqa += w * w
	}
	for _, w := range b {
		sb += w
		sqb += w * w
	}
	n := float64(len(a) + len(b) - inter)
	if n == 0 {
		return 1
	}
	// Over the union support U: Σ(x−mx)(y−my) = x·y − SxSy/|U|, etc.
	sxy := dot - sa*sb/n
	sxx := sqa - sa*sa/n
	syy := sqb - sb*sb/n
	if sxx <= 1e-15 || syy <= 1e-15 {
		return 0.5
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return (r + 1) / 2
}

// WeightedJaccard returns the Ruzicka similarity Σ min(aᵢ,bᵢ) / Σ max(aᵢ,bᵢ)
// for non-negative vectors, another weighted set-overlap measure exposed for
// custom similarity functions.
func WeightedJaccard(a, b SparseVector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	var num, den float64
	for t, wa := range a {
		wb := b[t]
		num += math.Min(wa, wb)
		den += math.Max(wa, wb)
	}
	for t, wb := range b {
		if _, ok := a[t]; !ok {
			den += wb
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
