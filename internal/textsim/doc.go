// Package textsim is a self-contained string and vector similarity library.
//
// It provides the similarity measures the entity-resolution framework's
// similarity functions (Table I of the paper) are built on:
//
//   - Edit-distance family: Levenshtein, Damerau-Levenshtein, and their
//     normalized similarity forms (used by the "String Similarity" measures
//     of F2, F3 and F7).
//   - Jaro and Jaro-Winkler, the classic record-linkage name comparators.
//   - Character n-gram (q-gram) profiles with Jaccard, Dice, overlap and
//     cosine coefficients.
//   - Token-set and token-multiset measures, including Monge-Elkan, which
//     composes a secondary character-level measure over token alignments.
//   - Sparse real-valued vectors with cosine similarity, Pearson correlation
//     similarity and extended Jaccard (Tanimoto) similarity (used by the
//     TF-IDF based functions F8, F9 and F10, and the concept-vector
//     function F1).
//
// All similarity functions return values in [0, 1] where 1 means identical
// (Pearson is rescaled from [-1, 1] to [0, 1] to fit the framework's value
// space). All functions are symmetric in their two arguments.
package textsim
