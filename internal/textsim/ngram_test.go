package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNGrams(t *testing.T) {
	p := NGrams("ab", 2)
	// Padded: #ab# → "#a", "ab", "b#"
	want := []string{"#a", "ab", "b#"}
	if len(p) != 3 {
		t.Fatalf("profile size = %d, want 3: %v", len(p), p)
	}
	for _, g := range want {
		if p[g] != 1 {
			t.Errorf("gram %q count = %d, want 1", g, p[g])
		}
	}
	if len(NGrams("", 2)) != 0 {
		t.Error("empty string should give empty profile")
	}
	if len(NGrams("abc", 0)) != 0 {
		t.Error("n=0 should give empty profile")
	}
	uni := NGrams("aab", 1)
	if uni["a"] != 2 || uni["b"] != 1 {
		t.Errorf("unigram counts wrong: %v", uni)
	}
}

func TestNGramsMultiplicity(t *testing.T) {
	p := NGrams("aaa", 2)
	// #aaa# → #a, aa, aa, a#
	if p["aa"] != 2 {
		t.Errorf(`count of "aa" = %d, want 2`, p["aa"])
	}
}

func TestJaccardNGram(t *testing.T) {
	if got := JaccardNGram("", "", 2); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := JaccardNGram("night", "night", 2); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	got := JaccardNGram("night", "nacht", 2)
	if got <= 0 || got >= 1 {
		t.Errorf("related words should be strictly between 0 and 1: %v", got)
	}
}

func TestDiceVsJaccardOrdering(t *testing.T) {
	// Dice >= Jaccard always (for the same sets).
	f := func(a, b string) bool {
		j := JaccardNGram(a, b, 2)
		d := DiceNGram(a, b, 2)
		return d >= j-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapNGram(t *testing.T) {
	if got := OverlapNGram("", "", 2); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := OverlapNGram("abc", "", 2); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
	// A substring's grams are almost all contained in the superstring; for a
	// shared prefix-padded word the overlap coefficient is high.
	got := OverlapNGram("data", "database", 2)
	if got < 0.5 {
		t.Errorf("substring overlap = %v, want >= 0.5", got)
	}
}

func TestCosineNGram(t *testing.T) {
	if got := CosineNGram("", "", 2); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := CosineNGram("same", "same", 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := CosineNGram("abc", "", 2); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
}

func TestNGramSimilaritiesBoundsAndSymmetry(t *testing.T) {
	sims := map[string]func(a, b string) float64{
		"jaccard": func(a, b string) float64 { return JaccardNGram(a, b, 3) },
		"dice":    func(a, b string) float64 { return DiceNGram(a, b, 3) },
		"overlap": func(a, b string) float64 { return OverlapNGram(a, b, 3) },
		"cosine":  func(a, b string) float64 { return CosineNGram(a, b, 3) },
	}
	for name, sim := range sims {
		f := func(a, b string) bool {
			s := sim(a, b)
			if s < 0 || s > 1 {
				return false
			}
			return math.Abs(s-sim(b, a)) < 1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSetJaccard(t *testing.T) {
	if got := SetJaccard(nil, nil); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := SetJaccard([]string{"a"}, nil); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
	got := SetJaccard([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("= %v, want 0.5", got)
	}
	// Duplicates are ignored.
	got = SetJaccard([]string{"a", "a", "b"}, []string{"a", "b", "b"})
	if got != 1 {
		t.Errorf("duplicate handling = %v, want 1", got)
	}
}

func TestSetOverlapCount(t *testing.T) {
	if got := SetOverlapCount(nil, nil); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	got := SetOverlapCount([]string{"ibm", "epfl"}, []string{"epfl", "mit", "ibm", "ibm"})
	if got != 2 {
		t.Errorf("= %d, want 2", got)
	}
}

func TestNormalizedOverlap(t *testing.T) {
	if got := NormalizedOverlap(0, 2); got != 0 {
		t.Errorf("zero count = %v, want 0", got)
	}
	if got := NormalizedOverlap(2, 2); got != 0.5 {
		t.Errorf("count==half = %v, want 0.5", got)
	}
	if got := NormalizedOverlap(5, 0); got != 1 {
		t.Errorf("half=0 = %v, want 1", got)
	}
	// Monotone increasing in count.
	prev := 0.0
	for c := 1; c < 20; c++ {
		cur := NormalizedOverlap(c, 2)
		if cur <= prev {
			t.Fatalf("not monotone at count %d: %v <= %v", c, cur, prev)
		}
		if cur >= 1 {
			t.Fatalf("must stay below 1: %v", cur)
		}
		prev = cur
	}
}
