package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"", "a", 0},
		{"abc", "abc", 1},
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"abc", "xyz", 0},
	}
	for _, tc := range cases {
		if got := Jaro(tc.a, tc.b); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("Jaro(%q,%q) = %.6f, want %.6f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111},
		{"dixon", "dicksonx", 0.813333},
		{"dwayne", "duane", 0.84},
	}
	for _, tc := range cases {
		if got := JaroWinkler(tc.a, tc.b); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("JaroWinkler(%q,%q) = %.6f, want %.6f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(Jaro(a, b)-Jaro(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := Jaro(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerIdentityProperty(t *testing.T) {
	f := func(a string) bool { return JaroWinkler(a, a) == 1 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerNeverBelowJaro(t *testing.T) {
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerParamsClamping(t *testing.T) {
	// Scaling factor above 0.25 is clamped so the result stays within [0,1].
	got := JaroWinklerParams("aaaa", "aaab", 5.0, 4)
	if got < 0 || got > 1 {
		t.Errorf("clamped params result %v out of [0,1]", got)
	}
	// Negative p behaves like p = 0 (plain Jaro).
	if got := JaroWinklerParams("martha", "marhta", -1, 4); math.Abs(got-Jaro("martha", "marhta")) > 1e-12 {
		t.Errorf("negative p should reduce to Jaro, got %v", got)
	}
	// maxPrefix = 0 also reduces to Jaro.
	if got := JaroWinklerParams("martha", "marhta", 0.1, 0); math.Abs(got-Jaro("martha", "marhta")) > 1e-12 {
		t.Errorf("maxPrefix=0 should reduce to Jaro, got %v", got)
	}
}

func TestJaroNoMatches(t *testing.T) {
	if got := Jaro("ab", "cd"); got != 0 {
		t.Errorf("no matches should be 0, got %v", got)
	}
}
