package textsim

import "math"

// NGramProfile is a multiset of character n-grams with occurrence counts.
type NGramProfile map[string]int

// NGrams returns the profile of character n-grams of s for the given n.
// The string is padded with n-1 leading and trailing '#' markers so that
// prefixes and suffixes contribute distinguishable grams, the convention
// used in approximate string matching. n must be >= 1; for n <= 0 an empty
// profile is returned.
func NGrams(s string, n int) NGramProfile {
	profile := make(NGramProfile)
	if n <= 0 {
		return profile
	}
	runes := []rune(s)
	if len(runes) == 0 {
		return profile
	}
	if n == 1 {
		for _, r := range runes {
			profile[string(r)]++
		}
		return profile
	}
	pad := make([]rune, 0, len(runes)+2*(n-1))
	for i := 0; i < n-1; i++ {
		pad = append(pad, '#')
	}
	pad = append(pad, runes...)
	for i := 0; i < n-1; i++ {
		pad = append(pad, '#')
	}
	for i := 0; i+n <= len(pad); i++ {
		profile[string(pad[i:i+n])]++
	}
	return profile
}

// JaccardNGram returns the Jaccard coefficient |A∩B| / |A∪B| over the n-gram
// sets (counts ignored) of a and b. Two empty strings have similarity 1.
func JaccardNGram(a, b string, n int) float64 {
	pa, pb := NGrams(a, n), NGrams(b, n)
	return SetJaccard(keys(pa), keys(pb))
}

// DiceNGram returns the Sørensen-Dice coefficient 2|A∩B| / (|A|+|B|) over
// the n-gram sets of a and b.
func DiceNGram(a, b string, n int) float64 {
	pa, pb := NGrams(a, n), NGrams(b, n)
	inter := setIntersectionSize(pa, pb)
	if len(pa)+len(pb) == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(len(pa)+len(pb))
}

// OverlapNGram returns the overlap coefficient |A∩B| / min(|A|, |B|) over
// the n-gram sets of a and b.
func OverlapNGram(a, b string, n int) float64 {
	pa, pb := NGrams(a, n), NGrams(b, n)
	if len(pa) == 0 && len(pb) == 0 {
		return 1
	}
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	inter := setIntersectionSize(pa, pb)
	m := len(pa)
	if len(pb) < m {
		m = len(pb)
	}
	return float64(inter) / float64(m)
}

// CosineNGram returns the cosine similarity of the n-gram count vectors of
// a and b, taking multiplicities into account.
func CosineNGram(a, b string, n int) float64 {
	pa, pb := NGrams(a, n), NGrams(b, n)
	if len(pa) == 0 && len(pb) == 0 {
		return 1
	}
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range pa {
		na += float64(ca) * float64(ca)
		if cb, ok := pb[g]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	for _, cb := range pb {
		nb += float64(cb) * float64(cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SetJaccard returns the Jaccard coefficient over two string slices treated
// as sets. Two empty sets have similarity 1.
func SetJaccard(a, b []string) float64 {
	sa := make(map[string]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, x := range b {
		sb[x] = struct{}{}
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for x := range sa {
		if _, ok := sb[x]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// SetOverlapCount returns |A∩B| over two string slices treated as sets. This
// is the raw "number of overlapping X" measure used by similarity functions
// F4, F5 and F6 before normalization.
func SetOverlapCount(a, b []string) int {
	sa := make(map[string]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	inter := 0
	seen := make(map[string]struct{}, len(b))
	for _, x := range b {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if _, ok := sa[x]; ok {
			inter++
		}
	}
	return inter
}

// NormalizedOverlap maps a raw overlap count into [0, 1] with the saturating
// transform count/(count+half). half controls where the transform reaches
// 0.5; the framework uses half=2 so that two shared entities already
// constitute substantial evidence, matching the paper's observation that a
// few shared organizations or co-mentioned persons strongly indicate
// identity.
func NormalizedOverlap(count int, half float64) float64 {
	if count <= 0 {
		return 0
	}
	if half <= 0 {
		return 1
	}
	c := float64(count)
	return c / (c + half)
}

func keys(p NGramProfile) []string {
	out := make([]string, 0, len(p))
	for k := range p {
		out = append(out, k)
	}
	return out
}

func setIntersectionSize(a, b NGramProfile) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for g := range a {
		if _, ok := b[g]; ok {
			inter++
		}
	}
	return inter
}
