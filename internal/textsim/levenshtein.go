package textsim

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions and substitutions transforming a into
// b. The implementation uses the two-row dynamic program and operates on
// runes, so multi-byte characters count as single symbols.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string in rb to minimize the row size.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(
				prev[j]+1,      // deletion
				curr[j-1]+1,    // insertion
				prev[j-1]+cost, // substitution
			)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity returns 1 - dist/maxLen, a similarity in [0, 1].
// Two empty strings are defined to have similarity 1.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// DamerauLevenshtein returns the optimal-string-alignment distance: like
// Levenshtein but also allowing transposition of two adjacent runes as a
// single operation. (This is the restricted variant; substrings are not
// edited more than once.)
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rows: i-2, i-1, i.
	d := make([][]int, 3)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
	}
	for j := 0; j <= len(rb); j++ {
		d[1][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		row := d[2]
		row[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := min3(
				d[1][j]+1,      // deletion
				row[j-1]+1,     // insertion
				d[1][j-1]+cost, // substitution
			)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[0][j-2] + 1; t < v {
					v = t
				}
			}
			row[j] = v
		}
		d[0], d[1], d[2] = d[1], d[2], d[0]
	}
	return d[1][len(rb)]
}

// DamerauLevenshteinSimilarity is the normalized similarity form of
// DamerauLevenshtein, in [0, 1].
func DamerauLevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(DamerauLevenshtein(a, b))/float64(maxLen)
}

// LongestCommonSubsequence returns the length of the longest common
// subsequence of a and b, a building block for order-preserving string
// similarity.
func LongestCommonSubsequence(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				curr[j] = prev[j-1] + 1
			} else if prev[j] >= curr[j-1] {
				curr[j] = prev[j]
			} else {
				curr[j] = curr[j-1]
			}
		}
		prev, curr = curr, prev
		for j := range curr {
			curr[j] = 0
		}
	}
	return prev[len(rb)]
}

// LCSSimilarity returns 2·LCS/(len(a)+len(b)), a similarity in [0, 1]. Two
// empty strings have similarity 1.
func LCSSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	return 2 * float64(LongestCommonSubsequence(a, b)) / float64(la+lb)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
