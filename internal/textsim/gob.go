package textsim

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The gob methods below make the packed, precomputed similarity state
// serializable for the persistence layer (pipeline snapshot files). Both
// types carry unexported derived state — the Vocab's intern map and the
// PackedVector's norm/Pearson statistics — that must round-trip exactly:
// the statistics were accumulated in lexicographic term order at pack time,
// and re-deriving them in ID order could round differently, breaking the
// pipeline's bit-identical reuse guarantee. The stats therefore travel in
// the wire form instead of being recomputed on decode.

// vocabWire is the wire form of a Vocab: the terms in ID order. The intern
// map is rebuilt on decode.
type vocabWire struct {
	Terms []string
}

// GobEncode implements gob.GobEncoder.
func (v *Vocab) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vocabWire{Terms: v.terms}); err != nil {
		return nil, fmt.Errorf("textsim: encoding vocab: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (v *Vocab) GobDecode(data []byte) error {
	var w vocabWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("textsim: decoding vocab: %w", err)
	}
	ids := make(map[string]int32, len(w.Terms))
	for i, t := range w.Terms {
		if _, dup := ids[t]; dup {
			return fmt.Errorf("textsim: decoding vocab: term %q interned twice", t)
		}
		ids[t] = int32(i)
	}
	v.terms = w.Terms
	v.ids = ids
	return nil
}

// packedVectorWire is the wire form of a PackedVector, carrying the
// pack-time statistics verbatim.
type packedVectorWire struct {
	IDs     []int32
	Weights []float64
	Norm    float64
	Sum     float64
	SumSq   float64
}

// GobEncode implements gob.GobEncoder.
func (p *PackedVector) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := packedVectorWire{IDs: p.IDs, Weights: p.Weights, Norm: p.norm, Sum: p.sum, SumSq: p.sumSq}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("textsim: encoding packed vector: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *PackedVector) GobDecode(data []byte) error {
	var w packedVectorWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("textsim: decoding packed vector: %w", err)
	}
	if len(w.IDs) != len(w.Weights) {
		return fmt.Errorf("textsim: decoding packed vector: %d IDs but %d weights",
			len(w.IDs), len(w.Weights))
	}
	for i := 1; i < len(w.IDs); i++ {
		if w.IDs[i-1] >= w.IDs[i] {
			return fmt.Errorf("textsim: decoding packed vector: IDs not strictly ascending at %d", i)
		}
	}
	p.IDs, p.Weights = w.IDs, w.Weights
	p.norm, p.sum, p.sumSq = w.Norm, w.Sum, w.SumSq
	return nil
}
