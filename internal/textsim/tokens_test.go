package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMongeElkan(t *testing.T) {
	if got := MongeElkan(nil, nil, JaroWinkler); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := MongeElkan([]string{"a"}, nil, JaroWinkler); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
	// Identical token sets in different order are a perfect match.
	a := []string{"john", "smith"}
	b := []string{"smith", "john"}
	if got := MongeElkan(a, b, JaroWinkler); math.Abs(got-1) > 1e-12 {
		t.Errorf("reordered identical = %v, want 1", got)
	}
	// Partial match scores strictly between 0 and 1.
	got := MongeElkan([]string{"jon", "smith"}, []string{"john", "smyth"}, JaroWinkler)
	if got <= 0.5 || got >= 1 {
		t.Errorf("近-match = %v, want in (0.5, 1)", got)
	}
}

func TestMongeElkanSymmetric(t *testing.T) {
	a := []string{"alpha", "beta", "gamma"}
	b := []string{"beta", "delta"}
	ab := MongeElkan(a, b, JaroWinkler)
	ba := MongeElkan(b, a, JaroWinkler)
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("symmetrized Monge-Elkan differs: %v vs %v", ab, ba)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := TokenJaccard("the cat", "the dog"); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("= %v, want 1/3", got)
	}
	// Case-insensitive.
	if got := TokenJaccard("Machine Learning", "machine learning"); got != 1 {
		t.Errorf("case fold = %v, want 1", got)
	}
}

func TestTokenDice(t *testing.T) {
	if got := TokenDice("", ""); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := TokenDice("a b", "b c"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("= %v, want 0.5", got)
	}
}

func TestNameSimilarity(t *testing.T) {
	// Identical names after normalization.
	if got := NameSimilarity("Smith, John", "john smith"); math.Abs(got-1) > 1e-9 {
		t.Errorf("normalized identical = %v, want 1", got)
	}
	if got := NameSimilarity("J. Smith", "j smith"); math.Abs(got-1) > 1e-9 {
		t.Errorf("dot stripped = %v, want 1", got)
	}
	// Near names outrank unrelated names.
	near := NameSimilarity("Andrew McCallum", "Andrew MacCallum")
	far := NameSimilarity("Andrew McCallum", "Zoltan Miklos")
	if near <= far {
		t.Errorf("near=%v should exceed far=%v", near, far)
	}
	if near < 0.8 {
		t.Errorf("near-identical name = %v, want >= 0.8", near)
	}
}

func TestNameSimilarityBoundsAndSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := NameSimilarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		return math.Abs(s-NameSimilarity(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  John   Smith ", "john smith"},
		{"Smith, John", "smith john"},
		{"J.R. Smith", "j r smith"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := normalizeName(tc.in); got != tc.want {
			t.Errorf("normalizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
