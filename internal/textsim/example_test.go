package textsim_test

import (
	"fmt"

	"repro/internal/textsim"
)

func ExampleJaroWinkler() {
	fmt.Printf("%.4f\n", textsim.JaroWinkler("martha", "marhta"))
	// Output: 0.9611
}

func ExampleLevenshtein() {
	fmt.Println(textsim.Levenshtein("kitten", "sitting"))
	// Output: 3
}

func ExampleNameSimilarity() {
	// Robust to token order and punctuation.
	fmt.Printf("%.2f\n", textsim.NameSimilarity("Smith, John", "john smith"))
	// Output: 1.00
}

func ExampleCosine() {
	a := textsim.SparseVector{"entity": 1.0, "resolution": 2.0}
	b := textsim.SparseVector{"entity": 2.0, "resolution": 4.0}
	fmt.Printf("%.2f\n", textsim.Cosine(a, b))
	// Output: 1.00
}

func ExampleExtendedJaccard() {
	a := textsim.SparseVector{"x": 1.0, "y": 1.0, "z": 1.0}
	b := textsim.SparseVector{"y": 1.0, "z": 1.0, "w": 1.0}
	// For binary vectors, extended Jaccard equals the set Jaccard.
	fmt.Printf("%.2f\n", textsim.ExtendedJaccard(a, b))
	// Output: 0.50
}

func ExampleNormalizedOverlap() {
	// Two shared organizations already constitute substantial evidence.
	fmt.Printf("%.2f %.2f %.2f\n",
		textsim.NormalizedOverlap(0, 2),
		textsim.NormalizedOverlap(2, 2),
		textsim.NormalizedOverlap(8, 2))
	// Output: 0.00 0.50 0.80
}
