package textsim

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"book", "back", 2},
		{"a", "b", 1},
		{"résumé", "resume", 2}, // rune-level, not byte-level
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentityProperty(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := LevenshteinSimilarity("abcd", "abce"); got != 0.75 {
		t.Errorf("one sub of four = %v, want 0.75", got)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ab", "ba", 1},          // single transposition
		{"abc", "acb", 1},        // adjacent transposition
		{"ca", "abc", 3},         // OSA restriction (not unrestricted DL's 2)
		{"kitten", "sitting", 3}, // no transpositions involved
		{"abcdef", "abcdfe", 1},
	}
	for _, tc := range cases {
		if got := DamerauLevenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDamerauLevenshteinSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := DamerauLevenshteinSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLongestCommonSubsequence(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abcde", "ace", 3},
		{"abc", "abc", 3},
		{"abc", "def", 0},
		{"AGGTAB", "GXTXAYB", 4},
	}
	for _, tc := range cases {
		if got := LongestCommonSubsequence(tc.a, tc.b); got != tc.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCSSimilarity(t *testing.T) {
	if got := LCSSimilarity("", ""); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := LCSSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := LCSSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
}

func TestLCSSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return LongestCommonSubsequence(a, b) == LongestCommonSubsequence(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
