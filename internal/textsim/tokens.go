package textsim

import "strings"

// StringSim is the signature of a pairwise string similarity returning a
// value in [0, 1]. All comparators in this package satisfy it.
type StringSim func(a, b string) float64

// MongeElkan returns the Monge-Elkan similarity of two token sequences: for
// each token of a it finds the best-matching token of b under the secondary
// measure sim, and averages those maxima. The raw Monge-Elkan measure is
// asymmetric; this function returns the symmetrized mean of both directions,
// which is the form used in record-linkage practice.
func MongeElkan(a, b []string, sim StringSim) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return (mongeElkanDirected(a, b, sim) + mongeElkanDirected(b, a, sim)) / 2
}

func mongeElkanDirected(a, b []string, sim StringSim) float64 {
	var total float64
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := sim(ta, tb); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// TokenJaccard returns the Jaccard coefficient over whitespace-delimited
// lower-cased tokens of a and b.
func TokenJaccard(a, b string) float64 {
	return SetJaccard(simpleTokens(a), simpleTokens(b))
}

// TokenDice returns the Dice coefficient over whitespace-delimited
// lower-cased token sets of a and b.
func TokenDice(a, b string) float64 {
	ta, tb := simpleTokens(a), simpleTokens(b)
	sa := toSet(ta)
	sb := toSet(tb)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	if len(sa)+len(sb) == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// NameSimilarity is the composite person-name comparator used by the
// framework's string-based similarity functions (F2's URL host comparison
// uses raw strings; F3 and F7 compare names). It symmetrically combines
// Jaro-Winkler on the whole string with Monge-Elkan over tokens using
// Jaro-Winkler as the secondary measure, making it robust both to
// character-level typos and to token reordering ("John R. Smith" vs
// "Smith, John").
func NameSimilarity(a, b string) float64 {
	return PreparedNameSimilarity(PrepareName(a), PrepareName(b))
}

// Name is a person name prepared for repeated comparison: the normalized
// form and its token list are computed once, so the pairwise loop skips the
// string rewriting NameSimilarity performs per call. A Name is immutable
// and safe for concurrent reads.
type Name struct {
	// Norm is the normalized (lower-cased, punctuation-folded) name.
	Norm string
	// Tokens are the whitespace tokens of Norm.
	Tokens []string
}

// PrepareName normalizes and tokenizes s once for repeated comparisons.
func PrepareName(s string) Name {
	norm := normalizeName(s)
	return Name{Norm: norm, Tokens: strings.Fields(norm)}
}

// PreparedNameSimilarity is NameSimilarity over prepared names; by
// construction NameSimilarity(a, b) == PreparedNameSimilarity(PrepareName(a),
// PrepareName(b)).
func PreparedNameSimilarity(a, b Name) float64 {
	if a.Norm == b.Norm {
		return 1
	}
	whole := JaroWinkler(a.Norm, b.Norm)
	tokens := MongeElkan(a.Tokens, b.Tokens, JaroWinkler)
	if tokens > whole {
		return tokens
	}
	return whole
}

func normalizeName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, ",", " ")
	s = strings.ReplaceAll(s, ".", " ")
	return strings.Join(strings.Fields(s), " ")
}

func simpleTokens(s string) []string {
	return strings.Fields(strings.ToLower(s))
}

func toSet(tokens []string) map[string]struct{} {
	set := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		set[t] = struct{}{}
	}
	return set
}
