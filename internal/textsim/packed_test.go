package textsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomVector builds a sparse vector over a shared synthetic vocabulary so
// random pairs have realistic partial overlap.
func randomVector(rng *rand.Rand, support, vocabSize int) SparseVector {
	v := NewSparseVector()
	for len(v) < support {
		t := fmt.Sprintf("term%04d", rng.Intn(vocabSize))
		v[t] = math.Round(rng.NormFloat64()*1000) / 1000
		if v[t] == 0 {
			delete(v, t)
		}
	}
	return v
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := NewVocab()
	v := randomVector(rng, 50, 200)
	p := v.Pack(vocab)

	if p.Len() != len(v) {
		t.Fatalf("packed support %d, map support %d", p.Len(), len(v))
	}
	for i, id := range p.IDs {
		if i > 0 && p.IDs[i-1] >= id {
			t.Fatalf("IDs not strictly ascending at %d: %v >= %v", i, p.IDs[i-1], id)
		}
		term := vocab.Term(id)
		if p.Weights[i] != v[term] {
			t.Errorf("weight of %q: packed %v, map %v", term, p.Weights[i], v[term])
		}
	}
	if math.Abs(p.Norm()-v.Norm()) > 1e-12 {
		t.Errorf("norm: packed %v, map %v", p.Norm(), v.Norm())
	}
}

// TestPackedEquivalence is the satellite equivalence suite: on many random
// vector pairs, every packed measure must match its map-based counterpart
// within 1e-12.
func TestPackedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		vocab := NewVocab()
		a := randomVector(rng, 1+rng.Intn(80), 150)
		b := randomVector(rng, 1+rng.Intn(80), 150)
		pa, pb := a.Pack(vocab), b.Pack(vocab)

		checks := []struct {
			name      string
			m, packed float64
		}{
			{"Dot", a.Dot(b), pa.Dot(pb)},
			{"Cosine", Cosine(a, b), PackedCosine(pa, pb)},
			{"Pearson", PearsonSim(a, b), PackedPearsonSim(pa, pb)},
			{"ExtendedJaccard", ExtendedJaccard(a, b), PackedExtendedJaccard(pa, pb)},
		}
		for _, c := range checks {
			if math.Abs(c.m-c.packed) > 1e-12 {
				t.Fatalf("trial %d %s: map %v, packed %v", trial, c.name, c.m, c.packed)
			}
		}
	}
}

func TestPackedEdgeCases(t *testing.T) {
	vocab := NewVocab()
	empty := NewSparseVector().Pack(vocab)
	one := SparseVector{"x": 2}.Pack(vocab)

	if got := PackedCosine(empty, empty); got != 1 {
		t.Errorf("cosine(∅,∅) = %v, want 1", got)
	}
	if got := PackedCosine(empty, one); got != 0 {
		t.Errorf("cosine(∅,x) = %v, want 0", got)
	}
	if got := PackedExtendedJaccard(empty, empty); got != 1 {
		t.Errorf("extjaccard(∅,∅) = %v, want 1", got)
	}
	if got := PackedPearsonSim(empty, empty); got != 1 {
		t.Errorf("pearson(∅,∅) = %v, want 1", got)
	}
	if got := PackedPearsonSim(one, one); got != 0.5 {
		// Single-term vectors have zero variance over the union support.
		t.Errorf("pearson(x,x) = %v, want 0.5", got)
	}
	if got := PackedExtendedJaccard(one, one); got != 1 {
		t.Errorf("extjaccard(x,x) = %v, want 1", got)
	}
}

func TestInternSetAndIntersect(t *testing.T) {
	vocab := NewVocab()
	a := InternSet(vocab, []string{"ibm", "mit", "ibm", "acm"})
	b := InternSet(vocab, []string{"acm", "nasa", "mit"})
	if a == nil || len(a) != 3 {
		t.Fatalf("InternSet dedupe: got %v", a)
	}
	if got, want := IntersectSortedCount(a, b), SetOverlapCount(
		[]string{"ibm", "mit", "ibm", "acm"}, []string{"acm", "nasa", "mit"}); got != want {
		t.Errorf("overlap: packed %d, strings %d", got, want)
	}
	if got := IntersectSortedCount(a, nil); got != 0 {
		t.Errorf("overlap with empty = %d", got)
	}
	if empty := InternSet(vocab, nil); empty == nil || len(empty) != 0 {
		t.Errorf("InternSet(nil) = %v, want non-nil empty", empty)
	}
}

// TestPackDeterministicIDs pins the determinism contract: packing the same
// documents in the same order yields identical vocabularies and ID slices,
// regardless of map iteration order.
func TestPackDeterministicIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs := make([]SparseVector, 20)
	for i := range docs {
		docs[i] = randomVector(rng, 30, 100)
	}
	v1, v2 := NewVocab(), NewVocab()
	for _, d := range docs {
		p1, p2 := d.Pack(v1), d.Pack(v2)
		for i := range p1.IDs {
			if p1.IDs[i] != p2.IDs[i] || p1.Weights[i] != p2.Weights[i] {
				t.Fatalf("non-deterministic pack at entry %d", i)
			}
		}
	}
	if v1.Len() != v2.Len() {
		t.Fatalf("vocab sizes differ: %d vs %d", v1.Len(), v2.Len())
	}
}

// benchPair builds a realistic TF-IDF-sized document pair (~400 terms each,
// partial overlap) in both representations.
func benchPair() (am, bm SparseVector, ap, bp *PackedVector, vocab *Vocab) {
	rng := rand.New(rand.NewSource(1))
	vocab = NewVocab()
	am = randomVector(rng, 400, 1200)
	bm = randomVector(rng, 400, 1200)
	ap, bp = am.Pack(vocab), bm.Pack(vocab)
	return
}

var dotSink float64

// BenchmarkDot_Map measures the map substrate's per-pair cost including the
// vector materialization the old pipeline paid whenever a vector was not
// memoized (index.DocVector rebuilt a map per call): hash-map construction
// plus a hashing dot product.
func BenchmarkDot_Map(b *testing.B) {
	am, bm, _, _, _ := benchPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NewSparseVector()
		for t, w := range am {
			v[t] = w
		}
		dotSink += v.Dot(bm)
	}
}

// BenchmarkDot_Packed measures the packed substrate's per-pair cost: the
// packed design moves construction out of the pairwise loop entirely (Pack
// runs once per document at block-preparation time), so the hot path is a
// single allocation-free merge join.
func BenchmarkDot_Packed(b *testing.B) {
	_, _, ap, bp, _ := benchPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dotSink += ap.Dot(bp)
	}
}
