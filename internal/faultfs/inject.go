package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"
)

// ErrInjected is the root of every fault the injector raises; test code
// matches it with errors.Is to tell an injected fault from a real one.
var ErrInjected = errors.New("faultfs: injected fault")

// Injector wraps an FS and interrupts its Nth mutating operation. Three
// behaviors compose:
//
//   - FailAt(n): operation n returns an error; later operations succeed.
//     This models a transient or isolated failure (one full disk write,
//     one EIO) and exercises graceful error paths.
//   - CrashAt(n): operation n returns an error and every later mutating
//     operation fails too — the process "died" at that boundary. The
//     directory is then reopened with a clean FS to model the restart.
//   - TornCrashAt(n): like CrashAt, but when operation n is a write, a
//     prefix of the buffer reaches the file first — the torn tail a
//     power cut leaves in an append-only log.
//
// Mutating operations are counted in call order: file writes and syncs,
// creations (OpenFile with os.O_CREATE, CreateTemp, MkdirAll), renames,
// removes, truncates, time stamps and directory syncs. Read-only
// operations pass through uncounted, and Close always passes through — a
// dead process's descriptors close too, and the crash harness must be
// able to release the directory lock before "restarting".
type Injector struct {
	under FS

	mu     sync.Mutex
	ops    int  // mutating operations seen so far
	failAt int  // 1-based ordinal of the operation to fault; 0 = never
	crash  bool // faults are sticky: every later mutating op fails too
	torn   bool // the faulted op, when a write, lands a prefix first
	down   bool // a crash fault has fired
	faults int  // faults raised (≥1 means the plan triggered)
}

// NewInjector wraps under (nil selects the real filesystem).
func NewInjector(under FS) *Injector {
	if under == nil {
		under = OS{}
	}
	return &Injector{under: under}
}

var _ FS = (*Injector)(nil)

// FailAt arms a one-shot failure of the nth mutating operation.
func (in *Injector) FailAt(n int) { in.arm(n, false, false) }

// CrashAt arms a sticky crash at the nth mutating operation.
func (in *Injector) CrashAt(n int) { in.arm(n, true, false) }

// TornCrashAt arms a sticky crash at the nth mutating operation, landing
// a partial write first when that operation is a write.
func (in *Injector) TornCrashAt(n int) { in.arm(n, true, true) }

func (in *Injector) arm(n int, crash, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failAt, in.crash, in.torn = n, crash, torn
	in.down, in.faults, in.ops = false, 0, 0
}

// Ops reports the number of mutating operations observed so far; a run
// with an unarmed injector measures how many crash points a scenario has.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Down reports whether a crash fault has fired: the simulated process is
// dead and every further mutating operation fails.
func (in *Injector) Down() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down
}

// Faulted reports whether the armed fault actually fired — a crash plan
// whose ordinal exceeds the scenario's operation count never triggers.
func (in *Injector) Faulted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults > 0
}

// step counts one mutating operation and decides its fate. The returned
// prefix is meaningful only for writes: -1 means the op proceeds in full;
// ≥ 0 with a non-nil error means land that many bytes, then fail.
func (in *Injector) step(op, path string, size int) (prefix int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.down {
		in.faults++
		return 0, fmt.Errorf("%w: %s %s after crash", ErrInjected, op, path)
	}
	in.ops++
	if in.failAt == 0 || in.ops != in.failAt {
		return -1, nil
	}
	in.faults++
	if in.crash {
		in.down = true
	}
	prefix = 0
	if in.torn && size > 1 {
		prefix = size / 2
	}
	return prefix, fmt.Errorf("%w: %s %s (op %d)", ErrInjected, op, path, in.ops)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if _, err := in.step("mkdir", path, 0); err != nil {
		return err
	}
	return in.under.MkdirAll(path, perm)
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if _, err := in.step("create", name, 0); err != nil {
			return nil, err
		}
	}
	f, err := in.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := in.step("createtemp", dir, 0); err != nil {
		return nil, err
	}
	f, err := in.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.step("rename", oldpath, 0); err != nil {
		return err
	}
	return in.under.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if _, err := in.step("remove", name, 0); err != nil {
		return err
	}
	return in.under.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if _, err := in.step("truncate", name, 0); err != nil {
		return err
	}
	return in.under.Truncate(name, size)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) { return in.under.Stat(name) }

func (in *Injector) Glob(pattern string) ([]string, error) { return in.under.Glob(pattern) }

func (in *Injector) Chtimes(name string, atime, mtime time.Time) error {
	if _, err := in.step("chtimes", name, 0); err != nil {
		return err
	}
	return in.under.Chtimes(name, atime, mtime)
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.step("syncdir", dir, 0); err != nil {
		return err
	}
	return in.under.SyncDir(dir)
}

// injFile intercepts the two per-file mutating operations, Write and
// Sync. Reads, seeks, stats and closes pass through: the injector models
// a dying writer, not a failing read path.
type injFile struct {
	in *Injector
	f  File
}

func (f *injFile) Write(p []byte) (int, error) {
	prefix, err := f.in.step("write", f.f.Name(), len(p))
	if err != nil {
		if prefix > 0 {
			// Torn write: a prefix of the buffer lands before the
			// "power cut". The caller still sees the failure — the
			// batch is not acknowledged — but the bytes are on disk,
			// exactly the state recovery must cope with.
			_, _ = f.f.Write(p[:prefix])
			_ = f.f.Sync()
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.in.step("sync", f.f.Name(), 0); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Read(p []byte) (int, error)                { return f.f.Read(p) }
func (f *injFile) Seek(off int64, whence int) (int64, error) { return f.f.Seek(off, whence) }
func (f *injFile) Close() error                              { return f.f.Close() }
func (f *injFile) Stat() (fs.FileInfo, error)                { return f.f.Stat() }
func (f *injFile) Name() string                              { return f.f.Name() }
