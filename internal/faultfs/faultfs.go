// Package faultfs is the filesystem seam under the persist layer: a small
// interface covering exactly the operations durable storage performs
// (create, write, sync, rename, remove, truncate, directory sync), a
// pass-through implementation backed by the real filesystem, and an
// injecting implementation that can fail or crash at the Nth mutating
// operation — including torn (partial) writes, the artifact a power cut
// leaves in an append-only log. The injector is what lets the crash
// harness stop an ingest run at every single I/O boundary, reopen the
// directory, and prove that no acknowledged batch is ever lost.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// FS is the filesystem surface the persist layer writes through. Every
// mutating operation of the journal, snapshot and index directories goes
// through one of these methods, so a fault-injecting implementation sees
// — and can interrupt — each durability-relevant step.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens a file with the given flags; creation (os.O_CREATE)
	// counts as a mutating operation for injectors.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a unique temporary file in dir, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// Glob lists the files matching pattern, as filepath.Glob.
	Glob(pattern string) ([]string, error)
	// Chtimes sets a file's access and modification times.
	Chtimes(name string, atime, mtime time.Time) error
	// SyncDir fsyncs a directory so entries created or renamed into it
	// survive a power loss.
	SyncDir(dir string) error
}

// File is one open file. It carries Seek so the snapshot codec can keep
// its single-pass patch-the-header-after encoding path.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Stat describes the open file.
	Stat() (fs.FileInfo, error)
	// Name reports the path the file was opened with.
	Name() string
}

// OS is the pass-through implementation over the real filesystem.
type OS struct{}

var _ FS = OS{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (OS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
