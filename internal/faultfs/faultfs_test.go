package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// scenario performs a fixed little I/O dance: create a file, write twice,
// sync, rename it, and sync the directory. It returns the first error.
func scenario(fsys FS, dir string) error {
	if err := fsys.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil {
		return err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, "d", "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write([]byte("world")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(filepath.Join(dir, "d", "a"), filepath.Join(dir, "d", "b")); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Join(dir, "d"))
}

// TestInjectorCountsAndCrashes pins the injector's contract: an unarmed
// run counts the scenario's mutating ops; crashing at each ordinal faults
// exactly there and stays down; the op count is stable run to run.
func TestInjectorCountsAndCrashes(t *testing.T) {
	in := NewInjector(OS{})
	if err := scenario(in, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	total := in.Ops()
	// mkdir, create, write, write, sync, rename, syncdir
	if total != 7 {
		t.Fatalf("scenario counted %d mutating ops, want 7", total)
	}

	for n := 1; n <= total; n++ {
		in := NewInjector(OS{})
		in.CrashAt(n)
		err := scenario(in, t.TempDir())
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("crash at op %d: scenario err = %v, want ErrInjected", n, err)
		}
		if !in.Down() || !in.Faulted() {
			t.Fatalf("crash at op %d: Down=%v Faulted=%v, want true/true", n, in.Down(), in.Faulted())
		}
		// Once down, everything mutating fails.
		if err := in.Remove("whatever"); !errors.Is(err, ErrInjected) {
			t.Fatalf("post-crash Remove err = %v, want ErrInjected", err)
		}
	}

	// A plan beyond the scenario never fires.
	in = NewInjector(OS{})
	in.CrashAt(total + 1)
	if err := scenario(in, t.TempDir()); err != nil {
		t.Fatalf("crash beyond the scenario faulted: %v", err)
	}
	if in.Faulted() {
		t.Fatal("crash plan beyond the op count reported Faulted")
	}
}

// TestInjectorTornWrite pins the torn-write artifact: the faulted write
// reports failure, but half the buffer reaches the file.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.TornCrashAt(3) // ops: mkdir, create, write("hello ")
	err := scenario(in, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("scenario err = %v, want ErrInjected", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "d", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Fatalf("torn write landed %q, want the 3-byte prefix %q", got, "hel")
	}
}

// TestInjectorFailOnce pins the transient-failure mode: the faulted op
// fails, the scenario run after it succeeds untouched.
func TestInjectorFailOnce(t *testing.T) {
	in := NewInjector(OS{})
	in.FailAt(5) // the file sync
	if err := scenario(in, t.TempDir()); !errors.Is(err, ErrInjected) {
		t.Fatalf("scenario err = %v, want ErrInjected", err)
	}
	if in.Down() {
		t.Fatal("FailAt took the injector down; only CrashAt may")
	}
	// Later ops succeed: a fresh scenario against the same injector (the
	// one-shot plan already fired) runs clean.
	if err := scenario(in, t.TempDir()); err != nil {
		t.Fatalf("run after a one-shot fault: %v", err)
	}
}
