package serving

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
)

// fixture builds two collections and one resolved block per collection:
// smith's six docs split into clusters {0,1,2}/{3,4}/{5}, jones's four
// docs into {0,1}/{2,3}.
func fixture() ([]*corpus.Collection, []BlockResolution) {
	cols := []*corpus.Collection{
		{Name: "smith", Docs: make([]corpus.Document, 6)},
		{Name: "jones", Docs: make([]corpus.Document, 4)},
	}
	for _, col := range cols {
		for i := range col.Docs {
			col.Docs[i].ID = i
			col.Docs[i].URL = fmt.Sprintf("http://example.com/%s/%d", col.Name, i)
		}
	}
	blocks := []BlockResolution{
		{
			Fingerprint: 0xAAAA,
			Name:        "smith",
			Members:     []DocRef{{Col: 0, Doc: 0}, {Col: 0, Doc: 1}, {Col: 0, Doc: 2}, {Col: 0, Doc: 3}, {Col: 0, Doc: 4}, {Col: 0, Doc: 5}},
			Resolution:  &core.Resolution{Labels: []int{0, 0, 0, 1, 1, 2}, Source: "test"},
			Score:       &eval.Result{Fp: 0.9, F: 0.8, Rand: 0.85},
		},
		{
			Fingerprint: 0xBBBB,
			Name:        "jones",
			Members:     []DocRef{{Col: 1, Doc: 0}, {Col: 1, Doc: 1}, {Col: 1, Doc: 2}, {Col: 1, Doc: 3}},
			Resolution:  &core.Resolution{Labels: []int{0, 0, 1, 1}, Source: "test"},
		},
	}
	return cols, blocks
}

func TestBuildLookups(t *testing.T) {
	cols, blocks := fixture()
	x := Build(nil, 1, 10, "knobs", cols, blocks)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.Epoch() != 1 || x.StoreVersion() != 10 || x.Knobs() != "knobs" {
		t.Fatalf("identity = (%d, %d, %q)", x.Epoch(), x.StoreVersion(), x.Knobs())
	}
	if x.Clusters() != 5 {
		t.Fatalf("clusters = %d, want 5", x.Clusters())
	}
	if x.Docs() != 10 {
		t.Fatalf("docs = %d, want 10", x.Docs())
	}
	if x.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", x.Blocks())
	}

	c := x.DocEntity("smith", 4)
	if c == nil {
		t.Fatal("DocEntity(smith, 4) = nil")
	}
	if c.ID != ClusterID(0xAAAA, 1) {
		t.Fatalf("cluster ID = %q, want %q", c.ID, ClusterID(0xAAAA, 1))
	}
	if len(c.Members) != 2 || c.Members[0].Pos != 3 || c.Members[1].Pos != 4 {
		t.Fatalf("members = %+v", c.Members)
	}
	if c.Members[0].Collection != "smith" || c.Members[0].URL == "" {
		t.Fatalf("member = %+v", c.Members[0])
	}
	if c.Score == nil || c.Score.F != 0.8 {
		t.Fatalf("score = %+v", c.Score)
	}
	if got := x.Entity(c.ID); got != c {
		t.Fatalf("Entity(%q) = %p, want %p", c.ID, got, c)
	}

	// Misses: unknown entity, unknown collection, position beyond the
	// committed snapshot (the staleness contract's safe answer is nil).
	if x.Entity("nope") != nil {
		t.Fatal("Entity(nope) != nil")
	}
	if x.DocEntity("nope", 0) != nil {
		t.Fatal("DocEntity on unknown collection != nil")
	}
	if x.DocEntity("smith", 6) != nil {
		t.Fatal("DocEntity beyond snapshot != nil")
	}
	if x.DocEntity("smith", -1) != nil {
		t.Fatal("DocEntity negative pos != nil")
	}
}

func TestSearch(t *testing.T) {
	cols, blocks := fixture()
	x := Build(nil, 1, 10, "knobs", cols, blocks)

	hits := x.Search("Smith", 0)
	if len(hits) != 3 {
		t.Fatalf("search smith: %d hits, want 3", len(hits))
	}
	// Equal match counts rank bigger clusters first.
	if len(hits[0].Cluster.Members) != 3 || len(hits[1].Cluster.Members) != 2 || len(hits[2].Cluster.Members) != 1 {
		t.Fatalf("hit sizes = %d, %d, %d", len(hits[0].Cluster.Members), len(hits[1].Cluster.Members), len(hits[2].Cluster.Members))
	}
	for _, h := range hits {
		if h.Cluster.Block != "smith" || h.Matched != 1 {
			t.Fatalf("hit = %+v", h)
		}
	}
	if got := x.Search("smith", 2); len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
	if got := x.Search("", 0); got != nil {
		t.Fatalf("empty query returned %d hits", len(got))
	}
	if got := x.Search("unseen name", 0); len(got) != 0 {
		t.Fatalf("unknown tokens returned %d hits", len(got))
	}
}

func TestIncrementalReuse(t *testing.T) {
	cols, blocks := fixture()
	prev := Build(nil, 1, 10, "knobs", cols, blocks)
	smith := prev.DocEntity("smith", 0)

	// Jones grows a doc and re-resolves under a new fingerprint; smith's
	// block is untouched.
	cols[1].Docs = append(cols[1].Docs, corpus.Document{ID: 4, URL: "http://example.com/jones/4"})
	next := blocks
	next[1] = BlockResolution{
		Fingerprint: 0xCCCC,
		Name:        "jones",
		Members:     []DocRef{{Col: 1, Doc: 0}, {Col: 1, Doc: 1}, {Col: 1, Doc: 2}, {Col: 1, Doc: 3}, {Col: 1, Doc: 4}},
		Resolution:  &core.Resolution{Labels: []int{0, 0, 1, 1, 1}, Source: "test"},
	}
	x := Build(prev, 2, 11, "knobs", cols, next)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// The clean block's clusters are reused verbatim: same pointers, same
	// stable IDs.
	if got := x.DocEntity("smith", 0); got != smith {
		t.Fatalf("clean block not reused: %p vs %p", got, smith)
	}
	if got := x.DocEntity("jones", 4); got == nil || got.ID != ClusterID(0xCCCC, 1) {
		t.Fatalf("dirty block cluster = %+v", got)
	}
	if prev.DocEntity("jones", 4) != nil {
		t.Fatal("previous index mutated by rebuild")
	}

	// A different configuration must not donate materializations even when
	// fingerprints match.
	y := Build(prev, 2, 11, "other-knobs", cols, next)
	if got := y.DocEntity("smith", 0); got == smith {
		t.Fatal("cross-knobs reuse")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cols, blocks := fixture()
	x := Build(nil, 3, 42, "knobs", cols, blocks)

	var buf bytes.Buffer
	if err := x.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	if y.Epoch() != 3 || y.StoreVersion() != 42 || y.Knobs() != "knobs" {
		t.Fatalf("identity = (%d, %d, %q)", y.Epoch(), y.StoreVersion(), y.Knobs())
	}
	if y.Clusters() != x.Clusters() || y.Docs() != x.Docs() || y.Blocks() != x.Blocks() {
		t.Fatalf("shape = (%d, %d, %d), want (%d, %d, %d)",
			y.Clusters(), y.Docs(), y.Blocks(), x.Clusters(), x.Docs(), x.Blocks())
	}
	want := x.DocEntity("smith", 4)
	got := y.DocEntity("smith", 4)
	if got == nil || got.ID != want.ID || len(got.Members) != len(want.Members) {
		t.Fatalf("decoded lookup = %+v, want %+v", got, want)
	}
	if got.Members[1].URL != want.Members[1].URL {
		t.Fatalf("URL = %q, want %q", got.Members[1].URL, want.Members[1].URL)
	}
	if got.Score == nil || got.Score.F != 0.8 {
		t.Fatalf("score = %+v", got.Score)
	}
	if len(y.Search("jones", 0)) != len(x.Search("jones", 0)) {
		t.Fatal("decoded search differs")
	}
}

func TestCodecRejectsDamage(t *testing.T) {
	cols, blocks := fixture()
	x := Build(nil, 1, 10, "knobs", cols, blocks)
	var buf bytes.Buffer
	if err := x.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped)); !errors.Is(err, ErrCodecCorrupt) {
		t.Fatalf("bit flip: %v", err)
	}

	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); !errors.Is(err, ErrCodecCorrupt) {
		t.Fatalf("truncation: %v", err)
	}

	future := append([]byte(nil), raw...)
	copy(future, "ERSVI999")
	if _, err := Decode(bytes.NewReader(future)); !errors.Is(err, ErrCodecVersion) {
		t.Fatalf("future version: %v", err)
	}

	if _, err := Decode(bytes.NewReader([]byte("garbage!"))); !errors.Is(err, ErrCodecCorrupt) {
		t.Fatal("bad magic accepted")
	}
}

// benchIndex builds the benchmark corpus: 50 collections of 200 docs each,
// every collection resolved into 20 clusters of 10.
func benchIndex(b *testing.B) *Index {
	b.Helper()
	const (
		ncols    = 50
		docs     = 200
		perClust = 10
	)
	cols := make([]*corpus.Collection, ncols)
	blocks := make([]BlockResolution, ncols)
	for ci := range cols {
		name := fmt.Sprintf("person%03d", ci)
		col := &corpus.Collection{Name: name, Docs: make([]corpus.Document, docs)}
		members := make([]DocRef, docs)
		labels := make([]int, docs)
		for i := range col.Docs {
			col.Docs[i].ID = i
			col.Docs[i].URL = fmt.Sprintf("http://example.com/%s/%d", name, i)
			members[i] = DocRef{Col: ci, Doc: i}
			labels[i] = i / perClust
		}
		cols[ci] = col
		blocks[ci] = BlockResolution{
			Fingerprint: uint64(0x1000 + ci),
			Name:        name,
			Members:     members,
			Resolution:  &core.Resolution{Labels: labels, Source: "bench"},
		}
	}
	return Build(nil, 1, uint64(ncols*docs), "bench", cols, blocks)
}

// BenchmarkServingLookup measures the hot read path — doc→cluster then
// entity-by-ID, the GET /v1/docs + GET /v1/entities sequence — and reports
// lookups/s on one core (the loop is single-goroutine, so ns/op is
// per-core cost directly).
func BenchmarkServingLookup(b *testing.B) {
	x := benchIndex(b)
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("person%03d", i)
	}
	b.ResetTimer()
	lookups := 0
	for i := 0; i < b.N; i++ {
		col := names[i%len(names)]
		pos := (i * 7) % 200
		c := x.DocEntity(col, pos)
		if c == nil {
			b.Fatalf("miss at (%s, %d)", col, pos)
		}
		if x.Entity(c.ID) != c {
			b.Fatal("entity lookup mismatch")
		}
		lookups += 2
	}
	b.ReportMetric(float64(lookups)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServingSearch measures the token-search path.
func BenchmarkServingSearch(b *testing.B) {
	x := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := x.Search(fmt.Sprintf("person%03d", i%50), 5)
		if len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkServingRebuild measures an incremental rebuild where one block
// of fifty is dirty — the per-commit cost the atomic swap hides from
// readers.
func BenchmarkServingRebuild(b *testing.B) {
	x := benchIndex(b)
	cols := make([]*corpus.Collection, 0, 50)
	blocks := make([]BlockResolution, 0, 50)
	for _, st := range x.order {
		members := make([]DocRef, 0)
		labels := make([]int, 0)
		for _, c := range st.clusters {
			for _, m := range c.Members {
				members = append(members, m.ref)
				labels = append(labels, c.Label)
			}
		}
		blocks = append(blocks, BlockResolution{
			Fingerprint: st.fp,
			Name:        st.name,
			Members:     members,
			Resolution:  &core.Resolution{Labels: labels, Source: "bench"},
		})
		col := &corpus.Collection{Name: st.name, Docs: make([]corpus.Document, 200)}
		cols = append(cols, col)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dirty := blocks
		d := dirty[i%50]
		d.Fingerprint = uint64(0x9000 + i)
		dirty[i%50] = d
		y := Build(x, uint64(i+2), x.StoreVersion(), "bench", cols, dirty)
		if y.Clusters() != x.Clusters() {
			b.Fatalf("clusters = %d, want %d", y.Clusters(), x.Clusters())
		}
		dirty[i%50] = blocks[i%50]
	}
}
