// Package serving is the hot read path over a committed resolution: an
// immutable in-memory inverted index answering "which cluster is this
// document in", "who is entity X", and "which clusters match these name
// tokens" in microseconds, without touching the resolver.
//
// An Index is materialized from one incremental run's output — the blocks,
// their member refs into the store snapshot, their membership fingerprints
// and their clusterings — and is never mutated afterwards: the service
// publishes it behind an atomic pointer swap, so lookups are lock-free
// reads of immutable state. Rebuilds are incremental: a block whose
// membership fingerprint is unchanged since the previous Index (built under
// the same resolution configuration) reuses its materialized clusters —
// including their stable IDs — and only dirty blocks pay the
// materialization cost. The top-level maps (doc table, token postings) are
// reassembled per commit; that is pointer work, linear in the corpus with a
// tiny constant, not re-materialization.
//
// Cluster IDs are derived from the block's membership fingerprint plus the
// cluster's label ("%016x-%d"), so an entity keeps its ID across commits
// for as long as its block's membership is unchanged — the same stability
// contract incremental resolution gives prepared state.
package serving

import (
	"fmt"
	"sort"

	"repro/internal/blockindex"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
)

// DocRef locates one store document, aliased from the block index so refs
// flow between the layers without conversion.
type DocRef = blockindex.DocRef

// Member is one document of a cluster, addressed by its stable store
// position.
type Member struct {
	// Collection is the store collection's name.
	Collection string `json:"collection"`
	// Pos is the document's dense position within the collection — stable
	// forever under the store's append-only contract.
	Pos int `json:"pos"`
	// URL is the document's page address, echoed for client convenience.
	URL string `json:"url,omitempty"`

	ref DocRef
}

// Score is a cluster's block-level evaluation against ground truth.
type Score struct {
	Fp   float64 `json:"fp"`
	F    float64 `json:"f"`
	Rand float64 `json:"rand"`
}

// Cluster is one resolved entity: the documents the resolution grouped
// together, with provenance. Clusters are immutable once built.
type Cluster struct {
	// ID is the entity's stable identifier: the block's membership
	// fingerprint plus the cluster label. It survives commits that do not
	// change the block's membership.
	ID string `json:"id"`
	// Block is the resolution block's (possibly merged) collection name.
	Block string `json:"block"`
	// Label is the cluster's index within its block.
	Label int `json:"label"`
	// Source describes which combination produced the clustering.
	Source string `json:"source,omitempty"`
	// Members are the cluster's documents, ascending by store position.
	Members []Member `json:"members"`
	// Score is the block's evaluation, when the committing run scored;
	// shared by every cluster of the block.
	Score *Score `json:"score,omitempty"`

	fp uint64
}

// BlockResolution is one block of a committed run — the serving index's
// unit of materialization and reuse.
type BlockResolution struct {
	// Fingerprint is the block's membership fingerprint (the incremental
	// diff's cache key).
	Fingerprint uint64
	// Name is the block's collection name.
	Name string
	// Members are the refs of the block's documents into the committed
	// store snapshot, in block-document order (Members[i] is block doc i).
	Members []DocRef
	// Resolution labels each block document with its cluster.
	Resolution *core.Resolution
	// Score is the block's evaluation, nil when unscored.
	Score *eval.Result
}

// blockState is one block's materialized serving state: its clusters and
// its search tokens. Reused verbatim across commits while the block's
// fingerprint (and the resolution configuration) is unchanged.
type blockState struct {
	fp       uint64
	name     string
	tokens   []string
	clusters []*Cluster
}

// Index is one committed resolution, inverted for reads. All state is
// immutable after Build; every method is safe for concurrent use without
// locks.
//
// erlint:immutable — the hot read path loads an *Index through an atomic
// pointer with no locks; any post-publish write is a data race.
type Index struct {
	epoch        uint64
	storeVersion uint64
	knobs        string

	colNames []string
	colDocs  []int
	colIndex map[string]int

	blocks   map[uint64]*blockState
	order    []*blockState // block order, for deterministic encoding
	clusters []*Cluster
	byID     map[string]*Cluster
	docs     [][]int32 // [col][pos] -> index into clusters, -1 when unresolved
	tokens   map[string][]int32
}

// Build materializes the serving index of one committed run. prev, when
// non-nil and built under the same knobs string, donates the materialized
// clusters of every block whose fingerprint is unchanged; pass nil for a
// from-scratch build. cols is the store snapshot the run resolved
// (Members refs point into it), storeVersion its version, knobs the
// committing configuration's effective-knobs key, and epoch the new
// index's monotonic publish counter (callers increment it per swap).
func Build(prev *Index, epoch uint64, storeVersion uint64, knobs string,
	cols []*corpus.Collection, blocks []BlockResolution) *Index {

	states := make([]*blockState, len(blocks))
	reusable := prev != nil && prev.knobs == knobs
	for i, br := range blocks {
		if reusable {
			if st, ok := prev.blocks[br.Fingerprint]; ok {
				states[i] = st
				continue
			}
		}
		states[i] = materialize(cols, br)
	}

	colNames := make([]string, len(cols))
	colDocs := make([]int, len(cols))
	for i, col := range cols {
		colNames[i] = col.Name
		colDocs[i] = len(col.Docs)
	}
	return assemble(epoch, storeVersion, knobs, colNames, colDocs, states)
}

// materialize builds one block's serving state from scratch: group the
// block documents by cluster label, sort nothing (members arrive in block
// order, which ascends by store position), and derive the block's search
// tokens.
func materialize(cols []*corpus.Collection, br BlockResolution) *blockState {
	st := &blockState{fp: br.Fingerprint, name: br.Name}
	labels := br.Resolution.Labels
	n := br.Resolution.NumEntities()
	byLabel := make([][]Member, n)
	for i, ref := range br.Members {
		if i >= len(labels) {
			break // malformed resolution; serve what is consistent
		}
		label := labels[i]
		if label < 0 || label >= n {
			continue
		}
		url := ""
		if ref.Col < len(cols) && ref.Doc < len(cols[ref.Col].Docs) {
			url = cols[ref.Col].Docs[ref.Doc].URL
		}
		byLabel[label] = append(byLabel[label], Member{
			Collection: cols[ref.Col].Name,
			Pos:        ref.Doc,
			URL:        url,
			ref:        ref,
		})
	}
	var score *Score
	if br.Score != nil {
		score = &Score{Fp: br.Score.Fp, F: br.Score.F, Rand: br.Score.Rand}
	}
	source := ""
	if br.Resolution != nil {
		source = br.Resolution.Source
	}
	for label, members := range byLabel {
		if len(members) == 0 {
			continue
		}
		st.clusters = append(st.clusters, &Cluster{
			ID:      ClusterID(br.Fingerprint, label),
			Block:   br.Name,
			Label:   label,
			Source:  source,
			Members: members,
			Score:   score,
			fp:      br.Fingerprint,
		})
	}
	st.tokens = blockTokens(br.Name)
	return st
}

// ClusterID derives the stable entity ID of one cluster: the block's
// membership fingerprint in hex plus the cluster's label.
func ClusterID(fp uint64, label int) string {
	return fmt.Sprintf("%016x-%d", fp, label)
}

// blockTokens derives one block's search tokens from its name, normalized
// exactly like blocking keys so queries and blocks meet in one token space.
func blockTokens(name string) []string {
	return blocking.KeyTokens(name, 2)
}

// assemble rebuilds the index's top-level inverted maps from per-block
// states — the shared tail of Build and Decode.
func assemble(epoch, storeVersion uint64, knobs string,
	colNames []string, colDocs []int, states []*blockState) *Index {

	x := &Index{
		epoch:        epoch,
		storeVersion: storeVersion,
		knobs:        knobs,
		colNames:     colNames,
		colDocs:      colDocs,
		colIndex:     make(map[string]int, len(colNames)),
		blocks:       make(map[uint64]*blockState, len(states)),
		order:        states,
		byID:         make(map[string]*Cluster),
		docs:         make([][]int32, len(colNames)),
		tokens:       make(map[string][]int32),
	}
	for i, name := range colNames {
		x.colIndex[name] = i
		table := make([]int32, colDocs[i])
		for j := range table {
			table[j] = -1
		}
		x.docs[i] = table
	}
	for _, st := range states {
		x.blocks[st.fp] = st
		for _, c := range st.clusters {
			ci := int32(len(x.clusters))
			x.clusters = append(x.clusters, c)
			x.byID[c.ID] = c
			for _, m := range c.Members {
				if m.ref.Col < len(x.docs) && m.ref.Doc < len(x.docs[m.ref.Col]) {
					x.docs[m.ref.Col][m.ref.Doc] = ci
				}
			}
		}
		// Every cluster of the block answers for the block's tokens: a
		// token names candidate clusters, the caller disambiguates.
		for _, tok := range st.tokens {
			for i := range st.clusters {
				ci := int32(len(x.clusters) - len(st.clusters) + i)
				x.tokens[tok] = append(x.tokens[tok], ci)
			}
		}
	}
	return x
}

// Epoch is the index's publish counter — which swap produced it.
func (x *Index) Epoch() uint64 { return x.epoch }

// StoreVersion is the store version the committed resolution reflects;
// comparing it with the live store version measures read-path staleness.
func (x *Index) StoreVersion() uint64 { return x.storeVersion }

// Knobs is the effective-knobs key of the resolution configuration that
// committed this index.
func (x *Index) Knobs() string { return x.knobs }

// Clusters is the number of resolved entities.
func (x *Index) Clusters() int { return len(x.clusters) }

// Docs is the number of store documents the index covers.
func (x *Index) Docs() int {
	n := 0
	for _, d := range x.colDocs {
		n += d
	}
	return n
}

// Blocks is the number of resolution blocks behind the index.
func (x *Index) Blocks() int { return len(x.order) }

// Entity returns the cluster with the given ID, or nil.
func (x *Index) Entity(id string) *Cluster { return x.byID[id] }

// DocEntity returns the cluster containing the document at (collection,
// pos), or nil when the collection is unknown, the position is beyond the
// committed snapshot, or the document resolved into no cluster.
func (x *Index) DocEntity(collection string, pos int) *Cluster {
	ci, ok := x.colIndex[collection]
	if !ok || pos < 0 || pos >= len(x.docs[ci]) {
		return nil
	}
	slot := x.docs[ci][pos]
	if slot < 0 {
		return nil
	}
	return x.clusters[slot]
}

// Hit is one search result: a candidate cluster and how many query tokens
// its block matched.
type Hit struct {
	Cluster *Cluster
	Matched int
}

// Search returns up to limit candidate clusters whose block tokens
// intersect the query's tokens, ordered by tokens matched (descending),
// then cluster size (descending), then ID — deterministic and
// most-specific-first. A limit < 1 selects 20.
func (x *Index) Search(query string, limit int) []Hit {
	if limit < 1 {
		limit = 20
	}
	toks := blocking.KeyTokens(query, 2)
	if len(toks) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(toks))
	matched := make(map[int32]int)
	for _, tok := range toks {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		for _, ci := range x.tokens[tok] {
			matched[ci]++
		}
	}
	hits := make([]Hit, 0, len(matched))
	for ci, m := range matched {
		hits = append(hits, Hit{Cluster: x.clusters[ci], Matched: m})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Matched != hits[j].Matched {
			return hits[i].Matched > hits[j].Matched
		}
		if len(hits[i].Cluster.Members) != len(hits[j].Cluster.Members) {
			return len(hits[i].Cluster.Members) > len(hits[j].Cluster.Members)
		}
		return hits[i].Cluster.ID < hits[j].Cluster.ID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Validate checks the index's internal consistency — every member ref
// within the recorded snapshot bounds, every doc-table slot pointing at a
// cluster that contains it. It exists for tests and the read-after-commit
// consistency harness; Build always produces a valid index.
func (x *Index) Validate() error {
	for _, c := range x.clusters {
		for _, m := range c.Members {
			if m.ref.Col < 0 || m.ref.Col >= len(x.colDocs) {
				return fmt.Errorf("serving: cluster %s member references collection %d of %d", c.ID, m.ref.Col, len(x.colDocs))
			}
			if m.ref.Doc < 0 || m.ref.Doc >= x.colDocs[m.ref.Col] {
				return fmt.Errorf("serving: cluster %s member references doc %d beyond collection %q's %d docs at store version %d",
					c.ID, m.ref.Doc, x.colNames[m.ref.Col], x.colDocs[m.ref.Col], x.storeVersion)
			}
		}
	}
	for ci := range x.docs {
		for pos, slot := range x.docs[ci] {
			if slot < 0 {
				continue
			}
			if int(slot) >= len(x.clusters) {
				return fmt.Errorf("serving: doc table points at cluster %d of %d", slot, len(x.clusters))
			}
			found := false
			for _, m := range x.clusters[slot].Members {
				if m.ref.Col == ci && m.ref.Doc == pos {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("serving: doc (%s, %d) maps to cluster %s which does not contain it",
					x.colNames[ci], pos, x.clusters[slot].ID)
			}
		}
	}
	return nil
}
