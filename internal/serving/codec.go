package serving

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// servingMagic heads every encoded serving index; the digit is the format
// version.
const servingMagic = "ERSVI001"

// ErrCodecVersion reports an encoded serving index from an unsupported
// format version; ErrCodecCorrupt reports structural damage. Callers treat
// both as "no usable snapshot": correctness never depends on the encoded
// form — the index rebuilds on the next committed resolve — only the
// restart head-start does.
var (
	ErrCodecVersion = errors.New("serving: unsupported serving index format version")
	ErrCodecCorrupt = errors.New("serving: encoded serving index is corrupt")
)

// crcTable is the Castagnoli table, matching the persist layer's journal.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodedIndex is the gob payload: the per-block primary state plus the
// snapshot geometry its refs point into. The top-level inverted maps (doc
// table, token postings, ID map) are derived state, reassembled on decode.
type encodedIndex struct {
	Epoch        uint64
	StoreVersion uint64
	Knobs        string
	ColNames     []string
	ColDocs      []int
	Blocks       []encodedBlock
}

type encodedBlock struct {
	FP       uint64
	Name     string
	Tokens   []string
	Clusters []encodedCluster
}

type encodedCluster struct {
	Label  int
	Source string
	Score  *Score
	Refs   []DocRef
	URLs   []string
}

// EncodeTo writes the index in its versioned, checksummed wire form.
func (x *Index) EncodeTo(w io.Writer) error {
	enc := encodedIndex{
		Epoch:        x.epoch,
		StoreVersion: x.storeVersion,
		Knobs:        x.knobs,
		ColNames:     x.colNames,
		ColDocs:      x.colDocs,
		Blocks:       make([]encodedBlock, len(x.order)),
	}
	for i, st := range x.order {
		eb := encodedBlock{FP: st.fp, Name: st.name, Tokens: st.tokens,
			Clusters: make([]encodedCluster, len(st.clusters))}
		for j, c := range st.clusters {
			ec := encodedCluster{Label: c.Label, Source: c.Source, Score: c.Score,
				Refs: make([]DocRef, len(c.Members)), URLs: make([]string, len(c.Members))}
			for k, m := range c.Members {
				ec.Refs[k] = m.ref
				ec.URLs[k] = m.URL
			}
			eb.Clusters[j] = ec
		}
		enc.Blocks[i] = eb
	}

	if _, err := io.WriteString(w, servingMagic); err != nil {
		return fmt.Errorf("serving: writing header: %w", err)
	}
	crc := crc32.New(crcTable)
	if err := gob.NewEncoder(io.MultiWriter(w, crc)).Encode(enc); err != nil {
		return fmt.Errorf("serving: encoding index: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("serving: writing checksum: %w", err)
	}
	return nil
}

// Decode reads an index written by EncodeTo and reassembles its derived
// lookup state. The decoded index is immutable and lookup-ready, exactly as
// if freshly built.
func Decode(r io.Reader) (*Index, error) {
	header := make([]byte, len(servingMagic))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCodecCorrupt, err)
	}
	if string(header) != servingMagic {
		if string(header[:5]) == servingMagic[:5] {
			return nil, fmt.Errorf("%w: %q", ErrCodecVersion, header)
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodecCorrupt, header)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCodecCorrupt, err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: payload shorter than its checksum", ErrCodecCorrupt)
	}
	payload, sum := body[:len(body)-4], binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, trailer declares %08x", ErrCodecCorrupt, got, sum)
	}
	var enc encodedIndex
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodecCorrupt, err)
	}

	if len(enc.ColNames) != len(enc.ColDocs) {
		return nil, fmt.Errorf("%w: %d collection names but %d doc counts", ErrCodecCorrupt, len(enc.ColNames), len(enc.ColDocs))
	}
	states := make([]*blockState, len(enc.Blocks))
	for i, eb := range enc.Blocks {
		st := &blockState{fp: eb.FP, name: eb.Name, tokens: eb.Tokens}
		for _, ec := range eb.Clusters {
			if len(ec.Refs) != len(ec.URLs) {
				return nil, fmt.Errorf("%w: cluster %s has %d refs but %d urls",
					ErrCodecCorrupt, ClusterID(eb.FP, ec.Label), len(ec.Refs), len(ec.URLs))
			}
			members := make([]Member, len(ec.Refs))
			for k, ref := range ec.Refs {
				if ref.Col < 0 || ref.Col >= len(enc.ColNames) {
					return nil, fmt.Errorf("%w: member references collection %d of %d", ErrCodecCorrupt, ref.Col, len(enc.ColNames))
				}
				if ref.Doc < 0 || ref.Doc >= enc.ColDocs[ref.Col] {
					return nil, fmt.Errorf("%w: member references doc %d beyond collection %q's %d docs",
						ErrCodecCorrupt, ref.Doc, enc.ColNames[ref.Col], enc.ColDocs[ref.Col])
				}
				members[k] = Member{Collection: enc.ColNames[ref.Col], Pos: ref.Doc, URL: ec.URLs[k], ref: ref}
			}
			st.clusters = append(st.clusters, &Cluster{
				ID:      ClusterID(eb.FP, ec.Label),
				Block:   eb.Name,
				Label:   ec.Label,
				Source:  ec.Source,
				Members: members,
				Score:   ec.Score,
				fp:      eb.FP,
			})
		}
		states[i] = st
	}
	return assemble(enc.Epoch, enc.StoreVersion, enc.Knobs, enc.ColNames, enc.ColDocs, states), nil
}
