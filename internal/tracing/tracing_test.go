package tracing

import (
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	b := NewBuffer(4)
	tr := b.Start("resolve.incremental")
	tr.SetAttr("store_version", "7")
	base := time.Now()
	// Report children out of start order; End must sort them.
	tr.Span("cluster", base.Add(30*time.Millisecond), 5*time.Millisecond, "block", "b1")
	tr.Span("block", base, 10*time.Millisecond)
	tr.Span("prepare", base.Add(10*time.Millisecond), 8*time.Millisecond, "block", "b1")
	tr.End()

	traces := b.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Name != "resolve.incremental" || got.ID == "" {
		t.Fatalf("trace header = %+v", got)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(got.Spans))
	}
	root := got.Spans[0]
	if root.ID != RootSpanID || root.Parent != 0 || root.Name != "resolve.incremental" {
		t.Fatalf("root span = %+v", root)
	}
	if len(root.Attrs) != 1 || root.Attrs[0] != (Attr{Key: "store_version", Value: "7"}) {
		t.Fatalf("root attrs = %+v", root.Attrs)
	}
	wantOrder := []string{"block", "prepare", "cluster"}
	for i, name := range wantOrder {
		s := got.Spans[i+1]
		if s.Name != name {
			t.Errorf("span %d = %q, want %q (children must sort by start)", i+1, s.Name, name)
		}
		if s.Parent != RootSpanID {
			t.Errorf("span %q parent = %d, want root %d", s.Name, s.Parent, RootSpanID)
		}
		if s.ID == RootSpanID {
			t.Errorf("span %q reuses the root ID", s.Name)
		}
	}
	if got.Spans[3].Attrs[0].Value != "b1" {
		t.Errorf("cluster attrs = %+v, want block=b1", got.Spans[3].Attrs)
	}
	if got.DurationMicros != root.DurationMicros {
		t.Errorf("trace duration %d != root duration %d", got.DurationMicros, root.DurationMicros)
	}
}

func TestNilSafety(t *testing.T) {
	// A nil buffer and the nil Active it hands out must be inert.
	var b *Buffer
	tr := b.Start("x")
	if tr != nil {
		t.Fatal("nil buffer returned a live trace")
	}
	tr.SetAttr("k", "v")
	tr.Span("stage", time.Now(), time.Millisecond)
	tr.End()
	if got := b.Traces(10); got != nil {
		t.Fatalf("nil buffer traces = %v", got)
	}
}

func TestRingOverwritesAndOrders(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Start("t").End()
	}
	traces := b.Traces(0)
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want ring size 3", len(traces))
	}
	// Newest first: sequence numbers strictly decreasing via ID low half.
	for i := 1; i < len(traces); i++ {
		if traces[i-1].ID <= traces[i].ID {
			t.Fatalf("traces not newest-first: %q then %q", traces[i-1].ID, traces[i].ID)
		}
	}
	if got := b.Traces(2); len(got) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(got))
	}
}

func TestUniqueTraceIDs(t *testing.T) {
	b := NewBuffer(64)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		b.Start("t").End()
	}
	for _, tr := range b.Traces(0) {
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %q", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestConcurrentTraces(t *testing.T) {
	b := NewBuffer(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := b.Start("w")
				tr.Span("s", time.Now(), time.Microsecond)
				tr.End()
			}
		}()
	}
	wg.Wait()
	traces := b.Traces(0)
	if len(traces) != 8 {
		t.Fatalf("got %d traces, want full ring of 8", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace %q has %d spans, want 2", tr.ID, len(tr.Spans))
		}
	}
}
