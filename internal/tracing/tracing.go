// Package tracing is a lightweight, dependency-free span layer for the
// resolve pipeline and the service's request handlers. A Trace is one
// request's tree of spans (root span plus Block/Prepare/Analyze/Cluster
// children); finished traces land in a lock-free ring Buffer of recent
// traces dumped by GET /v1/traces. All builder methods are nil-safe, so
// code under instrumentation can hold a nil *Active when tracing is
// disabled and pay only a nil check.
package tracing

import (
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. The root span has ID
// RootSpanID and Parent 0; children point at their parent's ID.
type Span struct {
	// ID identifies the span within its trace; IDs start at RootSpanID.
	ID int64 `json:"id"`
	// Parent is the parent span's ID, 0 for the root.
	Parent int64 `json:"parent,omitempty"`
	// Name is the operation, e.g. "resolve.incremental" or "cluster".
	Name string `json:"name"`
	// Start is the span's start time.
	Start time.Time `json:"start"`
	// DurationMicros is the span's duration in microseconds.
	DurationMicros int64 `json:"duration_us"`
	// Attrs are the span's annotations, if any.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Trace is one finished request trace: a stable hex ID plus the span
// tree, root span first, children sorted by start time.
type Trace struct {
	// ID is the trace's hex identifier.
	ID string `json:"id"`
	// Name is the root span's name, duplicated for cheap listing.
	Name string `json:"name"`
	// Start is the root span's start time.
	Start time.Time `json:"start"`
	// DurationMicros is the root span's duration in microseconds.
	DurationMicros int64 `json:"duration_us"`
	// Spans is the full span tree, root first.
	Spans []Span `json:"spans"`
}

// RootSpanID is the span ID every trace's root span carries.
const RootSpanID int64 = 1

// Active is an in-flight trace under construction. The zero value is not
// useful; obtain one from Buffer.Start. A nil *Active is valid and turns
// every method into a no-op, which is how disabled tracing costs nothing.
type Active struct {
	buf    *Buffer
	id     uint64
	name   string
	start  time.Time
	mu     sync.Mutex
	nextID int64
	spans  []Span
	attrs  []Attr
}

// Buffer is a fixed-size lock-free ring of recently finished traces.
// Writers claim a slot with one atomic add and publish the trace with one
// atomic pointer store; readers snapshot whatever is published. Older
// traces are overwritten once the ring wraps.
type Buffer struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64 // next slot to claim
	ids   atomic.Uint64 // trace ID source
}

// NewBuffer returns a ring holding up to size traces; sizes below one
// fall back to 64.
func NewBuffer(size int) *Buffer {
	if size < 1 {
		size = 64
	}
	return &Buffer{slots: make([]atomic.Pointer[Trace], size)}
}

// Start begins a new trace whose root span carries name. A nil Buffer
// returns a nil *Active, keeping instrumented code unconditional.
func (b *Buffer) Start(name string) *Active {
	if b == nil {
		return nil
	}
	return &Active{
		buf:    b,
		id:     b.ids.Add(1),
		name:   name,
		start:  time.Now(),
		nextID: RootSpanID,
	}
}

// SetAttr annotates the root span.
func (a *Active) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.attrs = append(a.attrs, Attr{Key: key, Value: value})
	a.mu.Unlock()
}

// Span records one finished child span of the root: an operation named
// name that started at start and ran for d, annotated with attrs
// (alternating key, value). It is shaped for after-the-fact observation
// seams that report a duration once a stage completes.
func (a *Active) Span(name string, start time.Time, d time.Duration, attrs ...string) {
	if a == nil {
		return
	}
	s := Span{Parent: RootSpanID, Name: name, Start: start, DurationMicros: d.Microseconds()}
	for i := 0; i+1 < len(attrs); i += 2 {
		s.Attrs = append(s.Attrs, Attr{Key: attrs[i], Value: attrs[i+1]})
	}
	a.mu.Lock()
	a.nextID++
	s.ID = a.nextID
	a.spans = append(a.spans, s)
	a.mu.Unlock()
}

// End finishes the trace and publishes it to the buffer. Child spans are
// sorted by start time (then ID) under the root. End is idempotent-free:
// call it exactly once, typically deferred at request entry.
func (a *Active) End() {
	if a == nil {
		return
	}
	d := time.Since(a.start)
	a.mu.Lock()
	spans := a.spans
	attrs := a.attrs
	a.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	root := Span{
		ID:             RootSpanID,
		Name:           a.name,
		Start:          a.start,
		DurationMicros: d.Microseconds(),
		Attrs:          attrs,
	}
	tr := &Trace{
		ID:             traceID(a.id, a.start),
		Name:           a.name,
		Start:          a.start,
		DurationMicros: root.DurationMicros,
		Spans:          append([]Span{root}, spans...),
	}
	slot := (a.buf.pos.Add(1) - 1) % uint64(len(a.buf.slots))
	a.buf.slots[slot].Store(tr)
}

// Traces returns up to limit finished traces, newest first. limit <= 0
// means all retained traces.
func (b *Buffer) Traces(limit int) []Trace {
	if b == nil {
		return nil
	}
	n := len(b.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Trace, 0, limit)
	pos := b.pos.Load()
	for i := 0; i < n && len(out) < limit; i++ {
		// Walk backwards from the most recently claimed slot.
		slot := (pos + uint64(n) - 1 - uint64(i)) % uint64(n)
		if tr := b.slots[slot].Load(); tr != nil {
			out = append(out, *tr)
		}
	}
	return out
}

// traceID renders a stable 16-hex-digit trace identifier: the trace's
// start second in the high half and the buffer's sequence number in the
// low half — unique within a process run, roughly time-ordered across
// restarts.
func traceID(seq uint64, start time.Time) string {
	var raw [8]byte
	binary.BigEndian.PutUint32(raw[:4], uint32(start.Unix()))
	binary.BigEndian.PutUint32(raw[4:], uint32(seq))
	return hex.EncodeToString(raw[:])
}
