package index

import (
	"math"
	"sort"
)

// BM25Params are the Okapi BM25 free parameters: K1 controls term-frequency
// saturation, B controls document-length normalization.
type BM25Params struct {
	K1, B float64
}

// DefaultBM25 is the standard parameterization (k1 = 1.2, b = 0.75), the
// values Lucene ships with.
var DefaultBM25 = BM25Params{K1: 1.2, B: 0.75}

// SearchBM25 scores all documents against the analyzed query with Okapi
// BM25 and returns the top k hits in decreasing score order. Unlike the
// TF-IDF cosine Search, BM25 scores are not normalized to [0, 1].
func (ix *Index) SearchBM25(query string, k int, p BM25Params) []SearchHit {
	if ix.Len() == 0 || k <= 0 {
		return nil
	}
	if p.K1 <= 0 {
		p = DefaultBM25
	}
	n := float64(ix.Len())
	var totalLen float64
	for _, l := range ix.docLens {
		totalLen += float64(l)
	}
	avgLen := totalLen / n
	if avgLen == 0 {
		return nil
	}

	scores := make(map[int]float64)
	for term, qf := range ix.analyzer.TermFreqs(query) {
		plist := ix.postings[term]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		// BM25+ style IDF floor: log(1 + (N - df + 0.5)/(df + 0.5)).
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, post := range plist {
			tf := float64(post.Freq)
			docLen := float64(ix.docLens[post.DocID])
			denom := tf + p.K1*(1-p.B+p.B*docLen/avgLen)
			scores[post.DocID] += float64(qf) * idf * tf * (p.K1 + 1) / denom
		}
	}

	hits := make([]SearchHit, 0, len(scores))
	for id, s := range scores {
		if s > 0 {
			hits = append(hits, SearchHit{DocID: id, Score: s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
