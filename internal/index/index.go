// Package index implements an in-memory inverted index with TF-IDF document
// vectors and basic ranked retrieval. It is the stand-in for the Lucene
// services the paper used to represent web pages as weighted term vectors
// (similarity functions F8, F9, F10).
package index

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/textsim"
)

// Posting records the occurrences of a term in one document.
type Posting struct {
	DocID int
	Freq  int
}

// Index is an in-memory inverted index. Documents are identified by the
// dense integer IDs returned from Add. An Index is not safe for concurrent
// mutation; concurrent reads after the last Add are safe.
type Index struct {
	analyzer  *analysis.Analyzer
	postings  map[string][]Posting
	docLens   []int    // number of term occurrences per document
	docNames  []string // external names, parallel to docLens
	weighting WeightingScheme
}

// New returns an empty index using the given analyzer; a nil analyzer means
// the standard analysis chain.
func New(analyzer *analysis.Analyzer) *Index {
	if analyzer == nil {
		analyzer = analysis.Standard
	}
	return &Index{
		analyzer: analyzer,
		postings: make(map[string][]Posting),
	}
}

// Add analyzes text and adds it as a new document, returning its ID. The
// name is an external identifier kept for presentation only.
func (ix *Index) Add(name, text string) int {
	id := len(ix.docLens)
	freqs := ix.analyzer.TermFreqs(text)
	total := 0
	for term, f := range freqs {
		ix.postings[term] = append(ix.postings[term], Posting{DocID: id, Freq: f})
		total += f
	}
	ix.docLens = append(ix.docLens, total)
	ix.docNames = append(ix.docNames, name)
	return id
}

// Len returns the number of documents in the index.
func (ix *Index) Len() int { return len(ix.docLens) }

// Terms returns the number of distinct terms in the index.
func (ix *Index) Terms() int { return len(ix.postings) }

// Name returns the external name of document id.
func (ix *Index) Name(id int) (string, error) {
	if id < 0 || id >= len(ix.docNames) {
		return "", fmt.Errorf("index: document %d out of range [0,%d)", id, len(ix.docNames))
	}
	return ix.docNames[id], nil
}

// DocFreq returns the number of documents containing term (after analysis
// normalization is the caller's responsibility; pass an already-analyzed
// term).
func (ix *Index) DocFreq(term string) int {
	return len(ix.postings[term])
}

// TermFreq returns the frequency of term in document id, 0 when absent.
func (ix *Index) TermFreq(term string, id int) int {
	for _, p := range ix.postings[term] {
		if p.DocID == id {
			return p.Freq
		}
	}
	return 0
}

// ErrEmptyIndex is returned by vector and search operations on an index
// with no documents.
var ErrEmptyIndex = errors.New("index: no documents")

// Postings returns the postings list for term, in insertion (docID) order.
// The returned slice is shared with the index and must not be modified.
func (ix *Index) Postings(term string) []Posting {
	return ix.postings[term]
}

// Vocabulary returns all distinct terms in lexicographic order.
func (ix *Index) Vocabulary() []string {
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Search scores all documents against the analyzed query using TF-IDF
// cosine and returns the top k (docID, score) pairs in decreasing score
// order. Documents with zero score are omitted.
func (ix *Index) Search(query string, k int) []SearchHit {
	if ix.Len() == 0 || k <= 0 {
		return nil
	}
	qv := ix.vectorFromFreqs(ix.analyzer.TermFreqs(query))
	scores := make(map[int]float64)
	for term, qw := range qv {
		for _, p := range ix.postings[term] {
			dv := ix.weight(term, p.Freq)
			scores[p.DocID] += qw * dv
		}
	}
	if len(scores) == 0 {
		return nil
	}
	norms := ix.docNorms()
	qn := qv.Norm()
	hits := make([]SearchHit, 0, len(scores))
	for id, s := range scores {
		norm := norms[id] * qn
		if norm > 0 && s > 0 {
			hits = append(hits, SearchHit{DocID: id, Score: s / norm})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchHit is one ranked retrieval result.
type SearchHit struct {
	DocID int
	Score float64
}

// vectorFromFreqs converts raw term frequencies into a TF-IDF weighted
// sparse vector using the index's corpus statistics.
func (ix *Index) vectorFromFreqs(freqs map[string]int) textsim.SparseVector {
	v := textsim.NewSparseVector()
	for term, f := range freqs {
		if w := ix.weight(term, f); w > 0 {
			v[term] = w
		}
	}
	return v
}
