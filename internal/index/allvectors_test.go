package index

import (
	"fmt"
	"testing"
)

func allVectorsFixture() *Index {
	ix := New(nil)
	texts := []string{
		"entity resolution over web pages with ambiguous person names",
		"the quick brown fox jumps over the lazy dog",
		"person name disambiguation clusters web pages by entity",
		"lazy evaluation of postings lists speeds up ranked retrieval",
		"",
	}
	for i, t := range texts {
		ix.Add(fmt.Sprintf("doc%d", i), t)
	}
	return ix
}

// TestAllVectorsMatchesDocVector pins the bulk path to the per-document
// reference: same supports, same weights, for every weighting scheme.
func TestAllVectorsMatchesDocVector(t *testing.T) {
	for _, scheme := range []WeightingScheme{LogTFIDF, RawTFIDF, Binary} {
		ix := allVectorsFixture()
		ix.SetWeighting(scheme)
		all := ix.AllVectors()
		if len(all) != ix.Len() {
			t.Fatalf("scheme %v: AllVectors len %d, want %d", scheme, len(all), ix.Len())
		}
		for id := 0; id < ix.Len(); id++ {
			ref := ix.DocVector(id)
			if len(all[id]) != len(ref) {
				t.Errorf("scheme %v doc %d: support %d, want %d", scheme, id, len(all[id]), len(ref))
			}
			for term, w := range ref {
				if all[id][term] != w {
					t.Errorf("scheme %v doc %d term %q: %v, want %v", scheme, id, term, all[id][term], w)
				}
			}
		}
	}
}

func TestDocNormsMatchDocVector(t *testing.T) {
	ix := allVectorsFixture()
	norms := ix.docNorms()
	for id := 0; id < ix.Len(); id++ {
		want := ix.DocVector(id).Norm()
		if diff := norms[id] - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("doc %d: norm %v, want %v", id, norms[id], want)
		}
	}
}

func TestWarmUsesAllVectors(t *testing.T) {
	ix := allVectorsFixture()
	c := NewVectorCache(ix)
	c.Warm()
	for id := 0; id < ix.Len(); id++ {
		ref := ix.DocVector(id)
		got := c.Vector(id)
		if len(got) != len(ref) {
			t.Fatalf("doc %d: cached support %d, want %d", id, len(got), len(ref))
		}
		for term, w := range ref {
			if got[term] != w {
				t.Errorf("doc %d term %q: %v, want %v", id, term, got[term], w)
			}
		}
	}
}
