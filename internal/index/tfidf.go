package index

import (
	"math"

	"repro/internal/textsim"
)

// WeightingScheme selects how term weights are computed for document
// vectors. The default, LogTFIDF, is Lucene's classic practical scoring
// combination: (1 + log tf) · log(1 + N/df).
type WeightingScheme int

const (
	// LogTFIDF weights terms by (1 + ln tf) · ln(1 + N/df).
	LogTFIDF WeightingScheme = iota
	// RawTFIDF weights terms by tf · ln(1 + N/df).
	RawTFIDF
	// Binary weights terms by 1 when present (IDF ignored); useful for
	// set-style comparisons over the vocabulary.
	Binary
)

// SetWeighting selects the weighting scheme used by DocVector and Search.
// Calling it after vectors have been handed out only affects future calls.
func (ix *Index) SetWeighting(s WeightingScheme) { ix.weighting = s }

// weight computes the weight of a term occurring f times in a document,
// under the index's current weighting scheme and corpus statistics.
func (ix *Index) weight(term string, f int) float64 {
	if f <= 0 {
		return 0
	}
	df := ix.DocFreq(term)
	if df == 0 {
		return 0
	}
	n := float64(ix.Len())
	idf := math.Log(1 + n/float64(df))
	switch ix.weighting {
	case RawTFIDF:
		return float64(f) * idf
	case Binary:
		return 1
	default: // LogTFIDF
		return (1 + math.Log(float64(f))) * idf
	}
}

// DocVector returns the TF-IDF weighted sparse term vector of document id.
// The vector is rebuilt on each call by scanning every postings list;
// callers that need more than one document's vector should use AllVectors
// (one pass for the whole index) or a VectorCache instead.
func (ix *Index) DocVector(id int) textsim.SparseVector {
	v := textsim.NewSparseVector()
	if id < 0 || id >= ix.Len() {
		return v
	}
	for term, plist := range ix.postings {
		for _, p := range plist {
			if p.DocID == id {
				if w := ix.weight(term, p.Freq); w > 0 {
					v[term] = w
				}
				break
			}
		}
	}
	return v
}

// AllVectors materializes the TF-IDF vector of every document in a single
// pass over the postings lists — O(total postings) for the whole index,
// where building the vectors one DocVector call at a time is O(documents ×
// postings). This is the bulk path behind VectorCache.Warm and block
// preparation.
func (ix *Index) AllVectors() []textsim.SparseVector {
	out := make([]textsim.SparseVector, ix.Len())
	for i := range out {
		out[i] = textsim.NewSparseVector()
	}
	for term, plist := range ix.postings {
		for _, p := range plist {
			if w := ix.weight(term, p.Freq); w > 0 {
				out[p.DocID][term] = w
			}
		}
	}
	return out
}

// docNorms returns the L2 norm of every document vector in one postings
// pass, without materializing the vectors.
func (ix *Index) docNorms() []float64 {
	norms := make([]float64, ix.Len())
	for term, plist := range ix.postings {
		for _, p := range plist {
			w := ix.weight(term, p.Freq)
			norms[p.DocID] += w * w
		}
	}
	for i, s := range norms {
		norms[i] = math.Sqrt(s)
	}
	return norms
}

// VectorCache memoizes DocVector results for an index whose document set is
// frozen. It is safe for concurrent use after Warm or sequential filling.
type VectorCache struct {
	ix      *Index
	vectors []textsim.SparseVector
	warm    bool
}

// NewVectorCache creates a cache over ix. The index must not gain documents
// after the cache is created.
func NewVectorCache(ix *Index) *VectorCache {
	return &VectorCache{ix: ix, vectors: make([]textsim.SparseVector, ix.Len())}
}

// Warm eagerly builds every document vector from a single AllVectors pass.
func (c *VectorCache) Warm() {
	c.vectors = c.ix.AllVectors()
	c.warm = true
}

// Vector returns the (possibly cached) TF-IDF vector of document id.
func (c *VectorCache) Vector(id int) textsim.SparseVector {
	if id < 0 || id >= len(c.vectors) {
		return textsim.NewSparseVector()
	}
	if !c.warm && c.vectors[id] == nil {
		c.vectors[id] = c.ix.DocVector(id)
	}
	return c.vectors[id]
}
