package index

import (
	"math"

	"repro/internal/textsim"
)

// WeightingScheme selects how term weights are computed for document
// vectors. The default, LogTFIDF, is Lucene's classic practical scoring
// combination: (1 + log tf) · log(1 + N/df).
type WeightingScheme int

const (
	// LogTFIDF weights terms by (1 + ln tf) · ln(1 + N/df).
	LogTFIDF WeightingScheme = iota
	// RawTFIDF weights terms by tf · ln(1 + N/df).
	RawTFIDF
	// Binary weights terms by 1 when present (IDF ignored); useful for
	// set-style comparisons over the vocabulary.
	Binary
)

// SetWeighting selects the weighting scheme used by DocVector and Search.
// Calling it after vectors have been handed out only affects future calls.
func (ix *Index) SetWeighting(s WeightingScheme) { ix.weighting = s }

// weight computes the weight of a term occurring f times in a document,
// under the index's current weighting scheme and corpus statistics.
func (ix *Index) weight(term string, f int) float64 {
	if f <= 0 {
		return 0
	}
	df := ix.DocFreq(term)
	if df == 0 {
		return 0
	}
	n := float64(ix.Len())
	idf := math.Log(1 + n/float64(df))
	switch ix.weighting {
	case RawTFIDF:
		return float64(f) * idf
	case Binary:
		return 1
	default: // LogTFIDF
		return (1 + math.Log(float64(f))) * idf
	}
}

// DocVector returns the TF-IDF weighted sparse term vector of document id.
// The vector is rebuilt on each call from the index's postings; callers
// that need repeated access should memoize (see VectorCache).
func (ix *Index) DocVector(id int) textsim.SparseVector {
	v := textsim.NewSparseVector()
	if id < 0 || id >= ix.Len() {
		return v
	}
	for term, plist := range ix.postings {
		for _, p := range plist {
			if p.DocID == id {
				if w := ix.weight(term, p.Freq); w > 0 {
					v[term] = w
				}
				break
			}
		}
	}
	return v
}

// VectorCache memoizes DocVector results for an index whose document set is
// frozen. It is safe for concurrent use after Warm or sequential filling.
type VectorCache struct {
	ix      *Index
	vectors []textsim.SparseVector
	warm    bool
}

// NewVectorCache creates a cache over ix. The index must not gain documents
// after the cache is created.
func NewVectorCache(ix *Index) *VectorCache {
	return &VectorCache{ix: ix, vectors: make([]textsim.SparseVector, ix.Len())}
}

// Warm eagerly builds every document vector. This converts the per-document
// O(vocabulary) rebuild into a single O(postings) pass.
func (c *VectorCache) Warm() {
	for i := range c.vectors {
		c.vectors[i] = textsim.NewSparseVector()
	}
	for term, plist := range c.ix.postings {
		for _, p := range plist {
			if w := c.ix.weight(term, p.Freq); w > 0 {
				c.vectors[p.DocID][term] = w
			}
		}
	}
	c.warm = true
}

// Vector returns the (possibly cached) TF-IDF vector of document id.
func (c *VectorCache) Vector(id int) textsim.SparseVector {
	if id < 0 || id >= len(c.vectors) {
		return textsim.NewSparseVector()
	}
	if !c.warm && c.vectors[id] == nil {
		c.vectors[id] = c.ix.DocVector(id)
	}
	return c.vectors[id]
}
