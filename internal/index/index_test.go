package index

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/textsim"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(nil)
	docs := []struct{ name, text string }{
		{"d0", "machine learning algorithms for entity resolution"},
		{"d1", "entity resolution in relational databases"},
		{"d2", "cooking recipes for italian pasta dishes"},
		{"d3", "machine learning for cooking robots"},
	}
	for _, d := range docs {
		ix.Add(d.name, d.text)
	}
	return ix
}

func TestIndexAddAndStats(t *testing.T) {
	ix := buildTestIndex(t)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	if ix.Terms() == 0 {
		t.Fatal("no terms indexed")
	}
	// "entity" stems to "entiti" and appears in d0, d1.
	if got := ix.DocFreq("entiti"); got != 2 {
		t.Errorf("DocFreq(entiti) = %d, want 2", got)
	}
	if got := ix.TermFreq("entiti", 0); got != 1 {
		t.Errorf("TermFreq(entiti, d0) = %d, want 1", got)
	}
	if got := ix.TermFreq("entiti", 2); got != 0 {
		t.Errorf("TermFreq(entiti, d2) = %d, want 0", got)
	}
}

func TestIndexName(t *testing.T) {
	ix := buildTestIndex(t)
	name, err := ix.Name(1)
	if err != nil || name != "d1" {
		t.Errorf("Name(1) = %q, %v", name, err)
	}
	if _, err := ix.Name(99); err == nil {
		t.Error("Name(99): want error")
	}
	if _, err := ix.Name(-1); err == nil {
		t.Error("Name(-1): want error")
	}
}

func TestVocabularySorted(t *testing.T) {
	ix := buildTestIndex(t)
	vocab := ix.Vocabulary()
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatalf("vocabulary not strictly sorted at %d: %q >= %q", i, vocab[i-1], vocab[i])
		}
	}
}

func TestDocVector(t *testing.T) {
	ix := buildTestIndex(t)
	v0 := ix.DocVector(0)
	if len(v0) == 0 {
		t.Fatal("empty vector for d0")
	}
	// Shared topical term present.
	if _, ok := v0["entiti"]; !ok {
		t.Error("d0 vector missing term 'entiti'")
	}
	// Out-of-range IDs give empty vectors.
	if len(ix.DocVector(-1)) != 0 || len(ix.DocVector(100)) != 0 {
		t.Error("out-of-range DocVector should be empty")
	}
}

func TestIDFOrdering(t *testing.T) {
	ix := buildTestIndex(t)
	// "cooking" (stems to "cook") appears in 2 docs; "pasta" in 1. The rare
	// term must get a higher weight at equal tf.
	wPasta := ix.weight("pasta", 1)
	wCook := ix.weight("cook", 1)
	if wPasta <= wCook {
		t.Errorf("rare term weight %v should exceed common term weight %v", wPasta, wCook)
	}
	if got := ix.weight("nonexistent", 1); got != 0 {
		t.Errorf("unknown term weight = %v, want 0", got)
	}
	if got := ix.weight("pasta", 0); got != 0 {
		t.Errorf("zero tf weight = %v, want 0", got)
	}
}

func TestWeightingSchemes(t *testing.T) {
	ix := New(nil)
	ix.Add("a", "apple apple apple banana")
	ix.Add("b", "banana cherry")

	ix.SetWeighting(RawTFIDF)
	raw := ix.weight("appl", 3)
	ix.SetWeighting(LogTFIDF)
	logw := ix.weight("appl", 3)
	if raw <= logw {
		t.Errorf("raw tf (%v) should exceed log tf (%v) for tf=3", raw, logw)
	}
	ix.SetWeighting(Binary)
	if got := ix.weight("appl", 3); got != 1 {
		t.Errorf("binary weight = %v, want 1", got)
	}
}

func TestCosineSimilarityOfVectors(t *testing.T) {
	ix := buildTestIndex(t)
	cache := NewVectorCache(ix)
	cache.Warm()
	// d0 and d1 share "entity resolution"; d0 and d2 share nothing topical.
	sim01 := textsim.Cosine(cache.Vector(0), cache.Vector(1))
	sim02 := textsim.Cosine(cache.Vector(0), cache.Vector(2))
	if sim01 <= sim02 {
		t.Errorf("related docs (%v) should beat unrelated (%v)", sim01, sim02)
	}
	if s := textsim.Cosine(cache.Vector(0), cache.Vector(0)); math.Abs(s-1) > 1e-9 {
		t.Errorf("self-similarity = %v, want 1", s)
	}
}

func TestVectorCacheMatchesDirect(t *testing.T) {
	ix := buildTestIndex(t)
	warm := NewVectorCache(ix)
	warm.Warm()
	lazy := NewVectorCache(ix)
	for id := 0; id < ix.Len(); id++ {
		direct := ix.DocVector(id)
		w := warm.Vector(id)
		l := lazy.Vector(id)
		if len(direct) != len(w) || len(direct) != len(l) {
			t.Fatalf("doc %d: sizes differ: direct=%d warm=%d lazy=%d", id, len(direct), len(w), len(l))
		}
		for term, dw := range direct {
			if math.Abs(w[term]-dw) > 1e-12 || math.Abs(l[term]-dw) > 1e-12 {
				t.Fatalf("doc %d term %q: weights differ", id, term)
			}
		}
	}
	// Out-of-range access is safe.
	if len(warm.Vector(-5)) != 0 || len(warm.Vector(99)) != 0 {
		t.Error("out-of-range cache access should return empty vector")
	}
}

func TestSearch(t *testing.T) {
	ix := buildTestIndex(t)
	hits := ix.Search("entity resolution", 10)
	if len(hits) < 2 {
		t.Fatalf("expected at least 2 hits, got %d", len(hits))
	}
	// Both top hits must be the ER documents.
	top2 := map[int]bool{hits[0].DocID: true, hits[1].DocID: true}
	if !top2[0] || !top2[1] {
		t.Errorf("top hits = %v, want docs 0 and 1", hits)
	}
	// Scores must be sorted decreasing.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by decreasing score")
		}
	}
	// k truncation.
	if got := ix.Search("machine learning", 1); len(got) != 1 {
		t.Errorf("k=1 returned %d hits", len(got))
	}
	// Degenerate cases.
	if got := ix.Search("entity", 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := New(nil).Search("anything", 5); got != nil {
		t.Error("empty index should return nil")
	}
	if got := ix.Search("zzzunknownzzz", 5); len(got) != 0 {
		t.Errorf("unknown term should return no hits, got %v", got)
	}
}

func TestSearchScoresBoundedProperty(t *testing.T) {
	ix := buildTestIndex(t)
	f := func(q string) bool {
		for _, h := range ix.Search(q, 10) {
			if h.Score < -1e-9 || h.Score > 1+1e-9 || math.IsNaN(h.Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCustomAnalyzer(t *testing.T) {
	ix := New(analysis.NewAnalyzer(analysis.WithoutStemming()))
	ix.Add("d", "databases running")
	if ix.DocFreq("databases") != 1 {
		t.Error("custom analyzer not honoured: unstemmed term missing")
	}
	if ix.DocFreq("databas") != 0 {
		t.Error("custom analyzer not honoured: stem present")
	}
}

func TestEmptyDocument(t *testing.T) {
	ix := New(nil)
	id := ix.Add("empty", "")
	if ix.Len() != 1 {
		t.Fatal("empty doc not added")
	}
	if len(ix.DocVector(id)) != 0 {
		t.Error("empty document should have empty vector")
	}
}
